"""Observability overhead — the <2 % contract of `repro.obs`.

The obs layer promises that instrumentation is effectively free: hooks
fire per run / per block (never per sample) and every one is gated
behind a single flag check, so

* **disabled** (the default): outputs are bit-identical to an
  un-instrumented library and the runtime cost is a handful of flag
  checks — indistinguishable from timer noise;
* **enabled**: one span per stage plus a few registry updates per run,
  under 2 % of end-to-end wall time.

This bench measures both on the headline office scenario with a
noise-hardened estimator (paired runs → per-window median ratio → min
over independent windows; see :func:`measure_overhead`), then asserts
the contract.  It also prints a metrics snapshot to show the shared
``repro.obs.metrics/v1`` schema every bench can emit.
"""

from __future__ import annotations

import json
import time

import numpy as np

from _bench_utils import metrics_snapshot, run_once

import repro
from repro import obs


def measure_overhead(duration_s=0.5, repeats=20, windows=3):
    """Paired disabled/enabled timings of ``MuteSystem.run``.

    Each repeat times the two modes back-to-back and contributes one
    enabled/disabled *ratio*; a measurement window's estimate is the
    median ratio over ``repeats`` pairs, and the final estimate is the
    **minimum over ``windows`` independent windows**.

    Three layers of noise rejection, because host contention on a shared
    machine is an order of magnitude larger than the overhead being
    measured (empirically ±2-5 % per window, vs a true overhead well
    under 1 %):

    * pairing cancels slow drift (thermal, other tenants) common to the
      two modes;
    * the per-window median discards individual scheduler hiccups;
    * the min over windows discards whole windows contaminated by a
      contention burst — scheduling noise only ever *adds* time, so
      under one-sided noise the smallest median is the best estimate of
      the true ratio.
    """
    scenario = repro.office_scenario()
    noise = repro.WhiteNoise(level_rms=0.1, seed=1).generate(duration_s)
    system = repro.MuteSystem(scenario)

    obs.disable()
    obs.reset()
    reference = system.run(noise)     # warm-up + baseline outputs

    window_estimates, disabled_times, enabled_times = [], [], []
    traced = None
    for __ in range(windows):
        ratios = []
        for ___ in range(repeats):
            obs.disable()
            t0 = time.perf_counter()
            system.run(noise)
            disabled_s = time.perf_counter() - t0
            obs.enable()
            t0 = time.perf_counter()
            traced = system.run(noise)
            enabled_s = time.perf_counter() - t0
            disabled_times.append(disabled_s)
            enabled_times.append(enabled_s)
            ratios.append(enabled_s / disabled_s)
        window_estimates.append(float(np.median(ratios)))
    obs.disable()

    snapshot = metrics_snapshot()
    obs.reset()
    return {
        "disabled_s": min(disabled_times),
        "enabled_s": min(enabled_times),
        "overhead_fraction": min(window_estimates) - 1.0,
        "window_estimates": [x - 1.0 for x in window_estimates],
        "bit_identical": bool(
            np.array_equal(reference.residual, traced.residual)
            and np.array_equal(reference.antinoise, traced.antinoise)
        ),
        "metrics": snapshot,
    }


def test_obs_overhead(benchmark, report):
    result = run_once(benchmark, measure_overhead)

    overhead_pct = result["overhead_fraction"] * 100.0
    windows = "  ".join(f"{x * 100:+.2f}%"
                        for x in result["window_estimates"])
    lines = [
        "Observability overhead (min of 3 paired-median windows)",
        f"  disabled: {result['disabled_s'] * 1e3:8.2f} ms   "
        "(default — zero instrumentation on the hot path)",
        f"  enabled:  {result['enabled_s'] * 1e3:8.2f} ms   "
        f"(overhead {overhead_pct:+.2f}%; windows: {windows})",
        f"  outputs bit-identical across modes: "
        f"{result['bit_identical']}",
        "",
        "shared metrics schema "
        f"({result['metrics']['schema']}), first entries:",
        json.dumps(result["metrics"]["metrics"][:2], indent=2),
    ]
    report("\n".join(lines))

    # The contract: enabling costs < 2%, and neither mode perturbs the
    # simulation (disabled "overhead" is unmeasurable by construction —
    # it IS the baseline).
    assert result["bit_identical"]
    assert result["overhead_fraction"] < 0.02
