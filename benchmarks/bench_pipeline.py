"""End-to-end pipeline benchmark: the fast paths vs the slow paths.

The committed regression gate for the profile-guided fast-path work
(``docs/PERFORMANCE.md``): one fig12-style workload — the bench
scenario, an :class:`~repro.wireless.relay.AnalogRelay` FM chain, and
seeded white noise — is run end to end through
:meth:`MuteSystem.run <repro.core.system.MuteSystem.run>` twice:

* **baseline** — the ``loop`` kernel backend with
  :mod:`repro.utils.fastpath` disabled: every call site falls back to
  the pre-fast-path arithmetic (``fftconvolve`` / uncached
  ``resample_poly`` / general-form updates), preserved verbatim at
  each site precisely so this bench has an honest denominator;
* **fast** — the ``vector`` backend with the fast paths on: cached-FFT
  overlap-save convolution, cached polyphase resampling, in-place
  mod/demod, BLAS kernels.

The bench asserts both the **speedup floor** (fast must beat baseline
by ≥ :data:`PIPELINE_SPEEDUP_FLOOR`) and the **correctness contract**
(residuals agree to ≤ :data:`RESIDUAL_TOLERANCE` max abs), and writes
the result to ``BENCH_pipeline.json`` — the artifact the CI perf-smoke
job runs and uploads.

Run with::

    pytest benchmarks/bench_pipeline.py -s
"""

import numpy as np

from _bench_utils import time_call, write_bench_json
from repro.core.system import MuteSystem
from repro.eval.experiments.common import bench_scenario, default_config
from repro.signals import WhiteNoise
from repro.utils import fastpath
from repro.wireless.relay import AnalogRelay

#: The fast configuration must beat the slow baseline end to end by at
#: least this much (measured ~5x on the reference container; committed
#: floor leaves headroom for slower CI machines).
PIPELINE_SPEEDUP_FLOOR = 2.0

#: Max abs deviation allowed between fast and baseline residuals — the
#: loop-vs-vector kernel contract; every conv/resample fast path is
#: individually bit-identical or ≤ 1e-12 (tests/test_fastconv.py).
RESIDUAL_TOLERANCE = 1e-10

#: Simulated seconds of the fig12 workload.
DURATION_S = 4.0

#: Workload seed (the Figure 12 seed).
SEED = 7


def _build_system(backend):
    scenario = bench_scenario()
    relay = AnalogRelay(audio_rate=scenario.sample_rate, seed=SEED)
    config = default_config(relay=relay, seed=SEED, kernel_backend=backend)
    return MuteSystem(scenario, config), scenario.sample_rate


def _run_once(backend, fast, noise):
    """One end-to-end MuteSystem.run under (backend, fastpath) settings."""
    with fastpath.scope(fast):
        system, __ = _build_system(backend)
        return system.run(noise)


def test_pipeline_fast_vs_slow(report):
    """Fast vs slow end to end: speedup floor + residual agreement.

    The timed region is :meth:`MuteSystem.run` — the per-workload
    pipeline (propagate, relay, align, adapt, collect).  System
    construction (secondary-path probe, relay latency calibration) is
    a one-time setup cost shared by both variants and sits outside the
    timer; both variants make the same number of ``run`` calls so the
    relay's seeded RF-noise stream stays comparable.
    """
    noise = WhiteNoise(sample_rate=8000.0, level_rms=0.1,
                       seed=SEED).generate(DURATION_S)

    variants = {
        "baseline": {"backend": "loop", "fast": False},
        "fast": {"backend": "vector", "fast": True},
    }
    rows = {}
    for name, v in variants.items():
        with fastpath.scope(v["fast"]):
            system, __ = _build_system(v["backend"])
            timing = time_call(lambda: system.run(noise),
                               repeats=3, warmup=1)
        rows[name] = {
            "kernel_backend": v["backend"],
            "fastpath": v["fast"],
            **timing.to_dict(),
        }
        rows[name]["result"] = timing.result

    base, fast = rows["baseline"], rows["fast"]
    max_dev = float(np.max(np.abs(
        fast["result"].residual - base["result"].residual)))
    speedup = base["median_s"] / fast["median_s"]
    cancellation_db = float(
        fast["result"].mean_cancellation_db(f_high=1000.0))
    for row in rows.values():
        del row["result"]

    path = write_bench_json("pipeline", {
        "schema": "repro.bench.pipeline/v1",
        "workload": {
            "kind": "fig12-white-noise",
            "duration_s": DURATION_S,
            "seed": SEED,
            "relay": "analog",
            "scenario": "bench (6x5x3 m room)",
        },
        "pipeline_speedup_floor": PIPELINE_SPEEDUP_FLOOR,
        "residual_tolerance": RESIDUAL_TOLERANCE,
        "baseline": base,
        "fast": fast,
        "speedup": speedup,
        "max_abs_residual_deviation": max_dev,
        "mean_cancellation_db_low_band": cancellation_db,
    })

    report(
        f"end-to-end MuteSystem.run, {DURATION_S:.0f} s fig12 workload\n"
        f"  baseline (loop, slow paths)  {base['median_s']:.3f} s\n"
        f"  fast (vector, fast paths)    {fast['median_s']:.3f} s\n"
        f"  speedup {speedup:.2f}x (floor {PIPELINE_SPEEDUP_FLOOR}x), "
        f"max residual dev {max_dev:.2e}\n"
        f"[written to {path}]"
    )

    assert max_dev <= RESIDUAL_TOLERANCE, \
        f"fast pipeline diverges from baseline: {max_dev:.3e}"
    assert speedup >= PIPELINE_SPEEDUP_FLOOR, \
        f"pipeline speedup {speedup:.2f}x < {PIPELINE_SPEEDUP_FLOOR}x"


def test_fastpath_alone_is_transparent(report):
    """Same backend, fastpath on vs off: tiny numeric envelope.

    Isolates the conv/resample/mod-demod fast paths from the kernel
    backend change — on the same ``loop`` backend the only deviations
    left are the FFT-plan reuse effects (≤ ~1e-12 end to end).
    """
    noise = WhiteNoise(sample_rate=8000.0, level_rms=0.1,
                       seed=SEED).generate(1.0)
    slow = _run_once("loop", False, noise)
    fast = _run_once("loop", True, noise)
    max_dev = float(np.max(np.abs(fast.residual - slow.residual)))
    report(f"fastpath-only max residual dev: {max_dev:.2e}")
    assert max_dev <= RESIDUAL_TOLERANCE
