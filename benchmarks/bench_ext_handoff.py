"""Extension — runtime relay handoff when the noise source moves.

Paper §4.2: "Correlation is performed periodically to handle the
possibility that the sound source has moved to another location."  The
online device runs that loop; this bench moves the source across the
room mid-session and checks the device detects the move, hands off to
the relay near the new position, and recovers deep cancellation.
"""

import numpy as np
from _bench_utils import run_once

from repro.acoustics import Point, Room
from repro.acoustics.rir import RirSettings
from repro.core import OnlineMuteDevice, Scenario
from repro.eval.reporting import format_table
from repro.signals import WhiteNoise


def run_handoff(duration_per_segment_s=6.0, seed=3):
    room = Room(6.0, 5.0, 3.0, absorption=0.4)
    scenario = Scenario(
        room=room, source=Point(1, 1, 1.2), client=Point(3.0, 2.5, 1.2),
        relays=(Point(0.8, 0.8, 1.3), Point(5.2, 4.2, 1.3)),
        rir_settings=RirSettings(max_order=2),
    )
    fs = scenario.sample_rate
    device = OnlineMuteDevice(scenario, mu=0.15)
    near_0 = Point(0.9, 1.0, 1.3)
    near_1 = Point(5.1, 4.0, 1.3)
    w1 = WhiteNoise(sample_rate=fs, level_rms=0.1, seed=seed) \
        .generate(duration_per_segment_s)
    w2 = WhiteNoise(sample_rate=fs, level_rms=0.1, seed=seed + 1) \
        .generate(duration_per_segment_s)
    result = device.run_session([(near_0, w1), (near_1, w2)])

    T1 = w1.size
    rows = [
        ("segment 1 (source near relay 1), settled",
         f"{result.segment_cancellation_db(T1 // 2, T1):.1f}"),
        ("segment 2 (source near relay 2), settled",
         f"{result.segment_cancellation_db(T1 + T1 // 2, 2 * T1):.1f}"),
    ]
    table = format_table(
        ["window", "cancellation (dB)"], rows,
        title="Extension — relay handoff when the source moves",
    )
    events = "\n".join(
        f"  t={h.sample_index / fs:5.2f}s -> relay "
        f"{h.relay + 1 if h.relay is not None else 'none'} "
        f"(lag {h.lag_samples} samples"
        f"{', warm start' if h.warm_start else ''})"
        for h in result.handoffs
    )
    return table + "\nhandoff log:\n" + events, result, T1


def test_relay_handoff(benchmark, report):
    text, result, T1 = run_once(benchmark, run_handoff)
    report(text)

    relays = [h.relay for h in result.handoffs if h.relay is not None]
    assert 0 in relays and 1 in relays            # the handoff happened
    assert result.segment_cancellation_db(T1 // 2, T1) < -12.0
    assert result.segment_cancellation_db(T1 + T1 // 2, 2 * T1) < -12.0
    # The device never used a negative-lookahead relay.
    assert np.all(np.asarray(
        [h.lag_samples for h in result.handoffs
         if h.relay is not None]) > 0)
