"""Figure 17 — additional cancellation from predictive profile switching."""

from _bench_utils import run_once

from repro.eval.experiments import run_fig17


def test_fig17_profile_switching(benchmark, report):
    result = run_once(benchmark, run_fig17, duration_s=16.0, seed=31)
    report(result.report())

    # Paper: ~3 dB average additional cancellation for intermittent
    # sounds; negative = switching cancels more.
    assert result.mean_additional_db < -1.5
    assert result.cache_hits > 0
    assert len(result.switch_events) >= 4
