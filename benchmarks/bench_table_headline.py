"""Headline numbers table — the paper's §1/§5.2 bullet comparisons."""

from _bench_utils import run_once

from repro.eval.experiments import run_headline


def test_headline_numbers(benchmark, report):
    result = run_once(benchmark, run_headline, duration_s=8.0, seed=7)
    report(result.report())

    # Sign/direction checks against the paper's numbers:
    # MUTE beats Bose_Active within 1 kHz (paper: -6.7 dB)...
    assert result.mute_vs_bose_active_sub1k_db < -3.0
    # ...roughly ties Bose_Overall while leaving the ear open (+0.9)...
    assert abs(result.mute_hollow_vs_bose_overall_db) < 5.0
    # ...and clearly wins once given the same earcup (-8.9).
    assert result.mute_passive_vs_bose_overall_db < -5.0
    # Profiling adds cancellation for intermittent sounds (~-3 dB).
    assert result.profiling_gain_db < -1.5
