"""Extension — head mobility (paper §6).

The swaying-head experiment: how much tracking costs, and how much a
faster-converging adaptation step recovers.
"""

from _bench_utils import run_once

from repro.eval.experiments import run_mobility


def test_ext_mobility(benchmark, report):
    result = run_once(benchmark, run_mobility, duration_s=12.0, seed=5)
    report(result.report())

    # Motion degrades the statically-tuned filter...
    assert result.mobility_cost_db > 0.5
    # ...and the tracking-tuned step recovers part of the loss.
    assert result.tracking_recovery_db < -0.3
