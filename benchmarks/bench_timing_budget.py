"""Figure 5 / Equations 3-4 — the timing analysis as numbers."""

from _bench_utils import run_once

from repro.eval.experiments import run_timing


def test_timing_budget(benchmark, report):
    result = run_once(benchmark, run_timing)
    report(result.report())

    verdicts = {row[0]: row[3] for row in result.device_rows}
    assert verdicts["headphone-asic (conventional)"] == "NO"
    assert verdicts["TMS320C6713 (MUTE bench)"] == "yes"
    # Paper: the conventional pipeline is "easily 3x" the 30 µs budget.
    assert 2.0 < result.headphone_overrun_ratio < 5.0
    # Paper Eq. 4: 1 m of relay advantage ≈ 3 ms of lookahead.
    one_meter = [r for r in result.distance_rows if r[0] == "1.00"][0]
    assert abs(float(one_meter[1]) - 2.94) < 0.05
