"""Extension — multiple simultaneous noise sources (paper §6).

Not a paper figure: the paper leaves multi-source cancellation to future
work.  This bench runs that future-work system (one relay per source,
multi-reference LANC) and verifies the paper's hypothesis that lookahead
remains valuable with multiple sources.
"""

from _bench_utils import run_once

from repro.eval.experiments import run_multisource


def test_ext_multisource(benchmark, report):
    result = run_once(benchmark, run_multisource, duration_s=8.0, seed=1)
    report(result.report())

    # One reference per source restores identifiability: a clear win.
    assert result.multi_vs_single_db < -6.0
    assert result.total_db["multi reference"] < -15.0
    # Each branch kept real anti-causal (lookahead) taps.
    assert all(n > 0 for n in result.n_futures)
