"""The repro.runtime layer: channel-cache speedup, executor wall time.

Two measurements, one artifact (``BENCH_runtime.json``):

* **cold vs warm** ``Scenario.build_channels()`` on the office scenario
  — the acceptance bar is warm >= 10x faster than cold, and warm output
  bit-identical to an uncached compute;
* **serial vs ``--jobs 4``** wall time of a small experiment suite
  through :func:`repro.runtime.run_experiments` — reported, not
  asserted: on a single-core host the pool adds fork overhead instead
  of speedup, and what the runtime *guarantees* is result equality
  (asserted here and in ``tests/test_runtime.py``), not a ratio.

Opt-in (``runtime_bench`` marker): these time the infrastructure, not
the paper's figures, so the default bench sweep skips them.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from _bench_utils import run_once, write_bench_json

from repro import runtime
from repro.core.scenario import office_scenario
from repro.runtime.cache import ChannelCache

pytestmark = pytest.mark.runtime_bench

#: Fast experiments only — the bench measures dispatch, not simulation.
SUITE = ["timing", "fig13"]


def measure_cache(warm_rounds=5):
    """Cold and best-warm build_channels times plus a bit-identity check."""
    scenario = office_scenario()
    cache = ChannelCache()

    t0 = time.perf_counter()
    cold = cache.get_or_build(scenario)
    cold_s = time.perf_counter() - t0

    warm_times = []
    warm = None
    for __ in range(warm_rounds):
        t0 = time.perf_counter()
        warm = cache.get_or_build(scenario)
        warm_times.append(time.perf_counter() - t0)
    warm_s = min(warm_times)

    uncached = scenario.compute_channels()
    identical = (
        np.array_equal(warm.h_ne.ir, uncached.h_ne.ir)
        and np.array_equal(warm.h_se.ir, uncached.h_se.ir)
        and all(np.array_equal(a.ir, b.ir)
                for a, b in zip(warm.h_nr, uncached.h_nr))
        and warm.acoustic_lead_samples == uncached.acoustic_lead_samples
    )
    return {
        "cold_s": cold_s,
        "warm_s": warm_s,
        "speedup": cold_s / warm_s,
        "bit_identical": identical,
        "stats": cache.stats(),
    }


def measure_suite(jobs=4):
    """Serial vs ``jobs``-worker wall time for the same fast suite."""
    request = runtime.RunRequest(duration_s=1.0, seed=0)
    serial = runtime.run_experiments(SUITE, request=request)
    parallel = runtime.run_experiments(SUITE,
                                       request=request.replace(jobs=jobs))
    equal = all(
        serial.results()[name].report() == parallel.results()[name].report()
        for name in SUITE
    )
    return {
        "experiments": SUITE,
        "jobs": jobs,
        "serial_s": serial.wall_s,
        "parallel_s": parallel.wall_s,
        "pool_used": parallel.parallel,
        "results_equal": equal,
    }


def test_runtime_cache_and_executor(benchmark, report):
    def measure():
        return {"cache": measure_cache(), "suite": measure_suite()}

    result = run_once(benchmark, measure)
    cache, suite = result["cache"], result["suite"]

    path = write_bench_json("runtime", result)
    report("\n".join([
        "repro.runtime bench",
        f"  build_channels cold: {cache['cold_s'] * 1e3:8.2f} ms",
        f"  build_channels warm: {cache['warm_s'] * 1e3:8.2f} ms  "
        f"({cache['speedup']:.0f}x, bit-identical: "
        f"{cache['bit_identical']})",
        f"  suite {suite['experiments']} serial:   "
        f"{suite['serial_s']:6.2f} s",
        f"  suite {suite['experiments']} --jobs {suite['jobs']}:  "
        f"{suite['parallel_s']:6.2f} s  "
        f"(pool used: {suite['pool_used']}, "
        f"results equal: {suite['results_equal']})",
        f"  [written to {path.name}]",
    ]))

    assert cache["bit_identical"]
    assert cache["speedup"] >= 10.0, (cache["cold_s"], cache["warm_s"])
    assert suite["results_equal"]
