"""Ablation — adaptation engine choices (NLMS vs LMS, step size, leak).

The paper's Eq. 6-7 describe plain gradient descent; the implementation
normalizes the step (NLMS).  This bench shows why: with speech-like
non-stationary level changes, raw LMS either crawls or diverges, while
NLMS converges at the same nominal step across a 20 dB level range.
"""

import numpy as np
from _bench_utils import run_once

from repro.core import LancFilter
from repro.errors import ConvergenceError
from repro.eval.reporting import format_table


def _scene(level, seed=0, T=12000):
    rng = np.random.default_rng(seed)
    n = level * rng.standard_normal(T)
    g = np.array([1.0, 1.5])
    delta = 12
    x = np.zeros(T)
    x[delta:] = np.convolve(n, g)[:T][:-delta]
    d = np.zeros(T)
    d[delta:] = n[:-delta]
    return x, d


def run_ablation():
    s = np.array([0.0, 1.0])
    rows = []
    outcomes = {}
    for label, normalized, mu in [("LMS mu=0.01", False, 0.01),
                                  ("LMS mu=0.2", False, 0.2),
                                  ("NLMS mu=0.5", True, 0.5)]:
        per_level = []
        for level in (0.1, 1.0):
            f = LancFilter(n_future=8, n_past=32, secondary_path=s,
                           mu=mu, normalized=normalized)
            x, d = _scene(level)
            try:
                result = f.run(x, d)
                residual = result.converged_error() / (level * 1.0)
                per_level.append(f"{residual:.4f}")
                outcomes[(label, level)] = residual
            except ConvergenceError:
                per_level.append("DIVERGED")
                outcomes[(label, level)] = float("inf")
        rows.append([label] + per_level)
    table = format_table(
        ["engine", "rel. residual @ level 0.1", "rel. residual @ level 1.0"],
        rows,
        title="Ablation — NLMS vs LMS across input levels",
    )
    return table, outcomes


def test_nlms_vs_lms(benchmark, report):
    table, outcomes = run_once(benchmark, run_ablation)
    report(table)

    # NLMS converges well at both levels.
    assert outcomes[("NLMS mu=0.5", 0.1)] < 0.1
    assert outcomes[("NLMS mu=0.5", 1.0)] < 0.1
    # A fixed LMS step cannot serve both levels: it is slow at one level
    # or unstable/misadjusted at the other.
    lms_small = outcomes[("LMS mu=0.01", 0.1)]
    lms_large = outcomes[("LMS mu=0.2", 1.0)]
    assert (lms_small > 0.2 or not np.isfinite(lms_small)
            or lms_large > 0.2 or not np.isfinite(lms_large))
