"""Figure 15 — simulated listener ratings, MUTE+Passive vs Bose_Overall."""

from _bench_utils import run_once

from repro.eval.experiments import run_fig15


def test_fig15_user_ratings(benchmark, report):
    result = run_once(benchmark, run_fig15, duration_s=8.0)
    report(result.report())

    # The paper's finding: every volunteer rated MUTE above Bose, for
    # both music and voice.
    assert result.mute_wins("music") == result.n_subjects
    assert result.mute_wins("voice") == result.n_subjects
