"""Extension — cancellation at the eardrum (paper §6).

Quantifies what designing against the error microphone (rather than a
KEMAR-style ear model) costs at the eardrum, and what calibration
recovers.
"""

from _bench_utils import run_once

from repro.eval.experiments import run_ear_model


def test_ext_ear_model(benchmark, report):
    result = run_once(benchmark, run_ear_model, duration_s=8.0, seed=7)
    report(result.report())

    # The mismatch costs several dB, concentrated at high frequency.
    assert result.mismatch_cost_db > 2.0
    drum = result.curves["at eardrum"]
    mic = result.curves["at error mic"]
    assert (drum.mean_db(2500, 3800) - mic.mean_db(2500, 3800)
            > drum.mean_db(100, 800) - mic.mean_db(100, 800))
    # Ear-model calibration recovers essentially all of it.
    assert abs(result.calibrated_mean_db - result.mic_mean_db) < 1.0
