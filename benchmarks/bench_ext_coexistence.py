"""Extension — RF coexistence and privacy envelopes (paper §4.4, §6).

Two tables the paper argues in prose, made quantitative:

* channel allocation and carrier-sense contention for co-located relays;
* power control and the resulting eavesdropping (leakage) radius.
"""

from _bench_utils import run_once

from repro.eval.reporting import format_table
from repro.wireless import (
    CarrierSenseModel,
    allocate_channels,
    leakage_radius_m,
    max_colocated_relays,
    minimum_tx_power_dbm,
    received_audio_snr_db,
)


def run_tables():
    # --- coexistence -------------------------------------------------
    capacity = max_colocated_relays(32000.0)
    rows = []
    for n in (2, 5, 10, 30):
        model = CarrierSenseModel(n_relays=n, activity=0.5)
        rows.append((
            n,
            f"{model.collision_probability:.3f}",
            f"{model.goodput_per_relay:.2f}",
            "yes" if model.supports_streaming(required_duty=0.8) else "no",
        ))
    contention = format_table(
        ["relays on one channel", "collision prob.", "goodput/relay",
         "streams OK?"],
        rows,
        title=(f"RF coexistence — FDM capacity {capacity} relays; "
               "shared-channel carrier sensing:"),
    )

    # --- privacy -----------------------------------------------------
    rows = []
    for d_client in (1.0, 3.0, 8.0):
        tx = minimum_tx_power_dbm(d_client, required_snr_db=30.0)
        radius = leakage_radius_m(tx, usable_snr_db=10.0)
        rows.append((
            f"{d_client:.0f}",
            f"{tx:.1f}",
            f"{received_audio_snr_db(tx, d_client):.1f}",
            f"{radius:.0f}",
        ))
    privacy = format_table(
        ["client distance (m)", "min TX power (dBm)", "client SNR (dB)",
         "leakage radius (m)"],
        rows,
        title="Privacy — power control vs eavesdropping range:",
    )
    return contention + "\n\n" + privacy, capacity


def test_ext_coexistence_privacy(benchmark, report):
    tables, capacity = run_once(benchmark, run_tables)
    report(tables)

    assert capacity > 500
    assert allocate_channels(4, 32000.0)
    # Power control shrinks leakage monotonically with client distance.
    r1 = leakage_radius_m(minimum_tx_power_dbm(1.0))
    r8 = leakage_radius_m(minimum_tx_power_dbm(8.0))
    assert r1 < r8
