"""Serving-runtime benchmark: sessions vs throughput, batched vs serial.

The tentpole claim of :mod:`repro.serving` is that stacking sessions
into one cross-session kernel call beats advancing them one at a time
— the Python-level per-call overhead is paid once per *block*, not
once per *session-block*.  This bench sweeps the fleet size over both
schedules, verifies the outputs stay bit-identical (the serving
contract), writes the sweep to ``BENCH_serving.json``, and asserts the
floor: **batched ≥ 3x serial at 64 concurrent sessions**.

Run with::

    pytest benchmarks/bench_serving.py -s
"""

import time

from _bench_utils import time_call, write_bench_json
from repro.serving import ServerConfig, SessionServer, SessionWorkload

#: Batched serving must beat serial serving by at least this much at
#: the widest fleet (the contract in docs/SERVING.md).
SERVING_SPEEDUP_FLOOR = 3.0

#: Fleet sizes swept (the floor applies to the last one).
FLEET_SIZES = (1, 8, 64)

#: Simulated seconds of audio per session.
DURATION_S = 0.25


def _drain(sessions, batched, seed=0):
    """Build a fleet and drain it; returns the ServingReport."""
    config = ServerConfig(batched=batched, max_sessions=max(sessions, 1))
    server = SessionServer(config)
    for i in range(sessions):
        server.submit(SessionWorkload.synthetic(
            f"user{i}", duration_s=DURATION_S, seed=seed + i,
            sample_rate=config.session.sample_rate))
    return server.run_until_drained()


def test_serving_throughput_sweep(report):
    """Fleet sweep, both schedules: wall times + speedups -> JSON."""
    rows = []
    for sessions in FLEET_SIZES:
        timings = {}
        digests = {}
        blocks = {}
        for schedule in ("serial", "batched"):
            timing = time_call(
                lambda s=sessions, b=(schedule == "batched"):
                _drain(s, batched=b),
                repeats=2)
            rep = timing.result
            timings[schedule] = timing.best_s
            digests[schedule] = rep.digests()
            blocks[schedule] = rep.session_blocks
        assert digests["serial"] == digests["batched"], \
            f"serving schedules disagree at {sessions} session(s)"
        rows.append({
            "sessions": sessions,
            "session_blocks": blocks["batched"],
            "serial_s": timings["serial"],
            "batched_s": timings["batched"],
            "serial_blocks_per_s": blocks["serial"] / timings["serial"],
            "batched_blocks_per_s": blocks["batched"] / timings["batched"],
            "speedup": timings["serial"] / timings["batched"],
        })

    path = write_bench_json("serving", {
        "schema": "repro.bench.serving/v1",
        "workload": f"{DURATION_S} s of white noise per session at 8 kHz, "
                    f"block 256, 224 taps",
        "serving_speedup_floor": SERVING_SPEEDUP_FLOOR,
        "rows": rows,
    })

    lines = [f"{'sessions':>8} {'serial':>9} {'batched':>9} "
             f"{'speedup':>8} {'blocks/s':>10}"]
    for row in rows:
        lines.append(
            f"{row['sessions']:>8} {row['serial_s']:>8.3f}s "
            f"{row['batched_s']:>8.3f}s {row['speedup']:>7.2f}x "
            f"{row['batched_blocks_per_s']:>10.0f}")
    report("\n".join(lines) + f"\n[written to {path}]")

    widest = rows[-1]
    assert widest["sessions"] == max(FLEET_SIZES)
    assert widest["speedup"] >= SERVING_SPEEDUP_FLOOR, \
        f"batched serving speedup {widest['speedup']:.2f}x < " \
        f"{SERVING_SPEEDUP_FLOOR}x at {widest['sessions']} sessions"


def test_serving_admission_overhead(report):
    """Submission + admission cost for a deep queue (no kernel work)."""
    from repro.serving import SessionManager

    started = time.perf_counter()
    manager = SessionManager(max_sessions=32, queue_depth=1024)
    for i in range(256):
        manager.submit(SessionWorkload.synthetic(
            f"user{i}", duration_s=0.05, seed=i))
    admitted = manager.admit(0)
    wall = time.perf_counter() - started
    assert len(admitted) == 32
    assert len(manager.pending) == 224
    report(f"256 submissions + first admission wave in {wall * 1e3:.1f} ms")
