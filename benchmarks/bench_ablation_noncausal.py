"""Ablation — non-causal taps vs causal truncation (paper §3.2).

The inverse of a non-minimum-phase channel is anti-causal; truncating it
to a causal filter leaves residual error proportional to the truncated
mass.  This bench measures the least-squares inversion residual of the
bench room's noise→relay channel as the anti-causal tap budget grows —
the quantitative version of the paper's "larger the lookahead, better
the filter inversion".
"""

import numpy as np
from _bench_utils import run_once

from repro.acoustics import truncation_error
from repro.eval.experiments import bench_scenario
from repro.eval.reporting import format_table


def run_ablation(n_past=256):
    channels = bench_scenario().build_channels()
    ir = np.trim_zeros(channels.h_nr[0].ir, "f")[:192]
    ir = ir / np.max(np.abs(ir))
    budgets = [0, 2, 4, 8, 16, 32, 64]
    points = truncation_error(ir, budgets, n_past=n_past)
    rows = [(n, f"{residual:.3f}",
             f"{20 * np.log10(max(residual, 1e-9)):.1f}")
            for n, residual in points]
    table = format_table(
        ["anti-causal taps N", "inversion residual", "residual (dB)"],
        rows,
        title="Ablation — inverse-filter residual vs anti-causal budget "
              "(wall-mounted relay channel)",
    )
    return table, points


def test_noncausal_budget(benchmark, report):
    table, points = run_once(benchmark, run_ablation)
    report(table)

    residuals = [r for __, r in points]
    # Monotone non-increasing (more future taps never hurt)...
    assert all(a >= b - 1e-9 for a, b in zip(residuals, residuals[1:]))
    # ...with a large payoff by 16 taps (2 ms at 8 kHz).
    assert residuals[4] < 0.8 * residuals[0]
