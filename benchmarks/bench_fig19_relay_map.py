"""Figure 19 — relay association map across noise-source positions."""

from _bench_utils import run_once

from repro.eval.experiments import run_fig19


def test_fig19_relay_association(benchmark, report):
    result = run_once(benchmark, run_fig19, duration_s=1.5, seed=17)
    report(result.report())

    # The paper's map: the client associates with the relay nearest the
    # source, and with none when the source is nearest the client.
    assert result.accuracy() >= 0.75
    none_cases = [k for k, v in result.expected.items() if v is None]
    assert none_cases
    assert all(result.decisions[k] is None for k in none_cases)
