"""Figure 18 — GCC-PHAT positive vs negative lookahead detection."""

from _bench_utils import run_once

from repro.eval.experiments import run_fig18


def test_fig18_gcc_phat(benchmark, report):
    result = run_once(benchmark, run_fig18, duration_s=2.0, seed=13)
    report(result.report())

    # Paper: "MUTE was able to correctly determine these cases in every
    # instance."
    assert result.correct_signs()
    lags = [m.lag_s for m in result.measured.values()]
    assert max(lags) > 2e-3      # near relay: multi-ms positive lead
    assert min(lags) < 0.0       # far relay: negative
