"""Ablation — convergence speed of the adaptation engines.

The paper's §6 mentions "enhanced filtering methods known to converge
faster" for tracking scenarios.  This bench races the library's four
engines on strongly colored input (the hard case for stochastic
gradient; speech is colored):

* NLMS — the LANC default: cheapest, slowest on colored input;
* APA (order 4) — projects away the coloration, big speedup at modest
  cost;
* RLS — near-instant convergence at O(M²);
* and the settle-time cost of plain LMS appears in
  ``bench_ablation_adaptive``'s level-robustness table.
"""

import numpy as np
from _bench_utils import run_once
from scipy import signal as sps

from repro.core import ApaFilter, LmsFilter, RlsFilter
from repro.eval.reporting import format_table


def run_race(seed=0, T=6000, pole=0.95):
    rng = np.random.default_rng(seed)
    h = rng.standard_normal(24) * 0.3
    x = sps.lfilter([1.0], [1.0, -pole], rng.standard_normal(T))
    d = np.convolve(x, h)[:T]
    threshold = 0.05 * np.sqrt(np.mean(d ** 2))

    def settle(errors):
        above = np.flatnonzero(np.abs(errors) >= threshold)
        return int(above[-1] + 1) if above.size else 0

    engines = {
        "NLMS (mu=0.5)": LmsFilter(24, mu=0.5),
        "APA order 4": ApaFilter(24, order=4, mu=0.5),
        "APA order 8": ApaFilter(24, order=8, mu=0.5),
        "RLS": RlsFilter(24),
    }
    rows = []
    settles = {}
    for label, engine in engines.items():
        result = engine.run(x, d)
        settles[label] = settle(result.error)
        rows.append((label, settles[label],
                     f"{np.sqrt(np.mean(result.error[-1000:] ** 2)):.5f}"))
    table = format_table(
        ["engine", "settle (samples to -26 dB)", "steady residual RMS"],
        rows,
        title="Ablation — adaptation engines on colored input",
    )
    return table, settles


def test_engine_race(benchmark, report):
    table, settles = run_once(benchmark, run_race)
    report(table)

    assert settles["APA order 4"] < 0.3 * settles["NLMS (mu=0.5)"]
    assert settles["RLS"] <= settles["APA order 4"]
