"""Ablation — "Why FM?" (paper §4.1).

The paper chooses analog FM because (1) RF noise corrupts amplitude more
than frequency, (2) the narrowband channel needs no equalization, and
(3) CFO reduces to a removable DC offset.  This bench quantifies the
choice: the same audio rides an FM and an AM link through the same
impaired RF channel, and the recovered-audio SNR is compared.
"""

import numpy as np
from _bench_utils import run_once

from repro.eval.reporting import format_table
from repro.signals import BandlimitedNoise
from repro.utils.units import snr_db
from repro.wireless import (
    AmDemodulator,
    AmModulator,
    FmDemodulator,
    FmModulator,
    RfChannel,
    RfChannelConfig,
)


def _recovered_snr(audio, modulator, demodulator, channel):
    recovered = demodulator.demodulate(channel.apply(
        modulator.modulate(audio)))
    margin = 400
    clean = audio[margin: audio.size - margin]
    got = recovered[margin: audio.size - margin]
    scale = np.dot(got, clean) / np.dot(clean, clean)
    return snr_db(clean, got - scale * clean)


def run_ablation(seed=3):
    # Band-limited audio keeps the comparison about the RF chain, not
    # about resampler roll-off at the audio band edge.
    audio = BandlimitedNoise(100.0, 3000.0, seed=seed,
                             level_rms=0.2).generate(1.0)
    conditions = {
        "clean": RfChannelConfig(snr_db=60.0, seed=seed),
        "20 dB RF SNR": RfChannelConfig(snr_db=20.0, seed=seed),
        "PA nonlinearity": RfChannelConfig(snr_db=60.0, pa_backoff_db=1.0,
                                           seed=seed),
        "CFO 2 kHz": RfChannelConfig(snr_db=60.0, cfo_hz=2000.0, seed=seed),
        "all impairments": RfChannelConfig(snr_db=20.0, pa_backoff_db=1.0,
                                           cfo_hz=2000.0, seed=seed),
    }
    rows = []
    results = {}
    for label, config in conditions.items():
        channel = RfChannel(config, rf_rate=96000.0)
        fm = _recovered_snr(audio, FmModulator(), FmDemodulator(), channel)
        am = _recovered_snr(audio, AmModulator(), AmDemodulator(), channel)
        rows.append((label, f"{fm:.1f}", f"{am:.1f}", f"{fm - am:+.1f}"))
        results[label] = (fm, am)
    table = format_table(
        ["RF condition", "FM audio SNR (dB)", "AM audio SNR (dB)",
         "FM advantage"],
        rows,
        title="Ablation — FM vs AM through the relay channel",
    )
    return table, results


def test_fm_vs_am(benchmark, report):
    table, results = run_once(benchmark, run_ablation)
    report(table)

    # FM must beat AM decisively under amplitude-corrupting impairments
    # (the paper's reasons 1 and 3)...
    for label in ("20 dB RF SNR", "PA nonlinearity", "all impairments"):
        fm, am = results[label]
        assert fm > am + 10.0, f"FM should win clearly under {label}"
    # ...and never lose under CFO (which both schemes tolerate — FM via
    # the DC offset, AM via envelope detection).
    fm, am = results["CFO 2 kHz"]
    assert fm >= am
