"""Figure 13 — combined speaker+microphone frequency response."""

from _bench_utils import run_once

from repro.eval.experiments import run_fig13


def test_fig13_transducer_response(benchmark, report):
    result = run_once(benchmark, run_fig13)
    report(result.report())

    # Near-zero response below 100 Hz — the cause of Figure 12's
    # low-frequency cancellation dip.
    assert result.response_at_50hz < 0.25 * result.response_at_peak
    # Peak around 0.2 in the low-kHz region, as the paper's curve shows.
    assert 0.1 < result.response_at_peak < 0.4
    assert 500.0 < result.peak_hz < 2500.0
