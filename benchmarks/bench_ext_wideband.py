"""Extension — cancellation beyond the paper's 4 kHz cap.

The §5.2 "A faster DSP will ease the problem" sentence, built: the bench
at 16 kHz with the fast-DSP budget and the block LANC engine.
"""

from _bench_utils import run_once

from repro.eval.experiments import run_wideband


def test_wideband(benchmark, report):
    result = run_once(benchmark, run_wideband, duration_s=8.0, seed=7)
    report(result.report())

    # Real cancellation in the band the paper's board cannot touch.
    assert result.band_means_db[(4000, 6000)] < -10.0
    assert result.band_means_db[(6000, 8000)] < -8.0
    # And the classic band still works.
    assert result.band_means_db[(0, 2000)] < -12.0
    assert result.broadband_db < -10.0
