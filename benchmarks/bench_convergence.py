"""Figures 7-8 — convergence timelines (hum, speech, speech+switching)."""

from _bench_utils import run_once

from repro.eval.experiments import run_convergence


def test_convergence_timelines(benchmark, report):
    result = run_once(benchmark, run_convergence, duration_s=12.0, seed=41)
    report(result.report())

    # (8a) persistent hum: converges and stays converged.
    assert result.steady_hum_rms < 0.5 * result.initial_hum_rms
    # (8b) vs (8c): predictive switching shrinks the onset spikes.
    assert result.onset_spike_switching < result.onset_spike_single
    assert result.spike_reduction_db() < -0.5
