"""Shared benchmark fixtures.

Every figure bench runs its experiment once under pytest-benchmark
(rounds=1 — these are multi-second simulations, not microbenchmarks) and
prints the same rows/series the paper's figure plots.  Run with::

    pytest benchmarks/ --benchmark-only -s

Runtime benches (``runtime_bench`` marker) measure the
:mod:`repro.runtime` layer itself — cache speedups, executor wall times
— and are **opt-in**: pass ``--runtime-bench`` or set
``REPRO_RUNTIME_BENCH=1``, e.g.::

    pytest benchmarks/bench_runtime_cache.py --runtime-bench -s
"""

from __future__ import annotations

import os

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--runtime-bench", action="store_true", default=False,
        help="run the repro.runtime benches (cache/executor timings)",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "runtime_bench: repro.runtime timing bench (opt in with "
        "--runtime-bench or REPRO_RUNTIME_BENCH=1)",
    )


def _runtime_bench_enabled(config):
    if config.getoption("--runtime-bench"):
        return True
    return os.environ.get("REPRO_RUNTIME_BENCH", "").strip().lower() in (
        "1", "true", "yes", "on")


def pytest_collection_modifyitems(config, items):
    if _runtime_bench_enabled(config):
        return
    skip = pytest.mark.skip(
        reason="runtime bench; opt in with --runtime-bench "
               "or REPRO_RUNTIME_BENCH=1")
    for item in items:
        if "runtime_bench" in item.keywords:
            item.add_marker(skip)


@pytest.fixture()
def report(capsys):
    """Print a report so it survives pytest's capture (shown with -s)."""

    def _print(text):
        with capsys.disabled():
            print()
            print(text)

    return _print
