"""Shared benchmark fixtures.

Every figure bench runs its experiment once under pytest-benchmark
(rounds=1 — these are multi-second simulations, not microbenchmarks) and
prints the same rows/series the paper's figure plots.  Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest


@pytest.fixture()
def report(capsys):
    """Print a report so it survives pytest's capture (shown with -s)."""

    def _print(text):
        with capsys.disabled():
            print()
            print(text)

    return _print
