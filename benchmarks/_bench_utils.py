"""Helpers shared by the figure benchmarks."""

from __future__ import annotations


def run_once(benchmark, fn, **kwargs):
    """Execute ``fn`` once under the benchmark timer; return its result."""
    return benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1)
