"""Helpers shared by the figure benchmarks.

Besides the pytest-benchmark shim, this module is where benches pick up
the **shared observability schema**: any bench can snapshot the metrics
the instrumented pipeline recorded (``repro.obs.metrics/v1``) and emit
them next to its figure table, so every ``bench_*.py`` speaks the same
JSON dialect as ``repro obs-report``.  See ``benchmarks/README.md``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro import obs
# The one shared timer: every bench that reports a wall time uses the
# same median-of-N/best-of-N measurement as the ``repro perf-profile``
# stage harness, so numbers in BENCH_*.json and repro.perf/v1 documents
# are directly comparable (see docs/PERFORMANCE.md).
from repro.perf.timer import Timing, time_call  # noqa: F401  (re-export)


def run_once(benchmark, fn, **kwargs):
    """Execute ``fn`` once under the benchmark timer; return its result."""
    return benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1)


def write_bench_json(name, payload):
    """Write ``BENCH_<name>.json`` next to the benchmarks; return the path.

    The standing artifact a bench leaves behind (wall times, speedups,
    metrics snapshots) so runs are comparable across commits without
    re-reading terminal output.
    """
    path = Path(__file__).resolve().parent / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, default=str) + "\n",
                    encoding="utf-8")
    return path


def metrics_snapshot():
    """The global obs metrics as a ``repro.obs.metrics/v1`` document.

    Empty (but schema-stamped) unless the bench enabled observability
    around the code it measured — see ``bench_obs_overhead.py`` for the
    pattern.
    """
    return obs.get_registry().to_dict()
