"""Microbenchmarks of the hot computational kernels.

Unlike the figure benches these are true repeated-timing benchmarks:
the LANC sample loop (the per-sample cost a real DSP must sustain), the
image-source RIR builder, GCC-PHAT, and the FM chain.
"""

import numpy as np
import pytest

from repro.acoustics import Point, Room, room_impulse_response
from repro.core import LancFilter, gcc_phat
from repro.signals import WhiteNoise
from repro.wireless import FmDemodulator, FmModulator


@pytest.fixture(scope="module")
def white_second():
    return WhiteNoise(seed=0, level_rms=0.2).generate(1.0)


def test_lanc_loop_one_second(benchmark, white_second):
    """One second of 8 kHz audio through a 64+512-tap LANC filter."""
    s = np.zeros(8)
    s[2] = 1.0
    d = np.convolve(white_second, np.array([0.0] * 12 + [0.5]))[:8000]

    def run():
        f = LancFilter(n_future=64, n_past=512, secondary_path=s, mu=0.1)
        return f.run(white_second, d)

    result = benchmark(run)
    assert np.all(np.isfinite(result.error))


def test_rir_build(benchmark):
    """Third-order image-source RIR for the bench room."""
    room = Room(6.0, 5.0, 3.0, absorption=0.3)

    ir = benchmark(room_impulse_response, room, Point(1.0, 0.8, 1.2),
                   Point(4.5, 2.5, 1.2), 8000.0)
    assert ir.size > 100


def test_gcc_phat_one_second(benchmark, white_second):
    """Relay-selection correlation over 1 s of audio."""
    ear = np.zeros_like(white_second)
    ear[40:] = white_second[:-40]

    lags, corr = benchmark(gcc_phat, white_second, ear, 8000.0)
    assert lags[np.argmax(corr)] > 0


def test_fm_roundtrip_one_second(benchmark, white_second):
    """Modulate + demodulate 1 s of audio at 96 kHz baseband."""
    mod = FmModulator()
    dem = FmDemodulator()

    def roundtrip():
        return dem.demodulate(mod.modulate(white_second))

    out = benchmark(roundtrip)
    assert out.size == white_second.size


def test_block_lanc_one_second(benchmark, white_second):
    """Block LANC on the same workload — the 'faster DSP' speed path."""
    import numpy as np

    from repro.core import BlockLancFilter

    s = np.zeros(8)
    s[2] = 1.0
    d = np.convolve(white_second, np.array([0.0] * 12 + [0.5]))[:8000]

    def run():
        f = BlockLancFilter(n_future=64, n_past=512, secondary_path=s,
                            mu=0.1, block_size=64)
        return f.run(white_second, d)

    result = benchmark(run)
    assert np.all(np.isfinite(result.error))
