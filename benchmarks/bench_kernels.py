"""Microbenchmarks of the hot computational kernels.

Unlike the figure benches these are true repeated-timing benchmarks:
the LANC sample loop (the per-sample cost a real DSP must sustain), the
image-source RIR builder, GCC-PHAT, and the FM chain.

``test_kernel_backend_sweep`` times every adaptation engine on both
kernel backends (``loop`` vs ``vector``, see ``docs/KERNELS.md``) and
writes the speedup table to ``BENCH_kernels.json``; the LANC row must
clear the 3x contract.
"""

import numpy as np
import pytest

from _bench_utils import time_call, write_bench_json
from repro.acoustics import Point, Room, room_impulse_response
from repro.core import (ApaFilter, LancFilter, LmsFilter,
                        MultiRefLancFilter, RlsFilter, StreamingLanc,
                        gcc_phat)
from repro.signals import WhiteNoise
from repro.wireless import FmDemodulator, FmModulator

#: The vector backend must beat the loop backend by at least this much
#: on the LANC sample loop (the contract in docs/KERNELS.md).
LANC_SPEEDUP_FLOOR = 3.0

#: And on the RLS walk, whose vector backend rides BLAS ``dsymv`` /
#: ``dsyr`` symmetric rank-1 updates (see docs/PERFORMANCE.md).
RLS_SPEEDUP_FLOOR = 2.0


@pytest.fixture(scope="module")
def white_second():
    return WhiteNoise(seed=0, level_rms=0.2).generate(1.0)


@pytest.mark.parametrize("backend", ["loop", "vector"])
def test_lanc_loop_one_second(benchmark, white_second, backend):
    """One second of 8 kHz audio through a 64+512-tap LANC filter."""
    s = np.zeros(8)
    s[2] = 1.0
    d = np.convolve(white_second, np.array([0.0] * 12 + [0.5]))[:8000]

    def run():
        f = LancFilter(n_future=64, n_past=512, secondary_path=s, mu=0.1,
                       kernel_backend=backend)
        return f.run(white_second, d)

    result = benchmark(run)
    assert np.all(np.isfinite(result.error))


def _sweep_workloads(x, d, s):
    """(name, make_run) per engine; make_run(backend) -> timed callable.

    Fresh filter per call — taps mutate, so a shared instance would
    time convergence from different starting points.
    """

    def lanc(backend):
        def run():
            f = LancFilter(n_future=64, n_past=512, secondary_path=s,
                           mu=0.1, kernel_backend=backend)
            return f.run(x, d).error
        return run

    def streaming(backend):
        def run():
            f = LancFilter(n_future=64, n_past=512, secondary_path=s,
                           mu=0.1, kernel_backend=backend)
            st = StreamingLanc(f)
            st.feed(np.concatenate([x, np.zeros(f.n_future)]))
            out = [st.process(d[i:i + 160]) for i in range(0, d.size, 160)]
            return np.concatenate(out)
        return run

    def lms(backend):
        def run():
            f = LmsFilter(n_taps=128, mu=0.1, kernel_backend=backend)
            return f.run(x, d).error
        return run

    def rls(backend):
        def run():
            f = RlsFilter(n_taps=48, kernel_backend=backend)
            return f.run(x, d).error
        return run

    def apa(backend):
        def run():
            f = ApaFilter(n_taps=128, order=4, mu=0.2,
                          kernel_backend=backend)
            return f.run(x, d).error
        return run

    def multiref(backend):
        def run():
            f = MultiRefLancFilter(n_futures=[32, 32], n_past=192,
                                   secondary_path=s, mu=0.1,
                                   kernel_backend=backend)
            return f.run([x, np.roll(x, 3)], d).error
        return run

    return [("lanc", lanc), ("streaminglanc", streaming), ("lms", lms),
            ("rls", rls), ("apa", apa), ("multiref", multiref)]


def test_kernel_backend_sweep(white_second, report):
    """Every engine, both backends: wall times + speedups -> JSON."""
    s = np.zeros(8)
    s[2] = 1.0
    d = np.convolve(white_second, np.array([0.0] * 12 + [0.5]))[:8000]

    rows = []
    for name, make_run in _sweep_workloads(white_second, d, s):
        timings = {}
        outputs = {}
        for backend in ("loop", "vector"):
            timing = time_call(make_run(backend), repeats=3)
            outputs[backend] = timing.result
            timings[backend] = timing.best_s
        max_dev = float(np.max(np.abs(outputs["vector"] - outputs["loop"])))
        rows.append({
            "engine": name,
            "loop_s": timings["loop"],
            "vector_s": timings["vector"],
            "speedup": timings["loop"] / timings["vector"],
            "max_abs_deviation": max_dev,
        })
        assert max_dev <= 1e-10, f"{name}: backends disagree ({max_dev})"

    path = write_bench_json("kernels", {
        "schema": "repro.bench.kernels/v1",
        "workload": "1 s of white noise at 8 kHz",
        "lanc_speedup_floor": LANC_SPEEDUP_FLOOR,
        "rls_speedup_floor": RLS_SPEEDUP_FLOOR,
        "rows": rows,
    })

    lines = [f"{'engine':<14} {'loop':>9} {'vector':>9} {'speedup':>8}"]
    for row in rows:
        lines.append(f"{row['engine']:<14} {row['loop_s']:>8.3f}s "
                     f"{row['vector_s']:>8.3f}s {row['speedup']:>7.2f}x")
    report("\n".join(lines) + f"\n[written to {path}]")

    by_engine = {row["engine"]: row for row in rows}
    assert by_engine["lanc"]["speedup"] >= LANC_SPEEDUP_FLOOR, \
        f"LANC vector speedup {by_engine['lanc']['speedup']:.2f}x < " \
        f"{LANC_SPEEDUP_FLOOR}x"
    assert by_engine["rls"]["speedup"] >= RLS_SPEEDUP_FLOOR, \
        f"RLS vector speedup {by_engine['rls']['speedup']:.2f}x < " \
        f"{RLS_SPEEDUP_FLOOR}x"


def test_rir_build(benchmark):
    """Third-order image-source RIR for the bench room."""
    room = Room(6.0, 5.0, 3.0, absorption=0.3)

    ir = benchmark(room_impulse_response, room, Point(1.0, 0.8, 1.2),
                   Point(4.5, 2.5, 1.2), 8000.0)
    assert ir.size > 100


def test_gcc_phat_one_second(benchmark, white_second):
    """Relay-selection correlation over 1 s of audio."""
    ear = np.zeros_like(white_second)
    ear[40:] = white_second[:-40]

    lags, corr = benchmark(gcc_phat, white_second, ear, 8000.0)
    assert lags[np.argmax(corr)] > 0


def test_fm_roundtrip_one_second(benchmark, white_second):
    """Modulate + demodulate 1 s of audio at 96 kHz baseband."""
    mod = FmModulator()
    dem = FmDemodulator()

    def roundtrip():
        return dem.demodulate(mod.modulate(white_second))

    out = benchmark(roundtrip)
    assert out.size == white_second.size


def test_block_lanc_one_second(benchmark, white_second):
    """Block LANC on the same workload — the 'faster DSP' speed path."""
    import numpy as np

    from repro.core import BlockLancFilter

    s = np.zeros(8)
    s[2] = 1.0
    d = np.convolve(white_second, np.array([0.0] * 12 + [0.5]))[:8000]

    def run():
        f = BlockLancFilter(n_future=64, n_past=512, secondary_path=s,
                            mu=0.1, block_size=64)
        return f.run(white_second, d)

    result = benchmark(run)
    assert np.all(np.isfinite(result.error))
