"""Figure 16 — cancellation vs lookahead (delayed-line-buffer sweep)."""

from _bench_utils import run_once

from repro.eval.experiments import run_fig16


def test_fig16_lookahead_sweep(benchmark, report):
    result = run_once(benchmark, run_fig16, duration_s=8.0, seed=7)
    report(result.report())

    means = result.monotone_improvement()
    # The Eq.-3 lower bound (zero anti-causal taps) is clearly the worst
    # setting, and the largest extra lookahead is clearly better.
    assert means[0] > means[-1] + 2.0
    # Future taps grow along the sweep exactly as injected delay shrinks.
    taps = list(result.future_taps.values())
    assert taps == sorted(taps)
    assert taps[0] == 0
