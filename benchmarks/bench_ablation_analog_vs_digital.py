"""Ablation — analog forwarding vs digital packet relays (paper §4.1).

"MUTE embraces an analog design to bypass delays from digitization and
processing."  This bench quantifies the claim: the same bench scene and
noise, forwarded by (a) the analog FM relay (~0.1 ms group delay),
(b) an aggressive 2 ms-frame digital link, and (c) a Bluetooth-class
10 ms-frame link.  Every millisecond of relay latency is subtracted from
the lookahead budget, shrinking LANC's anti-causal tap count — and past
the acoustic lead, the system cannot run at all.
"""

import numpy as np
from _bench_utils import run_once

from repro.core import MuteConfig, MuteSystem
from repro.errors import LookaheadError
from repro.eval.experiments import bench_scenario
from repro.eval.reporting import format_table
from repro.signals import WhiteNoise
from repro.wireless import AnalogRelay
from repro.wireless.digital import (
    bluetooth_like_relay,
    low_latency_digital_relay,
)


def run_ablation(duration_s=8.0, seed=7):
    scenario = bench_scenario()
    fs = scenario.sample_rate
    noise = WhiteNoise(sample_rate=fs, level_rms=0.1, seed=seed) \
        .generate(duration_s)

    relays = {
        "analog FM (the paper's)": AnalogRelay(seed=seed,
                                               mic_noise_rms=5e-4),
        "digital, 2 ms frames": low_latency_digital_relay(fs),
        "digital, 10 ms frames (BT-class)": bluetooth_like_relay(fs),
    }
    rows = []
    outcomes = {}
    for label, relay in relays.items():
        system = MuteSystem(scenario, MuteConfig(
            relay=relay, mu=0.1, n_past=512, n_future=64,
            probe_noise_rms=0.002))
        budget = system.lookahead_budget
        try:
            run = system.run(noise)
            mean_db = run.mean_cancellation_db(settle_fraction=0.5)
            rows.append((label,
                         f"{relay.latency_samples / fs * 1e3:.2f}",
                         f"{budget.usable_lookahead_s * 1e3:.2f}",
                         run.n_future_used,
                         f"{mean_db:.1f}"))
            outcomes[label] = (run.n_future_used, mean_db)
        except LookaheadError:
            rows.append((label,
                         f"{relay.latency_samples / fs * 1e3:.2f}",
                         f"{budget.usable_lookahead_s * 1e3:.2f}",
                         "-", "cannot run"))
            outcomes[label] = (0, np.inf)
    table = format_table(
        ["relay", "relay latency (ms)", "usable lookahead (ms)",
         "N future taps", "cancellation (dB)"],
        rows,
        title="Ablation — analog vs digital forwarding",
    )
    return table, outcomes


def test_analog_vs_digital(benchmark, report):
    table, outcomes = run_once(benchmark, run_ablation)
    report(table)

    analog_n, analog_db = outcomes["analog FM (the paper's)"]
    fast_n, fast_db = outcomes["digital, 2 ms frames"]
    bt_n, bt_db = outcomes["digital, 10 ms frames (BT-class)"]
    # Latency strictly eats anti-causal taps...
    assert analog_n > fast_n > bt_n
    # ...and the Bluetooth-class link is clearly worse than analog.
    assert bt_db > analog_db + 2.0 or not np.isfinite(bt_db)
