"""Figure 14 — MUTE_Hollow vs Bose_Overall on four real-world sounds."""

from _bench_utils import run_once

from repro.eval.experiments import run_fig14


def test_fig14_sound_types(benchmark, report):
    result = run_once(benchmark, run_fig14, duration_s=8.0)
    report(result.report())

    assert set(result.panels) == {"male voice", "female voice",
                                  "construction", "music"}
    for sound in result.panels:
        # MUTE clearly cancels on every workload and stays in
        # Bose_Overall's vicinity (paper: within 0.9 dB; our synthetic
        # sources hop spectra faster than real recordings).
        assert result.panels[sound]["MUTE_Hollow"].mean_db() < -6.0
        assert result.mean_gap_db(sound) < 10.0
