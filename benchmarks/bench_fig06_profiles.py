"""Figure 6 — the profile spectra that make predictive switching work."""

from _bench_utils import run_once

from repro.eval.experiments import run_fig6


def test_fig6_profile_spectra(benchmark, report):
    result = run_once(benchmark, run_fig6, duration_s=16.0, seed=31)
    report(result.report())

    # The two profiles are spectrally distinct (the figure's point)...
    assert result.signature_distance > 0.3
    # ...and separable online from short windows by the classifier.
    assert result.classifier_accuracy > 0.6
