"""Extension — the §4.3 edge service under a compute budget.

One server adapting for many users: subscriber count vs per-client
cancellation at fixed adaptation capacity.
"""

from _bench_utils import run_once

from repro.eval.experiments import run_edge


def test_edge_service(benchmark, report):
    result = run_once(benchmark, run_edge, duration_s=6.0, seed=9)
    report(result.report())

    # Within capacity: full duty.
    assert result.by_count[2].adaptation_duty == 1.0
    # Over capacity: duty shrinks and mean cancellation degrades
    # gracefully rather than collapsing.
    assert result.by_count[6].adaptation_duty < 0.4
    assert 0.5 < result.degradation_db() < 10.0
    assert result.by_count[6].mean_cancellation_db() < -8.0
