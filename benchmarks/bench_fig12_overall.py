"""Figure 12 — overall cancellation, four schemes, white noise.

Regenerates the paper's headline figure: Bose_Active (<1 kHz only),
Bose_Overall (≈ −15 dB), MUTE_Hollow (within ~1 dB of Bose_Overall,
open ear), MUTE+Passive (several dB better).
"""

from _bench_utils import run_once

from repro.eval.experiments import run_fig12


def test_fig12_overall_cancellation(benchmark, report):
    result = run_once(benchmark, run_fig12, duration_s=8.0, seed=7)
    report(result.report())

    bose_active = result.curves["Bose_Active"]
    assert bose_active.mean_db(0, 800) < -8.0        # active works low
    assert bose_active.mean_db(2500, 4000) > -1.0    # and fails high
    assert result.curves["MUTE_Hollow"].mean_db(1000, 3000) < -10.0
    assert result.mute_vs_bose_active_sub1k_db < -3.0   # paper: -6.7
    assert abs(result.mute_hollow_vs_bose_overall_db) < 5.0  # paper: +0.9
    assert result.mute_passive_vs_bose_overall_db < -5.0     # paper: -8.9
