"""Conventional-ANC baselines (the Bose models)."""

import numpy as np
import pytest

from repro.core import BoseHeadphone, ConventionalAncModel
from repro.core.baselines import simulate_delay_limited_fxlms
from repro.errors import ConfigurationError
from repro.signals import MachineHum, WhiteNoise


class TestConventionalAncModel:
    def test_deep_cancellation_at_low_frequency(self):
        model = ConventionalAncModel(delay_error_s=90e-6)
        assert model.cancellation_db(100.0) < -15.0

    def test_useless_above_crossover(self):
        model = ConventionalAncModel(delay_error_s=90e-6)
        # 2|sin(pi f tau)| reaches 1 at f = 1/(6 tau) ≈ 1.85 kHz.
        assert model.cancellation_db(2500.0) == pytest.approx(0.0, abs=0.1)

    def test_floor_binds_at_dc(self):
        model = ConventionalAncModel(delay_error_s=90e-6, floor_db=-24.0)
        assert model.cancellation_db(10.0) == pytest.approx(-24.0, abs=0.5)

    def test_longer_delay_worse(self):
        fast = ConventionalAncModel(delay_error_s=60e-6)
        slow = ConventionalAncModel(delay_error_s=150e-6)
        assert slow.cancellation_db(800.0) > fast.cancellation_db(800.0)

    def test_never_amplifies(self):
        model = ConventionalAncModel(delay_error_s=200e-6)
        freqs = np.linspace(10.0, 4000.0, 256)
        assert np.all(model.cancellation_db(freqs) <= 1e-9)

    def test_explicit_cutoff(self):
        model = ConventionalAncModel(delay_error_s=60e-6,
                                     max_cancel_hz=1000.0)
        assert model.cancellation_db(1500.0) == 0.0
        assert model.cancellation_db(500.0) < -5.0

    def test_residual_fir_matches_curve(self):
        model = ConventionalAncModel()
        fir = model.residual_fir(8000.0)
        from scipy import signal as sps

        w, h = sps.freqz(fir, worN=256, fs=8000.0)
        target = model.residual_gain(w)
        band = (w > 200) & (w < 3600)
        np.testing.assert_allclose(np.abs(h)[band], target[band], atol=0.05)

    def test_residual_waveform_attenuates_low_band(self):
        model = ConventionalAncModel()
        t = np.arange(8000) / 8000.0
        low = np.sin(2 * np.pi * 200.0 * t)
        out = model.residual_waveform(low, 8000.0)
        assert (np.sqrt(np.mean(out[500:-500] ** 2))
                < 0.3 * np.sqrt(np.mean(low ** 2)))

    def test_rejects_positive_floor(self):
        with pytest.raises(ConfigurationError):
            ConventionalAncModel(floor_db=3.0)


class TestBoseHeadphone:
    def test_overall_composition(self):
        bose = BoseHeadphone()
        freqs = np.array([200.0, 2000.0])
        overall = bose.overall_cancellation_db(freqs)
        active = bose.active.cancellation_db(freqs)
        passive = -bose.earcup.insertion_loss_db(freqs)
        np.testing.assert_allclose(overall, active + passive)

    def test_active_dominates_low_passive_dominates_high(self):
        bose = BoseHeadphone()
        assert (abs(bose.active.cancellation_db(150.0))
                > bose.earcup.insertion_loss_db(150.0))
        assert (abs(bose.active.cancellation_db(3000.0))
                < bose.earcup.insertion_loss_db(3000.0))

    def test_mean_overall_in_paper_range(self):
        bose = BoseHeadphone()
        mean = bose.mean_overall_cancellation_db()
        assert -22.0 < mean < -10.0   # paper: ≈ −15 dB

    def test_residual_waveform_passive_only(self):
        bose = BoseHeadphone()
        x = WhiteNoise(seed=1, level_rms=0.2).generate(1.0)
        passive = bose.residual_waveform(x, active=False)
        full = bose.residual_waveform(x, active=True)
        assert np.mean(full ** 2) < np.mean(passive ** 2)

    def test_requires_earcup_type(self):
        with pytest.raises(ConfigurationError):
            BoseHeadphone(earcup="foam")


class TestDelayLimitedSimulation:
    """Time-domain cross-check of the analytic model's regimes."""

    def test_predictable_hum_cancelled_at_low_freq(self):
        # Periodic noise is predictable: even a late filter cancels it.
        fs = 48000.0
        hum = MachineHum(fundamental=120.0, n_harmonics=3,
                         sample_rate=fs, level_rms=0.2, wobble_depth=0.0,
                         seed=1).generate(1.0)
        freqs, spec = simulate_delay_limited_fxlms(hum, fs,
                                                   delay_error_s=90e-6,
                                                   n_taps=256)
        low = spec[(freqs > 80) & (freqs < 500)].mean()
        assert low < -8.0

    def test_unpredictable_white_noise_not_cancelled(self):
        # The paper's core motivation: wide-band unpredictable sound
        # defeats a conventional ANC pipeline that has missed its
        # deadline.
        fs = 48000.0
        noise = WhiteNoise(sample_rate=fs, level_rms=0.2, seed=2) \
            .generate(1.0)
        freqs, spec = simulate_delay_limited_fxlms(noise, fs,
                                                   delay_error_s=200e-6,
                                                   n_taps=128)
        overall = spec[(freqs > 500) & (freqs < 20000)].mean()
        assert overall > -3.0   # essentially no cancellation

    def test_rejects_negative_delay(self):
        with pytest.raises(ConfigurationError):
            simulate_delay_limited_fxlms(np.ones(2048), 48000.0,
                                         delay_error_s=-1.0)
