"""The kernel layer's contract: backends agree, selection resolves.

Three families of guarantees (see ``docs/KERNELS.md``):

* **loop is the reference** — for the engines that still expose a
  per-sample ``step()`` (LMS/RLS/APA), a ``run()`` through the loop
  backend is *bit-identical* to stepping sample by sample;
* **vector matches loop to ≤ 1e-10** on every engine, property-tested
  over random scenes, tap geometries and block schedules;
* **selection** — explicit argument beats ``REPRO_KERNEL_BACKEND``
  beats the ``loop`` default, and unknown names fail loudly everywhere
  a backend can be named.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MuteConfig
from repro.core.adaptive import kernels
from repro.core.adaptive.apa import ApaFilter
from repro.core.adaptive.kernels import KernelState
from repro.core.adaptive.lanc import LancFilter, StreamingLanc
from repro.core.adaptive.lms import LmsFilter
from repro.core.adaptive.multiref import MultiRefLancFilter
from repro.core.adaptive.rls import RlsFilter
from repro.errors import ConfigurationError, ConvergenceError

TOL = 1e-10
S_HAT = np.array([0.7, 0.25, -0.1])
S_TRUE = np.array([0.65, 0.3, -0.12])


def _scene(seed, T=1500):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(T)
    d = -np.convolve(x, np.array([0.4, 0.2, 0.1]))[:T]
    return x, d


def _pair(engine_cls, *args, **kwargs):
    """The same engine twice, pinned to each backend."""
    return (engine_cls(*args, kernel_backend="loop", **kwargs),
            engine_cls(*args, kernel_backend="vector", **kwargs))


class TestBackendEquivalence:
    """vector matches loop to ≤ 1e-10 on every engine."""

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=1000),
           st.integers(min_value=0, max_value=12),
           st.integers(min_value=1, max_value=48))
    def test_lanc_batch(self, seed, n_future, n_past):
        x, d = _scene(seed)
        lo, ve = _pair(LancFilter, n_future, n_past, S_HAT, mu=0.3)
        ra = lo.run(x, d, secondary_path_true=S_TRUE)
        rb = ve.run(x, d, secondary_path_true=S_TRUE)
        np.testing.assert_allclose(rb.error, ra.error, atol=TOL, rtol=0)
        np.testing.assert_allclose(rb.output, ra.output, atol=TOL, rtol=0)
        np.testing.assert_allclose(rb.taps, ra.taps, atol=TOL, rtol=0)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=1000))
    def test_lanc_batch_frozen_and_masked(self, seed):
        x, d = _scene(seed)
        rng = np.random.default_rng(seed + 1)
        mask = rng.random(x.size) > 0.4
        warm = rng.standard_normal(4 + 24) * 0.01
        for kwargs in ({"adapt": False}, {"adapt_mask": mask}):
            lo, ve = _pair(LancFilter, 4, 24, S_HAT, mu=0.3)
            lo.set_taps(warm)
            ve.set_taps(warm)
            ra = lo.run(x, d, secondary_path_true=S_TRUE, **kwargs)
            rb = ve.run(x, d, secondary_path_true=S_TRUE, **kwargs)
            np.testing.assert_allclose(rb.error, ra.error, atol=TOL,
                                       rtol=0)
            np.testing.assert_allclose(rb.taps, ra.taps, atol=TOL, rtol=0)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=1000),
           st.integers(min_value=1, max_value=300))
    def test_streaming_blocks(self, seed, block):
        x, d = _scene(seed)
        n_future = 6
        streams = []
        for backend in ("loop", "vector"):
            f = LancFilter(n_future, 32, S_HAT, mu=0.3,
                           kernel_backend=backend)
            stream = StreamingLanc(f, secondary_path_true=S_TRUE)
            stream.feed(np.concatenate([x, np.zeros(n_future)]))
            for t0 in range(0, x.size, block):
                stream.process(d[t0: t0 + block])
            streams.append(stream)
        np.testing.assert_allclose(streams[1].error_signal(),
                                   streams[0].error_signal(),
                                   atol=TOL, rtol=0)
        np.testing.assert_allclose(streams[1].filter.taps,
                                   streams[0].filter.taps,
                                   atol=TOL, rtol=0)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=1000),
           st.integers(min_value=1, max_value=32),
           st.booleans())
    def test_lms(self, seed, n_taps, normalized):
        x, d = _scene(seed, T=800)
        lo, ve = _pair(LmsFilter, n_taps, mu=0.2 if normalized else 0.01,
                       normalized=normalized)
        ra, rb = lo.run(x, d), ve.run(x, d)
        np.testing.assert_allclose(rb.error, ra.error, atol=TOL, rtol=0)
        np.testing.assert_allclose(rb.taps, ra.taps, atol=TOL, rtol=0)

    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=0, max_value=1000),
           st.integers(min_value=1, max_value=24))
    def test_rls(self, seed, n_taps):
        x, d = _scene(seed, T=600)
        lo, ve = _pair(RlsFilter, n_taps, forgetting=0.995)
        ra, rb = lo.run(x, d), ve.run(x, d)
        np.testing.assert_allclose(rb.error, ra.error, atol=TOL, rtol=0)
        np.testing.assert_allclose(rb.taps, ra.taps, atol=TOL, rtol=0)
        np.testing.assert_allclose(ve._P, lo._P, atol=TOL, rtol=0)

    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=0, max_value=1000),
           st.integers(min_value=1, max_value=6))
    def test_apa(self, seed, order):
        x, d = _scene(seed, T=600)
        lo, ve = _pair(ApaFilter, 16, order=order, mu=0.4)
        ra, rb = lo.run(x, d), ve.run(x, d)
        np.testing.assert_allclose(rb.error, ra.error, atol=TOL, rtol=0)
        np.testing.assert_allclose(rb.taps, ra.taps, atol=TOL, rtol=0)
        np.testing.assert_allclose(ve._U, lo._U, atol=TOL, rtol=0)
        np.testing.assert_allclose(ve._d, lo._d, atol=TOL, rtol=0)

    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=0, max_value=1000),
           st.integers(min_value=0, max_value=8),
           st.integers(min_value=0, max_value=8))
    def test_multiref(self, seed, nf_a, nf_b):
        x1, d = _scene(seed, T=900)
        x2, __ = _scene(seed + 7, T=900)
        lo, ve = _pair(MultiRefLancFilter, [nf_a, nf_b], 20, S_HAT,
                       mu=0.2)
        ra = lo.run([x1, x2], d, secondary_path_true=S_TRUE)
        rb = ve.run([x1, x2], d, secondary_path_true=S_TRUE)
        np.testing.assert_allclose(rb.error, ra.error, atol=TOL, rtol=0)
        np.testing.assert_allclose(rb.taps, ra.taps, atol=TOL, rtol=0)

    def test_vector_also_diverges(self):
        x, d = _scene(0, T=2000)
        for backend in ("loop", "vector"):
            f = LmsFilter(8, mu=5.0, normalized=False,
                          kernel_backend=backend)
            with pytest.raises(ConvergenceError):
                f.run(x, 10.0 * d)


class TestLoopIsReference:
    """run() through the loop backend ≡ the engines' per-sample step()."""

    def test_lms_run_matches_step(self):
        x, d = _scene(3, T=500)
        a = LmsFilter(12, mu=0.3, kernel_backend="loop")
        ra = a.run(x, d)
        b = LmsFilter(12, mu=0.3)
        stepped = np.array([b.step(x[t], d[t])[1] for t in range(x.size)])
        np.testing.assert_array_equal(ra.error, stepped)
        np.testing.assert_array_equal(a.taps, b.taps)

    def test_rls_run_matches_step(self):
        x, d = _scene(4, T=400)
        a = RlsFilter(10, kernel_backend="loop")
        ra = a.run(x, d)
        b = RlsFilter(10)
        stepped = np.array([b.step(x[t], d[t])[1] for t in range(x.size)])
        np.testing.assert_array_equal(ra.error, stepped)
        np.testing.assert_array_equal(a.taps, b.taps)
        np.testing.assert_array_equal(a._P, b._P)

    def test_apa_run_matches_step(self):
        x, d = _scene(5, T=400)
        a = ApaFilter(10, order=3, kernel_backend="loop")
        ra = a.run(x, d)
        b = ApaFilter(10, order=3)
        stepped = np.array([b.step(x[t], d[t])[1] for t in range(x.size)])
        np.testing.assert_array_equal(ra.error, stepped)
        np.testing.assert_array_equal(a.taps, b.taps)


class TestStreamingEdgeCases:
    def _stream(self, backend="loop", n_future=4, n_past=16):
        f = LancFilter(n_future, n_past, S_HAT, mu=0.2,
                       kernel_backend=backend)
        return StreamingLanc(f, secondary_path_true=S_TRUE)

    def test_underrun_error_message(self):
        x, d = _scene(0, T=200)
        for backend in ("loop", "vector"):
            stream = self._stream(backend)
            stream.feed(x[:100])
            with pytest.raises(ConfigurationError,
                               match=r"reference underrun: need 104 fed "
                                     r"samples, have 100"):
                stream.process(d[:100])
            # Nothing was processed: time did not advance.
            assert stream.time == 0
            stream.process(d[:96])
            assert stream.time == 96

    def test_peek_future_past_fed_horizon(self):
        x, __ = _scene(1, T=50)
        stream = self._stream()
        stream.feed(x)
        np.testing.assert_array_equal(stream.peek_future(20), x[:20])
        # Asking beyond what was fed returns only what exists.
        assert stream.peek_future(80).size == 50
        np.testing.assert_array_equal(stream.peek_future(80), x)
        stream.process(np.zeros(30))
        np.testing.assert_array_equal(stream.peek_future(80), x[30:])

    def test_inactive_ringing_equivalent_across_backends(self):
        # Converge, then mute the speaker: the anti-noise already in
        # flight must ring through s_true identically on both backends.
        x, d = _scene(2, T=900)
        tails = []
        for backend in ("loop", "vector"):
            stream = self._stream(backend)
            stream.feed(x)
            stream.process(d[:600])
            tails.append(stream.process(d[600:850], active=False))
        np.testing.assert_allclose(tails[1], tails[0], atol=TOL, rtol=0)
        # The first s_len-1 muted samples still carry ringing; after
        # that the residual is exactly the disturbance.
        s_len = S_TRUE.size
        assert not np.array_equal(tails[0][:s_len - 1], d[600:600 + s_len - 1])
        np.testing.assert_array_equal(tails[0][s_len - 1:],
                                      d[600 + s_len - 1: 850])


class TestBackendSelection:
    def test_default_is_loop(self, monkeypatch):
        monkeypatch.delenv(kernels.ENV_VAR, raising=False)
        assert kernels.resolve_backend_name() == "loop"

    def test_env_var_overrides_default(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "vector")
        assert kernels.resolve_backend_name() == "vector"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "vector")
        assert kernels.resolve_backend_name("loop") == "loop"

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown kernel"):
            kernels.resolve_backend_name("numba")

    def test_engines_validate_backend_eagerly(self):
        for build in (
            lambda: LancFilter(2, 8, S_HAT, kernel_backend="nope"),
            lambda: LmsFilter(8, kernel_backend="nope"),
            lambda: RlsFilter(8, kernel_backend="nope"),
            lambda: ApaFilter(8, kernel_backend="nope"),
            lambda: MultiRefLancFilter([2], 8, S_HAT,
                                       kernel_backend="nope"),
            lambda: MuteConfig(kernel_backend="nope"),
        ):
            with pytest.raises(ConfigurationError):
                build()

    def test_env_var_reaches_engine(self, monkeypatch):
        x, d = _scene(6, T=400)
        monkeypatch.setenv(kernels.ENV_VAR, "vector")
        via_env = LancFilter(4, 16, S_HAT, mu=0.3).run(x, d)
        monkeypatch.delenv(kernels.ENV_VAR)
        explicit = LancFilter(4, 16, S_HAT, mu=0.3,
                              kernel_backend="vector").run(x, d)
        np.testing.assert_array_equal(via_env.error, explicit.error)

    def test_available_backends(self):
        assert kernels.available_backends() == ("loop", "vector")


class TestKernelState:
    def test_batch_windows_match_convention(self):
        x = np.arange(10.0)
        state = KernelState.batch(x, 2, 3, np.array([1.0]))
        # window[i] = x(t + n_future - i), zeros outside the signal.
        np.testing.assert_array_equal(state.window(4),
                                      np.array([6., 5., 4., 3., 2.]))
        np.testing.assert_array_equal(state.window(0),
                                      np.array([2., 1., 0., 0., 0.]))
        np.testing.assert_array_equal(state.window(9),
                                      np.array([0., 0., 9., 8., 7.]))

    def test_streaming_state_rejects_batch_accessors(self):
        state = KernelState.streaming(2, 3, S_HAT)
        with pytest.raises(ConfigurationError):
            state.window(0)
        batch = KernelState.batch(np.ones(8), 2, 3, S_HAT)
        with pytest.raises(ConfigurationError):
            batch.extend(np.ones(4))

    def test_streaming_filtered_reference_matches_batch(self):
        x, __ = _scene(8, T=300)
        batch = KernelState.batch(x, 2, 8, S_HAT)
        stream = KernelState.streaming(2, 8, S_HAT)
        for t0 in range(0, 300, 37):
            stream.extend(x[t0: t0 + 37])
        assert stream.fed() == 300
        np.testing.assert_allclose(stream.xf, batch.xf, atol=1e-12)
