"""Converters, DSP boards, transducers, earcups."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hardware import (
    Adc,
    Dac,
    DspBoard,
    PassiveEarcup,
    bose_qc35_earcup,
    cheap_transducer,
    fast_dsp,
    flat_transducer,
    headphone_dsp,
    no_earcup,
    quantize,
    tms320c6713,
)
from repro.hardware.dsp_board import HEADPHONE_ACOUSTIC_BUDGET_S
from repro.signals import WhiteNoise
from repro.utils.units import snr_db


class TestQuantize:
    def test_idempotent(self):
        x = np.linspace(-0.9, 0.9, 101)
        once = quantize(x, 8)
        twice = quantize(once, 8)
        np.testing.assert_array_equal(once, twice)

    def test_step_size(self):
        x = np.array([0.0, 1.0 / 128.0])
        out = quantize(x, 8, full_scale=1.0)
        assert out[1] - out[0] == pytest.approx(1.0 / 128.0)

    def test_clipping(self):
        out = quantize(np.array([5.0, -5.0]), 8, full_scale=1.0)
        assert out[0] <= 1.0
        assert out[1] == -1.0

    def test_16bit_noise_floor(self):
        x = WhiteNoise(seed=0, level_rms=0.25).generate(1.0)
        q = quantize(x, 16, full_scale=4.0)
        assert snr_db(x, q - x) > 70.0

    def test_rejects_bad_bits(self):
        with pytest.raises(ConfigurationError):
            quantize(np.zeros(4), 0)


class TestConverters:
    def test_adc_delay(self):
        adc = Adc(latency_s=3 / 8000.0, bits=None)
        x = np.arange(10, dtype=float)
        out = adc.convert(x)
        np.testing.assert_array_equal(out[3:], x[:7])

    def test_adc_quantizes(self):
        adc = Adc(latency_s=0.0, bits=4, full_scale=1.0)
        out = adc.convert(np.array([0.03, 0.6]))
        assert set(np.round(out / (1 / 8)) * (1 / 8)) == set(out)

    def test_dac_is_adc_subtype(self):
        assert isinstance(Dac(), Adc)


class TestDspBoard:
    def test_total_latency(self):
        board = DspBoard(adc_delay_s=1e-3, processing_delay_s=2e-3,
                         dac_delay_s=3e-3, speaker_delay_s=4e-3)
        assert board.total_latency_s == pytest.approx(10e-3)

    def test_eq3_met_and_missed(self):
        board = tms320c6713()
        assert board.meets_deadline(8.5e-3)
        assert not board.meets_deadline(1e-3)

    def test_headphone_misses_30us_budget(self):
        board = headphone_dsp()
        assert not board.meets_deadline(HEADPHONE_ACOUSTIC_BUDGET_S)
        # The paper's "easily 3x more than this time budget".
        assert board.total_latency_s / HEADPHONE_ACOUSTIC_BUDGET_S >= 2.5

    def test_playback_lag(self):
        board = headphone_dsp()
        lag = board.effective_playback_lag_s(HEADPHONE_ACOUSTIC_BUDGET_S)
        assert lag == pytest.approx(board.total_latency_s - 30e-6)

    def test_lag_zero_with_lookahead(self):
        assert tms320c6713().effective_playback_lag_s(8e-3) == 0.0

    def test_sample_rate_cap(self):
        with pytest.raises(ConfigurationError):
            tms320c6713().total_latency_samples(48000.0)

    def test_fast_dsp_runs_48k(self):
        assert fast_dsp().total_latency_samples(48000.0) > 0

    def test_rejects_negative_delay(self):
        with pytest.raises(ConfigurationError):
            DspBoard(adc_delay_s=-1.0)


class TestTransducers:
    def test_low_frequency_weakness(self):
        t = cheap_transducer()
        assert t.magnitude(50.0) < 0.25 * t.magnitude(1000.0)

    def test_peak_in_mid_band(self):
        t = cheap_transducer()
        freqs, resp = t.response_table(n_points=256)
        peak = freqs[np.argmax(resp)]
        assert 500.0 < peak < 2500.0

    def test_gain_cap(self):
        t = cheap_transducer()
        assert np.max(t.magnitude(np.linspace(10, 4000, 200))) < 0.4

    def test_apply_time_aligned(self):
        t = cheap_transducer()
        # Broadband probe: a 1000 Hz tone at 8 kHz has an 8-sample
        # period, so |corr| at lag ±4 ties lag 0 exactly and the argmax
        # would hinge on 1e-16 rounding.  Noise has no such degeneracy.
        rng = np.random.default_rng(0)
        x = rng.standard_normal(4000)
        y = t.apply(x)
        # Correlation peak at zero lag (linear-phase delay removed).
        sl = slice(500, 3500)
        lags = np.arange(-5, 6)
        corrs = [np.dot(y[sl], np.roll(x, lag)[sl]) for lag in lags]
        assert lags[int(np.argmax(np.abs(corrs)))] == 0

    def test_flat_transducer_flatness(self):
        t = flat_transducer()
        mags = t.magnitude(np.linspace(100, 3800, 64))
        assert np.ptp(20 * np.log10(mags)) < 3.0

    def test_rejects_bad_band(self):
        with pytest.raises(ConfigurationError):
            cheap_transducer().__class__(lowcut_hz=2000.0, highcut_hz=100.0)


class TestPassiveEarcup:
    def test_insertion_loss_monotone(self):
        cup = bose_qc35_earcup()
        il = cup.insertion_loss_db(np.array([100.0, 1000.0, 4000.0]))
        assert il[0] < il[1] < il[2]

    def test_apply_attenuates_high_band(self):
        cup = bose_qc35_earcup()
        x = np.sin(2 * np.pi * 3000.0 * np.arange(8000) / 8000.0)
        y = cup.apply(x)
        atten_db = 20 * np.log10(np.sqrt(np.mean(y[500:-500] ** 2))
                                 / np.sqrt(np.mean(x[500:-500] ** 2)))
        expected = -cup.insertion_loss_db(3000.0)
        assert atten_db == pytest.approx(expected, abs=2.0)

    def test_no_earcup_transparent(self):
        cup = no_earcup()
        x = WhiteNoise(seed=1, level_rms=0.2).generate(0.5)
        y = cup.apply(x)
        assert snr_db(x[200:-200], y[200: x.size - 200] - x[200:-200]) > 30.0

    def test_mean_insertion_loss(self):
        cup = bose_qc35_earcup()
        mean = cup.mean_insertion_loss_db()
        assert 8.0 < mean < 18.0

    def test_rejects_inverted_losses(self):
        with pytest.raises(ConfigurationError):
            PassiveEarcup(il_low_db=10.0, il_high_db=5.0)
