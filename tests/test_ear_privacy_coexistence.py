"""Ear-canal coupling, privacy controls, RF coexistence."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hardware import EarCanalCoupling
from repro.signals import Tone, WhiteNoise
from repro.utils.units import snr_db
from repro.wireless import (
    CarrierSenseModel,
    ScramblingCodec,
    allocate_channels,
    leakage_radius_m,
    max_colocated_relays,
    minimum_tx_power_dbm,
    received_audio_snr_db,
)


class TestEarCanalCoupling:
    def test_canal_resonance_boosts(self):
        ear = EarCanalCoupling()
        tone = Tone(2700.0, level_rms=0.2).generate(1.0)
        at_drum = ear.ambient_to_drum(tone)
        gain_db = 20 * np.log10(np.sqrt(np.mean(at_drum[500:-500] ** 2))
                                / np.sqrt(np.mean(tone[500:-500] ** 2)))
        assert gain_db > 4.0

    def test_perfect_mic_cancellation_leaks_at_drum(self):
        ear = EarCanalCoupling(mismatch_delay_s=35e-6)
        ambient = WhiteNoise(seed=1, level_rms=0.2).generate(1.0)
        anti = -ambient          # perfect cancellation at the mic
        drum = ear.drum_pressure(ambient, anti)
        # Residual exists and grows toward high frequency.
        assert np.sqrt(np.mean(drum ** 2)) > 1e-3

    def test_calibrated_coupling_cancels_at_drum(self):
        ear = EarCanalCoupling().calibrated()
        ambient = WhiteNoise(seed=1, level_rms=0.2).generate(1.0)
        drum = ear.drum_pressure(ambient, -ambient)
        margin = 200
        assert np.sqrt(np.mean(drum[margin:-margin] ** 2)) < 1e-6

    def test_mismatch_residual_grows_with_frequency(self):
        ear = EarCanalCoupling(mismatch_delay_s=35e-6)
        freqs = np.array([200.0, 1000.0, 3000.0])
        residual = ear.mismatch_residual_db(freqs)
        assert residual[0] < residual[1] < residual[2]

    def test_rejects_bad_resonance(self):
        with pytest.raises(ConfigurationError):
            EarCanalCoupling(canal_resonance_hz=5000.0, sample_rate=8000.0)


class TestPrivacy:
    def test_power_control_closed_loop(self):
        """Minimum power serves the client at exactly the required SNR
        plus margin."""
        tx = minimum_tx_power_dbm(3.0, required_snr_db=30.0, margin_db=6.0)
        at_client = received_audio_snr_db(tx, 3.0)
        assert at_client == pytest.approx(36.0, abs=0.1)

    def test_leakage_radius_shrinks_with_power(self):
        hot = leakage_radius_m(0.0)
        cold = leakage_radius_m(-20.0)
        assert cold < hot / 5.0

    def test_leakage_radius_consistent_with_snr(self):
        tx = minimum_tx_power_dbm(3.0)
        radius = leakage_radius_m(tx, usable_snr_db=10.0)
        # At the radius the SNR is exactly the usable threshold.
        assert received_audio_snr_db(tx, radius) == pytest.approx(10.0,
                                                                  abs=0.1)

    def test_scrambling_roundtrip(self):
        audio = WhiteNoise(seed=3, level_rms=0.2).generate(1.0)
        codec = ScramblingCodec(seed=42, mask_to_signal=10.0)
        scrambled, level = codec.scramble(audio)
        recovered = codec.descramble(scrambled, level)
        np.testing.assert_allclose(recovered, audio, atol=1e-9)

    def test_scrambling_buries_audio(self):
        audio = WhiteNoise(seed=3, level_rms=0.2).generate(1.0)
        codec = ScramblingCodec(seed=42, mask_to_signal=10.0)
        scrambled, __ = codec.scramble(audio)
        # To an eavesdropper the mask is noise: SNR ≈ −20 dB.
        assert snr_db(audio, scrambled - audio) == pytest.approx(-20.0,
                                                                 abs=1.0)
        assert codec.eavesdropper_snr_db() == pytest.approx(-20.0)

    def test_wrong_seed_fails_to_descramble(self):
        audio = WhiteNoise(seed=3, level_rms=0.2).generate(1.0)
        good = ScramblingCodec(seed=42)
        bad = ScramblingCodec(seed=43)
        scrambled, level = good.scramble(audio)
        wrong = bad.descramble(scrambled, level)
        assert snr_db(audio, wrong - audio) < -10.0


class TestCoexistence:
    def test_allocation_fits_paper_scale(self):
        centers = allocate_channels(4, 32000.0)
        assert len(centers) == 4
        # Channels don't overlap.
        assert all(b - a >= 32000.0 for a, b in zip(centers, centers[1:]))

    def test_allocation_overflow_rejected(self):
        with pytest.raises(ConfigurationError):
            allocate_channels(2000, 32000.0)

    def test_band_holds_hundreds_of_relays(self):
        # The paper: "the total bandwidth occupied remains a small
        # fraction" — concretely, hundreds of FM relays fit.
        assert max_colocated_relays(32000.0) > 500

    def test_carrier_sense_probabilities_sum(self):
        model = CarrierSenseModel(n_relays=5, activity=0.3)
        multi = (1.0 - model.idle_probability
                 - model.single_tx_probability)
        assert 0.0 <= model.collision_probability <= multi

    def test_few_relays_stream_fine(self):
        assert CarrierSenseModel(n_relays=2, activity=0.4) \
            .supports_streaming(required_duty=0.6)

    def test_crowd_contention_fails(self):
        crowded = CarrierSenseModel(n_relays=30, activity=0.5)
        assert not crowded.supports_streaming()

    def test_goodput_decreases_with_contenders(self):
        few = CarrierSenseModel(n_relays=2, activity=0.5)
        many = CarrierSenseModel(n_relays=10, activity=0.5)
        assert many.goodput_per_relay < few.goodput_per_relay

    def test_summary_renders(self):
        assert "goodput" in CarrierSenseModel(3).summary()
