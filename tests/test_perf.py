"""The perf toolkit: shared timer, stage profiler, perf-profile CLI."""

import io
import json

import numpy as np
import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.perf import PROFILE_SCHEMA, Timing, profile_pipeline, time_call
from repro.perf.harness import STAGES, render_profile


class TestTimer:
    def test_time_call_summary(self):
        timing = time_call(lambda: 42, repeats=3)
        assert timing.result == 42
        assert timing.repeats == 3
        assert len(timing.times_s) == 3
        assert timing.best_s <= timing.median_s
        assert timing.best_s == min(timing.times_s)

    def test_to_dict_is_json_able(self):
        doc = time_call(lambda: None, repeats=2).to_dict()
        assert set(doc) == {"median_s", "best_s", "repeats", "times_s"}
        json.dumps(doc)

    def test_warmup_calls_are_untimed(self):
        calls = []
        timing = time_call(lambda: calls.append(1), repeats=3, warmup=2)
        assert len(calls) == 5           # 2 warmup + 3 timed
        assert timing.repeats == 3

    def test_rejects_zero_repeats(self):
        with pytest.raises(ConfigurationError):
            time_call(lambda: None, repeats=0)

    def test_timing_is_frozen(self):
        timing = Timing(result=None, times_s=(1.0,))
        with pytest.raises(Exception):
            timing.result = 1


class TestProfilePipeline:
    @pytest.fixture(scope="class")
    def doc(self):
        return profile_pipeline(duration_s=0.25, repeats=1, warmup=0)

    def test_schema_and_stage_order(self, doc):
        assert doc["schema"] == PROFILE_SCHEMA == "repro.perf/v1"
        assert tuple(s["stage"] for s in doc["stages"]) == STAGES

    def test_stage_rows_are_timings(self, doc):
        for s in doc["stages"]:
            assert s["median_s"] > 0
            assert 0.0 <= s["fraction_of_stages"] <= 1.0
        total = sum(s["fraction_of_stages"] for s in doc["stages"])
        assert total == pytest.approx(1.0)

    def test_end_to_end_and_residual(self, doc):
        assert doc["end_to_end"]["target"] == "MuteSystem.run"
        assert doc["end_to_end"]["median_s"] > 0
        assert np.isfinite(doc["residual_rms"])
        assert doc["workload"]["samples"] == 2000   # 0.25 s at 8 kHz

    def test_document_is_json_able(self, doc):
        json.dumps(doc)

    def test_render_profile(self, doc):
        text = render_profile(doc)
        for stage in STAGES:
            assert stage in text
        assert "end-to-end" in text

    def test_rejects_bad_duration(self):
        with pytest.raises(ConfigurationError):
            profile_pipeline(duration_s=0.0)

    def test_fastpath_off_is_recorded(self):
        doc = profile_pipeline(duration_s=0.1, repeats=1, warmup=0,
                               use_fastpath=False)
        assert doc["settings"]["fastpath"] is False


class TestPerfProfileCli:
    ARGS = ["perf-profile", "--duration", "0.2", "--repeats", "1",
            "--warmup", "0"]

    def test_json_output(self):
        out = io.StringIO()
        assert main(self.ARGS + ["--json"], out=out) == 0
        doc = json.loads(out.getvalue())
        assert doc["schema"] == "repro.perf/v1"
        assert len(doc["stages"]) == len(STAGES)

    def test_table_output(self):
        out = io.StringIO()
        assert main(self.ARGS, out=out) == 0
        assert "perf profile" in out.getvalue()

    def test_out_writes_document(self, tmp_path):
        path = tmp_path / "profile.json"
        out = io.StringIO()
        assert main(self.ARGS + ["--out", str(path)], out=out) == 0
        doc = json.loads(path.read_text())
        assert doc["schema"] == "repro.perf/v1"

    def test_no_fastpath_flag(self):
        out = io.StringIO()
        assert main(self.ARGS + ["--no-fastpath", "--json"], out=out) == 0
        assert json.loads(out.getvalue())["settings"]["fastpath"] is False

    def test_bad_arguments_rejected(self):
        out = io.StringIO()
        assert main(["perf-profile", "--duration", "0"], out=out) == 2
        assert main(["perf-profile", "--repeats", "0"], out=out) == 2
