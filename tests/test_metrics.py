"""Evaluation metrics."""

import numpy as np
import pytest

from repro.errors import SignalError
from repro.eval.metrics import (
    CancellationCurve,
    additional_cancellation_db,
    band_means,
    convergence_envelope,
    measure_cancellation,
)
from repro.signals import WhiteNoise


def _flat_curve(value_db=-10.0, label="flat"):
    freqs = np.linspace(0.0, 4000.0, 129)
    return CancellationCurve(label=label, freqs=freqs,
                             values_db=np.full(129, value_db))


class TestCancellationCurve:
    def test_mean_over_band(self):
        assert _flat_curve(-12.0).mean_db(0, 2000) == pytest.approx(-12.0)

    def test_mean_empty_band_raises(self):
        with pytest.raises(SignalError):
            _flat_curve().mean_db(5000.0, 6000.0)

    def test_at_nearest_bin(self):
        curve = _flat_curve()
        assert curve.at(1234.0) == -10.0

    def test_smoothed_copy(self):
        curve = _flat_curve()
        smooth = curve.smoothed()
        assert smooth is not curve
        np.testing.assert_allclose(smooth.values_db, -10.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(SignalError):
            CancellationCurve("x", np.zeros(4), np.zeros(5))


class TestMeasureCancellation:
    def test_known_attenuation(self):
        x = WhiteNoise(seed=0, level_rms=0.5).generate(4.0)
        curve = measure_cancellation(x, 0.1 * x, 8000.0, label="20dB")
        assert curve.mean_db(200, 3800) == pytest.approx(-20.0, abs=1.0)

    def test_settle_fraction_excludes_transient(self):
        x = WhiteNoise(seed=1, level_rms=0.5).generate(4.0)
        after = 0.01 * x.copy()
        after[:8000] = x[:8000]          # loud first second (transient)
        curve = measure_cancellation(x, after, 8000.0, settle_fraction=0.5)
        assert curve.mean_db(200, 3800) < -30.0

    def test_label_attached(self):
        x = WhiteNoise(seed=0).generate(1.0)
        assert measure_cancellation(x, x, 8000.0, label="me").label == "me"


class TestBandMeans:
    def test_rows(self):
        curve = _flat_curve(-8.0)
        rows = band_means(curve, [0, 1000, 2000])
        assert len(rows) == 2
        (band, value) = rows[0]
        assert band == (0.0, 1000.0)
        assert value == pytest.approx(-8.0)


class TestAdditionalCancellation:
    def test_difference(self):
        delta = additional_cancellation_db(_flat_curve(-13.0, "a"),
                                           _flat_curve(-10.0, "b"))
        np.testing.assert_allclose(delta.values_db, -3.0)

    def test_grid_mismatch(self):
        a = _flat_curve()
        b = CancellationCurve("b", np.linspace(0, 4000, 65), np.zeros(65))
        with pytest.raises(SignalError):
            additional_cancellation_db(a, b)


class TestConvergenceEnvelope:
    def test_envelope_tracks_level_change(self):
        error = np.concatenate([np.ones(4000), 0.1 * np.ones(4000)])
        times, env = convergence_envelope(error, 8000.0, window_s=0.05)
        assert env[1000] == pytest.approx(1.0, rel=0.05)
        assert env[7000] == pytest.approx(0.1, rel=0.1)
        assert times[-1] == pytest.approx(1.0, abs=1e-3)
