"""Edge ANC service and the digital-relay ablation model."""

import numpy as np
import pytest

from repro.core import EdgeAncService, EdgeClient
from repro.core.edge import EdgeAncService as _Service
from repro.errors import ConfigurationError
from repro.signals import WhiteNoise
from repro.wireless.digital import (
    DigitalRelay,
    bluetooth_like_relay,
    low_latency_digital_relay,
)


def _toy_client(name, seed, T=8000):
    rng = np.random.default_rng(seed)
    n = rng.standard_normal(T) * 0.1
    delta = 12
    x = np.zeros(T)
    x[delta:] = np.convolve(n, [1.0, 0.5])[:T][:-delta]
    d = np.zeros(T)
    d[delta:] = n[:-delta]
    s = np.array([0.0, 1.0])
    return EdgeClient(name=name, reference=x, disturbance=d,
                      secondary_true=s, secondary_estimate=s, n_future=8)


class TestEdgeService:
    def test_full_rate_when_under_capacity(self):
        service = EdgeAncService(capacity=2)
        assert service._adaptation_mask(100, 0, 2) is None

    @pytest.mark.parametrize("n_clients,capacity", [(4, 2), (6, 2), (3, 1)])
    def test_duty_matches_capacity_ratio(self, n_clients, capacity):
        service = EdgeAncService(capacity=capacity)
        n = 6000
        duties = []
        for i in range(n_clients):
            mask = service._adaptation_mask(n, i, n_clients)
            duties.append(mask.mean())
        expected = capacity / n_clients
        for duty in duties:
            assert duty == pytest.approx(expected, abs=0.05)

    def test_every_sample_serves_capacity_clients(self):
        service = EdgeAncService(capacity=2)
        n_clients, n = 5, 1000
        masks = np.array([service._adaptation_mask(n, i, n_clients)
                          for i in range(n_clients)])
        per_sample = masks.sum(axis=0)
        assert np.all(per_sample == 2)

    def test_serve_cancels_for_everyone(self):
        service = EdgeAncService(capacity=2, n_past=32, mu=0.4)
        clients = [_toy_client(f"u{i}", seed=i) for i in range(4)]
        result = service.serve(clients)
        assert result.n_clients == 4
        assert result.adaptation_duty == pytest.approx(0.5)
        for value in result.cancellation_db.values():
            assert value < -10.0

    def test_duplicate_names_rejected(self):
        service = EdgeAncService(capacity=2, n_past=16)
        clients = [_toy_client("same", 0), _toy_client("same", 1)]
        with pytest.raises(ConfigurationError):
            service.serve(clients)

    def test_no_clients_rejected(self):
        with pytest.raises(ConfigurationError):
            _Service().serve([])


class TestDigitalRelay:
    def test_latency_terms_sum(self):
        relay = DigitalRelay(frame_s=10e-3, codec_delay_s=2e-3,
                             radio_delay_s=1e-3, jitter_buffer_s=4e-3)
        assert relay.latency_s == pytest.approx(17e-3)
        assert relay.latency_samples == 136   # at 8 kHz

    def test_forward_is_delayed_copy(self):
        relay = DigitalRelay(frame_s=2e-3, codec_delay_s=0.0,
                             radio_delay_s=0.0, bits=None)
        x = WhiteNoise(seed=1, level_rms=0.1).generate(0.5)
        out = relay.forward(x)
        d = relay.latency_samples
        np.testing.assert_allclose(out[d:], x[:-d], atol=1e-12)

    def test_quantization_applied(self):
        relay = DigitalRelay(bits=4)
        x = WhiteNoise(seed=2, level_rms=0.1).generate(0.25)
        out = relay.forward(x)
        # 4-bit output takes few distinct values.
        assert np.unique(np.round(out, 9)).size < 40

    def test_packet_loss_zeroes_frames(self):
        relay = DigitalRelay(frame_s=10e-3, packet_loss=0.5, seed=3,
                             bits=None)
        x = np.ones(8000)
        out = relay.forward(x)
        d = relay.latency_samples
        body = out[d:]
        zero_fraction = np.mean(body == 0.0)
        assert 0.2 < zero_fraction < 0.8

    def test_presets_ordering(self):
        bt = bluetooth_like_relay()
        fast = low_latency_digital_relay()
        assert bt.latency_s > 3 * fast.latency_s
        assert fast.latency_s > 2e-3

    def test_stores_samples_flag(self):
        # The privacy property the analog design avoids.
        assert DigitalRelay().stores_samples is True

    def test_rejects_bad_loss(self):
        with pytest.raises(ConfigurationError):
            DigitalRelay(packet_loss=1.0)
