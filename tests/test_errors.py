"""Exception hierarchy contracts."""

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in errors.__all__:
        exc_type = getattr(errors, name)
        assert issubclass(exc_type, errors.ReproError)


def test_configuration_error_is_value_error():
    assert issubclass(errors.ConfigurationError, ValueError)


def test_signal_error_is_value_error():
    assert issubclass(errors.SignalError, ValueError)


def test_convergence_error_is_runtime_error():
    assert issubclass(errors.ConvergenceError, RuntimeError)


def test_catching_base_catches_all():
    with pytest.raises(errors.ReproError):
        raise errors.LookaheadError("boom")


def test_errors_carry_messages():
    exc = errors.ChannelError("empty impulse response")
    assert "empty impulse response" in str(exc)
