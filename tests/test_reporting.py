"""ASCII reporting primitives."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.eval.metrics import CancellationCurve
from repro.eval.reporting import (
    format_curves,
    format_series,
    format_table,
    sparkline,
)


class TestFormatTable:
    def test_contains_headers_and_cells(self):
        out = format_table(["a", "b"], [(1, 2), (3, 4)])
        assert "a" in out and "b" in out
        assert "3" in out and "4" in out

    def test_title_first_line(self):
        out = format_table(["x"], [("1",)], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_row_width_mismatch(self):
        with pytest.raises(ConfigurationError):
            format_table(["a", "b"], [(1,)])

    def test_columns_aligned(self):
        out = format_table(["col"], [("1",), ("22",), ("333",)])
        widths = {len(line) for line in out.splitlines()}
        assert len(widths) == 1


class TestSparkline:
    def test_monotone_ramp(self):
        line = sparkline([0, 1, 2, 3])
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_constant_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_explicit_bounds(self):
        line = sparkline([0.5], lo=0.0, hi=1.0)
        assert line in "▃▄▅"


class TestFormatSeries:
    def test_bands_rendered(self):
        freqs = np.linspace(0, 4000, 64)
        out = format_series("test", freqs, np.full(64, -10.0), step_hz=1000)
        assert "0-1000 Hz" in out
        assert "-10.0" in out


class TestFormatCurves:
    def test_multi_curve_table(self):
        freqs = np.linspace(0, 4000, 64)
        curves = [
            CancellationCurve("one", freqs, np.full(64, -5.0)),
            CancellationCurve("two", freqs, np.full(64, -15.0)),
        ]
        out = format_curves(curves, title="Fig")
        assert "one" in out and "two" in out
        assert "mean" in out
        assert "-15.0" in out

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            format_curves([])
