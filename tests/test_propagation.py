"""Free-field propagation: delays, spreading, fractional delay."""

import numpy as np
import pytest

from repro.acoustics import propagation as prop
from repro.acoustics.constants import SPEED_OF_SOUND
from repro.errors import ConfigurationError


class TestDelays:
    def test_delay_seconds(self):
        assert prop.delay_seconds(SPEED_OF_SOUND) == pytest.approx(1.0)

    def test_delay_samples(self):
        assert prop.delay_samples(3.4, 8000.0) == pytest.approx(80.0)

    def test_zero_distance(self):
        assert prop.delay_seconds(0.0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            prop.delay_seconds(-1.0)


class TestSpreading:
    def test_inverse_distance(self):
        assert prop.spreading_gain(2.0) == pytest.approx(0.5)

    def test_clamped_near_source(self):
        assert prop.spreading_gain(0.0) == prop.spreading_gain(0.25)

    def test_reference_scaling(self):
        assert prop.spreading_gain(4.0, reference_m=2.0) == pytest.approx(0.5)


class TestFractionalDelayFilter:
    @pytest.mark.parametrize("delay", [0.0, 0.5, 1.3, 4.75])
    def test_unit_dc_gain(self, delay):
        taps = prop.fractional_delay_filter(delay)
        assert taps.sum() == pytest.approx(1.0, abs=1e-6)

    def test_integer_delay_is_near_delta(self):
        taps = prop.fractional_delay_filter(3.0)
        assert np.argmax(np.abs(taps)) == 3
        assert taps[3] == pytest.approx(1.0, abs=1e-3)

    @pytest.mark.parametrize("delay,tol", [(12.25, 0.05), (7.3, 0.05),
                                           (2.6, 0.2), (0.5, 0.2)])
    def test_measured_group_delay(self, delay, tol):
        # Group delay from the phase slope across the usable band.
        # Large delays are exact; sub-center delays carry a small causal
        # truncation bias, bounded here.
        from scipy import signal as sps
        taps = prop.fractional_delay_filter(delay)
        w, h = sps.freqz(taps, worN=512)
        band = (w > 0.05 * np.pi) & (w < 0.6 * np.pi)
        phase = np.unwrap(np.angle(h))
        slope = np.polyfit(w[band], phase[band], 1)[0]
        assert -slope == pytest.approx(delay, abs=tol)

    def test_rejects_tiny_filters(self):
        with pytest.raises(ConfigurationError):
            prop.fractional_delay_filter(1.0, n_taps=2)


class TestApplyDelay:
    def test_integer_shift(self):
        x = np.arange(10, dtype=float)
        y = prop.apply_delay(x, 3)
        np.testing.assert_array_equal(y[3:], x[:7])
        np.testing.assert_array_equal(y[:3], 0.0)

    def test_zero_delay_copy(self):
        x = np.arange(5, dtype=float)
        y = prop.apply_delay(x, 0)
        np.testing.assert_array_equal(x, y)
        assert y is not x

    def test_delay_beyond_length(self):
        np.testing.assert_array_equal(prop.apply_delay(np.ones(4), 10),
                                      np.zeros(4))

    def test_fractional_preserves_length(self):
        x = np.random.default_rng(0).standard_normal(256)
        assert prop.apply_delay(x, 1.5).size == 256

    def test_fractional_between_integer_neighbors(self):
        # A 1.5-sample delay of an impulse at 10 peaks equally at 11/12.
        x = np.zeros(64)
        x[10] = 1.0
        y = prop.apply_delay(x, 1.5)
        mags = np.abs(y)
        top_two = set(np.argsort(mags)[-2:])
        assert top_two == {11, 12}
        assert mags[11] == pytest.approx(mags[12], rel=0.05)
