"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.acoustics.propagation import apply_delay, fractional_delay_filter
from repro.core.relay_selection import gcc_phat
from repro.hardware import quantize
from repro.signals import normalize_rms
from repro.utils.buffers import DelayLine, RingBuffer
from repro.utils.spectral import band_energy_signature
from repro.utils.units import (
    amplitude_to_db,
    db_to_amplitude,
    db_to_power,
    power_to_db,
)

finite_db = st.floats(min_value=-100.0, max_value=100.0,
                      allow_nan=False, allow_infinity=False)

waveforms = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=64, max_value=512),
    elements=st.floats(min_value=-10.0, max_value=10.0,
                       allow_nan=False, allow_infinity=False),
)


class TestUnitRoundtrips:
    @given(finite_db)
    def test_power_roundtrip(self, db):
        assert power_to_db(db_to_power(db)) == pytest.approx(db, abs=1e-6)

    @given(finite_db)
    def test_amplitude_roundtrip(self, db):
        assert amplitude_to_db(db_to_amplitude(db)) == pytest.approx(
            db, abs=1e-6)

    @given(st.floats(min_value=1e-6, max_value=1e6))
    def test_power_db_monotone(self, power):
        assert power_to_db(power * 2.0) > power_to_db(power)


class TestNormalizeRms:
    @given(waveforms, st.floats(min_value=1e-3, max_value=10.0))
    def test_target_reached(self, x, target):
        assume(np.sqrt(np.mean(x ** 2)) > 1e-9)
        y = normalize_rms(x, target)
        assert np.sqrt(np.mean(y ** 2)) == pytest.approx(target, rel=1e-6)

    @given(waveforms)
    def test_silence_stays_silent(self, x):
        zeros = np.zeros_like(x)
        np.testing.assert_array_equal(normalize_rms(zeros, 1.0), zeros)


class TestRingBufferModel:
    """RingBuffer against a reference list model."""

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=200),
           st.integers(min_value=1, max_value=32))
    def test_recent_matches_tail(self, values, capacity):
        rb = RingBuffer(capacity)
        model = []
        for v in values:
            rb.push(v)
            model.append(v)
        k = min(len(model), capacity)
        np.testing.assert_array_equal(rb.recent(k), model[-k:])

    @given(st.lists(st.lists(st.floats(min_value=-1e3, max_value=1e3,
                                       allow_nan=False), max_size=40),
                    max_size=10),
           st.integers(min_value=1, max_value=16))
    def test_extend_equivalent_to_pushes(self, blocks, capacity):
        a, b = RingBuffer(capacity), RingBuffer(capacity)
        for block in blocks:
            for v in block:
                a.push(v)
            b.extend(np.asarray(block, dtype=float))
        np.testing.assert_array_equal(a.recent(capacity),
                                      b.recent(capacity))


class TestDelayLineProperty:
    @given(waveforms, st.integers(min_value=0, max_value=40))
    def test_pure_shift(self, x, delay):
        dl = DelayLine(delay)
        out = dl.process(x)
        if delay == 0:
            np.testing.assert_array_equal(out, x)
        elif delay < x.size:
            np.testing.assert_array_equal(out[delay:], x[:-delay])
            np.testing.assert_array_equal(out[:delay], 0.0)


class TestQuantizeProperties:
    @given(waveforms, st.integers(min_value=2, max_value=16))
    def test_idempotent(self, x, bits):
        once = quantize(x, bits, full_scale=16.0)
        twice = quantize(once, bits, full_scale=16.0)
        np.testing.assert_array_equal(once, twice)

    @given(waveforms, st.integers(min_value=4, max_value=16))
    def test_error_bounded_by_half_step(self, x, bits):
        full_scale = 16.0
        step = full_scale / (2 ** (bits - 1))
        q = quantize(x, bits, full_scale=full_scale)
        np.testing.assert_array_less(np.abs(q - x), step / 2 + 1e-12)


class TestSignatureProperties:
    @given(waveforms)
    def test_sums_to_one(self, x):
        sig = band_energy_signature(x, 8000.0, n_bands=8)
        assert np.sum(sig) == pytest.approx(1.0, abs=1e-9)
        assert np.all(sig >= 0.0)

    @given(waveforms, st.floats(min_value=0.01, max_value=100.0))
    def test_scale_invariant(self, x, gain):
        # A DC-only signal has no AC spectrum (Welch detrends the mean);
        # its signature is numerically degenerate, so require variation.
        assume(np.std(x) > 1e-6)
        a = band_energy_signature(x, 8000.0, n_bands=8)
        b = band_energy_signature(gain * x, 8000.0, n_bands=8)
        np.testing.assert_allclose(a, b, atol=1e-9)


class TestGccPhatProperty:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=60),
           st.integers(min_value=0, max_value=100))
    def test_recovers_injected_shift(self, shift, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(4000)
        ear = np.zeros_like(x)
        ear[shift:] = x[:-shift]
        lags, corr = gcc_phat(x, ear, 8000.0, max_lag_s=0.02)
        peak = lags[np.argmax(corr)] * 8000.0
        assert peak == pytest.approx(shift, abs=1.0)


class TestFractionalDelayProperty:
    @settings(max_examples=25, deadline=None)
    @given(st.floats(min_value=8.0, max_value=40.0))
    def test_dc_gain_unity(self, delay):
        taps = fractional_delay_filter(delay)
        assert taps.sum() == pytest.approx(1.0, abs=1e-9)

    @settings(max_examples=15, deadline=None)
    @given(st.floats(min_value=8.0, max_value=30.0),
           st.integers(min_value=0, max_value=50))
    def test_energy_preserved_for_noise(self, delay, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(2048)
        y = apply_delay(x, delay)
        # Steady-state energy is preserved (allowing edge loss).
        assert np.sum(y ** 2) == pytest.approx(np.sum(x ** 2), rel=0.1)
