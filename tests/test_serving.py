"""The multi-session serving runtime (repro.serving)."""

import io
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import serving
from repro.cli import main
from repro.core.adaptive import kernels
from repro.core.adaptive.kernels import loop as loop_backend
from repro.errors import ConfigurationError, ServingOverloadError
from repro.eval import experiments
from repro.faults import outage_plan
from repro.runtime import RunRequest

BLOCK = 128
DURATION_S = 0.2        # 1600 samples -> 12 whole blocks of 128


def _workloads(sessions, seed=0, duration_s=DURATION_S, fault_plans=None):
    out = []
    for i in range(sessions):
        plan = fault_plans.get(i) if fault_plans else None
        out.append(serving.SessionWorkload.synthetic(
            f"user{i}", duration_s=duration_s, seed=seed + i,
            fault_plan=plan))
    return out


def _drain(workloads, batched, **config_kwargs):
    config_kwargs.setdefault("block_size", BLOCK)
    config_kwargs.setdefault("max_sessions", max(len(workloads), 1))
    server = serving.SessionServer(
        serving.ServerConfig(batched=batched, **config_kwargs))
    for workload in workloads:
        server.submit(workload)
    return server.run_until_drained()


class TestBitIdentity:
    """Serial and batched scheduling must produce identical bits."""

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000),
           sessions=st.integers(min_value=1, max_value=5))
    def test_serial_equals_batched(self, seed, sessions):
        serial = _drain(_workloads(sessions, seed=seed), batched=False)
        batched = _drain(_workloads(sessions, seed=seed), batched=True)
        assert serial.digests() == batched.digests()
        assert serial.statuses() == batched.statuses()
        assert serial.session_blocks == batched.session_blocks

    def test_bit_identity_survives_faults(self):
        plans = {1: outage_plan(DURATION_S, 0.4)}
        serial = _drain(_workloads(3, fault_plans=plans), batched=False)
        batched = _drain(_workloads(3, fault_plans=plans), batched=True)
        assert serial.digests() == batched.digests()

    def test_bit_identity_with_narrow_admission(self):
        """max_sessions < fleet: staggered admission, same bits."""
        serial = _drain(_workloads(5), batched=False, max_sessions=2)
        batched = _drain(_workloads(5), batched=True, max_sessions=2)
        assert serial.digests() == batched.digests()
        assert serial.statuses() == {serving.DONE: 5}


class TestBatchKernelContract:
    """fxlms_block_batch vs the single-session kernel: <= 1e-10."""

    TOL = 1e-10

    def _session_inputs(self, sessions, config):
        built = []
        for workload in _workloads(sessions, seed=7):
            span = (workload.reference.size // BLOCK) * BLOCK
            x = workload.reference[:span]
            d = workload.disturbance[:span]
            state = kernels.KernelState.streaming(
                config.n_future, config.n_past, config.secondary())
            state.extend(np.concatenate([x, np.zeros(config.n_future)]))
            built.append((x, d, state))
        return built

    def test_matches_single_session_kernel(self):
        config = serving.SessionConfig()
        n_taps = config.n_future + config.n_past
        batch = self._session_inputs(3, config)
        solo = self._session_inputs(3, config)

        taps = np.zeros((3, n_taps))
        mu = np.full(3, config.mu)
        batch_errors = []
        n_blocks = batch[0][1].size // BLOCK
        for b in range(n_blocks):
            d = np.stack([item[1][b * BLOCK:(b + 1) * BLOCK]
                          for item in batch])
            errors, diverged = kernels.fxlms_block_batch(
                [item[2] for item in batch], taps, d, mu)
            assert not diverged.any()
            batch_errors.append(errors)
        batch_errors = np.concatenate(batch_errors, axis=1)

        for s, (x, d, state) in enumerate(solo):
            solo_taps = np.zeros(n_taps)
            solo_errors = []
            for b in range(n_blocks):
                solo_errors.append(loop_backend.fxlms_block(
                    state, solo_taps, d[b * BLOCK:(b + 1) * BLOCK],
                    config.mu))
            np.testing.assert_allclose(
                batch_errors[s], np.concatenate(solo_errors),
                atol=self.TOL, rtol=0)
            np.testing.assert_allclose(taps[s], solo_taps,
                                       atol=self.TOL, rtol=0)

    def test_dispatcher_validates_inputs(self):
        config = serving.SessionConfig()
        n_taps = config.n_future + config.n_past
        (x, d, state), = self._session_inputs(1, config)
        good_taps = np.zeros((1, n_taps))
        good_d = d[:BLOCK][np.newaxis, :]
        mu = np.array([0.3])

        with pytest.raises(ConfigurationError):
            kernels.fxlms_block_batch([], good_taps, good_d, mu)
        with pytest.raises(ConfigurationError):        # ragged geometry
            other = kernels.KernelState.streaming(
                config.n_future + 1, config.n_past, config.secondary())
            other.extend(np.zeros(x.size + config.n_future + 1))
            kernels.fxlms_block_batch(
                [state, other], np.zeros((2, n_taps)),
                np.vstack([good_d, good_d]), np.array([0.3, 0.3]))
        with pytest.raises(ConfigurationError):        # taps shape
            kernels.fxlms_block_batch([state], np.zeros(n_taps),
                                      good_d, mu)
        with pytest.raises(ConfigurationError):        # d shape
            kernels.fxlms_block_batch([state], good_taps, d[:BLOCK], mu)
        with pytest.raises(ConfigurationError):        # underrun
            starved = kernels.KernelState.streaming(
                config.n_future, config.n_past, config.secondary())
            starved.extend(np.zeros(8))
            kernels.fxlms_block_batch([starved], good_taps, good_d, mu)


class TestBatchWorkspace:
    """The preallocated kernel arena: bit-identity + zero-alloc ticks."""

    def _run_blocks(self, config, workspace, seed):
        """Drive fxlms_block_batch over 3 sessions; returns (errors, taps)."""
        n_taps = config.n_future + config.n_past
        built = []
        for workload in _workloads(3, seed=seed):
            span = (workload.reference.size // BLOCK) * BLOCK
            state = kernels.KernelState.streaming(
                config.n_future, config.n_past, config.secondary())
            state.extend(np.concatenate(
                [workload.reference[:span], np.zeros(config.n_future)]))
            built.append((workload.disturbance[:span], state))
        taps = np.zeros((3, n_taps))
        mu = np.full(3, config.mu)
        collected = []
        n_blocks = built[0][0].size // BLOCK
        for b in range(n_blocks):
            d = np.stack([d_sig[b * BLOCK:(b + 1) * BLOCK]
                          for d_sig, __ in built])
            errors, diverged = kernels.fxlms_block_batch(
                [state for __, state in built], taps, d, mu,
                workspace=workspace)
            assert not diverged.any()
            # Arena-backed results are borrowed views — copy before the
            # next call reuses the buffers.
            collected.append(np.array(errors, copy=True))
        return np.concatenate(collected, axis=1), taps

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_arena_bit_identical_to_fresh_allocation(self, seed):
        """Explicit workspace vs workspace=None: identical bits.

        The arena changes where results live, never what they are — the
        kernel runs the same instruction sequence over arena views and
        fresh arrays (the contract in repro.core.adaptive.kernels
        .workspace).  max_sessions > batch size also exercises the
        leading-axis capacity slicing.
        """
        config = serving.SessionConfig()
        ws = kernels.BatchWorkspace(
            8, BLOCK, config.n_future, config.n_past,
            config.secondary().size)
        arena_errors, arena_taps = self._run_blocks(config, ws, seed)
        fresh_errors, fresh_taps = self._run_blocks(config, None, seed)
        np.testing.assert_array_equal(arena_errors, fresh_errors)
        np.testing.assert_array_equal(arena_taps, fresh_taps)

    def test_mismatched_geometry_rejected(self):
        config = serving.SessionConfig()
        wrong_block = kernels.BatchWorkspace(
            8, BLOCK * 2, config.n_future, config.n_past,
            config.secondary().size)
        assert not wrong_block.fits(1, BLOCK, config.n_future,
                                    config.n_past, config.secondary().size)
        with pytest.raises(ValueError):
            self._run_blocks(config, wrong_block, seed=0)

    def test_workspace_validates_construction(self):
        with pytest.raises(ConfigurationError):
            kernels.BatchWorkspace(0, BLOCK, 64, 512, 8)
        with pytest.raises(ConfigurationError):
            kernels.BatchWorkspace(8, BLOCK, 64, 0, 8)

    def test_nbytes_reports_arena_size(self):
        ws = kernels.BatchWorkspace(8, BLOCK, 64, 512, 8)
        assert ws.nbytes >= ws.seg.nbytes + ws.errors.nbytes
        assert ws.seg_len == (512 - 1) + BLOCK + 64

    def test_steady_state_ticks_allocate_nothing(self):
        """The issue's acceptance gate: zero per-tick array allocations.

        After warmup (admission, caches, the arena itself) the batched
        block loop must run out of the preallocated workspace — a few
        KB of Python-object churn per tick is tolerated, fresh (S, L)
        scratch stacks (tens of KB each) are not.
        """
        import tracemalloc

        server = serving.SessionServer(serving.ServerConfig(
            batched=True, block_size=BLOCK, max_sessions=8))
        for workload in _workloads(8, duration_s=2.0):
            server.submit(workload)
        for __ in range(4):                 # warm: admission + caches
            assert server.tick()
        tracemalloc.start()
        try:
            for __ in range(8):
                assert server.tick()
            __, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        per_tick = peak / 8
        assert per_tick < 16_384, \
            f"steady-state tick allocates {per_tick / 1024:.1f} KiB"


class TestAdmission:
    def test_reject_policy_raises(self):
        manager = serving.SessionManager(max_sessions=1, queue_depth=2)
        for workload in _workloads(2):
            manager.submit(workload)
        with pytest.raises(ServingOverloadError):
            manager.submit(_workloads(1, seed=99)[0])
        assert manager.shed_count == 0

    def test_shed_oldest_policy_evicts(self):
        manager = serving.SessionManager(
            max_sessions=1, queue_depth=2, shed_policy="shed-oldest")
        first, second = (manager.submit(w) for w in _workloads(2))
        third = manager.submit(_workloads(1, seed=99)[0])
        assert first.status == serving.SHED
        assert manager.shed_count == 1
        assert list(manager.pending) == [second, third]

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            serving.SessionManager(shed_policy="coin-flip")

    def test_shed_sessions_reported(self):
        server = serving.SessionServer(serving.ServerConfig(
            block_size=BLOCK, max_sessions=1, queue_depth=1,
            shed_policy="shed-oldest"))
        for workload in _workloads(3):
            server.submit(workload)
        report = server.run_until_drained()
        assert report.shed == 2
        (survivor,) = report.results
        assert survivor.name == "user2"

    def test_sub_block_workload_finishes_empty(self):
        tiny = serving.SessionWorkload.synthetic(
            "tiny", duration_s=BLOCK / 2 / 8000.0, seed=0)
        report = _drain([tiny], batched=True)
        (result,) = report.results
        assert result.status == serving.DONE
        assert result.blocks == 0
        assert result.residual.size == 0

    def test_request_fault_plan_applied_on_submit(self):
        manager = serving.SessionManager()
        plan = outage_plan(DURATION_S, 0.4)
        session = manager.submit(
            _workloads(1)[0], request=RunRequest(fault_plan=plan))
        assert session.workload.fault_plan is plan


class TestFaultIsolation:
    def test_faulty_session_leaves_neighbors_untouched(self):
        healthy = _drain(_workloads(3), batched=True)
        plans = {1: outage_plan(DURATION_S, 0.5)}
        mixed = _drain(_workloads(3, fault_plans=plans), batched=True)

        assert mixed.digests()["user0"] == healthy.digests()["user0"]
        assert mixed.digests()["user2"] == healthy.digests()["user2"]
        assert mixed.digests()["user1"] != healthy.digests()["user1"]
        faulted = next(r for r in mixed.results if r.name == "user1")
        assert faulted.transitions > 0
        assert faulted.status == serving.DONE

    def test_diverged_session_is_isolated(self):
        workloads = _workloads(3)
        bomb = serving.SessionWorkload(
            name="user1", reference=workloads[1].reference,
            disturbance=workloads[1].disturbance * 1e9)
        workloads[1] = bomb
        healthy = _drain([workloads[0], workloads[2]], batched=True)
        mixed = _drain(workloads, batched=True)

        by_name = {r.name: r for r in mixed.results}
        assert by_name["user1"].status == serving.FAILED
        assert "divergence" in by_name["user1"].error
        assert by_name["user1"].blocks == 0
        assert mixed.digests()["user0"] == healthy.digests()["user0"]
        assert mixed.digests()["user2"] == healthy.digests()["user2"]
        assert mixed.statuses() == {serving.DONE: 2, serving.FAILED: 1}


class TestServingReport:
    def test_document_schema_and_round_trip(self):
        report = _drain(_workloads(2), batched=True)
        document = report.to_dict()
        assert document["schema"] == "repro.runtime.report/v2"
        assert document["kind"] == "serving"
        assert document["shed"] == 0
        assert {s["name"] for s in document["sessions"]} == \
            {"user0", "user1"}
        assert all(s["status"] == serving.DONE
                   for s in document["sessions"])
        json.loads(json.dumps(document))  # JSON-able end to end

    def test_latency_percentiles_and_throughput(self):
        report = _drain(_workloads(2), batched=True)
        pct = report.latency_percentiles()
        assert 0.0 < pct["p50"] <= pct["p99"]
        assert report.throughput_blocks_per_s() > 0
        assert report.audio_seconds_per_s() > 0
        assert "session-blocks/s" in report.report()

    def test_sessions_cancel_noise(self):
        report = _drain(_workloads(2, duration_s=1.0), batched=True)
        for result in report.results:
            assert result.cancellation_db() > 3.0, result.name


class TestServingExperiment:
    def test_registered_and_runs(self):
        entry = experiments.get("serving")
        result = entry.run(duration_s=DURATION_S, sessions=2,
                           block_size=BLOCK)
        assert result["name"] == "serving"
        assert result.results.sessions == 2
        assert result.results.kernel_backend in ("loop", "vector")
        assert "serving: 2 session(s)" in result.report()

    def test_fault_plan_reaches_odd_sessions(self):
        entry = experiments.get("serving")
        result = entry.run(duration_s=DURATION_S, sessions=4,
                           block_size=BLOCK,
                           fault_plan=outage_plan(DURATION_S, 0.4))
        assert result.results.faulted_sessions == 2


class TestServeBenchCli:
    def test_check_passes(self):
        out = io.StringIO()
        code = main(["serve-bench", "--sessions", "2",
                     "--duration", "0.2", "--block", str(BLOCK),
                     "--check"], out=out)
        assert code == 0
        assert "serial == batched digests: OK" in out.getvalue()

    def test_out_writes_v2_document(self, tmp_path):
        path = tmp_path / "serving.json"
        out = io.StringIO()
        code = main(["serve-bench", "--sessions", "2",
                     "--duration", "0.2", "--out", str(path)], out=out)
        assert code == 0
        document = json.loads(path.read_text())
        assert document["schema"] == "repro.runtime.report/v2"
        assert document["kind"] == "serving"

    def test_bad_arguments_rejected(self):
        out = io.StringIO()
        assert main(["serve-bench", "--sessions", "0"], out=out) == 2
        assert main(["serve-bench", "--duration", "-1"], out=out) == 2
