"""The observability layer: tracing, metrics, profiling, CLI report."""

import io
import json
import time

import numpy as np
import pytest

import repro
from repro import obs
from repro.cli import main
from repro.core.adaptive.block import BlockLancFilter
from repro.core.adaptive.lanc import LancFilter, StreamingLanc
from repro.core.profiles import PredictiveProfileSwitcher, ProfileClassifier
from repro.errors import ConfigurationError
from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS, Histogram
from repro.obs.trace import Tracer


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """Every test starts and ends disabled with empty tracer/registry."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


# ---------------------------------------------------------------------------
# Config gate
# ---------------------------------------------------------------------------
class TestConfig:
    def test_disabled_by_default(self):
        assert not obs.enabled()

    def test_enable_disable(self):
        obs.enable()
        assert obs.enabled()
        obs.disable()
        assert not obs.enabled()

    def test_enabled_scope_restores(self):
        with obs.enabled_scope():
            assert obs.enabled()
        assert not obs.enabled()

    def test_enabled_scope_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with obs.enabled_scope():
                raise RuntimeError("boom")
        assert not obs.enabled()

    def test_enabled_scope_nests(self):
        obs.enable()
        with obs.enabled_scope():
            assert obs.enabled()
        assert obs.enabled()        # outer enable preserved


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------
class TestTracer:
    def test_nested_spans_build_a_tree(self):
        tracer = Tracer()
        with tracer.span("root", label="x"):
            with tracer.span("child1"):
                with tracer.span("grandchild"):
                    pass
            with tracer.span("child2"):
                pass
        assert len(tracer.roots) == 1
        root = tracer.roots[0]
        assert root.name == "root"
        assert [c.name for c in root.children] == ["child1", "child2"]
        assert root.children[0].children[0].name == "grandchild"
        assert root.attributes == {"label": "x"}

    def test_span_timings_are_finite_and_nested(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                sum(range(1000))
        outer, inner = tracer.roots[0], tracer.roots[0].children[0]
        assert outer.finished and inner.finished
        assert outer.wall_s >= inner.wall_s >= 0.0
        assert outer.cpu_s >= 0.0
        assert outer.self_wall_s() >= 0.0

    def test_set_attribute_inside_span(self):
        tracer = Tracer()
        with tracer.span("s") as sp:
            sp.set_attribute("n_future", 56)
        assert tracer.roots[0].attributes["n_future"] == 56

    def test_find_and_walk(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        assert tracer.find("b").name == "b"
        assert tracer.find("missing") is None
        assert [(d, s.name) for d, s in tracer.walk()] == [(0, "a"), (1, "b")]

    def test_to_dict_schema(self):
        tracer = Tracer()
        with tracer.span("a", k="v"):
            with tracer.span("b"):
                pass
        d = tracer.to_dict()
        assert d["schema"] == obs.TRACE_SCHEMA
        span = d["spans"][0]
        for key in ("name", "t_start_s", "wall_s", "cpu_s", "attributes",
                    "children"):
            assert key in span
        assert span["children"][0]["name"] == "b"
        json.loads(tracer.to_json())        # round-trips

    def test_render_tree_indents(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        lines = tracer.render().splitlines()
        assert lines[0].startswith("a ")
        assert lines[1].startswith("  b ")

    def test_reset_clears(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        tracer.reset()
        assert tracer.roots == []

    def test_reset_with_open_span_rejected(self):
        tracer = Tracer()
        cm = tracer.span("open")
        cm.__enter__()
        with pytest.raises(ConfigurationError):
            tracer.reset()


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------
class TestMetrics:
    def test_counter_accumulates(self):
        reg = obs.MetricsRegistry()
        reg.counter("runs").inc()
        reg.counter("runs").inc(2)
        assert reg.counter("runs").value == 3.0

    def test_counter_rejects_decrease(self):
        with pytest.raises(ConfigurationError):
            obs.MetricsRegistry().counter("c").inc(-1)

    def test_gauge_keeps_last_value_and_writes(self):
        g = obs.MetricsRegistry().gauge("level")
        g.set(1.5)
        g.set(2.5)
        assert g.value == 2.5
        assert g.writes == 2

    def test_labels_distinguish_instruments(self):
        reg = obs.MetricsRegistry()
        reg.counter("samples", engine="lanc").inc(10)
        reg.counter("samples", engine="lms").inc(20)
        assert reg.counter("samples", engine="lanc").value == 10
        assert reg.counter("samples", engine="lms").value == 20
        assert len(reg) == 2

    def test_histogram_quantiles_interpolate(self):
        h = Histogram("h", {}, buckets=[1.0, 2.0, 4.0, 8.0])
        for v in [0.5, 1.5, 3.0, 6.0]:
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(11.0)
        assert h.mean == pytest.approx(2.75)
        # p50 → rank 2 of 4 → second bucket (1, 2]: interpolated inside.
        assert 1.0 <= h.quantile(0.5) <= 2.0
        # p100 → last populated bucket (4, 8].
        assert 4.0 <= h.quantile(1.0) <= 8.0
        assert h.min == 0.5 and h.max == 6.0

    def test_histogram_overflow_reports_observed_max(self):
        h = Histogram("h", {}, buckets=[1.0])
        h.observe(100.0)
        assert h.quantile(0.99) == 100.0

    def test_histogram_empty_quantile_is_none(self):
        h = Histogram("h", {})
        assert h.quantile(0.5) is None
        assert h.mean is None
        assert h.summary()["count"] == 0

    def test_histogram_bad_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            Histogram("h", {}, buckets=[2.0, 1.0])
        with pytest.raises(ConfigurationError):
            Histogram("h", {}).quantile(1.5)

    def test_default_latency_buckets_increasing(self):
        assert all(b2 > b1 for b1, b2 in zip(DEFAULT_LATENCY_BUCKETS,
                                             DEFAULT_LATENCY_BUCKETS[1:]))

    def test_registry_to_dict_schema(self):
        reg = obs.MetricsRegistry()
        reg.counter("c", stage="x").inc()
        reg.gauge("g").set(1.0)
        reg.histogram("h").observe(0.001)
        d = reg.to_dict()
        assert d["schema"] == obs.METRICS_SCHEMA
        kinds = {m["name"]: m["kind"] for m in d["metrics"]}
        assert kinds == {"c": "counter", "g": "gauge", "h": "histogram"}
        json.loads(reg.to_json())
        assert "c" in reg.render()

    def test_registry_reset(self):
        reg = obs.MetricsRegistry()
        reg.counter("c").inc()
        reg.reset()
        assert len(reg) == 0


# ---------------------------------------------------------------------------
# Disabled mode is a no-op
# ---------------------------------------------------------------------------
class TestDisabledNoOp:
    def test_module_span_is_noop_when_disabled(self):
        with obs.span("anything", k=1) as sp:
            sp.set_attribute("ignored", 2)
        assert obs.get_tracer().roots == []

    def test_pipeline_records_nothing_when_disabled(self):
        scenario = repro.office_scenario()
        noise = repro.WhiteNoise(level_rms=0.1, seed=1).generate(0.5)
        repro.MuteSystem(scenario).run(noise)
        assert obs.get_tracer().roots == []
        assert len(obs.get_registry()) == 0

    def test_module_span_records_when_enabled(self):
        obs.enable()
        with obs.span("visible"):
            pass
        assert obs.get_tracer().find("visible") is not None


# ---------------------------------------------------------------------------
# Pipeline instrumentation
# ---------------------------------------------------------------------------
class _RunCapture:
    """Snapshot of one traced run, detached from the global obs state.

    The autouse cleanup fixture wipes the global tracer/registry before
    every test, so the module-scoped fixture keeps its own references:
    a shim :class:`Tracer` holding the recorded span forest and the
    exported metrics document.
    """

    def __init__(self, plain, traced, system, noise, roots, metrics):
        self.plain = plain
        self.traced = traced
        self.system = system
        self.noise = noise
        self.tracer = Tracer()
        self.tracer.roots = roots
        self.metrics = metrics

    def metric(self, name, **labels):
        labels = {k: str(v) for k, v in labels.items()}
        for m in self.metrics["metrics"]:
            if m["name"] == name and m["labels"] == labels:
                return m
        raise AssertionError(f"metric {name!r} {labels} not recorded")


@pytest.fixture(scope="module")
def office_runs():
    """One disabled and one enabled run of the same system + noise."""
    scenario = repro.office_scenario()
    noise = repro.WhiteNoise(level_rms=0.1, seed=1).generate(0.5)
    obs.disable()
    obs.get_tracer().reset()
    obs.get_registry().reset()
    plain = repro.MuteSystem(scenario).run(noise)
    obs.enable()
    try:
        system = repro.MuteSystem(scenario)
        traced = system.run(noise)
    finally:
        obs.disable()
    capture = _RunCapture(plain, traced, system, noise,
                          roots=list(obs.get_tracer().roots),
                          metrics=obs.get_registry().to_dict())
    obs.get_tracer().reset()
    obs.get_registry().reset()
    return capture


class TestPipelineInstrumentation:
    def test_enabling_does_not_change_outputs_bitwise(self, office_runs):
        plain, traced = office_runs.plain, office_runs.traced
        assert np.array_equal(plain.residual, traced.residual)
        assert np.array_equal(plain.antinoise, traced.antinoise)
        assert np.array_equal(plain.disturbance_open,
                              traced.disturbance_open)
        assert np.array_equal(plain.disturbance_at_ear,
                              traced.disturbance_at_ear)
        assert plain.n_future_used == traced.n_future_used

    def test_run_trace_has_stage_children(self, office_runs):
        tracer = office_runs.tracer
        run_span = tracer.find("mute.run")
        assert run_span is not None
        names = [c.name for c in run_span.children]
        assert names == ["mute.prepare", "mute.adapt", "mute.collect"]
        prepare = run_span.children[0]
        assert [c.name for c in prepare.children] == [
            "mute.prepare.propagate", "mute.prepare.relay",
            "mute.prepare.align"]
        assert tracer.find("mute.estimate_secondary") is not None

    def test_stage_latencies_cover_end_to_end_wall_time(self, office_runs):
        system, noise = office_runs.system, office_runs.noise
        report = obs.timing_budget_report(
            office_runs.tracer, system.lookahead_budget, system.sample_rate,
            n_samples=noise.size)
        # Acceptance criterion: stages sum to within 5% of the run.
        assert 0.95 <= report.coverage <= 1.02
        assert report.over_budget() == []
        assert {s.stage for s in report.stages} == {
            "mute.prepare", "mute.adapt", "mute.collect"}
        text = report.report()
        assert "mute.adapt" in text and "deadline" in text
        json.dumps(report.to_dict())

    def test_engine_metrics_recorded(self, office_runs):
        assert office_runs.metric("mute.runs")["value"] >= 1
        assert office_runs.metric("adaptive.samples", engine="lancfilter",
                                  backend="loop")["value"] > 0
        misadjustment = office_runs.metric("adaptive.misadjustment",
                                           engine="lancfilter",
                                           backend="loop")
        assert misadjustment["writes"] >= 1
        # Cancelling, not diverging.
        assert 0.0 < misadjustment["value"] < 1.0
        assert office_runs.metric("adaptive.run_s", engine="lancfilter",
                                  backend="loop")["count"] >= 1
        assert office_runs.metric("relay.forwarded_samples",
                                  relay="ideal")["value"] > 0

    def test_timing_report_without_trace_rejected(self):
        budget = repro.LookaheadBudget(acoustic_lead_s=0.01)
        with pytest.raises(ConfigurationError):
            obs.timing_budget_report(Tracer(), budget, 8000.0, 100)

    def test_over_budget_flagged_for_slow_stage(self):
        # A stage costing ~5 ms/sample cannot meet a 125 us + 0 lookahead
        # deadline at block size 1.
        tracer = Tracer()
        with tracer.span("mute.run"):
            with tracer.span("mute.adapt"):
                time.sleep(0.05)
        tight = repro.LookaheadBudget(acoustic_lead_s=0.0)
        report = obs.timing_budget_report(tracer, tight, 8000.0,
                                          n_samples=10, block_size=1)
        assert report.over_budget() == ["mute.adapt"]
        assert "OVER" in report.report()

    def test_obs_report_bundle(self, office_runs):
        system, noise = office_runs.system, office_runs.noise
        budget_report = obs.timing_budget_report(
            office_runs.tracer, system.lookahead_budget, system.sample_rate,
            n_samples=noise.size)
        registry = obs.MetricsRegistry()
        document = obs.obs_report_dict(office_runs.tracer, registry,
                                       budget_report)
        assert document["schema"] == obs.REPORT_SCHEMA
        assert document["trace"]["schema"] == obs.TRACE_SCHEMA
        assert document["metrics"]["schema"] == obs.METRICS_SCHEMA
        assert document["budget"]["over_budget"] == []
        round_tripped = json.loads(obs.obs_report_json(
            office_runs.tracer, registry, budget_report))
        assert round_tripped["budget"]["stages"] == \
            document["budget"]["stages"]


class TestEngineHooks:
    def _signals(self, n=1500, seed=3):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(n)
        s = np.array([1.0, 0.4, 0.1])
        d = -np.convolve(x, s)[:n]
        return x, d, s

    def test_streaming_lanc_block_histogram(self):
        x, d, s = self._signals()
        lanc = LancFilter(n_future=4, n_past=16, secondary_path=s, mu=0.2)
        stream = StreamingLanc(lanc, secondary_path_true=s)
        obs.enable()
        stream.feed(x)
        for start in range(0, 1024, 128):
            stream.process(d[start:start + 128])
        obs.disable()
        hist = obs.get_registry().histogram("adaptive.block_update_s",
                                            engine="streaminglanc",
                                            backend="loop")
        assert hist.count == 8
        assert obs.get_registry().counter(
            "adaptive.samples", engine="streaminglanc",
            backend="loop").value == 1024

    def test_block_lanc_histogram_and_run_metrics(self):
        x, d, s = self._signals()
        blanc = BlockLancFilter(n_future=4, n_past=16, secondary_path=s,
                                block_size=256)
        obs.enable()
        blanc.run(x, d)
        obs.disable()
        reg = obs.get_registry()
        assert reg.histogram("adaptive.block_update_s",
                             engine="blocklancfilter").count == \
            -(-x.size // 256)
        assert reg.counter("adaptive.samples",
                           engine="blocklancfilter").value == x.size

    def test_lms_rls_apa_record_metrics(self):
        from repro.core.adaptive.apa import ApaFilter
        from repro.core.adaptive.rls import RlsFilter
        x, d, __ = self._signals(n=400)
        obs.enable()
        repro.LmsFilter(n_taps=8).run(x, d)
        RlsFilter(n_taps=8).run(x, d)
        ApaFilter(n_taps=8, order=2).run(x, d)
        obs.disable()
        reg = obs.get_registry()
        for engine in ("lmsfilter", "rlsfilter", "apafilter"):
            assert reg.counter("adaptive.samples", engine=engine,
                               backend="loop").value == 400
            assert reg.gauge("adaptive.misadjustment", engine=engine,
                             backend="loop").writes == 1

    def test_profile_switcher_metrics(self):
        rng = np.random.default_rng(0)
        fs = 8000.0
        t = np.arange(2048) / fs
        hum = np.sin(2 * np.pi * 120.0 * t)
        hiss = rng.standard_normal(2048)
        classifier = ProfileClassifier(sample_rate=fs)
        classifier.register("hum", hum)
        classifier.register("hiss", hiss)
        lanc = LancFilter(n_future=2, n_past=8,
                          secondary_path=np.array([1.0]))
        switcher = PredictiveProfileSwitcher(classifier, lanc)
        obs.enable()
        switcher.observe(hum, 0)
        switcher.observe(hiss, 2048)
        switcher.observe(hum, 4096)     # second visit: cache hit
        obs.disable()
        reg = obs.get_registry()
        assert reg.counter("profiles.switches", to="hum").value == 2
        assert reg.counter("profiles.switches", to="hiss").value == 1
        assert reg.counter("profiles.cache_hits").value == 1
        assert reg.counter("profiles.cache_misses").value == 2
        assert reg.histogram("profiles.swap_s").count == 3

    def test_analog_relay_demod_metrics(self):
        relay = repro.AnalogRelay(audio_rate=8000.0, rf_rate=48000.0)
        audio = repro.WhiteNoise(level_rms=0.1, seed=2).generate(0.25)
        obs.enable()
        relay.forward(audio)
        relay.audio_snr_db(audio)
        obs.disable()
        reg = obs.get_registry()
        assert obs.get_tracer().find("relay.forward") is not None
        assert reg.histogram("relay.demod_s", relay="analog").count >= 1
        snr = reg.gauge("relay.audio_snr_db", relay="analog")
        assert snr.writes == 1 and snr.value > 0.0


# ---------------------------------------------------------------------------
# The obs-report CLI (smoke: keeps the command and schema exercised)
# ---------------------------------------------------------------------------
class TestObsReportCli:
    def test_text_report(self):
        out = io.StringIO()
        code = main(["obs-report", "--duration", "0.5"], out=out)
        assert code == 0
        text = out.getvalue()
        assert "span tree" in text
        assert "mute.run" in text
        assert "Timing budget" in text
        assert "adaptive.misadjustment" in text

    def test_json_report_schema(self):
        out = io.StringIO()
        code = main(["obs-report", "--duration", "0.5", "--json"], out=out)
        assert code == 0
        document = json.loads(out.getvalue())
        assert document["schema"] == obs.REPORT_SCHEMA
        assert document["trace"]["schema"] == obs.TRACE_SCHEMA
        assert document["metrics"]["schema"] == obs.METRICS_SCHEMA
        budget = document["budget"]
        assert budget["coverage"] >= 0.95
        assert {s["stage"] for s in budget["stages"]} >= {
            "mute.prepare", "mute.adapt"}
        root = document["trace"]["spans"]
        assert any(s["name"] == "mute.run" for s in root)

    def test_out_file(self, tmp_path):
        path = tmp_path / "report.json"
        out = io.StringIO()
        code = main(["obs-report", "--duration", "0.5", "--out", str(path)],
                    out=out)
        assert code == 0
        document = json.loads(path.read_text())
        assert document["schema"] == obs.REPORT_SCHEMA

    def test_bad_duration_rejected(self):
        out = io.StringIO()
        assert main(["obs-report", "--duration", "-1"], out=out) == 2

    def test_leaves_observability_disabled(self):
        main(["obs-report", "--duration", "0.5"], out=io.StringIO())
        assert not obs.enabled()
