"""Tonal sources: tones, harmonic stacks, hum, sweeps."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.signals import HarmonicStack, MachineHum, MultiTone, Tone, ToneSweep
from repro.utils.spectral import welch_psd


def _dominant_freq(signal, fs=8000.0):
    freqs, psd = welch_psd(signal, fs, nperseg=2048)
    return freqs[np.argmax(psd)]


class TestTone:
    def test_frequency(self):
        assert _dominant_freq(Tone(440.0).generate(2.0)) == pytest.approx(
            440.0, abs=8.0)

    def test_phase_offset(self):
        a = Tone(100.0, phase=0.0).generate(0.1)
        b = Tone(100.0, phase=np.pi).generate(0.1)
        np.testing.assert_allclose(a, -b, atol=1e-9)

    def test_rejects_nyquist(self):
        with pytest.raises(ConfigurationError):
            Tone(4000.0, sample_rate=8000.0)

    def test_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            Tone(0.0)


class TestMultiTone:
    def test_contains_all_components(self):
        x = MultiTone([500.0, 1500.0], seed=0).generate(2.0)
        freqs, psd = welch_psd(x, 8000.0, nperseg=2048)
        floor = np.median(psd)
        for f in (500.0, 1500.0):
            idx = np.argmin(np.abs(freqs - f))
            assert psd[idx] > 100 * floor

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            MultiTone([])

    def test_rejects_mismatched_amplitudes(self):
        with pytest.raises(ConfigurationError):
            MultiTone([100.0], amplitudes=[1.0, 2.0])


class TestHarmonicStack:
    def test_fundamental_strongest(self):
        x = HarmonicStack(200.0, n_harmonics=5, seed=0).generate(2.0)
        assert _dominant_freq(x) == pytest.approx(200.0, abs=8.0)

    def test_harmonics_present(self):
        x = HarmonicStack(250.0, n_harmonics=4, decay=0.8, seed=1) \
            .generate(2.0)
        freqs, psd = welch_psd(x, 8000.0, nperseg=2048)
        floor = np.median(psd)
        for k in (1, 2, 3):
            idx = np.argmin(np.abs(freqs - 250.0 * k))
            assert psd[idx] > 30 * floor

    def test_harmonics_clipped_at_nyquist(self):
        # 1500 Hz fundamental, 6 harmonics: 4.5+ kHz must be absent.
        x = HarmonicStack(1500.0, n_harmonics=6, seed=0).generate(1.0)
        assert np.all(np.isfinite(x))

    def test_rejects_bad_decay(self):
        with pytest.raises(ConfigurationError):
            HarmonicStack(100.0, decay=0.0)


class TestMachineHum:
    def test_defaults_are_120hz(self):
        x = MachineHum(seed=0).generate(2.0)
        assert _dominant_freq(x) == pytest.approx(120.0, abs=8.0)

    def test_wobble_modulates_amplitude(self):
        steady = MachineHum(wobble_depth=0.0, seed=0).generate(3.0)
        wobbly = MachineHum(wobble_depth=0.3, wobble_rate=1.0, seed=0) \
            .generate(3.0)
        window = 800

        def envelope_var(x):
            env = np.sqrt(np.convolve(x ** 2, np.full(window, 1 / window),
                                      mode="valid"))
            return np.var(env)

        assert envelope_var(wobbly) > 3 * envelope_var(steady)

    def test_rejects_bad_wobble(self):
        with pytest.raises(ConfigurationError):
            MachineHum(wobble_depth=1.5)


class TestToneSweep:
    def test_energy_spread_across_band(self):
        x = ToneSweep(100.0, 3800.0, seed=0).generate(4.0)
        freqs, psd = welch_psd(x, 8000.0, nperseg=1024)
        mask = (freqs > 200) & (freqs < 3600)
        # A sweep's long-term PSD is roughly flat over the swept range.
        band = 10 * np.log10(psd[mask] + 1e-20)
        assert np.ptp(band) < 12.0

    def test_starts_low_ends_high(self):
        x = ToneSweep(200.0, 3000.0).generate(2.0)
        fs = 8000.0
        head = _dominant_freq(x[: int(0.25 * fs)], fs)
        tail = _dominant_freq(x[-int(0.25 * fs):], fs)
        assert head < 700.0 < tail

    def test_rejects_out_of_band(self):
        with pytest.raises(ConfigurationError):
            ToneSweep(100.0, 4100.0, sample_rate=8000.0)
