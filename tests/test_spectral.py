"""Spectral utilities: PSD, band energies, signatures, A-weighting."""

import numpy as np
import pytest

from repro.errors import SignalError
from repro.utils import spectral


def _tone(freq, fs=8000.0, seconds=1.0):
    t = np.arange(int(fs * seconds)) / fs
    return np.sin(2 * np.pi * freq * t)


class TestWelchPsd:
    def test_peak_at_tone_frequency(self):
        freqs, psd = spectral.welch_psd(_tone(1000.0), 8000.0)
        assert abs(freqs[np.argmax(psd)] - 1000.0) < 32.0

    def test_clamps_nperseg(self):
        freqs, psd = spectral.welch_psd(np.ones(16), 8000.0, nperseg=512)
        assert psd.size == 9  # nperseg clamped to 16

    def test_rejects_empty(self):
        with pytest.raises(SignalError):
            spectral.welch_psd(np.zeros(2), 8000.0)


class TestBandEnergies:
    def test_energy_lands_in_right_band(self):
        energies = spectral.band_energies(_tone(1500.0), 8000.0,
                                          [0, 1000, 2000, 4000])
        assert np.argmax(energies) == 1

    def test_rejects_unsorted_edges(self):
        with pytest.raises(SignalError):
            spectral.band_energies(_tone(100.0), 8000.0, [0, 2000, 1000])


class TestSignature:
    def test_normalized(self):
        sig = spectral.band_energy_signature(_tone(440.0), 8000.0)
        assert np.sum(sig) == pytest.approx(1.0)

    def test_level_invariant(self):
        quiet = spectral.band_energy_signature(0.01 * _tone(440.0), 8000.0)
        loud = spectral.band_energy_signature(10.0 * _tone(440.0), 8000.0)
        np.testing.assert_allclose(quiet, loud, atol=1e-9)

    def test_silence_is_uniform(self):
        sig = spectral.band_energy_signature(np.zeros(4096), 8000.0,
                                             n_bands=8)
        np.testing.assert_allclose(sig, np.full(8, 1 / 8))

    def test_different_sounds_differ(self):
        low = spectral.band_energy_signature(_tone(200.0), 8000.0)
        high = spectral.band_energy_signature(_tone(3000.0), 8000.0)
        assert np.sum(np.abs(low - high)) > 0.5


class TestAWeighting:
    def test_unity_near_1khz(self):
        assert spectral.a_weighting_db(1000.0) == pytest.approx(0.0, abs=0.5)

    def test_strong_attenuation_at_low_freq(self):
        assert spectral.a_weighting_db(50.0) < -25.0

    def test_mild_boost_in_presence_region(self):
        assert spectral.a_weighting_db(2500.0) > 0.0

    def test_vectorized(self):
        out = spectral.a_weighting_db([100.0, 1000.0, 4000.0])
        assert out.shape == (3,)


class TestOctaveBands:
    def test_doubling(self):
        edges = spectral.octave_band_edges(62.5, 4000.0)
        np.testing.assert_allclose(edges[1:] / edges[:-1], 2.0)

    def test_rejects_inverted(self):
        with pytest.raises(SignalError):
            spectral.octave_band_edges(4000.0, 100.0)


class TestCancellationSpectrum:
    def test_uniform_attenuation(self):
        rng = np.random.default_rng(3)
        before = rng.standard_normal(8192)
        after = 0.1 * before
        freqs, spec = spectral.cancellation_spectrum_db(before, after, 8000.0)
        assert np.median(spec) == pytest.approx(-20.0, abs=1.0)

    def test_no_cancellation_is_zero(self):
        rng = np.random.default_rng(4)
        x = rng.standard_normal(8192)
        __, spec = spectral.cancellation_spectrum_db(x, x, 8000.0)
        np.testing.assert_allclose(spec, 0.0, atol=1e-6)

    def test_spectral_selectivity(self):
        # Attenuate only the low band; the spectrum should show it there.
        rng = np.random.default_rng(5)
        before = rng.standard_normal(16384)
        from scipy import signal as sps
        sos = sps.butter(6, 1000 / 4000, btype="highpass", output="sos")
        after = sps.sosfiltfilt(sos, before)
        freqs, spec = spectral.cancellation_spectrum_db(before, after, 8000.0)
        low = spec[(freqs > 50) & (freqs < 400)].mean()
        high = spec[(freqs > 2000) & (freqs < 3500)].mean()
        assert low < -15.0
        assert abs(high) < 2.0


class TestSmoothing:
    def test_preserves_constant(self):
        np.testing.assert_allclose(
            spectral.smooth_spectrum_db(np.full(32, -7.0), window=5), -7.0)

    def test_reduces_variance(self):
        rng = np.random.default_rng(6)
        noisy = rng.standard_normal(256)
        smooth = spectral.smooth_spectrum_db(noisy, window=9)
        assert np.var(smooth) < np.var(noisy)

    def test_short_input_passthrough(self):
        x = np.array([1.0, 2.0])
        np.testing.assert_array_equal(
            spectral.smooth_spectrum_db(x, window=5), x)


class TestSpectrogram:
    def test_shapes(self):
        x = _tone(1000.0, seconds=2.0)
        freqs, times, sxx = spectral.spectrogram(x, 8000.0, nperseg=256)
        assert freqs.size == 129
        assert sxx.shape == (freqs.size, times.size)

    def test_tone_concentrated(self):
        x = _tone(1000.0, seconds=2.0)
        freqs, __, sxx = spectral.spectrogram(x, 8000.0, nperseg=256)
        peak_bin = int(np.argmax(sxx.mean(axis=1)))
        assert abs(freqs[peak_bin] - 1000.0) < 50.0

    def test_time_resolution_sees_onset(self):
        quiet = np.zeros(8000)
        loud = _tone(500.0, seconds=1.0)
        x = np.concatenate([quiet, loud])
        __, times, sxx = spectral.spectrogram(x, 8000.0, nperseg=256)
        power = sxx.sum(axis=0)
        first_half = power[times < 0.9].mean()
        second_half = power[times > 1.1].mean()
        assert second_half > 100 * max(first_half, 1e-20)


class TestNanAwareSpectra:
    def test_smoothing_preserves_nan_positions(self):
        values = np.full(32, -10.0)
        values[10:13] = np.nan
        smooth = spectral.smooth_spectrum_db(values, window=5)
        assert np.isnan(smooth[11])
        # Neighbors are not poisoned by the NaN hole.
        assert smooth[8] == pytest.approx(-10.0)
        assert smooth[15] == pytest.approx(-10.0)

    def test_min_signal_db_masks_quiet_bins(self):
        # A tone: only bins near it carry signal; the rest become NaN.
        x = _tone(1000.0, seconds=2.0)
        freqs, spec = spectral.cancellation_spectrum_db(
            x, 0.1 * x, 8000.0, min_signal_db=-30.0)
        peak_bin = int(np.argmin(np.abs(freqs - 1000.0)))
        far = (freqs > 3000)
        assert not np.isnan(spec[peak_bin])
        assert np.isnan(spec[far]).mean() > 0.9
        assert spec[peak_bin] == pytest.approx(-20.0, abs=1.0)

    def test_none_keeps_all_bins(self):
        x = _tone(1000.0, seconds=1.0)
        __, spec = spectral.cancellation_spectrum_db(x, x, 8000.0,
                                                     min_signal_db=None)
        assert not np.any(np.isnan(spec))
