"""Experiment runners — fast smoke runs asserting each figure's claim.

Durations are reduced relative to the benchmarks, but every qualitative
property the paper's figure demonstrates is asserted here.
"""

import dataclasses

import numpy as np
import pytest

from repro.acoustics import Point
from repro.acoustics.rir import RirSettings
from repro.eval.experiments import (
    bench_scenario,
    run_convergence,
    run_fig12,
    run_fig13,
    run_fig14,
    run_fig15,
    run_fig16,
    run_fig17,
    run_fig18,
    run_fig19,
    run_timing,
)


@pytest.fixture(scope="module")
def fast_bench():
    """The bench with first-order reflections only (5x faster RIRs)."""
    scen = bench_scenario()
    return dataclasses.replace(scen, rir_settings=RirSettings(max_order=2))


class TestFig12:
    @pytest.fixture(scope="class")
    def result(self, fast_bench):
        return run_fig12(duration_s=6.0, scenario=fast_bench)

    def test_bose_active_only_low_frequency(self, result):
        bose = result.curves["Bose_Active"]
        assert bose.mean_db(0, 800) < -8.0
        assert bose.mean_db(2500, 4000) > -1.0

    def test_mute_cancels_across_full_band(self, result):
        mute = result.curves["MUTE_Hollow"]
        assert mute.mean_db(0, 1000) < -10.0
        assert mute.mean_db(1000, 3000) < -10.0

    def test_mute_beats_bose_active_sub_1k(self, result):
        assert result.mute_vs_bose_active_sub1k_db < -3.0

    def test_mute_hollow_close_to_bose_overall(self, result):
        assert abs(result.mute_hollow_vs_bose_overall_db) < 5.0

    def test_mute_passive_beats_bose_overall(self, result):
        assert result.mute_passive_vs_bose_overall_db < -5.0

    def test_report_renders(self, result):
        text = result.report()
        assert "MUTE_Hollow" in text and "Bose_Overall" in text


class TestFig13:
    def test_low_frequency_weakness(self):
        result = run_fig13()
        assert result.response_at_50hz < 0.25 * result.response_at_peak
        assert 500.0 < result.peak_hz < 2500.0

    def test_model_matches_fir_measurement(self):
        result = run_fig13()
        band = (result.freqs > 300) & (result.freqs < 3000)
        np.testing.assert_allclose(result.measured_response[band],
                                   result.response[band], atol=0.05)

    def test_report_renders(self):
        assert "frequency response" in run_fig13().report()


class TestFig14:
    def test_mute_competitive_on_every_sound(self, fast_bench):
        result = run_fig14(duration_s=6.0, scenario=fast_bench)
        assert set(result.panels) == {"male voice", "female voice",
                                      "construction", "music"}
        for sound in result.panels:
            # Clearly cancelling on every workload, in Bose's vicinity.
            # (Synthetic sources hop spectra faster than real recordings,
            # so the gap is looser than the paper's 0.9 dB.)
            assert result.mean_gap_db(sound) < 10.0
            mute = result.panels[sound]["MUTE_Hollow"]
            assert mute.mean_db() < -6.0


class TestFig15:
    def test_every_subject_prefers_mute(self, fast_bench):
        result = run_fig15(duration_s=5.0, scenario=fast_bench)
        assert result.mute_wins("music") == result.n_subjects
        assert result.mute_wins("voice") == result.n_subjects

    def test_report_renders(self, fast_bench):
        result = run_fig15(duration_s=5.0, scenario=fast_bench)
        assert "ratings" in result.report()


class TestFig16:
    def test_lookahead_helps(self, fast_bench):
        result = run_fig16(duration_s=5.0, scenario=fast_bench)
        means = result.monotone_improvement()
        # Lower bound is clearly worst; the sweep's largest extra
        # lookahead is clearly better.
        assert means[0] > means[-1] + 2.0
        assert result.future_taps["Lower Bound"] == 0

    def test_future_taps_increase_along_sweep(self, fast_bench):
        result = run_fig16(duration_s=5.0, scenario=fast_bench)
        taps = list(result.future_taps.values())
        assert taps == sorted(taps)


class TestFig17:
    def test_switching_adds_cancellation(self, fast_bench):
        result = run_fig17(duration_s=12.0, scenario=fast_bench)
        assert result.mean_additional_db < -1.0   # paper: ~-3 dB
        assert result.cache_hits > 0

    def test_report_renders(self, fast_bench):
        result = run_fig17(duration_s=12.0, scenario=fast_bench)
        assert "switching" in result.report()


class TestFig18:
    def test_signs_detected(self, fast_bench):
        result = run_fig18(duration_s=1.5, scenario=fast_bench)
        assert result.correct_signs()
        lags = [m.lag_s for m in result.measured.values()]
        assert max(lags) > 0 > min(lags)


class TestFig19:
    def test_association_accuracy(self):
        result = run_fig19(duration_s=1.0)
        assert result.accuracy() >= 0.75
        # The no-relay case must be exercised and correct.
        near_client = [k for k in result.expected
                       if result.expected[k] is None]
        assert near_client
        assert all(result.decisions[k] is None for k in near_client)


class TestTiming:
    def test_headphone_misses_mute_meets(self):
        result = run_timing()
        verdicts = {row[0]: row[3] for row in result.device_rows}
        assert verdicts["headphone-asic (conventional)"] == "NO"
        assert verdicts["TMS320C6713 (MUTE bench)"] == "yes"
        assert 2.0 < result.headphone_overrun_ratio < 5.0

    def test_lookahead_table_eq4(self):
        result = run_timing()
        one_meter = [r for r in result.distance_rows if r[0] == "1.00"][0]
        assert float(one_meter[1]) == pytest.approx(2.94, abs=0.05)


class TestConvergence:
    def test_hum_converges_and_switching_reduces_spikes(self, fast_bench):
        result = run_convergence(duration_s=10.0, scenario=fast_bench)
        assert result.steady_hum_rms < 0.5 * result.initial_hum_rms
        assert result.onset_spike_switching < result.onset_spike_single
        assert result.spike_reduction_db() < -0.5


class TestFig6:
    def test_profiles_separable(self, fast_bench):
        from repro.eval.experiments import run_fig6

        result = run_fig6(duration_s=12.0)
        assert result.signature_distance > 0.3
        assert result.classifier_accuracy > 0.55
        assert "Figure 6" in result.report()
