"""Coverage for corners the focused suites skip."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SignalError
from repro.eval.experiments.common import (
    AMBIENT_SPL_DB,
    bench_scenario,
    build_system,
    default_config,
    standard_sources,
    white_noise,
)
from repro.hardware import bose_qc35_earcup
from repro.utils.buffers import RingBuffer
from repro.utils.units import amplitude_for_spl, spl_db
from repro.wireless import AnalogRelay, pa_nonlinearity


class TestExperimentCommon:
    def test_bench_scenario_geometry(self):
        scen = bench_scenario()
        # Relay clearly closer to the source than the client: multi-ms lead.
        assert scen.nominal_lead_s() > 5e-3
        # Relay near the wall: the non-minimum-phase ingredient.
        assert scen.relays[0].y < 0.5

    def test_default_config_overrides(self):
        config = default_config(mu=0.42)
        assert config.mu == 0.42
        assert config.n_past == 512     # untouched default

    def test_build_system_bose_earcup(self):
        system = build_system(earcup="bose")
        assert system.config.earcup is not None

    def test_build_system_open_ear(self):
        system = build_system()
        assert system.config.earcup is None

    def test_standard_sources_complete(self):
        sources = standard_sources()
        assert set(sources) == {"male voice", "female voice",
                                "construction", "music"}
        for source in sources.values():
            assert source.generate(0.25).size == 2000

    def test_ambient_level_calibration(self):
        # The default level corresponds to roughly the paper's 67 dB SPL
        # at the source (attenuating over distance to the mic).
        noise = white_noise().generate(1.0)
        assert spl_db(noise) == pytest.approx(74.0, abs=1.0)
        assert AMBIENT_SPL_DB == 67.0


class TestSplHelpers:
    def test_amplitude_for_spl_roundtrip(self):
        amp = amplitude_for_spl(60.0)
        signal = np.full(100, amp)
        assert spl_db(signal) == pytest.approx(60.0, abs=1e-6)


class TestRingBufferEdge:
    def test_extend_empty_is_noop(self):
        rb = RingBuffer(4)
        rb.push(1.0)
        rb.extend(np.array([]))
        assert rb.newest() == 1.0

    def test_exact_capacity_extend(self):
        rb = RingBuffer(3)
        rb.extend(np.array([1.0, 2.0, 3.0]))
        np.testing.assert_array_equal(rb.recent(3), [1.0, 2.0, 3.0])


class TestWirelessEdges:
    def test_pa_nonlinearity_silence(self):
        silence = np.zeros(16, dtype=complex)
        out = pa_nonlinearity(silence)
        np.testing.assert_array_equal(out, silence)

    def test_relay_forward_short_block(self):
        relay = AnalogRelay(seed=1)
        x = np.sin(2 * np.pi * 500 * np.arange(256) / 8000.0) * 0.2
        out = relay.forward(x)
        assert out.size == 256
        assert np.all(np.isfinite(out))


class TestMainModuleImport:
    def test_package_main_importable(self):
        import repro.__main__  # noqa: F401  (must not execute main)

    def test_version_exposed(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_public_all_importable(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name


class TestEarcupReuse:
    def test_two_instances_identical(self):
        a = bose_qc35_earcup()
        b = bose_qc35_earcup()
        freqs = np.linspace(50, 4000, 32)
        np.testing.assert_allclose(a.insertion_loss_db(freqs),
                                   b.insertion_loss_db(freqs))
