"""Multi-reference LANC and the multi-source scene builder."""

import numpy as np
import pytest

from repro.acoustics import Point, Room
from repro.acoustics.rir import RirSettings
from repro.core import (
    LancFilter,
    MultiRefLancFilter,
    Scenario,
    build_multisource_scene,
)
from repro.errors import ConfigurationError, LookaheadError
from repro.signals import BandlimitedNoise, WhiteNoise
from repro.utils.units import cancellation_db

SECONDARY = np.array([0.0, 1.0, 0.2])


def _two_source_toy(rng, T=10000):
    """Two independent sources, each with its own aligned reference."""
    n1 = rng.standard_normal(T)
    n2 = rng.standard_normal(T)
    delta = 14
    g1 = np.array([1.0, 0.6])
    g2 = np.array([1.0, -0.4, 0.2])

    def shift(sig):
        out = np.zeros(T)
        out[delta:] = sig[:-delta]
        return out

    x1 = shift(np.convolve(n1, g1)[:T])
    x2 = shift(np.convolve(n2, g2)[:T])
    d = shift(n1) + shift(n2)
    return [x1, x2], d


class TestMultiRefLancFilter:
    def test_cancels_two_source_mixture(self, rng):
        refs, d = _two_source_toy(rng)
        multi = MultiRefLancFilter([6, 6], 40, SECONDARY, mu=0.3)
        result = multi.run(refs, d, secondary_path_true=SECONDARY)
        tail = slice(d.size // 2, None)
        assert cancellation_db(d[tail], result.error[tail]) < -15.0

    def test_beats_single_reference(self, rng):
        refs, d = _two_source_toy(rng)
        single = LancFilter(6, 40, SECONDARY, mu=0.3)
        r_single = single.run(refs[0], d, secondary_path_true=SECONDARY)
        multi = MultiRefLancFilter([6, 6], 40, SECONDARY, mu=0.3)
        r_multi = multi.run(refs, d, secondary_path_true=SECONDARY)
        tail = slice(d.size // 2, None)
        single_db = cancellation_db(d[tail], r_single.error[tail])
        multi_db = cancellation_db(d[tail], r_multi.error[tail])
        assert multi_db < single_db - 6.0

    def test_one_branch_equals_lanc(self, rng):
        """Degenerate case: one branch must match LancFilter exactly."""
        refs, d = _two_source_toy(rng, T=3000)
        lanc = LancFilter(6, 24, SECONDARY, mu=0.3)
        r1 = lanc.run(refs[0], d)
        multi = MultiRefLancFilter([6], 24, SECONDARY, mu=0.3)
        r2 = multi.run([refs[0]], d)
        np.testing.assert_allclose(r1.error, r2.error, atol=1e-10)

    def test_per_branch_future_taps(self):
        multi = MultiRefLancFilter([4, 10], 16, SECONDARY)
        assert multi.taps[0].size == 20
        assert multi.taps[1].size == 26

    def test_set_get_taps(self):
        multi = MultiRefLancFilter([2, 3], 4, SECONDARY)
        new = [np.ones(6), np.full(7, 2.0)]
        multi.set_taps(new)
        got = multi.get_taps()
        got[0][0] = 99.0
        assert multi.taps[0][0] == 1.0

    def test_set_taps_shape_checked(self):
        multi = MultiRefLancFilter([2, 3], 4, SECONDARY)
        with pytest.raises(ConfigurationError):
            multi.set_taps([np.ones(6)])
        with pytest.raises(ConfigurationError):
            multi.set_taps([np.ones(5), np.ones(7)])

    def test_reference_count_checked(self, rng):
        refs, d = _two_source_toy(rng, T=1000)
        multi = MultiRefLancFilter([2, 2], 8, SECONDARY)
        with pytest.raises(ConfigurationError):
            multi.run([refs[0]], d)

    def test_empty_branches_rejected(self):
        with pytest.raises(ConfigurationError):
            MultiRefLancFilter([], 8, SECONDARY)

    def test_reset(self, rng):
        refs, d = _two_source_toy(rng, T=2000)
        multi = MultiRefLancFilter([2, 2], 8, SECONDARY, mu=0.3)
        multi.run(refs, d)
        multi.reset()
        assert all(np.all(t == 0.0) for t in multi.taps)


class TestBuildMultisourceScene:
    @pytest.fixture(scope="class")
    def layout(self):
        room = Room(6.0, 5.0, 3.0, absorption=0.4)
        scenario = Scenario(
            room=room, source=Point(1, 1, 1.2), client=Point(4.5, 2.5, 1.2),
            relays=(Point(1.2, 0.7, 1.3), Point(1.0, 4.2, 1.3)),
            rir_settings=RirSettings(max_order=1),
        )
        sources = [Point(0.9, 0.9, 1.3), Point(0.8, 4.3, 1.3)]
        return scenario, sources

    def test_builds_aligned_branches(self, layout):
        scenario, sources = layout
        waves = [WhiteNoise(seed=i, level_rms=0.05).generate(1.0)
                 for i in range(2)]
        scene = build_multisource_scene(scenario, sources, waves, seed=1)
        assert len(scene.references) == 2
        assert all(n > 0 for n in scene.n_futures)
        assert scene.disturbance.size == waves[0].size

    def test_source_relay_count_mismatch(self, layout):
        scenario, sources = layout
        waves = [WhiteNoise(seed=0, level_rms=0.05).generate(0.5)]
        with pytest.raises(ConfigurationError):
            build_multisource_scene(scenario, sources[:1], waves)

    def test_waveform_length_mismatch(self, layout):
        scenario, sources = layout
        waves = [WhiteNoise(seed=0, level_rms=0.05).generate(0.5),
                 WhiteNoise(seed=1, level_rms=0.05).generate(0.6)]
        with pytest.raises(ConfigurationError):
            build_multisource_scene(scenario, sources, waves)

    def test_no_lookahead_rejected(self, layout):
        scenario, __ = layout
        # Sources right next to the client: relays hear them late.
        bad_sources = [Point(4.4, 2.4, 1.2), Point(4.6, 2.6, 1.2)]
        waves = [BandlimitedNoise(100, 3000, seed=i, level_rms=0.05)
                 .generate(0.5) for i in range(2)]
        with pytest.raises(LookaheadError):
            build_multisource_scene(scenario, bad_sources, waves)
