"""RLS engine and the block LANC variant."""

import numpy as np
import pytest

from repro.core import BlockLancFilter, LancFilter, LmsFilter, RlsFilter
from repro.errors import ConfigurationError


class TestRlsFilter:
    def test_identifies_system(self, rng):
        h = np.array([0.4, -0.2, 0.1])
        x = rng.standard_normal(1500)
        d = np.convolve(x, h)[:1500]
        rls = RlsFilter(n_taps=6, forgetting=0.999)
        result = rls.run(x, d)
        np.testing.assert_allclose(result.taps[:3], h, atol=1e-3)

    def test_converges_faster_than_nlms(self, rng):
        """The §6 'enhanced filtering methods known to converge faster'."""
        h = rng.standard_normal(16) * 0.3
        x = rng.standard_normal(4000)
        d = np.convolve(x, h)[:4000]

        rls_errors = RlsFilter(n_taps=16).run(x, d).error
        nlms_errors = LmsFilter(n_taps=16, mu=0.5).run(x, d).error

        def settle_index(errors, threshold):
            below = np.abs(errors) < threshold
            above = np.flatnonzero(~below)
            return above[-1] + 1 if above.size else 0

        threshold = 0.05 * np.sqrt(np.mean(d ** 2))
        assert settle_index(rls_errors, threshold) < \
            settle_index(nlms_errors, threshold)

    def test_tracks_changing_system(self, rng):
        x = rng.standard_normal(4000)
        d = np.concatenate([1.0 * x[:2000], -1.0 * x[2000:]])
        rls = RlsFilter(n_taps=1, forgetting=0.99)
        result = rls.run(x, d)
        assert result.taps[0] == pytest.approx(-1.0, abs=0.02)

    def test_reset(self, rng):
        rls = RlsFilter(n_taps=4)
        rls.run(rng.standard_normal(100), rng.standard_normal(100))
        rls.reset()
        np.testing.assert_array_equal(rls.taps, 0.0)

    def test_convergence_samples_metric(self, rng):
        h = np.array([0.5, 0.2])
        x = rng.standard_normal(2000)
        d = np.convolve(x, h)[:2000]
        rls = RlsFilter(n_taps=4)
        idx = rls.convergence_samples(x, d, threshold_db=-20.0)
        assert idx is not None
        assert idx < 500

    def test_rejects_bad_forgetting(self):
        with pytest.raises(ConfigurationError):
            RlsFilter(n_taps=4, forgetting=0.3)


def _lookahead_scene(rng, T=12000):
    n = rng.standard_normal(T)
    g = np.array([1.0, 1.5])
    delta = 16
    x = np.zeros(T)
    x[delta:] = np.convolve(n, g)[:T][:-delta]
    d = np.zeros(T)
    d[delta:] = n[:-delta]
    return x, d


SECONDARY = np.array([0.0, 0.0, 0.9, 0.1])


class TestBlockLancFilter:
    def test_forward_path_matches_lanc(self, rng):
        x, __ = _lookahead_scene(rng, T=500)
        taps = rng.standard_normal(3 + 8) * 0.1
        lanc = LancFilter(3, 8, np.array([1.0]))
        lanc.set_taps(taps)
        frozen = lanc.run(x, np.zeros(500), adapt=False)
        block = BlockLancFilter(3, 8, np.array([1.0]), mu=1e-15,
                                block_size=64)
        block.set_taps(taps)
        out = block.run(x, np.zeros(500))
        np.testing.assert_allclose(frozen.output, out.output, atol=1e-9)

    def test_converges_like_sample_loop(self, rng):
        x, d = _lookahead_scene(rng)
        sample = LancFilter(12, 64, SECONDARY, mu=0.5).run(x, d)
        block = BlockLancFilter(12, 64, SECONDARY, mu=0.5,
                                block_size=64).run(x, d)
        assert block.converged_error() < 1.5 * sample.converged_error()

    def test_lookahead_advantage_preserved(self, rng):
        x, d = _lookahead_scene(rng)
        causal = BlockLancFilter(0, 76, SECONDARY, mu=0.5,
                                 block_size=64).run(x, d)
        lookahead = BlockLancFilter(12, 64, SECONDARY, mu=0.5,
                                    block_size=64).run(x, d)
        assert lookahead.converged_error() < 0.3 * causal.converged_error()

    def test_taps_compatible_with_lanc(self, rng):
        x, d = _lookahead_scene(rng)
        block = BlockLancFilter(12, 64, SECONDARY, mu=0.5, block_size=64)
        block.run(x, d)
        lanc = LancFilter(12, 64, SECONDARY, mu=0.5)
        lanc.set_taps(block.get_taps())   # shapes and ordering agree
        frozen = lanc.run(x, d, adapt=False)
        tail_rms = np.sqrt(np.mean(frozen.error[-2000:] ** 2))
        d_rms = np.sqrt(np.mean(d[-2000:] ** 2))
        assert tail_rms < 0.2 * d_rms

    def test_divergence_detected(self, rng):
        x, d = _lookahead_scene(rng, T=4000)
        block = BlockLancFilter(12, 64, SECONDARY, mu=50.0, block_size=64)
        from repro.errors import ConvergenceError

        with pytest.raises(ConvergenceError):
            block.run(100 * x, 100 * d)

    def test_partial_final_block(self, rng):
        x, d = _lookahead_scene(rng, T=1000)
        block = BlockLancFilter(4, 16, SECONDARY, mu=0.3, block_size=64)
        result = block.run(x[:999], d[:999])   # 999 % 64 != 0
        assert result.error.size == 999

    def test_rejects_bad_block_size(self):
        with pytest.raises(ConfigurationError):
            BlockLancFilter(2, 8, SECONDARY, block_size=0)
