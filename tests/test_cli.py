"""The command-line interface."""

import io
import json

import pytest

from repro.cli import build_parser, main
from repro.eval import experiments


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_with_options(self):
        args = build_parser().parse_args(
            ["run", "fig13", "--duration", "2.5", "--seed", "9"])
        assert args.experiment == "fig13"
        assert args.duration == 2.5
        assert args.seed == 9

    def test_run_all_command_with_options(self):
        args = build_parser().parse_args(
            ["run-all", "--jobs", "4", "timing", "fig13"])
        assert args.command == "run-all"
        assert args.jobs == 4
        assert args.experiments == ["timing", "fig13"]

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list_prints_every_experiment(self):
        out = io.StringIO()
        code = main(["list"], out=out)
        assert code == 0
        text = out.getvalue()
        for name in experiments.experiment_names():
            assert name in text

    def test_run_fast_experiment(self):
        out = io.StringIO()
        code = main(["run", "timing"], out=out)
        assert code == 0
        assert "Eq. 4" in out.getvalue()

    def test_run_fig13(self):
        out = io.StringIO()
        code = main(["run", "fig13"], out=out)
        assert code == 0
        assert "frequency response" in out.getvalue()


class TestRunAll:
    def test_two_fast_experiments_parallel(self):
        """Tier-1 smoke: run-all --jobs 2 completes with merged obs."""
        out = io.StringIO()
        code = main(["run-all", "--jobs", "2", "timing", "fig13"], out=out)
        assert code == 0
        text = out.getvalue()
        # Per-run reports plus the merged suite summary.
        assert "Eq. 4" in text
        assert "frequency response" in text
        assert "runtime suite: 2 experiment(s), jobs=2" in text
        assert "merged metrics" in text

    def test_unknown_experiment_fails_fast(self):
        out = io.StringIO()
        code = main(["run-all", "nope"], out=out)
        assert code == 2
        assert "unknown experiment" in out.getvalue()

    def test_bad_jobs_rejected(self):
        out = io.StringIO()
        code = main(["run-all", "--jobs", "0", "timing"], out=out)
        assert code == 2

    def test_json_suite_document(self, tmp_path):
        path = tmp_path / "suite.json"
        out = io.StringIO()
        code = main(["run-all", "--out", str(path), "timing"], out=out)
        assert code == 0
        document = json.loads(path.read_text())
        assert document["schema"] == "repro.runtime.report/v2"
        assert [run["name"] for run in document["runs"]] == ["timing"]
        assert document["runs"][0]["ok"] is True
        assert "metrics" in document and "trace" in document
