"""The command-line interface."""

import io

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_with_options(self):
        args = build_parser().parse_args(
            ["run", "fig13", "--duration", "2.5", "--seed", "9"])
        assert args.experiment == "fig13"
        assert args.duration == 2.5
        assert args.seed == 9

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list_prints_every_experiment(self):
        out = io.StringIO()
        code = main(["list"], out=out)
        assert code == 0
        text = out.getvalue()
        for name in EXPERIMENTS:
            assert name in text

    def test_run_fast_experiment(self):
        out = io.StringIO()
        code = main(["run", "timing"], out=out)
        assert code == 0
        assert "Eq. 4" in out.getvalue()

    def test_run_fig13(self):
        out = io.StringIO()
        code = main(["run", "fig13"], out=out)
        assert code == 0
        assert "frequency response" in out.getvalue()
