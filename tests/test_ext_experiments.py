"""Extension experiments (paper §6 future work), smoke level."""

import dataclasses

import pytest

from repro.acoustics.rir import RirSettings
from repro.eval.experiments import (
    bench_scenario,
    run_ear_model,
    run_mobility,
    run_multisource,
)


@pytest.fixture(scope="module")
def fast_bench():
    scen = bench_scenario()
    return dataclasses.replace(scen, rir_settings=RirSettings(max_order=2))


class TestMultiSource:
    @pytest.fixture(scope="class")
    def result(self):
        return run_multisource(duration_s=6.0)

    def test_multi_reference_clearly_wins(self, result):
        assert result.multi_vs_single_db < -5.0

    def test_both_conditions_cancel_something(self, result):
        assert result.total_db["single reference"] < -2.0
        assert result.total_db["multi reference"] < -12.0

    def test_report_renders(self, result):
        text = result.report()
        assert "multi reference" in text and "single reference" in text


class TestMobility:
    @pytest.fixture(scope="class")
    def result(self, fast_bench):
        return run_mobility(duration_s=10.0, scenario=fast_bench)

    def test_mobility_costs_cancellation(self, result):
        assert result.mobility_cost_db > 0.5

    def test_tracking_step_recovers(self, result):
        assert result.tracking_recovery_db < -0.3

    def test_report_renders(self, result):
        assert "mobility" in result.report()


class TestEarModel:
    @pytest.fixture(scope="class")
    def result(self, fast_bench):
        return run_ear_model(duration_s=6.0, scenario=fast_bench)

    def test_mismatch_costs_cancellation(self, result):
        assert result.mismatch_cost_db > 2.0

    def test_cost_grows_with_frequency(self, result):
        drum = result.curves["at eardrum"]
        mic = result.curves["at error mic"]
        low_gap = drum.mean_db(100, 800) - mic.mean_db(100, 800)
        high_gap = drum.mean_db(2500, 3800) - mic.mean_db(2500, 3800)
        assert high_gap > low_gap

    def test_calibration_recovers(self, result):
        assert abs(result.calibrated_mean_db - result.mic_mean_db) < 1.0

    def test_report_renders(self, result):
        assert "eardrum" in result.report()


class TestEdge:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.eval.experiments import run_edge

        return run_edge(duration_s=4.0, client_counts=(2, 6))

    def test_duty_shrinks_past_capacity(self, result):
        assert result.by_count[2].adaptation_duty == 1.0
        assert result.by_count[6].adaptation_duty < 0.4

    def test_graceful_degradation(self, result):
        assert 0.0 < result.degradation_db() < 10.0
        assert result.by_count[6].mean_cancellation_db() < -6.0

    def test_report_renders(self, result):
        assert "edge service" in result.report()


class TestWideband:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.eval.experiments import run_wideband

        return run_wideband(duration_s=5.0)

    def test_cancels_above_4khz(self, result):
        assert result.band_means_db[(4000, 6000)] < -8.0
        assert result.band_means_db[(6000, 8000)] < -6.0

    def test_classic_band_intact(self, result):
        assert result.band_means_db[(0, 2000)] < -10.0

    def test_report_renders(self, result):
        assert "4 kHz cap" in result.report()
