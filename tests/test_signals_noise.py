"""Noise sources: spectral shape checks."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.signals import BandlimitedNoise, PinkNoise, WhiteNoise
from repro.utils.spectral import welch_psd


def _band_power_db(signal, fs, lo, hi):
    freqs, psd = welch_psd(signal, fs, nperseg=1024)
    mask = (freqs >= lo) & (freqs < hi)
    return 10.0 * np.log10(np.mean(psd[mask]) + 1e-20)


class TestWhiteNoise:
    def test_flat_spectrum(self):
        x = WhiteNoise(seed=0).generate(4.0)
        low = _band_power_db(x, 8000, 100, 1000)
        high = _band_power_db(x, 8000, 2500, 3800)
        assert abs(low - high) < 1.5

    def test_zero_mean(self):
        x = WhiteNoise(seed=1).generate(4.0)
        assert abs(np.mean(x)) < 0.02


class TestPinkNoise:
    def test_roughly_3db_per_octave(self):
        x = PinkNoise(seed=0).generate(8.0)
        p250 = _band_power_db(x, 8000, 177, 354)     # octave around 250
        p1000 = _band_power_db(x, 8000, 707, 1414)   # octave around 1000
        p2000 = _band_power_db(x, 8000, 1414, 2828)
        # Pink PSD falls ~3 dB per octave.
        assert p250 - p1000 == pytest.approx(6.0, abs=2.5)
        assert p1000 - p2000 == pytest.approx(3.0, abs=2.0)


class TestBandlimitedNoise:
    def test_confined_to_band(self):
        x = BandlimitedNoise(500.0, 1500.0, seed=0).generate(4.0)
        inside = _band_power_db(x, 8000, 600, 1400)
        outside = _band_power_db(x, 8000, 2500, 3500)
        assert inside - outside > 25.0

    def test_lowpass_edge_case(self):
        x = BandlimitedNoise(0.0, 1000.0, seed=1).generate(2.0)
        assert (_band_power_db(x, 8000, 50, 900)
                - _band_power_db(x, 8000, 2000, 3000)) > 20.0

    def test_highpass_edge_case(self):
        x = BandlimitedNoise(2000.0, 4000.0, seed=1).generate(2.0)
        assert (_band_power_db(x, 8000, 2500, 3800)
                - _band_power_db(x, 8000, 100, 1000)) > 20.0

    def test_full_band_no_filter(self):
        src = BandlimitedNoise(0.0, 4000.0, seed=2)
        assert src._sos is None

    def test_rejects_inverted_band(self):
        with pytest.raises(ConfigurationError):
            BandlimitedNoise(2000.0, 1000.0)

    def test_rejects_beyond_nyquist(self):
        with pytest.raises(ConfigurationError):
            BandlimitedNoise(100.0, 5000.0, sample_rate=8000.0)
