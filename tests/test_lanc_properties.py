"""Property-based tests on the LANC algorithm's invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FxlmsFilter, LancFilter

SECONDARY = np.array([0.0, 1.0, 0.1])


def _scene(seed, T=2500, delta=10):
    rng = np.random.default_rng(seed)
    n = rng.standard_normal(T)
    x = np.zeros(T)
    x[delta:] = np.convolve(n, [1.0, 1.3])[:T][:-delta]
    d = np.zeros(T)
    d[delta:] = n[:-delta]
    return x, d


class TestScaleEquivariance:
    """NLMS trajectories are invariant to joint input scaling.

    Exact up to the step-size regularizer epsilon (1e-8), which is not
    scale-invariant — hence the loose-but-tiny tolerances.
    """

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=50),
           st.floats(min_value=0.05, max_value=20.0))
    def test_error_scales_linearly(self, seed, gain):
        x, d = _scene(seed)
        f1 = LancFilter(4, 24, SECONDARY, mu=0.5)
        e1 = f1.run(x, d).error
        f2 = LancFilter(4, 24, SECONDARY, mu=0.5)
        e2 = f2.run(gain * x, gain * d).error
        np.testing.assert_allclose(e2, gain * e1, rtol=1e-4,
                                   atol=1e-5 * gain)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=50),
           st.floats(min_value=0.1, max_value=10.0))
    def test_taps_invariant_to_joint_scaling(self, seed, gain):
        x, d = _scene(seed)
        f1 = LancFilter(4, 24, SECONDARY, mu=0.5)
        f1.run(x, d)
        f2 = LancFilter(4, 24, SECONDARY, mu=0.5)
        f2.run(gain * x, gain * d)
        np.testing.assert_allclose(f1.taps, f2.taps, rtol=1e-4,
                                   atol=1e-6)


class TestZeroInputs:
    def test_zero_disturbance_keeps_taps_zero(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal(1000)
        f = LancFilter(4, 16, SECONDARY, mu=0.5)
        result = f.run(x, np.zeros(1000))
        np.testing.assert_array_equal(f.taps, 0.0)
        np.testing.assert_array_equal(result.error, 0.0)

    def test_zero_reference_never_updates(self):
        rng = np.random.default_rng(2)
        d = rng.standard_normal(1000)
        f = LancFilter(4, 16, SECONDARY, mu=0.5)
        result = f.run(np.zeros(1000), d)
        np.testing.assert_array_equal(f.taps, 0.0)
        np.testing.assert_array_equal(result.error, d)


class TestMonotoneResources:
    """More taps / more lookahead never hurt (statistically)."""

    @settings(max_examples=6, deadline=None)
    @given(st.integers(min_value=0, max_value=30))
    def test_more_future_taps_not_worse(self, seed):
        x, d = _scene(seed, T=6000)
        errors = []
        for n_future in (0, 8):
            f = LancFilter(n_future, 32, SECONDARY, mu=0.5)
            errors.append(f.run(x, d).converged_error())
        assert errors[1] <= errors[0] * 1.1

    @settings(max_examples=6, deadline=None)
    @given(st.integers(min_value=0, max_value=30))
    def test_fxlms_is_special_case(self, seed):
        x, d = _scene(seed, T=1500)
        a = FxlmsFilter(24, SECONDARY, mu=0.5)
        ra = a.run(x, d)
        b = LancFilter(0, 24, SECONDARY, mu=0.5)
        rb = b.run(x, d)
        np.testing.assert_array_equal(ra.error, rb.error)


class TestEnergyAccounting:
    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=0, max_value=50))
    def test_converged_error_below_disturbance(self, seed):
        x, d = _scene(seed, T=6000)
        f = LancFilter(8, 32, SECONDARY, mu=0.5)
        result = f.run(x, d)
        d_rms = float(np.sqrt(np.mean(d[-1500:] ** 2)))
        assert result.converged_error() < d_rms

    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=0, max_value=50))
    def test_output_finite(self, seed):
        x, d = _scene(seed, T=2000)
        f = LancFilter(8, 32, SECONDARY, mu=0.5)
        result = f.run(x, d)
        assert np.all(np.isfinite(result.output))
        assert np.all(np.isfinite(result.taps))
