"""Affine projection adaptation."""

import numpy as np
import pytest
from scipy import signal as sps

from repro.core import ApaFilter, LmsFilter
from repro.errors import ConfigurationError


def _colored_scene(seed=0, T=5000, pole=0.95):
    rng = np.random.default_rng(seed)
    h = rng.standard_normal(16) * 0.3
    white = rng.standard_normal(T)
    x = sps.lfilter([1.0], [1.0, -pole], white)
    d = np.convolve(x, h)[:T]
    return x, d, h


def _settle_index(errors, threshold):
    above = np.flatnonzero(np.abs(errors) >= threshold)
    return above[-1] + 1 if above.size else 0


class TestApaFilter:
    def test_identifies_system(self):
        x, d, h = _colored_scene()
        apa = ApaFilter(n_taps=20, order=4, mu=0.5)
        result = apa.run(x, d)
        np.testing.assert_allclose(result.taps[:16], h, atol=5e-3)

    def test_converges_much_faster_than_nlms_on_colored_input(self):
        x, d, __ = _colored_scene()
        threshold = 0.05 * np.sqrt(np.mean(d ** 2))
        nlms = LmsFilter(n_taps=20, mu=0.5).run(x, d)
        apa = ApaFilter(n_taps=20, order=4, mu=0.5).run(x, d)
        assert (_settle_index(apa.error, threshold)
                < 0.3 * _settle_index(nlms.error, threshold))

    def test_order_one_behaves_like_nlms(self):
        x, d, __ = _colored_scene(T=2500)
        apa = ApaFilter(n_taps=20, order=1, mu=0.5, epsilon=1e-8).run(x, d)
        nlms = LmsFilter(n_taps=20, mu=0.5).run(x, d)
        # Same family: convergence within a similar envelope.
        assert np.mean(apa.error[-500:] ** 2) == pytest.approx(
            np.mean(nlms.error[-500:] ** 2), rel=1.0, abs=1e-6)

    def test_higher_order_not_slower(self):
        x, d, __ = _colored_scene()
        threshold = 0.05 * np.sqrt(np.mean(d ** 2))
        p2 = ApaFilter(n_taps=20, order=2, mu=0.5).run(x, d)
        p8 = ApaFilter(n_taps=20, order=8, mu=0.5).run(x, d)
        assert (_settle_index(p8.error, threshold)
                <= _settle_index(p2.error, threshold) * 1.2)

    def test_reset(self):
        x, d, __ = _colored_scene(T=500)
        apa = ApaFilter(n_taps=8, order=2)
        apa.run(x, d)
        apa.reset()
        np.testing.assert_array_equal(apa.taps, 0.0)

    def test_rejects_order_above_taps(self):
        with pytest.raises(ConfigurationError):
            ApaFilter(n_taps=4, order=8)

    def test_tracks_time_varying_system(self):
        rng = np.random.default_rng(5)
        x = sps.lfilter([1.0], [1.0, -0.9], rng.standard_normal(4000))
        d = np.concatenate([0.8 * x[:2000], -0.8 * x[2000:]])
        apa = ApaFilter(n_taps=2, order=2, mu=0.8)
        result = apa.run(x, d)
        assert result.taps[0] == pytest.approx(-0.8, abs=0.05)
        assert result.taps[1] == pytest.approx(0.0, abs=0.05)
