"""Time-varying channels (head mobility substrate)."""

import numpy as np
import pytest

from repro.acoustics import Point, Room, TimeVaryingChannel, moving_client_channel
from repro.acoustics.rir import RirSettings
from repro.errors import ChannelError, ConfigurationError
from repro.signals import WhiteNoise


class TestTimeVaryingChannel:
    def test_single_snapshot_is_lti(self, rng):
        ir = np.array([0.0, 1.0, 0.3])
        channel = TimeVaryingChannel([ir])
        x = rng.standard_normal(100)
        expected = np.convolve(x, ir)[:100]
        np.testing.assert_allclose(channel.apply(x), expected, atol=1e-12)

    def test_identical_snapshots_reduce_to_lti(self, rng):
        ir = np.array([0.5, 0.2, -0.1])
        channel = TimeVaryingChannel([ir, ir, ir])
        x = rng.standard_normal(400)
        expected = np.convolve(x, ir)[:400]
        np.testing.assert_allclose(channel.apply(x), expected, atol=1e-10)

    def test_crossfade_endpoints(self, rng):
        a = np.array([1.0])
        b = np.array([2.0])
        channel = TimeVaryingChannel([a, b])
        x = np.ones(1000)
        out = channel.apply(x)
        assert out[0] == pytest.approx(1.0, abs=0.01)
        assert out[-1] == pytest.approx(2.0, abs=0.01)
        # Monotone blend in between (for a constant input).
        assert np.all(np.diff(out) >= -1e-12)

    def test_snapshot_at_interpolates(self):
        a = np.array([1.0, 0.0])
        b = np.array([0.0, 1.0])
        channel = TimeVaryingChannel([a, b])
        mid = channel.snapshot_at(0.5)
        np.testing.assert_allclose(mid, [0.5, 0.5])
        np.testing.assert_allclose(channel.snapshot_at(0.0), a)
        np.testing.assert_allclose(channel.snapshot_at(1.0), b)

    def test_snapshot_at_bounds(self):
        channel = TimeVaryingChannel([np.array([1.0])])
        with pytest.raises(ChannelError):
            channel.snapshot_at(1.5)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            TimeVaryingChannel([])


class TestMovingClientChannel:
    def test_builds_and_applies(self, rng):
        room = Room(5.0, 4.0, 3.0, absorption=0.5)
        source = Point(1.0, 1.0, 1.2)
        path = [Point(3.5, 2.0 + dy, 1.2) for dy in (-0.1, 0.0, 0.1)]
        channel = moving_client_channel(room, source, path, 8000.0,
                                        settings=RirSettings(max_order=1))
        assert channel.n_snapshots == 3
        x = WhiteNoise(seed=0, level_rms=0.1).generate(0.5)
        out = channel.apply(x)
        assert out.size == x.size
        assert np.all(np.isfinite(out))

    def test_motion_changes_output(self):
        room = Room(5.0, 4.0, 3.0, absorption=0.5)
        source = Point(1.0, 1.0, 1.2)
        static = moving_client_channel(room, source,
                                       [Point(3.5, 2.0, 1.2)], 8000.0,
                                       settings=RirSettings(max_order=1))
        moving = moving_client_channel(
            room, source,
            [Point(3.5, 1.8, 1.2), Point(3.5, 2.2, 1.2)], 8000.0,
            settings=RirSettings(max_order=1))
        x = WhiteNoise(seed=1, level_rms=0.1).generate(0.5)
        assert not np.allclose(static.apply(x), moving.apply(x))

    def test_empty_path_rejected(self):
        room = Room(5.0, 4.0, 3.0)
        with pytest.raises(ConfigurationError):
            moving_client_channel(room, Point(1, 1, 1), [], 8000.0)
