"""The Wiener-optimal bound."""

import numpy as np
import pytest

from repro.core import LancFilter, optimal_cancellation_db, wiener_lanc
from repro.errors import ConfigurationError

SECONDARY = np.array([0.0, 0.0, 0.9, 0.1])


def _scene(seed=0, T=16000, delta=16):
    rng = np.random.default_rng(seed)
    n = rng.standard_normal(T)
    x = np.zeros(T)
    x[delta:] = np.convolve(n, [1.0, 1.5])[:T][:-delta]
    d = np.zeros(T)
    d[delta:] = n[:-delta]
    return x, d


class TestWienerLanc:
    @pytest.fixture(scope="class")
    def solution(self):
        x, d = _scene()
        return wiener_lanc(x, d, SECONDARY, n_future=12, n_past=64), x, d

    def test_taps_loadable_into_lanc(self, solution):
        sol, x, d = solution
        f = LancFilter(12, 64, SECONDARY)
        f.set_taps(sol.taps)
        frozen = f.run(x, d, adapt=False)
        np.testing.assert_allclose(frozen.error[200:-200],
                                   sol.residual[200:-200], atol=1e-8)

    def test_optimal_beats_adaptive(self, solution):
        sol, x, d = solution
        adaptive = LancFilter(12, 64, SECONDARY, mu=0.5).run(x, d)
        # The bound is a bound: adaptive steady state cannot beat it
        # (up to the convergence-window measurement noise).
        assert sol.residual_rms <= adaptive.converged_error() * 1.05

    def test_adaptive_approaches_optimal(self, solution):
        sol, x, d = solution
        adaptive = LancFilter(12, 64, SECONDARY, mu=0.5).run(x, d)
        assert adaptive.converged_error() < 3.0 * sol.residual_rms

    def test_causality_limit_at_optimum(self):
        """Even the *optimal* causal filter fails on this scene —
        the non-causality is structural, not an adaptation artifact."""
        x, d = _scene()
        causal = wiener_lanc(x, d, SECONDARY, n_future=0, n_past=76)
        two_sided = wiener_lanc(x, d, SECONDARY, n_future=12, n_past=64)
        d_rms = float(np.sqrt(np.mean(d ** 2)))
        assert causal.residual_rms > 0.5 * d_rms
        assert two_sided.residual_rms < 0.1 * d_rms

    def test_monotone_in_n_future(self):
        x, d = _scene()
        residuals = [
            wiener_lanc(x, d, SECONDARY, n_future=n, n_past=64).residual_rms
            for n in (0, 4, 8, 16)
        ]
        assert all(a >= b - 1e-9 for a, b in zip(residuals, residuals[1:]))

    def test_optimal_cancellation_db_helper(self):
        x, d = _scene()
        db = optimal_cancellation_db(x, d, SECONDARY, 12, 64)
        assert db < -25.0

    def test_too_many_taps_rejected(self):
        x, d = _scene(T=512)
        with pytest.raises(ConfigurationError):
            wiener_lanc(x, d, SECONDARY, n_future=100, n_past=400)

    def test_zero_disturbance_zero_taps(self):
        x, __ = _scene(T=4000)
        sol = wiener_lanc(x, np.zeros(4000), SECONDARY, 4, 16)
        np.testing.assert_allclose(sol.taps, 0.0, atol=1e-10)
