"""Points, rooms, and scenario geometry."""

import math

import pytest

from repro.acoustics import Point, Room, distance, propagation_time
from repro.acoustics.constants import SPEED_OF_SOUND
from repro.errors import ConfigurationError


class TestPoint:
    def test_distance(self):
        assert Point(0, 0, 0).distance_to(Point(3, 4, 0)) == 5.0

    def test_distance_3d(self):
        assert Point(1, 2, 3).distance_to(Point(1, 2, 5)) == 2.0

    def test_frozen(self):
        p = Point(1, 2, 3)
        with pytest.raises(Exception):
            p.x = 9

    def test_rejects_nan(self):
        with pytest.raises(ConfigurationError):
            Point(float("nan"), 0.0)

    def test_as_tuple(self):
        assert Point(1.0, 2.0, 3.0).as_tuple() == (1.0, 2.0, 3.0)


class TestModuleHelpers:
    def test_distance_function(self):
        assert distance(Point(0, 0), Point(0, 3)) == 3.0

    def test_propagation_time(self):
        t = propagation_time(Point(0, 0), Point(SPEED_OF_SOUND, 0))
        assert t == pytest.approx(1.0)

    def test_propagation_rejects_bad_speed(self):
        with pytest.raises(ConfigurationError):
            propagation_time(Point(0, 0), Point(1, 0), speed=0.0)


class TestRoom:
    def test_reflection_coefficient(self):
        room = Room(4, 3, 3, absorption=0.19)
        assert room.reflection_coefficient == pytest.approx(math.sqrt(0.81))

    def test_contains(self):
        room = Room(4, 3, 3)
        assert room.contains(Point(2, 1.5, 1.5))
        assert not room.contains(Point(5, 1, 1))
        assert not room.contains(Point(2, 1, -0.1))

    def test_contains_with_margin(self):
        room = Room(4, 3, 3)
        assert not room.contains(Point(0.05, 1, 1), margin=0.1)

    def test_require_inside_raises(self):
        room = Room(4, 3, 3)
        with pytest.raises(ConfigurationError, match="mic"):
            room.require_inside("mic", Point(10, 1, 1))

    def test_require_inside_returns_point(self):
        room = Room(4, 3, 3)
        p = Point(1, 1, 1)
        assert room.require_inside("mic", p) is p

    @pytest.mark.parametrize("bad", [
        dict(length=0.0, width=3, height=3),
        dict(length=4, width=-1, height=3),
        dict(length=4, width=3, height=3, absorption=1.0),
        dict(length=4, width=3, height=3, absorption=-0.1),
    ])
    def test_rejects_bad_parameters(self, bad):
        with pytest.raises(ConfigurationError):
            Room(**bad)
