"""The listener rating model (Figure 15's substitute)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.eval.rating import RatingModel, a_weighted_level_db
from repro.signals import BandlimitedNoise, WhiteNoise


class TestAWeightedLevel:
    def test_quieter_is_lower(self):
        loud = WhiteNoise(seed=0, level_rms=0.5).generate(1.0)
        quiet = 0.1 * loud
        assert (a_weighted_level_db(quiet, 8000.0)
                < a_weighted_level_db(loud, 8000.0) - 15.0)

    def test_low_rumble_discounted(self):
        rumble = BandlimitedNoise(20.0, 120.0, seed=1, level_rms=0.3) \
            .generate(2.0)
        presence = BandlimitedNoise(1000.0, 3000.0, seed=1, level_rms=0.3) \
            .generate(2.0)
        assert (a_weighted_level_db(rumble, 8000.0)
                < a_weighted_level_db(presence, 8000.0) - 10.0)


class TestRatingModel:
    def _residuals(self):
        loud = WhiteNoise(seed=0, level_rms=0.5).generate(1.0)
        return {"bad": loud, "good": 0.05 * loud}

    def test_quieter_scores_higher_for_every_subject(self):
        residuals = self._residuals()
        level = a_weighted_level_db(residuals["bad"], 8000.0)
        model = RatingModel(n_subjects=5, anchor_db=level - 10.0, seed=3)
        scores = model.compare(residuals, 8000.0)
        for good, bad in zip(scores["good"], scores["bad"]):
            assert good.score > bad.score

    def test_scores_clipped_to_scale(self):
        model = RatingModel(n_subjects=3, anchor_db=0.0, seed=1)
        silent = np.full(8000, 1e-9)
        for rating in model.rate(silent, 8000.0):
            assert 1.0 <= rating.score <= 5.0

    def test_half_star_granularity(self):
        model = RatingModel(n_subjects=5, seed=2)
        x = WhiteNoise(seed=4, level_rms=0.1).generate(1.0)
        for rating in model.rate(x, 8000.0):
            assert (rating.score * 2) == int(rating.score * 2)

    def test_deterministic_per_seed(self):
        x = WhiteNoise(seed=5, level_rms=0.2).generate(1.0)
        a = RatingModel(seed=7).rate(x, 8000.0, condition="c")
        b = RatingModel(seed=7).rate(x, 8000.0, condition="c")
        assert [r.score for r in a] == [r.score for r in b]

    def test_subject_ids_one_based(self):
        x = WhiteNoise(seed=5, level_rms=0.2).generate(1.0)
        ratings = RatingModel(n_subjects=3, seed=0).rate(x, 8000.0)
        assert [r.subject_id for r in ratings] == [1, 2, 3]

    def test_compare_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            RatingModel().compare({}, 8000.0)
