"""Image-source room impulse responses."""

import numpy as np
import pytest

from repro.acoustics import (
    Point,
    Room,
    direct_path_ir,
    image_sources,
    room_impulse_response,
)
from repro.acoustics.constants import SPEED_OF_SOUND
from repro.acoustics.rir import RirSettings
from repro.errors import ConfigurationError

FS = 8000.0
ROOM = Room(5.0, 4.0, 3.0, absorption=0.4)
SRC = Point(1.0, 1.0, 1.5)
MIC = Point(4.0, 3.0, 1.2)


class TestImageSources:
    def test_order_zero_single_image(self):
        images = list(image_sources(ROOM, SRC, 0))
        assert len(images) == 1
        point, bounces = images[0]
        assert bounces == 0
        assert point.as_tuple() == SRC.as_tuple()

    def test_order_one_count(self):
        # Direct + 6 first-order wall images.
        images = list(image_sources(ROOM, SRC, 1))
        assert len(images) == 7
        assert sum(1 for __, b in images if b == 1) == 6

    def test_bounce_counts_bounded(self):
        for __, bounces in image_sources(ROOM, SRC, 3):
            assert 0 <= bounces <= 3

    def test_source_outside_rejected(self):
        with pytest.raises(ConfigurationError):
            list(image_sources(ROOM, Point(9, 9, 9), 1))


class TestRoomImpulseResponse:
    def test_direct_arrival_position(self):
        ir = room_impulse_response(ROOM, SRC, MIC, FS)
        expected = SRC.distance_to(MIC) / SPEED_OF_SOUND * FS
        mag = np.abs(ir)
        first_arrival = np.argmax(mag >= 0.3 * mag.max())
        assert abs(first_arrival - expected) <= 2

    def test_direct_amplitude_spreading(self):
        ir = room_impulse_response(ROOM, SRC, MIC, FS)
        dist = SRC.distance_to(MIC)
        direct_idx = int(round(dist / SPEED_OF_SOUND * FS))
        assert abs(ir[direct_idx]) == pytest.approx(1.0 / dist, rel=0.15)

    def test_more_absorption_less_tail(self):
        live = room_impulse_response(Room(5, 4, 3, absorption=0.1),
                                     SRC, MIC, FS)
        dead = room_impulse_response(Room(5, 4, 3, absorption=0.8),
                                     SRC, MIC, FS)

        def tail_energy(ir):
            peak = np.argmax(np.abs(ir))
            return np.sum(ir[peak + 20:] ** 2)

        assert tail_energy(live) > 3 * tail_energy(dead)

    def test_higher_order_longer(self):
        short = room_impulse_response(ROOM, SRC, MIC, FS,
                                      settings=RirSettings(max_order=1))
        long_ = room_impulse_response(ROOM, SRC, MIC, FS,
                                      settings=RirSettings(max_order=3))
        assert long_.size > short.size

    def test_normalize(self):
        ir = room_impulse_response(ROOM, SRC, MIC, FS, normalize=True)
        assert np.max(np.abs(ir)) == pytest.approx(1.0)

    def test_microphone_outside_rejected(self):
        with pytest.raises(ConfigurationError):
            room_impulse_response(ROOM, SRC, Point(-1, 0, 0), FS)

    def test_deterministic(self):
        a = room_impulse_response(ROOM, SRC, MIC, FS)
        b = room_impulse_response(ROOM, SRC, MIC, FS)
        np.testing.assert_array_equal(a, b)


class TestDirectPathIr:
    def test_delay_and_gain(self):
        ir = direct_path_ir(3.4, FS)
        expected_delay = 3.4 / SPEED_OF_SOUND * FS
        peak = np.argmax(np.abs(ir))
        assert abs(peak - expected_delay) <= 1
        assert np.max(np.abs(ir)) == pytest.approx(1 / 3.4, rel=0.1)

    def test_explicit_gain(self):
        # The fractional-delay kernel spreads amplitude across taps; the
        # DC gain (tap sum) carries the requested gain.
        ir = direct_path_ir(1.0, FS, gain=2.0)
        assert ir.sum() == pytest.approx(2.0, rel=0.01)

    def test_rejects_zero_distance(self):
        with pytest.raises(ConfigurationError):
            direct_path_ir(0.0, FS)


class TestRirSettings:
    def test_rejects_negative_order(self):
        with pytest.raises(ConfigurationError):
            RirSettings(max_order=-1)

    def test_rejects_tiny_sinc(self):
        with pytest.raises(ConfigurationError):
            RirSettings(sinc_taps=1)
