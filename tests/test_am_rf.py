"""AM baseline and RF channel impairments."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.signals import Tone
from repro.utils.units import snr_db
from repro.wireless import (
    AmDemodulator,
    AmModulator,
    FmDemodulator,
    FmModulator,
    RfChannel,
    RfChannelConfig,
    pa_nonlinearity,
)


def _fit_and_snr(reference, recovered, margin=400):
    """SNR after removing any flat gain (AM recovery scale is nominal)."""
    r = reference[margin:-margin]
    y = recovered[margin: reference.size - margin]
    scale = np.dot(y, r) / np.dot(r, r)
    return snr_db(r, y - scale * r)


class TestAmRoundTrip:
    def test_clean_channel(self):
        tone = Tone(440.0, level_rms=0.2).generate(0.5)
        am, dem = AmModulator(), AmDemodulator()
        out = dem.demodulate(am.modulate(tone))
        assert _fit_and_snr(tone, out) > 30.0

    def test_rejects_zero_index(self):
        with pytest.raises(ConfigurationError):
            AmModulator(modulation_index=0.0)


class TestPaNonlinearity:
    def test_compresses_envelope_peaks(self):
        rng = np.random.default_rng(0)
        bb = (rng.standard_normal(4096)
              + 1j * rng.standard_normal(4096))
        out = pa_nonlinearity(bb, backoff_db=1.0)
        assert np.max(np.abs(out)) < np.max(np.abs(bb))

    def test_preserves_phase(self):
        bb = np.exp(1j * np.linspace(0, 20, 1000)) * \
            np.linspace(0.1, 3.0, 1000)
        out = pa_nonlinearity(bb, backoff_db=3.0)
        np.testing.assert_allclose(np.angle(out), np.angle(bb), atol=1e-9)

    def test_constant_envelope_nearly_untouched(self):
        # FM's whole argument: |x| constant → tanh is just a fixed gain.
        bb = np.exp(1j * np.linspace(0, 50, 2000))
        out = pa_nonlinearity(bb, backoff_db=1.0)
        ratio = np.abs(out) / np.abs(bb)
        assert np.ptp(ratio) < 1e-9


class TestFmBeatsAmUnderImpairments:
    def test_fm_advantage(self):
        """The paper's 'Why FM?' — quantified."""
        tone = Tone(440.0, level_rms=0.2).generate(0.5)
        channel = RfChannel(RfChannelConfig(snr_db=25.0, cfo_hz=2000.0,
                                            pa_backoff_db=1.0, seed=3),
                            rf_rate=96000.0)
        fm_out = FmDemodulator().demodulate(
            channel.apply(FmModulator().modulate(tone)))
        am_out = AmDemodulator().demodulate(
            channel.apply(AmModulator().modulate(tone)))
        fm_snr = _fit_and_snr(tone, fm_out)
        am_snr = _fit_and_snr(tone, am_out)
        assert fm_snr > am_snr + 10.0


class TestRfChannel:
    def test_awgn_snr_level(self):
        rng = np.random.default_rng(1)
        bb = np.exp(1j * rng.uniform(0, 2 * np.pi, 65536))
        out = RfChannel(RfChannelConfig(snr_db=20.0, seed=2)).apply(bb)
        noise = out - bb
        measured = 10 * np.log10(np.mean(np.abs(bb) ** 2)
                                 / np.mean(np.abs(noise) ** 2))
        assert measured == pytest.approx(20.0, abs=0.5)

    def test_flat_gain(self):
        bb = np.ones(128, dtype=complex)
        out = RfChannel(RfChannelConfig(snr_db=float("inf"), gain_db=-6.0)) \
            .apply(bb)
        assert np.abs(out[0]) == pytest.approx(10 ** (-6 / 20), abs=1e-9)

    def test_phase_rotation(self):
        bb = np.ones(16, dtype=complex)
        out = RfChannel(RfChannelConfig(snr_db=float("inf"),
                                        phase_rad=np.pi / 2)).apply(bb)
        assert np.angle(out[0]) == pytest.approx(np.pi / 2)

    def test_cfo_rotates_over_time(self):
        bb = np.ones(96000, dtype=complex)
        out = RfChannel(RfChannelConfig(snr_db=float("inf"), cfo_hz=1000.0),
                        rf_rate=96000.0).apply(bb)
        # After 1/4000 s the phase should be 2π·1000/4000 = π/2.
        idx = 96000 // 4000
        assert np.angle(out[idx]) == pytest.approx(np.pi / 2, abs=1e-6)

    def test_rejects_bad_backoff(self):
        with pytest.raises(ConfigurationError):
            RfChannelConfig(pa_backoff_db=0.0)
