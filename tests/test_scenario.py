"""Scenario geometry → channels."""

import dataclasses

import pytest

from repro.acoustics import Point, Room
from repro.core import Scenario, office_scenario
from repro.errors import ConfigurationError


class TestScenarioValidation:
    def test_requires_relay(self):
        with pytest.raises(ConfigurationError, match="relay"):
            Scenario(room=Room(5, 4, 3), source=Point(1, 1, 1),
                     client=Point(4, 3, 1), relays=())

    def test_rejects_outside_source(self):
        with pytest.raises(ConfigurationError, match="source"):
            Scenario(room=Room(5, 4, 3), source=Point(9, 1, 1),
                     client=Point(4, 3, 1), relays=(Point(1, 1, 1),))

    def test_rejects_outside_relay(self):
        with pytest.raises(ConfigurationError, match="relay"):
            Scenario(room=Room(5, 4, 3), source=Point(1, 1, 1),
                     client=Point(4, 3, 1), relays=(Point(0, -1, 1),))

    def test_speaker_position_offset(self, fast_scenario):
        sp = fast_scenario.speaker_position
        assert sp.x == pytest.approx(fast_scenario.client.x + 0.02)


class TestGeometryHelpers:
    def test_distances(self, fast_scenario):
        assert fast_scenario.source_to_client_m() == pytest.approx(
            fast_scenario.source.distance_to(fast_scenario.client))
        assert fast_scenario.source_to_relay_m(0) > 0

    def test_nominal_lead_positive(self, fast_scenario):
        assert fast_scenario.nominal_lead_s() > 0

    def test_with_source_moves_only_source(self, fast_scenario):
        moved = fast_scenario.with_source(Point(2.0, 2.0, 1.0))
        assert moved.source == Point(2.0, 2.0, 1.0)
        assert moved.client == fast_scenario.client


class TestBuildChannels:
    def test_channel_names_and_counts(self, fast_channels):
        assert fast_channels.h_ne.name == "h_ne"
        assert len(fast_channels.h_nr) == 1
        assert fast_channels.h_se.name == "h_se"

    def test_lead_matches_geometry(self, fast_scenario, fast_channels):
        expected = fast_scenario.nominal_lead_s() \
            * fast_scenario.sample_rate
        lead = fast_channels.acoustic_lead_samples[0]
        assert abs(lead - expected) <= 1.0

    def test_lead_seconds(self, fast_channels, fast_scenario):
        assert fast_channels.lead_seconds(0) == pytest.approx(
            fast_scenario.nominal_lead_s(), abs=1.5e-4)

    def test_multi_relay_leads(self, two_relay_scenario):
        channels = two_relay_scenario.build_channels()
        assert len(channels.acoustic_lead_samples) == 2
        near, far = channels.acoustic_lead_samples
        assert near > 0 > far


class TestOfficeScenario:
    def test_constructs(self):
        scen = office_scenario()
        assert scen.nominal_lead_s() > 5e-3   # relay on the door: >5 ms

    def test_relay_not_on_door(self):
        # On the desk instead of the door: far less lead than on-door.
        desk = office_scenario(relay_on_door=False)
        door = office_scenario(relay_on_door=True)
        assert desk.nominal_lead_s() < 0.5 * door.nominal_lead_s()
