"""FM modulation/demodulation chain."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.signals import Tone, WhiteNoise
from repro.utils.units import snr_db
from repro.wireless import FmDemodulator, FmModulator, resample
from repro.wireless.fm import rational_ratio


def _roundtrip_snr(audio, **kwargs):
    mod = FmModulator(**kwargs)
    dem = FmDemodulator(**kwargs)
    recovered = dem.demodulate(mod.modulate(audio))
    margin = 400
    clean = audio[margin: audio.size - margin]
    error = recovered[margin: audio.size - margin] - clean
    return snr_db(clean, error)


class TestResample:
    def test_identity(self):
        x = np.arange(10, dtype=float)
        np.testing.assert_array_equal(resample(x, 8000, 8000), x)

    def test_ratio(self):
        x = np.zeros(800)
        assert resample(x, 8000, 96000).size == 9600

    def test_roundtrip_preserves_content(self):
        x = Tone(440.0, level_rms=0.3).generate(0.5)
        back = resample(resample(x, 8000, 96000), 96000, 8000)
        margin = 100
        assert snr_db(x[margin:-margin],
                      back[margin: x.size - margin] - x[margin:-margin]) > 40

    def test_exact_rational_non_integer_rates_work(self):
        # 8000.5 -> 96000 is the exact rational 192000/16001; the
        # Fraction-based reduction must accept it (it used to raise).
        up, down = rational_ratio(8000.5, 96000)
        assert (up, down) == (192000, 16001)
        out = resample(np.zeros(16001), 8000.5, 96000)
        assert out.size == 192000

    def test_rejects_irrational_rate_ratio(self):
        with pytest.raises(ConfigurationError):
            resample(np.zeros(10), 8000.0, 8000.0 * np.sqrt(2.0))

    def test_integer_pair_reduces_by_gcd(self):
        assert rational_ratio(8000, 96000) == (12, 1)
        assert rational_ratio(44100, 8000) == (80, 441)

    def test_cached_window_bit_identical_to_default(self):
        x = WhiteNoise(seed=3, level_rms=0.3).generate(0.25)
        from repro.utils import fastpath
        with fastpath.scope(False):
            slow = resample(x, 8000, 96000)
        with fastpath.scope(True):
            fast = resample(x, 8000, 96000)
        np.testing.assert_array_equal(slow, fast)


class TestFmModulator:
    def test_constant_envelope(self):
        mod = FmModulator(amplitude=2.0)
        bb = mod.modulate(WhiteNoise(seed=0, level_rms=0.2).generate(0.2))
        np.testing.assert_allclose(np.abs(bb), 2.0, atol=1e-9)

    def test_carson_bandwidth_guard(self):
        with pytest.raises(ConfigurationError):
            FmModulator(rf_rate=16000.0, deviation_hz=12000.0)

    def test_occupied_bandwidth(self):
        mod = FmModulator(deviation_hz=12000.0, audio_rate=8000.0)
        assert mod.occupied_bandwidth_hz == pytest.approx(32000.0)


class TestRoundTrip:
    def test_tone_high_snr(self):
        tone = Tone(440.0, level_rms=0.2).generate(0.5)
        assert _roundtrip_snr(tone) > 40.0

    def test_white_noise_reasonable_snr(self):
        noise = WhiteNoise(seed=1, level_rms=0.2).generate(0.5)
        # Band-edge rolloff limits raw SNR for full-band noise.
        assert _roundtrip_snr(noise) > 5.0

    def test_dc_removed(self):
        tone = Tone(300.0, level_rms=0.2).generate(0.5)
        mod, dem = FmModulator(), FmDemodulator()
        out = dem.demodulate(mod.modulate(tone))
        assert abs(np.mean(out)) < 1e-9

    def test_cfo_becomes_dc_and_is_removed(self):
        tone = Tone(440.0, level_rms=0.2).generate(0.5)
        mod, dem = FmModulator(), FmDemodulator()
        bb = mod.modulate(tone)
        t = np.arange(bb.size) / 96000.0
        shifted = bb * np.exp(2j * np.pi * 3000.0 * t)   # 3 kHz CFO
        out = dem.demodulate(shifted)
        margin = 400
        err = out[margin: tone.size - margin] - tone[margin:-margin]
        assert snr_db(tone[margin:-margin], err) > 35.0

    def test_no_dc_removal_keeps_cfo_offset(self):
        tone = Tone(440.0, level_rms=0.2).generate(0.5)
        mod = FmModulator()
        dem = FmDemodulator(remove_dc=False)
        bb = mod.modulate(tone)
        t = np.arange(bb.size) / 96000.0
        out = dem.demodulate(bb * np.exp(2j * np.pi * 3000.0 * t))
        # CFO of 3 kHz over a 12 kHz deviation → DC offset of 0.25.
        assert np.mean(out[400:-400]) == pytest.approx(0.25, abs=0.02)


class TestFastSlowEquivalence:
    """The in-place mod/demod fast paths vs the verbatim slow paths.

    Each modulator/demodulator keeps its pre-overhaul arithmetic behind
    ``fastpath.scope(False)`` (docs/PERFORMANCE.md); the in-place
    formulations must agree to the library-wide 1e-10 envelope.
    """

    TOL = 1e-10

    def _noise(self, seed):
        return WhiteNoise(seed=seed, level_rms=0.2).generate(0.25)

    def _both(self, fn):
        from repro.utils import fastpath
        with fastpath.scope(False):
            slow = fn()
        with fastpath.scope(True):
            fast = fn()
        return slow, fast

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_fm_roundtrip(self, seed):
        audio = self._noise(seed)
        mod, dem = FmModulator(), FmDemodulator()
        slow, fast = self._both(lambda: dem.demodulate(mod.modulate(audio)))
        np.testing.assert_allclose(fast, slow, atol=self.TOL, rtol=0)

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_fm_modulate(self, seed):
        mod = FmModulator(amplitude=0.7)
        slow, fast = self._both(lambda: mod.modulate(self._noise(seed)))
        np.testing.assert_allclose(fast, slow, atol=self.TOL, rtol=0)

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_am_roundtrip(self, seed):
        from repro.wireless import AmDemodulator, AmModulator
        audio = self._noise(seed)
        mod, dem = AmModulator(), AmDemodulator()
        slow, fast = self._both(lambda: dem.demodulate(mod.modulate(audio)))
        np.testing.assert_allclose(fast, slow, atol=self.TOL, rtol=0)
