"""The cached + parallel simulation runtime (repro.runtime)."""

import dataclasses
import json
import os
import pickle
import subprocess
import sys

import numpy as np
import pytest

from repro import obs, runtime
from repro.acoustics.geometry import Point
from repro.core.scenario import office_scenario
from repro.errors import ConfigurationError
from repro.eval import experiments
from repro.runtime.cache import ChannelCache, scenario_cache_key


def _assert_channels_equal(a, b):
    assert np.array_equal(a.h_ne.ir, b.h_ne.ir)
    assert np.array_equal(a.h_se.ir, b.h_se.ir)
    assert len(a.h_nr) == len(b.h_nr)
    for x, y in zip(a.h_nr, b.h_nr):
        assert np.array_equal(x.ir, y.ir)
    assert a.acoustic_lead_samples == b.acoustic_lead_samples
    assert a.sample_rate == b.sample_rate


class TestCacheKey:
    def test_deterministic_within_process(self):
        scenario = office_scenario()
        assert scenario_cache_key(scenario) == scenario_cache_key(scenario)

    def test_stable_across_processes(self):
        """The key must not depend on PYTHONHASHSEED or process state."""
        script = (
            "from repro.core.scenario import office_scenario\n"
            "from repro.runtime.cache import scenario_cache_key\n"
            "print(scenario_cache_key(office_scenario()))\n"
        )
        keys = set()
        for hashseed in ("0", "12345"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = hashseed
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, check=True, env=env,
            )
            keys.add(proc.stdout.strip())
        keys.add(scenario_cache_key(office_scenario()))
        assert len(keys) == 1

    def test_sensitive_to_every_input(self):
        base = office_scenario()
        variants = [
            base.with_source(Point(0.51, 3.5, 1.6)),
            dataclasses.replace(base, sample_rate=16000.0),
            dataclasses.replace(base, speaker_offset_m=0.03),
            dataclasses.replace(
                base, rir_settings=dataclasses.replace(
                    base.rir_settings, max_order=2)),
            dataclasses.replace(
                base, room=dataclasses.replace(base.room, absorption=0.6)),
        ]
        keys = {scenario_cache_key(s) for s in [base] + variants}
        assert len(keys) == len(variants) + 1


class TestMemoryCache:
    def test_hit_is_bit_identical_to_cold_compute(self):
        scenario = office_scenario()
        cache = ChannelCache()
        cold = cache.get_or_build(scenario)
        warm = cache.get_or_build(scenario)
        uncached = scenario.compute_channels()
        _assert_channels_equal(warm, cold)
        _assert_channels_equal(warm, uncached)
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_hits_return_fresh_objects(self):
        """Streaming state must never leak between cache consumers."""
        scenario = office_scenario()
        cache = ChannelCache()
        first = cache.get_or_build(scenario)
        second = cache.get_or_build(scenario)
        assert first.h_ne is not second.h_ne
        assert first.h_ne.ir is not second.h_ne.ir
        # Streaming through one copy leaves the other one untouched: a
        # fresh consumer must see exactly what a reset channel sees.
        x = np.random.default_rng(0).standard_normal(256)
        y1 = first.h_ne.process_block(x)
        before = second.h_ne.process_block(x)
        second.h_ne.reset()
        after = second.h_ne.process_block(x)
        assert np.array_equal(before, after)
        assert np.array_equal(y1, before)

    def test_lru_eviction(self):
        cache = ChannelCache(max_entries=1)
        a = office_scenario()
        b = office_scenario(relay_on_door=False)
        cache.get_or_build(a)
        cache.get_or_build(b)          # evicts a
        cache.get_or_build(a)          # miss again
        stats = cache.stats()
        assert stats["evictions"] == 2
        assert stats["misses"] == 3
        assert len(cache) == 1

    def test_build_channels_uses_explicit_cache(self):
        scenario = office_scenario()
        cache = ChannelCache()
        scenario.build_channels(cache=cache)
        scenario.build_channels(cache=cache)
        assert cache.stats() == {
            "entries": 1, "hits": 1, "misses": 1,
            "disk_hits": 0, "disk_discards": 0, "quarantined": 0,
            "evictions": 0,
        }

    def test_build_channels_cache_false_bypasses(self):
        scenario = office_scenario()
        cache = ChannelCache()
        previous = runtime.set_channel_cache(cache)
        try:
            scenario.build_channels(cache=False)
        finally:
            runtime.set_channel_cache(previous)
        assert cache.stats()["misses"] == 0

    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            ChannelCache(max_entries=0)


class TestDiskCache:
    def test_round_trip(self, tmp_path):
        scenario = office_scenario()
        writer = ChannelCache(disk_dir=tmp_path)
        cold = writer.get_or_build(scenario)
        # A different process would start with an empty memory layer.
        reader = ChannelCache(disk_dir=tmp_path)
        warm = reader.get_or_build(scenario)
        _assert_channels_equal(warm, cold)
        assert reader.stats()["disk_hits"] == 1
        assert reader.stats()["misses"] == 0

    def test_corrupt_entry_recovered(self, tmp_path):
        scenario = office_scenario()
        writer = ChannelCache(disk_dir=tmp_path)
        writer.get_or_build(scenario)
        (entry_path,) = tmp_path.glob("*.npz")
        entry_path.write_bytes(b"this is not an npz archive")

        reader = ChannelCache(disk_dir=tmp_path)
        channels = reader.get_or_build(scenario)
        _assert_channels_equal(channels, scenario.compute_channels())
        stats = reader.stats()
        assert stats["disk_discards"] == 1
        assert stats["quarantined"] == 1
        assert stats["misses"] == 1
        # The bad bytes were moved aside for inspection, not destroyed.
        quarantined = list((tmp_path / ".quarantine").glob("*.npz"))
        assert [p.name for p in quarantined] == [entry_path.name]
        assert quarantined[0].read_bytes() == b"this is not an npz archive"
        # The slot itself was replaced with a clean rewrite.
        again = ChannelCache(disk_dir=tmp_path)
        again.get_or_build(scenario)
        assert again.stats()["disk_hits"] == 1

    def test_corruption_counted_in_obs(self, tmp_path):
        scenario = office_scenario()
        writer = ChannelCache(disk_dir=tmp_path)
        writer.get_or_build(scenario)
        (entry_path,) = tmp_path.glob("*.npz")
        entry_path.write_bytes(b"garbage")

        obs.reset()
        with obs.enabled_scope():
            ChannelCache(disk_dir=tmp_path).get_or_build(scenario)
            metrics = obs.get_registry().to_dict()["metrics"]
        obs.reset()
        by_name = {m["name"]: m for m in metrics}
        assert by_name["cache.corruption_total"]["value"] == 1

    def test_truncated_entry_recovered(self, tmp_path):
        scenario = office_scenario()
        writer = ChannelCache(disk_dir=tmp_path)
        writer.get_or_build(scenario)
        (entry_path,) = tmp_path.glob("*.npz")
        blob = entry_path.read_bytes()
        entry_path.write_bytes(blob[: len(blob) // 2])

        reader = ChannelCache(disk_dir=tmp_path)
        channels = reader.get_or_build(scenario)
        _assert_channels_equal(channels, scenario.compute_channels())
        assert reader.stats()["disk_discards"] == 1

    def test_unwritable_disk_degrades_to_memory(self, tmp_path):
        target = tmp_path / "blocked"
        target.write_text("a file where the cache dir should go")
        cache = ChannelCache(disk_dir=target)
        scenario = office_scenario()
        cache.get_or_build(scenario)
        channels = cache.get_or_build(scenario)
        _assert_channels_equal(channels, scenario.compute_channels())
        assert cache.stats()["hits"] == 1

    def test_clear_disk(self, tmp_path):
        cache = ChannelCache(disk_dir=tmp_path)
        cache.get_or_build(office_scenario())
        assert list(tmp_path.glob("*.npz"))
        cache.clear(disk=True)
        assert not list(tmp_path.glob("*.npz"))
        assert len(cache) == 0


class TestWarmSpeedup:
    def test_warm_build_is_10x_faster(self):
        """Acceptance criterion: warm build >= 10x faster than cold."""
        import time

        scenario = office_scenario()
        cache = ChannelCache()
        t0 = time.perf_counter()
        cache.get_or_build(scenario)
        cold_s = time.perf_counter() - t0

        # Best-of-five warm builds: timer noise, not cache behaviour.
        warm_s = min(
            _timed(cache.get_or_build, scenario) for _ in range(5))
        assert warm_s * 10 <= cold_s, (cold_s, warm_s)


def _timed(fn, *args):
    import time

    t0 = time.perf_counter()
    fn(*args)
    return time.perf_counter() - t0


class TestRegistry:
    def test_every_catalog_entry_registered(self):
        names = experiments.experiment_names()
        assert "fig12" in names and "timing" in names and "edge" in names
        assert "resilience" in names and "serving" in names
        assert "chaos" in names
        assert len(names) == 20

    def test_get_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            experiments.get("fig99")

    def test_defaults_are_inspectable(self):
        entry = experiments.get("fig16")
        assert "duration_s" in entry.defaults
        assert "seed" in entry.defaults
        assert "scenario" in entry.defaults
        assert entry.defaults["scenario"] is None

    def test_uniform_signature_across_runners(self):
        """Every runner accepts duration_s / seed / scenario."""
        for entry in experiments.all_experiments():
            missing = {"duration_s", "seed", "scenario"} - set(entry.defaults)
            assert not missing, (entry.name, missing)

    def test_run_rejects_unknown_param(self):
        with pytest.raises(ConfigurationError):
            experiments.get("timing").run(nonsense=1)

    def test_run_drops_none_overrides(self):
        result = experiments.get("timing").run(duration_s=None, seed=None)
        assert result["name"] == "timing"
        assert "duration_s" not in result["params"]

    def test_envelope_keys_and_attribute_proxy(self):
        result = experiments.get("timing").run()
        assert set(result) == {"schema", "name", "params", "results"}
        assert result.schema == "repro.runtime.report/v2"
        assert result.name == "timing"
        # Attribute access falls through to the rich results object.
        assert result.report() == result.results.report()
        with pytest.raises(AttributeError):
            result.no_such_attribute

    def test_envelope_pickles(self):
        result = experiments.get("timing").run()
        clone = pickle.loads(pickle.dumps(result))
        assert clone["name"] == "timing"
        assert clone.report() == result.report()


class TestExecutor:
    def test_serial_equals_parallel(self):
        """Acceptance criterion: parallel results equal serial (same seeds)."""
        names = ["timing", "fig13"]
        request = runtime.RunRequest(duration_s=1.0, seed=0)
        serial = runtime.run_experiments(names, request=request)
        parallel = runtime.run_experiments(
            names, request=request.replace(jobs=2))
        assert not serial.failures() and not parallel.failures()
        for name in names:
            assert (serial.results()[name].report()
                    == parallel.results()[name].report()), name

    def test_merged_obs_documents(self):
        suite = runtime.run_experiments(
            ["timing", "fig13"], request=runtime.RunRequest(jobs=2))
        trace = suite.merged_trace
        assert trace["schema"] == "repro.obs.trace/v1"
        assert [s["name"] for s in trace["spans"]] == [
            "experiment:timing", "experiment:fig13"]
        assert suite.merged_metrics["schema"] == "repro.obs.metrics/v1"

    def test_suite_document_schema(self):
        suite = runtime.run_experiments(["timing"])
        document = suite.to_dict()
        assert document["schema"] == "repro.runtime.report/v2"
        assert document["runs"][0]["ok"] is True
        assert document["runs"][0]["report"]

    def test_failure_captured_not_raised(self):
        # convergence's profile scheduler legitimately rejects a 0.5 s
        # run — the suite must report it, not crash.
        suite = runtime.run_experiments(
            [("convergence", {"duration_s": 0.5}), "timing"])
        assert set(suite.failures()) == {"convergence"}
        assert "timing" in suite.results()
        assert suite.to_dict()["runs"][0]["ok"] is False

    def test_unknown_name_fails_fast(self):
        with pytest.raises(ConfigurationError):
            runtime.run_experiments(["fig99"])

    def test_bad_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            runtime.run_experiments(
                ["timing"], request=runtime.RunRequest(jobs=0))

    def test_per_experiment_params(self):
        suite = runtime.run_experiments(
            ["timing"],
            per_experiment={"timing": {"bench_lead_s": 6e-3}})
        assert suite.results()["timing"]["params"]["bench_lead_s"] == 6e-3


class TestRunRequest:
    def test_unknown_parameter_error_lists_names(self):
        from repro.errors import UnknownParameterError

        with pytest.raises(UnknownParameterError) as excinfo:
            experiments.get("timing").run(nonsense=1, also_bad=2)
        err = excinfo.value
        assert err.unknown == ("also_bad", "nonsense")
        assert "duration_s" in err.valid
        assert "nonsense" in str(err) and "duration_s" in str(err)
        assert isinstance(err, ConfigurationError)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            runtime.RunRequest(jobs=0)
        with pytest.raises(ConfigurationError):
            runtime.RunRequest(kernel_backend="nope")

    def test_request_propagates_to_parallel_workers(self):
        """Acceptance: kernel_backend + fault_plan reach jobs=2 workers,
        bit-identical to jobs=1."""
        from repro.faults import outage_plan

        base = runtime.RunRequest(
            seed=0, duration_s=0.4, kernel_backend="vector",
            fault_plan=outage_plan(0.4, 0.5),
            params={"sessions": 2, "block_size": 128},
        )
        serial = runtime.run_experiments(["serving"],
                                         request=base.replace(jobs=1))
        parallel = runtime.run_experiments(["serving"],
                                           request=base.replace(jobs=2))
        assert not serial.failures() and not parallel.failures()
        a = serial.results()["serving"].results
        b = parallel.results()["serving"].results
        assert a.kernel_backend == "vector" == b.kernel_backend
        assert a.faulted_sessions == 1 == b.faulted_sessions
        assert a.digests == b.digests

    def test_request_params_filtered_per_runner(self):
        """Broadcast request params only reach runners that take them."""
        request = runtime.RunRequest(duration_s=1.0,
                                     params={"bench_lead_s": 6e-3})
        suite = runtime.run_experiments(["timing", "fig13"],
                                        request=request)
        assert not suite.failures()
        assert suite.results()["timing"]["params"]["bench_lead_s"] == 6e-3
        assert "bench_lead_s" not in suite.results()["fig13"]["params"]

    def test_explicit_overrides_stay_strict(self):
        request = runtime.RunRequest()
        with pytest.raises(ConfigurationError):
            experiments.get("timing").run(request=request, sessions=4)

    def test_legacy_kwargs_warn(self):
        with pytest.warns(DeprecationWarning):
            suite = runtime.run_experiments(
                ["timing"], jobs=1, params={"duration_s": 1.0})
        assert not suite.failures()
        assert suite.request.jobs == 1

    def test_request_and_legacy_kwargs_conflict(self):
        with pytest.raises(ConfigurationError):
            runtime.run_experiments(
                ["timing"], request=runtime.RunRequest(), jobs=2)


class TestReportV2:
    def test_result_round_trip(self):
        result = experiments.get("timing").run()
        blob = result.to_json()
        document = json.loads(blob)
        assert document["schema"] == "repro.runtime.report/v2"
        assert document["kind"] == "result"
        clone = experiments.ExperimentResult.from_json(blob)
        assert clone["name"] == "timing"
        assert clone["params"] == result["params"]
        assert clone.report() == result.report()

    def test_result_rejects_foreign_schema(self):
        result = experiments.get("timing").run()
        document = result.to_dict()
        document["schema"] = "repro.runtime.report/v1"
        with pytest.raises(ConfigurationError):
            experiments.ExperimentResult.from_dict(document)

    def test_suite_round_trip(self):
        suite = runtime.run_experiments(
            ["timing"], request=runtime.RunRequest(jobs=1))
        clone = runtime.SuiteReport.from_json(suite.to_json())
        assert clone.to_dict() == suite.to_dict()
        assert clone.results()["timing"].report() == \
            suite.results()["timing"].report()


class TestSweep:
    def test_grid_expansion_order(self):
        result = runtime.sweep(
            "fig13",
            {"duration_s": [0.5, 1.0], "n_points": [16, 32]},
        )
        swept = [(run["params"]["duration_s"], run["params"]["n_points"])
                 for run in result.runs]
        assert swept == [(0.5, 16), (0.5, 32), (1.0, 16), (1.0, 32)]

    def test_sweep_matches_direct_runs(self):
        result = runtime.sweep("timing", {"bench_lead_s": [6e-3]}, jobs=2)
        direct = experiments.get("timing").run(bench_lead_s=6e-3)
        assert result.runs[0].report() == direct.report()

    def test_collect(self):
        result = runtime.sweep("timing", {"bench_lead_s": [6e-3, 8.5e-3]})
        ratios = result.collect(lambda r: r.headphone_overrun_ratio)
        assert len(ratios) == 2
        assert all(isinstance(v, float) for v in ratios)

    def test_empty_grid_rejected(self):
        with pytest.raises(ConfigurationError):
            runtime.sweep("timing", {})
        with pytest.raises(ConfigurationError):
            runtime.sweep("timing", {"bench_lead_s": []})

    def test_failing_point_raises(self):
        with pytest.raises(ConfigurationError):
            runtime.sweep("convergence", {"duration_s": [0.5]})
