"""Lookahead arithmetic (Eq. 3 / Eq. 4)."""

import pytest

from repro.core import LookaheadBudget, lookahead_samples, lookahead_seconds
from repro.errors import ConfigurationError


class TestEq4:
    def test_one_meter_is_about_3ms(self):
        # The paper: "when (de - dr) is just 1 m, lookahead is ~3 ms".
        assert lookahead_seconds(4.0, 3.0) == pytest.approx(2.94e-3,
                                                            rel=0.01)

    def test_negative_when_relay_farther(self):
        assert lookahead_seconds(1.0, 2.0) < 0.0

    def test_samples_floor(self):
        assert lookahead_samples(1.0, 0.0, 8000.0) == 23   # 23.5 floored

    def test_rejects_negative_distance(self):
        with pytest.raises(ConfigurationError):
            lookahead_seconds(-1.0, 0.0)


class TestBudget:
    def test_usable_subtracts_everything(self):
        b = LookaheadBudget(acoustic_lead_s=10e-3, pipeline_latency_s=3e-3,
                            relay_latency_s=1e-3, injected_delay_s=2e-3)
        assert b.usable_lookahead_s == pytest.approx(4e-3)
        assert b.usable_future_taps(8000.0) == 32

    def test_meets_deadline(self):
        assert LookaheadBudget(acoustic_lead_s=5e-3,
                               pipeline_latency_s=3e-3).meets_deadline
        assert not LookaheadBudget(acoustic_lead_s=1e-3,
                                   pipeline_latency_s=3e-3).meets_deadline

    def test_playback_lag(self):
        b = LookaheadBudget(acoustic_lead_s=1e-3, pipeline_latency_s=3e-3)
        assert b.playback_lag_s == pytest.approx(2e-3)
        met = LookaheadBudget(acoustic_lead_s=5e-3, pipeline_latency_s=3e-3)
        assert met.playback_lag_s == 0.0

    def test_future_taps_never_negative(self):
        b = LookaheadBudget(acoustic_lead_s=-5e-3)
        assert b.usable_future_taps(8000.0) == 0

    def test_with_injected_delay(self):
        b = LookaheadBudget(acoustic_lead_s=10e-3)
        b2 = b.with_injected_delay(4e-3)
        assert b2.usable_lookahead_s == pytest.approx(6e-3)
        assert b.injected_delay_s == 0.0   # original untouched

    def test_rejects_negative_latency(self):
        with pytest.raises(ConfigurationError):
            LookaheadBudget(acoustic_lead_s=1e-3, pipeline_latency_s=-1e-3)
