"""LMS/NLMS adaptive filter."""

import numpy as np
import pytest

from repro.core import LmsFilter, identify_system
from repro.errors import ConvergenceError


class TestLmsFilter:
    def test_identifies_fir_system(self, rng):
        h = np.array([0.5, -0.3, 0.2])
        x = rng.standard_normal(4000)
        d = np.convolve(x, h)[:4000]
        lms = LmsFilter(n_taps=6, mu=0.5)
        result = lms.run(x, d)
        np.testing.assert_allclose(result.taps[:3], h, atol=1e-3)
        np.testing.assert_allclose(result.taps[3:], 0.0, atol=1e-3)

    def test_error_decreases(self, rng):
        h = np.array([1.0, 0.4])
        x = rng.standard_normal(4000)
        d = np.convolve(x, h)[:4000]
        result = LmsFilter(n_taps=4, mu=0.5).run(x, d)
        early = np.mean(result.error[:200] ** 2)
        late = np.mean(result.error[-200:] ** 2)
        assert late < early / 100.0

    def test_tracks_time_varying_system(self, rng):
        x = rng.standard_normal(6000)
        d = np.concatenate([2.0 * x[:3000], -2.0 * x[3000:]])
        lms = LmsFilter(n_taps=1, mu=1.0)
        result = lms.run(x, d)
        assert abs(result.taps[0] + 2.0) < 0.05   # converged to the new sign

    def test_unnormalized_diverges_with_huge_mu(self, rng):
        x = 10.0 * rng.standard_normal(2000)
        d = x.copy()
        lms = LmsFilter(n_taps=4, mu=5.0, normalized=False)
        with pytest.raises(ConvergenceError):
            lms.run(x, d)

    def test_normalized_stable_with_same_mu_scaled_input(self, rng):
        x = 10.0 * rng.standard_normal(2000)
        d = x.copy()
        lms = LmsFilter(n_taps=4, mu=1.0, normalized=True)
        result = lms.run(x, d)
        assert np.all(np.isfinite(result.taps))

    def test_leak_shrinks_taps_without_input(self):
        lms = LmsFilter(n_taps=2, mu=0.5, leak=0.01)
        lms.taps[:] = [1.0, 1.0]
        for __ in range(100):
            lms.step(0.0, 0.0)
        assert np.all(np.abs(lms.taps) < 0.5)

    def test_reset(self, rng):
        lms = LmsFilter(n_taps=3, mu=0.5)
        lms.run(rng.standard_normal(100), rng.standard_normal(100))
        lms.reset()
        np.testing.assert_array_equal(lms.taps, np.zeros(3))

    def test_rejects_bad_leak(self):
        with pytest.raises(ValueError):
            LmsFilter(n_taps=2, leak=1.0)

    def test_step_returns_prediction_and_error(self):
        lms = LmsFilter(n_taps=2, mu=0.5)
        pred, err = lms.step(1.0, 3.0)
        assert pred == 0.0
        assert err == 3.0


class TestIdentifySystem:
    def test_multi_pass_improves(self, rng):
        h = rng.standard_normal(8) * 0.3
        x = rng.standard_normal(2000)
        d = np.convolve(x, h)[:2000]
        est = identify_system(x, d, n_taps=8, n_passes=3)
        assert np.linalg.norm(est - h) < 0.02

    def test_longer_estimate_padded_with_zeros(self, rng):
        h = np.array([0.7])
        x = rng.standard_normal(2000)
        d = 0.7 * x
        est = identify_system(x, d, n_taps=4)
        assert est[0] == pytest.approx(0.7, abs=1e-3)
        np.testing.assert_allclose(est[1:], 0.0, atol=1e-3)
