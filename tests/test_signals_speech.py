"""Synthetic speech: pitch, formants, pauses."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.signals import FemaleVoice, MaleVoice, SyntheticSpeech
from repro.utils.spectral import welch_psd


class TestSyntheticSpeech:
    def test_reproducible(self):
        a = MaleVoice(seed=3).generate(1.0)
        b = MaleVoice(seed=3).generate(1.0)
        np.testing.assert_array_equal(a, b)

    def test_has_pauses(self):
        src = SyntheticSpeech(speech_fraction=0.5, sentence_length_s=0.8,
                              seed=1)
        wave, mask = src.generate_with_activity(8.0)
        duty = mask.mean()
        assert 0.25 < duty < 0.75
        # The waveform is actually quiet during pauses.
        quiet_rms = np.sqrt(np.mean(wave[~mask] ** 2)) if (~mask).any() else 0
        active_rms = np.sqrt(np.mean(wave[mask] ** 2))
        assert active_rms > 5 * max(quiet_rms, 1e-12)

    def test_speech_fraction_one_never_pauses(self):
        src = SyntheticSpeech(speech_fraction=1.0, seed=1)
        __, mask = src.generate_with_activity(2.0)
        assert mask.all()

    def test_energy_in_speech_band(self):
        x = MaleVoice(seed=5, speech_fraction=1.0).generate(4.0)
        freqs, psd = welch_psd(x, 8000.0, nperseg=1024)
        speech_band = psd[(freqs > 100) & (freqs < 3000)].sum()
        top_band = psd[freqs > 3500].sum()
        assert speech_band > 3 * top_band

    @staticmethod
    def _autocorr_pitch(x, fs=8000.0):
        x = x - x.mean()
        n = min(x.size, 20000)
        corr = np.correlate(x[:n], x[:n], mode="full")[n - 1:]
        lo, hi = int(fs / 350), int(fs / 80)
        lag = lo + int(np.argmax(corr[lo:hi]))
        return fs / lag

    def test_male_pitch_near_120hz(self):
        male = MaleVoice(seed=2, speech_fraction=1.0).generate(4.0)
        assert self._autocorr_pitch(male) == pytest.approx(120.0, abs=15.0)

    def test_female_pitch_higher_than_male(self):
        male = MaleVoice(seed=2, speech_fraction=1.0).generate(4.0)
        female = FemaleVoice(seed=2, speech_fraction=1.0).generate(4.0)
        assert (self._autocorr_pitch(female)
                > 1.4 * self._autocorr_pitch(male))

    def test_rejects_nonhuman_pitch(self):
        with pytest.raises(ConfigurationError):
            SyntheticSpeech(pitch_hz=1000.0)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ConfigurationError):
            SyntheticSpeech(speech_fraction=0.0)

    def test_level_scaling(self):
        src = MaleVoice(seed=1, level_rms=0.2)
        assert src.measured_rms(2.0) == pytest.approx(0.2, rel=1e-6)
