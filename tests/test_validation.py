"""Argument-validation helpers."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SignalError
from repro.utils import validation as v


class TestCheckPositive:
    def test_accepts_positive(self):
        assert v.check_positive("x", 2.5) == 2.5

    def test_coerces_int(self):
        result = v.check_positive("x", 3)
        assert result == 3.0 and isinstance(result, float)

    @pytest.mark.parametrize("bad", [0, -1.0, float("nan"), float("inf"),
                                     "3", None, True])
    def test_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            v.check_positive("x", bad)

    def test_error_names_the_argument(self):
        with pytest.raises(ConfigurationError, match="sample_rate"):
            v.check_positive("sample_rate", -1)


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert v.check_non_negative("x", 0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            v.check_non_negative("x", -1e-9)


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert v.check_in_range("x", 1.0, 1.0, 2.0) == 1.0
        assert v.check_in_range("x", 2.0, 1.0, 2.0) == 2.0

    def test_exclusive_bounds(self):
        with pytest.raises(ConfigurationError):
            v.check_in_range("x", 1.0, 1.0, 2.0, inclusive=False)

    def test_rejects_outside(self):
        with pytest.raises(ConfigurationError):
            v.check_in_range("x", 2.1, 1.0, 2.0)


class TestCheckInt:
    def test_accepts_numpy_integer(self):
        assert v.check_int("n", np.int64(5)) == 5

    def test_rejects_bool(self):
        with pytest.raises(ConfigurationError):
            v.check_int("n", True)

    def test_rejects_float(self):
        with pytest.raises(ConfigurationError):
            v.check_int("n", 5.0)

    def test_positive_int(self):
        assert v.check_positive_int("n", 1) == 1
        with pytest.raises(ConfigurationError):
            v.check_positive_int("n", 0)

    def test_non_negative_int(self):
        assert v.check_non_negative_int("n", 0) == 0
        with pytest.raises(ConfigurationError):
            v.check_non_negative_int("n", -1)


class TestCheckProbability:
    def test_bounds(self):
        assert v.check_probability("p", 0.0) == 0.0
        assert v.check_probability("p", 1.0) == 1.0

    def test_rejects(self):
        with pytest.raises(ConfigurationError):
            v.check_probability("p", 1.01)


class TestCheckWaveform:
    def test_coerces_list(self):
        out = v.check_waveform("x", [1, 2, 3])
        assert out.dtype == np.float64

    def test_rejects_2d(self):
        with pytest.raises(SignalError):
            v.check_waveform("x", np.zeros((2, 2)))

    def test_rejects_short(self):
        with pytest.raises(SignalError):
            v.check_waveform("x", [1.0], min_length=2)

    def test_rejects_nan(self):
        with pytest.raises(SignalError):
            v.check_waveform("x", [1.0, np.nan])

    def test_rejects_complex_by_default(self):
        with pytest.raises(SignalError):
            v.check_waveform("x", np.array([1j, 2j]))

    def test_allows_complex_when_asked(self):
        out = v.check_waveform("x", np.array([1j, 2j]), allow_complex=True)
        assert out.dtype == np.complex128


class TestCheckImpulseResponse:
    def test_rejects_all_zero(self):
        with pytest.raises(SignalError):
            v.check_impulse_response("h", np.zeros(8))

    def test_accepts_delta(self):
        h = v.check_impulse_response("h", [0.0, 1.0, 0.0])
        assert h[1] == 1.0


class TestCheckSameLength:
    def test_ok(self):
        a, b = v.check_same_length("a", [1, 2], "b", [3, 4])
        assert len(a) == len(b)

    def test_mismatch(self):
        with pytest.raises(SignalError, match="equal length"):
            v.check_same_length("a", [1], "b", [1, 2])
