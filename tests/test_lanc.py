"""LANC — the lookahead-aware canceler (the paper's core algorithm)."""

import numpy as np
import pytest

from repro.core import FxlmsFilter, LancFilter, StreamingLanc
from repro.errors import ConfigurationError, ConvergenceError


def _nonminphase_scene(rng, T=12000, delta=16):
    """Reference through a non-minimum-phase channel; pure-delay target.

    The optimal canceler contains the channel inverse, whose stable form
    is anti-causal — exactly the situation lookahead addresses.
    """
    n = rng.standard_normal(T)
    g = np.array([1.0, 1.6])          # zero at -1.6: non-minimum-phase
    x_raw = np.convolve(n, g)[:T]
    d = np.zeros(T)
    d[delta:] = n[:-delta]
    x = np.zeros(T)
    x[delta:] = x_raw[:-delta]        # aligned reference
    return x, d


SECONDARY = np.array([0.0, 0.0, 0.9, 0.1])


class TestLookaheadAdvantage:
    """The headline property: non-causal taps buy cancellation."""

    def test_future_taps_reduce_error(self, rng):
        x, d = _nonminphase_scene(rng)
        errors = {}
        for n_future in (0, 4, 12):
            f = LancFilter(n_future=n_future, n_past=48,
                           secondary_path=SECONDARY, mu=0.5)
            errors[n_future] = f.run(x, d).converged_error()
        assert errors[4] < 0.5 * errors[0]
        assert errors[12] < 0.25 * errors[0]

    def test_deep_cancellation_with_ample_lookahead(self, rng):
        x, d = _nonminphase_scene(rng)
        f = LancFilter(n_future=14, n_past=64, secondary_path=SECONDARY,
                       mu=0.5)
        result = f.run(x, d)
        disturb_rms = np.sqrt(np.mean(d[-3000:] ** 2))
        assert result.converged_error() < 0.05 * disturb_rms


class TestMechanics:
    def test_fxlms_is_zero_future_lanc(self):
        f = FxlmsFilter(n_taps=32, secondary_path=SECONDARY)
        assert f.n_future == 0
        assert f.n_past == 32

    def test_tap_indexing(self):
        f = LancFilter(n_future=2, n_past=3, secondary_path=SECONDARY)
        f.taps[:] = [1, 2, 3, 4, 5]
        assert f.tap(-2) == 1.0
        assert f.tap(0) == 3.0
        assert f.tap(2) == 5.0
        with pytest.raises(ConfigurationError):
            f.tap(3)

    def test_get_set_taps(self):
        f = LancFilter(n_future=1, n_past=2, secondary_path=SECONDARY)
        f.set_taps(np.array([1.0, 2.0, 3.0]))
        got = f.get_taps()
        got[0] = 99.0
        assert f.taps[0] == 1.0   # get_taps returned a copy

    def test_set_taps_wrong_shape(self):
        f = LancFilter(n_future=1, n_past=2, secondary_path=SECONDARY)
        with pytest.raises(ConfigurationError):
            f.set_taps(np.zeros(5))

    def test_reset(self, rng):
        x, d = _nonminphase_scene(rng, T=2000)
        f = LancFilter(n_future=4, n_past=16, secondary_path=SECONDARY)
        f.run(x, d)
        f.reset()
        np.testing.assert_array_equal(f.taps, 0.0)

    def test_frozen_run_does_not_adapt(self, rng):
        x, d = _nonminphase_scene(rng, T=2000)
        f = LancFilter(n_future=4, n_past=16, secondary_path=SECONDARY)
        f.run(x, d, adapt=False)
        np.testing.assert_array_equal(f.taps, 0.0)

    def test_frozen_run_error_equals_disturbance(self, rng):
        x, d = _nonminphase_scene(rng, T=2000)
        f = LancFilter(n_future=4, n_past=16, secondary_path=SECONDARY)
        result = f.run(x, d, adapt=False)
        np.testing.assert_allclose(result.error, d)

    def test_adapt_mask(self, rng):
        x, d = _nonminphase_scene(rng, T=4000)
        # Adapt only in the first half: taps must change there and then
        # stay frozen for the rest of the run.
        mask = np.zeros(4000, dtype=bool)
        mask[:2000] = True
        f = LancFilter(n_future=4, n_past=32, secondary_path=SECONDARY,
                       mu=0.5)
        half = f.run(x[:2000], d[:2000], adapt_mask=mask[:2000])
        taps_at_half = f.get_taps()
        assert np.any(taps_at_half != 0.0)
        f.run(x[2000:], d[2000:], adapt_mask=mask[2000:])
        np.testing.assert_array_equal(f.get_taps(), taps_at_half)
        assert half.error.size == 2000

    def test_mismatched_lengths_rejected(self, rng):
        f = LancFilter(n_future=1, n_past=4, secondary_path=SECONDARY)
        with pytest.raises(Exception):
            f.run(np.zeros(10), np.zeros(11))

    def test_divergence_detected(self, rng):
        x, d = _nonminphase_scene(rng, T=3000)
        f = LancFilter(n_future=2, n_past=16, secondary_path=SECONDARY,
                       mu=50.0, normalized=False)
        with pytest.raises(ConvergenceError):
            f.run(100.0 * x, 100.0 * d)

    def test_secondary_path_mismatch_still_converges(self, rng):
        # A slightly wrong estimate of h_se should not break FxLMS.
        x, d = _nonminphase_scene(rng)
        s_est = SECONDARY * 1.2
        f = LancFilter(n_future=12, n_past=48, secondary_path=s_est, mu=0.3)
        result = f.run(x, d, secondary_path_true=SECONDARY)
        disturb_rms = np.sqrt(np.mean(d[-3000:] ** 2))
        assert result.converged_error() < 0.2 * disturb_rms


class TestStreamingLanc:
    def test_matches_batch_except_boundary(self, rng):
        x, d = _nonminphase_scene(rng, T=4000)
        f1 = LancFilter(n_future=8, n_past=32, secondary_path=SECONDARY,
                        mu=0.5)
        batch = f1.run(x, d)
        f2 = LancFilter(n_future=8, n_past=32, secondary_path=SECONDARY,
                        mu=0.5)
        stream = StreamingLanc(f2)
        stream.feed(np.concatenate([x, np.zeros(8)]))
        out = []
        for start in range(0, 4000, 333):
            out.append(stream.process(d[start: start + 333]))
        streamed = np.concatenate(out)
        np.testing.assert_allclose(batch.error[:-8], streamed[:-8],
                                   atol=1e-9)

    def test_underrun_detected(self, rng):
        f = LancFilter(n_future=8, n_past=16, secondary_path=SECONDARY)
        stream = StreamingLanc(f)
        stream.feed(np.zeros(10))
        with pytest.raises(ConfigurationError, match="underrun"):
            stream.process(np.zeros(10))

    def test_peek_future(self, rng):
        f = LancFilter(n_future=4, n_past=8, secondary_path=SECONDARY)
        stream = StreamingLanc(f)
        stream.feed(np.arange(20.0))
        np.testing.assert_array_equal(stream.peek_future(3), [0.0, 1.0, 2.0])
        stream.process(np.zeros(5))
        np.testing.assert_array_equal(stream.peek_future(3), [5.0, 6.0, 7.0])

    def test_error_signal_accumulates(self, rng):
        f = LancFilter(n_future=2, n_past=8, secondary_path=SECONDARY)
        stream = StreamingLanc(f)
        stream.feed(np.zeros(100))
        stream.process(np.ones(10))
        stream.process(np.ones(20))
        assert stream.error_signal().size == 30

    def test_requires_lanc_filter(self):
        with pytest.raises(ConfigurationError):
            StreamingLanc("not a filter")
