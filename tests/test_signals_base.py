"""SignalSource base behavior: determinism, scaling, durations."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.signals import Silence, WhiteNoise, duration_to_samples, normalize_rms


class TestDurationToSamples:
    def test_basic(self):
        assert duration_to_samples(1.0, 8000.0) == 8000

    def test_rounds(self):
        assert duration_to_samples(0.1, 8000.0) == 800

    def test_rejects_zero_duration(self):
        with pytest.raises(ConfigurationError):
            duration_to_samples(0.0, 8000.0)


class TestNormalizeRms:
    def test_scales_to_target(self):
        x = np.random.default_rng(0).standard_normal(1000)
        y = normalize_rms(x, 0.25)
        assert np.sqrt(np.mean(y ** 2)) == pytest.approx(0.25)

    def test_silence_passthrough(self):
        np.testing.assert_array_equal(normalize_rms(np.zeros(10), 1.0),
                                      np.zeros(10))


class TestSignalSourceContract:
    def test_deterministic_per_seed(self):
        a = WhiteNoise(seed=5).generate(0.5)
        b = WhiteNoise(seed=5).generate(0.5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = WhiteNoise(seed=5).generate(0.5)
        b = WhiteNoise(seed=6).generate(0.5)
        assert not np.array_equal(a, b)

    def test_repeated_generate_identical(self):
        src = WhiteNoise(seed=5)
        np.testing.assert_array_equal(src.generate(0.25), src.generate(0.25))

    def test_level_rms_honored(self):
        src = WhiteNoise(seed=1, level_rms=0.37)
        assert src.measured_rms() == pytest.approx(0.37)

    def test_sample_count(self):
        assert WhiteNoise(seed=0).generate(1.5).size == 12000

    def test_generate_samples(self):
        assert WhiteNoise(seed=0).generate_samples(123).size == 123

    def test_generate_samples_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            WhiteNoise(seed=0).generate_samples(0)

    def test_rejects_bad_sample_rate(self):
        with pytest.raises(ConfigurationError):
            WhiteNoise(sample_rate=-8000.0)

    def test_rejects_bad_level(self):
        with pytest.raises(ConfigurationError):
            WhiteNoise(level_rms=0.0)

    def test_repr_mentions_class(self):
        assert "WhiteNoise" in repr(WhiteNoise(seed=2))


class TestSilence:
    def test_all_zero(self):
        np.testing.assert_array_equal(Silence().generate(0.1), np.zeros(800))

    def test_rejects_zero_samples(self):
        with pytest.raises(ConfigurationError):
            Silence().generate_samples(0)
