"""repro.faults: fault model, injection, degradation, supervision."""

import dataclasses

import numpy as np
import pytest

from repro import obs
from repro.core import LancFilter, RelaySelector
from repro.core.system import ResilientRunResult
from repro.errors import ConfigurationError, RelaySelectionError
from repro.faults import (
    MODE_FEEDBACK,
    MODE_MUTE,
    MODE_PASSIVE,
    BurstInterference,
    ClockDrift,
    DegradationController,
    FaultPlan,
    FaultyRelay,
    FaultyRfChannel,
    PacketLoss,
    PacketReorder,
    ReferenceHealthMonitor,
    RelayHandoff,
    RelayOutage,
    RelaySupervisor,
    RetryPolicy,
    SnrFade,
    outage_plan,
    packet_loss_plan,
    wrap_relay,
)
from repro.signals import WhiteNoise
from repro.wireless.relay import IdealRelay

FS = 8000.0
SECONDARY = np.array([0.0, 1.0])


def passthrough_relay():
    return IdealRelay(mic_noise_rms=0.0)


# ---------------------------------------------------------------------------
# Events and plans
# ---------------------------------------------------------------------------
class TestEvents:
    def test_window_clips_to_waveform(self):
        event = RelayOutage(0.5, 2.0)
        assert event.window(1000.0, 1200) == (500, 1200)
        assert event.window(1000.0, 400) == (400, 400)  # fully outside

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RelayOutage(-0.1, 1.0)
        with pytest.raises(ConfigurationError):
            RelayOutage(1.0, 1.0)
        with pytest.raises(ConfigurationError):
            PacketLoss(0.0, 1.0, loss_rate=1.5)
        with pytest.raises(ConfigurationError):
            SnrFade(2.0, 1.0)

    def test_handoff_at(self):
        h = RelayHandoff.at(3.0, blackout_s=0.08)
        assert h.start_s == 3.0
        assert h.duration_s == pytest.approx(0.08)

    def test_outage_fraction_merges_overlaps(self):
        plan = FaultPlan(events=(
            RelayOutage(1.0, 2.0),
            RelayOutage(1.5, 2.5),
            RelayHandoff.at(5.0, blackout_s=0.5),
            SnrFade(0.0, 4.0),          # not an outage
        ))
        assert plan.outage_fraction(10.0) == pytest.approx(0.2)


class TestFaultPlan:
    def test_key_is_order_independent(self):
        a = FaultPlan(events=(RelayOutage(1.0, 2.0), SnrFade(3.0, 4.0)))
        b = FaultPlan(events=(SnrFade(3.0, 4.0), RelayOutage(1.0, 2.0)))
        assert a.plan_key() == b.plan_key()
        assert a.events == b.events

    def test_key_depends_on_content_and_seed(self):
        base = FaultPlan(events=(RelayOutage(1.0, 2.0),))
        assert base.plan_key() != FaultPlan(
            events=(RelayOutage(1.0, 2.1),)).plan_key()
        assert base.plan_key() != dataclasses.replace(
            base, seed=1).plan_key()
        assert base.plan_key() != FaultPlan(
            events=(RelayHandoff(1.0, 2.0),)).plan_key()

    def test_empty_and_helpers(self):
        assert FaultPlan().empty
        assert outage_plan(8.0, 0.0).empty
        assert packet_loss_plan(8.0, 0.0).empty
        plan = outage_plan(8.0, 0.25)
        assert plan.outage_fraction(8.0) == pytest.approx(0.25)
        assert len(packet_loss_plan(8.0, 0.1)) == 1
        assert "RelayOutage" in plan.describe()

    def test_rejects_non_events(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(events=("outage",))

    def test_events_of(self):
        plan = FaultPlan(events=(RelayOutage(0.0, 1.0), SnrFade(2.0, 3.0)))
        assert plan.events_of(SnrFade) == (SnrFade(2.0, 3.0),)


# ---------------------------------------------------------------------------
# Injection
# ---------------------------------------------------------------------------
class TestFaultyRelay:
    def _audio(self, seconds=1.0, seed=0):
        return WhiteNoise(sample_rate=FS, level_rms=0.1,
                          seed=seed).generate(seconds)

    def test_empty_plan_is_identity(self):
        audio = self._audio()
        faulty = FaultyRelay(passthrough_relay(), FaultPlan(),
                             sample_rate=FS)
        plain = passthrough_relay().forward(audio)
        assert np.array_equal(faulty.forward(audio), plain)

    def test_wrap_relay_none_returns_same_object(self):
        relay = passthrough_relay()
        assert wrap_relay(relay, None, FS) is relay
        assert isinstance(wrap_relay(relay, FaultPlan(), FS), FaultyRelay)

    def test_outage_silences_window_only(self):
        audio = self._audio()
        plan = FaultPlan(events=(RelayOutage(0.25, 0.5),))
        out = FaultyRelay(passthrough_relay(), plan, FS).forward(audio)
        assert np.all(out[2000:4000] == 0.0)
        assert np.array_equal(out[:2000], audio[:2000])
        assert np.array_equal(out[4000:], audio[4000:])

    def test_snr_fade_hits_target_snr(self):
        audio = self._audio(2.0)
        plan = FaultPlan(events=(SnrFade(0.0, 2.0, snr_db=6.0),))
        out = FaultyRelay(passthrough_relay(), plan, FS).forward(audio)
        noise = out - audio
        snr = 10 * np.log10(np.mean(audio ** 2) / np.mean(noise ** 2))
        assert snr == pytest.approx(6.0, abs=0.5)

    def test_burst_adds_energy_in_window(self):
        audio = self._audio()
        plan = FaultPlan(events=(BurstInterference(0.5, 0.75,
                                                   level_rms=0.2),))
        out = FaultyRelay(passthrough_relay(), plan, FS).forward(audio)
        delta = out - audio
        assert np.all(delta[:4000] == 0.0)
        burst_rms = np.sqrt(np.mean(delta[4000:6000] ** 2))
        assert burst_rms == pytest.approx(0.2, rel=0.15)

    def test_packet_loss_zeroes_about_loss_rate(self):
        audio = np.ones(int(FS * 2))
        plan = FaultPlan(events=(PacketLoss(0.0, 2.0, loss_rate=0.3,
                                            frame_s=10e-3),))
        out = FaultyRelay(passthrough_relay(), plan, FS).forward(audio)
        zero_fraction = np.mean(out == 0.0)
        assert 0.15 < zero_fraction < 0.45

    def test_packet_reorder_permutes_samples(self):
        audio = np.arange(int(FS)) / FS
        plan = FaultPlan(events=(PacketReorder(0.0, 1.0, swap_rate=1.0,
                                               frame_s=10e-3),))
        out = FaultyRelay(passthrough_relay(), plan, FS).forward(audio)
        assert not np.array_equal(out, audio)
        assert np.array_equal(np.sort(out), np.sort(audio))

    def test_clock_drift_slips_inside_window(self):
        audio = np.sin(2 * np.pi * 200 * np.arange(int(FS)) / FS)
        plan = FaultPlan(events=(ClockDrift(0.25, 0.75, ppm=50000.0),))
        out = FaultyRelay(passthrough_relay(), plan, FS).forward(audio)
        assert out.size == audio.size
        assert np.array_equal(out[:2000], audio[:2000])
        assert not np.allclose(out[3000:6000], audio[3000:6000])

    def test_injection_is_deterministic(self):
        audio = self._audio()
        plan = FaultPlan(events=(SnrFade(0.0, 0.5, snr_db=3.0),
                                 PacketLoss(0.5, 1.0, loss_rate=0.4)),
                         seed=5)
        a = FaultyRelay(passthrough_relay(), plan, FS).forward(audio)
        b = FaultyRelay(passthrough_relay(), plan, FS).forward(audio)
        assert np.array_equal(a, b)

    def test_attribute_passthrough(self):
        faulty = FaultyRelay(passthrough_relay(),
                             FaultPlan(events=(RelayOutage(0.0, 0.1),)),
                             sample_rate=FS)
        assert faulty.latency_samples == 0
        with pytest.raises(AttributeError):
            faulty.does_not_exist

    def test_requires_forward(self):
        with pytest.raises(ConfigurationError):
            FaultyRelay(object(), FaultPlan(), FS)
        with pytest.raises(ConfigurationError):
            FaultyRelay(passthrough_relay(), "not a plan", FS)


class _DummyRfChannel:
    rf_rate = 1000.0

    def apply(self, baseband):
        return np.asarray(baseband, dtype=np.complex128)


class TestFaultyRfChannel:
    def test_outage_silences_rf_window(self):
        channel = FaultyRfChannel(
            _DummyRfChannel(), FaultPlan(events=(RelayOutage(0.1, 0.2),)))
        baseband = np.ones(1000, dtype=np.complex128)
        out = channel.apply(baseband)
        assert np.all(out[100:200] == 0.0)
        assert np.all(out[:100] == 1.0)

    def test_audio_domain_events_ignored_at_rf(self):
        channel = FaultyRfChannel(
            _DummyRfChannel(),
            FaultPlan(events=(PacketLoss(0.0, 1.0, loss_rate=0.9),
                              ClockDrift(0.0, 1.0, ppm=1000.0))))
        baseband = np.ones(1000, dtype=np.complex128)
        assert np.array_equal(channel.apply(baseband), baseband)


# ---------------------------------------------------------------------------
# Health monitor and degradation controller
# ---------------------------------------------------------------------------
class TestReferenceHealthMonitor:
    def test_worsening_is_immediate(self):
        monitor = ReferenceHealthMonitor(recovery_blocks=2)
        healthy = np.full(100, 0.1)
        assert monitor.assess(healthy) == "healthy"
        assert monitor.assess(np.zeros(100)) == "lost"

    def test_improvement_needs_consecutive_blocks(self):
        monitor = ReferenceHealthMonitor(recovery_blocks=2)
        healthy = np.full(100, 0.1)
        monitor.assess(healthy)
        monitor.assess(np.zeros(100))
        assert monitor.assess(healthy) == "lost"      # 1st better block
        assert monitor.assess(healthy) == "healthy"   # 2nd: recovered

    def test_spike_counts_as_degraded(self):
        monitor = ReferenceHealthMonitor(spike_ratio=4.0)
        monitor.assess(np.full(100, 0.1))
        assert monitor.assess(np.full(100, 1.0)) == "degraded"

    def test_baseline_not_dragged_down_by_outage(self):
        monitor = ReferenceHealthMonitor()
        monitor.assess(np.full(100, 0.1))
        baseline = monitor.baseline_rms
        for _ in range(10):
            monitor.assess(np.zeros(100))
        assert monitor.baseline_rms == baseline

    def test_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            ReferenceHealthMonitor(lost_ratio=0.6, degraded_ratio=0.5)
        with pytest.raises(ConfigurationError):
            ReferenceHealthMonitor(spike_ratio=0.5)


class TestDegradationController:
    def _controller(self):
        f = LancFilter(4, 16, SECONDARY)
        return f, DegradationController(f, sample_rate=1000.0)

    def test_gates(self):
        assert DegradationController.gates(MODE_MUTE) == (True, True)
        assert DegradationController.gates(MODE_FEEDBACK) == (False, True)
        assert DegradationController.gates(MODE_PASSIVE) == (False, False)
        with pytest.raises(ConfigurationError):
            DegradationController.gates("nope")

    def test_degrade_and_recover_restores_taps(self):
        f, ctrl = self._controller()
        healthy = np.full(100, 0.1)
        assert ctrl.observe(healthy, 0) == MODE_MUTE
        converged = np.linspace(1.0, 0.0, f.n_taps)
        f.set_taps(converged)

        assert ctrl.observe(np.zeros(100), 100) == MODE_PASSIVE
        f.set_taps(np.full(f.n_taps, 9.0))   # simulate corruption

        ctrl.observe(healthy, 200)            # hysteresis: still passive
        assert ctrl.observe(healthy, 300) == MODE_MUTE
        assert np.array_equal(f.get_taps(), converged)
        assert ctrl.recovered
        assert [t.to_mode for t in ctrl.transitions] == [MODE_PASSIVE,
                                                         MODE_MUTE]
        assert ctrl.transitions[0].time_s == pytest.approx(0.1)

    def test_mode_fractions(self):
        _, ctrl = self._controller()
        healthy = np.full(100, 0.1)
        ctrl.observe(healthy, 0)
        ctrl.observe(np.zeros(100), 100)
        fractions = ctrl.mode_fractions()
        assert fractions[MODE_MUTE] == pytest.approx(0.5)
        assert fractions[MODE_PASSIVE] == pytest.approx(0.5)

    def test_transition_emits_obs_span_and_metrics(self):
        _, ctrl = self._controller()
        obs.reset()
        with obs.enabled_scope():
            ctrl.observe(np.full(100, 0.1), 0)
            ctrl.observe(np.zeros(100), 100)
        tracer = obs.get_tracer()
        spans = [sp for _, sp in tracer.walk()
                 if sp.name == "resilience.transition"]
        assert len(spans) == 1
        assert spans[0].attributes["to"] == MODE_PASSIVE
        metrics = obs.get_registry().to_dict()["metrics"]
        names = {m["name"] for m in metrics}
        assert "resilience.transitions" in names
        assert "resilience.mode" in names
        obs.reset()

    def test_requires_tap_access(self):
        with pytest.raises(ConfigurationError):
            DegradationController(object())


# ---------------------------------------------------------------------------
# Supervision and health-aware selection
# ---------------------------------------------------------------------------
class TestRelaySupervisor:
    def test_backoff_then_probation_then_trust(self):
        sup = RelaySupervisor(RetryPolicy(base_backoff_s=1.0,
                                          probation_health=0.6))
        assert sup.health([0], at_s=0.0) == {0: 1.0}
        sup.record_failure(0, at_s=0.0)
        assert sup.health([0], at_s=0.5) == {0: 0.0}      # in backoff
        assert sup.health([0], at_s=1.5) == {0: 0.6}      # probation
        sup.record_success(0, at_s=1.6)
        assert sup.health([0], at_s=1.7) == {0: 1.0}

    def test_backoff_grows_exponentially_with_cap(self):
        policy = RetryPolicy(base_backoff_s=0.5, backoff_factor=2.0,
                             max_backoff_s=3.0)
        assert policy.backoff_s(1) == pytest.approx(0.5)
        assert policy.backoff_s(2) == pytest.approx(1.0)
        assert policy.backoff_s(10) == pytest.approx(3.0)

    def test_policy_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_backoff_s=0.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ConfigurationError):
            RelaySupervisor(policy="nope")

    def _forwarded_and_ear(self):
        rng = np.random.default_rng(0)
        base = rng.standard_normal(4000)
        ear = np.zeros(4000)
        ear[40:] = base[:-40]            # relay 0 leads by 40 samples
        fwd1 = np.zeros(4000)
        fwd1[20:] = base[:-20]           # relay 1 leads by 20 samples
        return {0: base, 1: fwd1}, ear

    def test_select_routes_around_failed_relay(self):
        forwarded, ear = self._forwarded_and_ear()
        selector = RelaySelector(sample_rate=FS)
        sup = RelaySupervisor(RetryPolicy(base_backoff_s=5.0))

        best, _ = sup.select(selector, forwarded, ear, at_s=0.0)
        assert best == 0                 # healthy: longest lookahead wins
        sup.record_failure(0, at_s=0.1)
        best, _ = sup.select(selector, forwarded, ear, at_s=0.2)
        assert best == 1                 # relay 0 quarantined


class TestSelectorHealth:
    def _forwarded_and_ear(self):
        return TestRelaySupervisor._forwarded_and_ear(None)

    def test_health_scales_score(self):
        forwarded, ear = self._forwarded_and_ear()
        selector = RelaySelector(sample_rate=FS, min_health=0.5)
        # Probation score halves relay 0's lead: 40*0.55 < 20*1.0 fails,
        # 40*0.55=22 > 20 — still wins; below min_health it is skipped.
        best, _ = selector.select(forwarded, ear, health={0: 0.55})
        assert best == 0
        best, _ = selector.select(forwarded, ear, health={0: 0.4})
        assert best == 1

    def test_missing_ids_default_to_healthy(self):
        forwarded, ear = self._forwarded_and_ear()
        selector = RelaySelector(sample_rate=FS)
        best, _ = selector.select(forwarded, ear, health={})
        assert best == 0

    def test_min_health_validation(self):
        with pytest.raises(RelaySelectionError):
            RelaySelector(sample_rate=FS, min_health=0.0)


# ---------------------------------------------------------------------------
# End-to-end: MuteSystem.run_resilient
# ---------------------------------------------------------------------------
class TestRunResilient:
    def _noise(self, seconds=2.0):
        return WhiteNoise(sample_rate=FS, level_rms=0.1,
                          seed=3).generate(seconds)

    def test_zero_fault_plan_bit_identical_to_unwrapped(self, fast_system):
        noise = self._noise()
        plain = fast_system.run_resilient(noise, fault_plan=None)
        empty = fast_system.run_resilient(noise, fault_plan=FaultPlan())
        assert np.array_equal(plain.residual, empty.residual)
        assert np.array_equal(plain.antinoise, empty.antinoise)
        assert plain.plan_key is None and empty.plan_key is None
        assert plain.modes and all(m == MODE_MUTE for m in plain.modes)
        assert isinstance(plain, ResilientRunResult)

    def test_outage_degrades_then_recovers(self, fast_system):
        noise = self._noise()
        plan = outage_plan(2.0, 0.25, seed=0)
        result = fast_system.run_resilient(noise, fault_plan=plan)
        assert result.plan_key == plan.plan_key()
        modes = {t.to_mode for t in result.transitions}
        assert MODE_PASSIVE in modes
        assert result.recovered
        before = result.window_cancellation_db(0.4, 0.7)
        during = result.window_cancellation_db(0.8, 1.2)
        assert before < during - 3.0     # fault clearly visible
        assert result.mode_fractions[MODE_PASSIVE] > 0.1

    def test_transitions_visible_in_obs_trace(self, fast_system):
        noise = self._noise()
        plan = outage_plan(2.0, 0.25, seed=0)
        obs.reset()
        with obs.enabled_scope():
            result = fast_system.run_resilient(noise, fault_plan=plan)
        tracer = obs.get_tracer()
        assert tracer.find("mute.run_resilient") is not None
        transitions = [sp for _, sp in tracer.walk()
                       if sp.name == "resilience.transition"]
        assert len(transitions) == len(result.transitions) >= 2
        obs.reset()

    def test_block_size_validation(self, fast_system):
        with pytest.raises(ConfigurationError):
            fast_system.run_resilient(self._noise(0.5), block_size=0)

    def test_window_cancellation_validation(self, fast_system):
        result = fast_system.run_resilient(self._noise(0.5))
        with pytest.raises(ConfigurationError):
            result.window_cancellation_db(0.4, 0.1)


# ---------------------------------------------------------------------------
# The registered experiment
# ---------------------------------------------------------------------------
class TestResilienceExperiment:
    def test_registered(self):
        from repro.eval import experiments

        assert "resilience" in experiments.experiment_names()
        entry = experiments.get("resilience")
        assert "degradation" in entry.description

    def test_smoke_and_monotonicity(self):
        from repro.eval.experiments import run_resilience

        result = run_resilience(2.0, outage_fractions=(0.0, 0.4),
                                loss_rates=(0.2,))
        res = result.results
        assert res.outage_monotone()
        assert res.outage_penalty_db() >= 0.0
        clean = res.outage_curve[0.0]
        faulted = res.outage_curve[0.4]
        assert clean["cancellation_db"] < -5.0
        assert faulted["transitions"] >= 2 and faulted["recovered"]
        report = res.report()
        assert "outage 40%" in report and "loss 20%" in report

    def test_serial_equals_parallel(self):
        from repro import runtime

        request = runtime.RunRequest(
            duration_s=1.5, seed=0, with_obs=False,
            params={"outage_fractions": (0.0, 0.3), "loss_rates": ()})
        serial = runtime.run_experiments(["resilience"], request=request)
        parallel = runtime.run_experiments(["resilience"],
                                           request=request.replace(jobs=2))
        a = serial.results()["resilience"]
        b = parallel.results()["resilience"]
        assert a.outage_curve == b.outage_curve
        assert a.loss_curve == b.loss_curve
