"""Cross-module integration tests.

These exercise whole pipelines: the analog relay inside a full MUTE run,
relay selection over room acoustics, profile switching end-to-end, and
the lookahead sweep's monotonicity on a fast scene.
"""

import dataclasses

import numpy as np
import pytest

from repro.core import (
    LancFilter,
    MuteConfig,
    MuteSystem,
    RelaySelector,
    StreamingLanc,
)
from repro.signals import MachineHum, MaleVoice, WhiteNoise
from repro.wireless import AnalogRelay, RfChannelConfig


NOISE = WhiteNoise(level_rms=0.1, seed=11)


class TestAnalogRelayInTheLoop:
    def test_cancellation_through_real_fm_chain(self, fast_scenario):
        """LANC must still cancel when the reference rode an FM link."""
        relay = AnalogRelay(seed=3, mic_noise_rms=5e-4)
        system = MuteSystem(fast_scenario, MuteConfig(
            probe_secondary=False, relay=relay, mu=0.2, n_past=192,
            n_future=32))
        result = system.run(NOISE.generate(4.0))
        assert result.mean_cancellation_db() < -6.0

    def test_noisy_rf_link_degrades_cancellation(self, fast_scenario):
        noise = NOISE.generate(4.0)
        clean = MuteSystem(fast_scenario, MuteConfig(
            probe_secondary=False, mu=0.2, n_past=192, n_future=32,
            relay=AnalogRelay(seed=3, mic_noise_rms=5e-4)))
        dirty = MuteSystem(fast_scenario, MuteConfig(
            probe_secondary=False, mu=0.2, n_past=192, n_future=32,
            relay=AnalogRelay(seed=3, mic_noise_rms=5e-4,
                              channel_config=RfChannelConfig(snr_db=8.0,
                                                             seed=5))))
        assert (dirty.run(noise).mean_cancellation_db()
                > clean.run(noise).mean_cancellation_db() + 2.0)


class TestRelaySelectionOverRoomAcoustics:
    def test_near_relay_wins(self, two_relay_scenario):
        system = MuteSystem(two_relay_scenario,
                            MuteConfig(probe_secondary=False))
        forwarded, ear = system.forwarded_and_ear_signals(NOISE.generate(1.0))
        selector = RelaySelector(
            sample_rate=two_relay_scenario.sample_rate)
        best, measurements = selector.select(forwarded, ear)
        assert best == 0
        assert measurements[1].lag_s < measurements[0].lag_s

    def test_speech_source_also_works(self, two_relay_scenario):
        voice = MaleVoice(level_rms=0.1, seed=5,
                          speech_fraction=1.0).generate(1.5)
        system = MuteSystem(two_relay_scenario,
                            MuteConfig(probe_secondary=False))
        forwarded, ear = system.forwarded_and_ear_signals(voice)
        selector = RelaySelector(
            sample_rate=two_relay_scenario.sample_rate)
        best, __ = selector.select(forwarded, ear)
        assert best == 0


class TestLookaheadMonotonicity:
    def test_more_future_taps_never_much_worse(self, fast_system):
        noise = NOISE.generate(3.0)
        prepared = fast_system.prepare(noise)
        means = []
        for n_future in (0, prepared.n_future):
            lanc = fast_system.make_filter(n_future=n_future)
            res = lanc.run(prepared.reference, prepared.disturbance_at_ear,
                           secondary_path_true=prepared.secondary_path_true)
            tail = res.error[res.error.size // 2:]
            means.append(float(np.mean(tail ** 2)))
        with_lookahead, = [means[1]]
        without = means[0]
        assert with_lookahead < without * 1.05


class TestStreamingWithProfileSwitch:
    def test_manual_tap_swap_mid_stream(self, fast_system):
        """Swapping taps between blocks must not corrupt the stream."""
        noise = NOISE.generate(2.0)
        prepared = fast_system.prepare(noise)
        lanc = fast_system.make_filter(n_future=prepared.n_future)
        stream = StreamingLanc(
            lanc, secondary_path_true=prepared.secondary_path_true)
        stream.feed(np.concatenate([prepared.reference,
                                    np.zeros(prepared.n_future)]))
        block = 800
        T = prepared.reference.size
        for start in range(0, T, block):
            if start == T // 2:
                saved = lanc.get_taps()
                lanc.set_taps(np.zeros_like(saved))
                lanc.set_taps(saved)     # swap away and back
            stream.process(prepared.disturbance_at_ear[start:start + block])
        error = stream.error_signal()
        assert error.size == T
        assert np.all(np.isfinite(error))
        tail_rms = np.sqrt(np.mean(error[-4000:] ** 2))
        open_rms = np.sqrt(np.mean(prepared.disturbance_at_ear[-4000:] ** 2))
        assert tail_rms < 0.7 * open_rms


class TestPredictableNoiseEasierThanWhite:
    def test_hum_cancels_deeply(self, fast_system):
        """Narrowband hum: compare total residual power, not per-bin PSD
        (bins between harmonics carry no noise to cancel)."""
        from repro.utils.units import cancellation_db

        hum = MachineHum(level_rms=0.1, seed=2).generate(3.0)
        result = fast_system.run(hum)
        tail = slice(result.residual.size // 2, None)
        total_db = cancellation_db(result.disturbance_open[tail],
                                   result.residual[tail])
        assert total_db < -10.0


class TestDeterminismAcrossRuns:
    def test_full_pipeline_deterministic(self, fast_scenario):
        noise = NOISE.generate(1.0)
        results = []
        for __ in range(2):
            system = MuteSystem(fast_scenario, MuteConfig(
                probe_secondary=True, probe_noise_rms=0.01, seed=9))
            results.append(system.run(noise).residual)
        np.testing.assert_array_equal(results[0], results[1])
