"""Secondary-path probe estimation."""

import numpy as np
import pytest

from repro.core import estimate_secondary_path
from repro.errors import ChannelError


TRUE_CHANNEL = np.array([0.0, 0.0, 0.8, 0.3, -0.1, 0.05])


class TestEstimation:
    def test_clean_probe_recovers_channel(self):
        est = estimate_secondary_path(TRUE_CHANNEL, n_taps=8,
                                      probe_duration_s=1.0)
        np.testing.assert_allclose(est.impulse_response[:6], TRUE_CHANNEL,
                                   atol=1e-3)

    def test_quality_metric_high_when_clean(self):
        est = estimate_secondary_path(TRUE_CHANNEL, n_taps=8)
        assert est.quality_db > 40.0

    def test_ambient_noise_degrades_quality(self):
        clean = estimate_secondary_path(TRUE_CHANNEL, n_taps=8,
                                        ambient_noise_rms=0.0)
        noisy = estimate_secondary_path(TRUE_CHANNEL, n_taps=8,
                                        ambient_noise_rms=0.3)
        assert noisy.quality_db < clean.quality_db - 10.0

    def test_noisy_estimate_still_close(self):
        est = estimate_secondary_path(TRUE_CHANNEL, n_taps=8,
                                      ambient_noise_rms=0.05,
                                      probe_duration_s=2.0)
        assert np.linalg.norm(est.impulse_response[:6] - TRUE_CHANNEL) < 0.1

    def test_short_probe_rejected(self):
        with pytest.raises(ChannelError, match="too short"):
            estimate_secondary_path(TRUE_CHANNEL, n_taps=64,
                                    probe_duration_s=0.01)

    def test_deterministic_per_seed(self):
        a = estimate_secondary_path(TRUE_CHANNEL, n_taps=8, seed=4)
        b = estimate_secondary_path(TRUE_CHANNEL, n_taps=8, seed=4)
        np.testing.assert_array_equal(a.impulse_response,
                                      b.impulse_response)

    def test_probe_rms_recorded(self):
        est = estimate_secondary_path(TRUE_CHANNEL, n_taps=8, probe_rms=0.5)
        assert est.probe_rms == 0.5
