"""The chaos layer: plans, injectors, breakers, and the soak harness.

Covers the crash-safety acceptance contract end to end:

* zero chaos with supervision + breakers enabled is **bit-identical**
  to the plain server (the layer is free when nothing goes wrong);
* an injected crash + warm restore is **invisible in the output bits**;
* repeated crashes escalate to a deliberate shed, never a hang;
* the deadline breaker walks its closed/open/half-open ladder;
* the executor survives worker deaths and enforces per-job deadlines
  (via the registered ``chaos`` experiment's harness hooks).
"""

import io
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import chaos, obs, runtime, serving
from repro.chaos import (
    SOAK_SCHEMA,
    ChaosPlan,
    CrashAt,
    SessionChaosInjector,
    StallAt,
    run_soak,
    soak_plans,
)
from repro.cli import main
from repro.errors import ConfigurationError, InjectedCrashError
from repro.eval import experiments
from repro.runtime import JobRetryPolicy, RunRequest, SuiteReport
from repro.serving import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    DeadlineCircuitBreaker,
    DeadlineConfig,
    SupervisionConfig,
)

BLOCK = 128
DURATION_S = 0.3        # 2400 samples -> 18 whole blocks of 128


def _workloads(sessions, seed=0, plans=None):
    built = []
    for i in range(sessions):
        injector = None
        if plans is not None and i in plans:
            injector = SessionChaosInjector(plans[i])
        built.append(serving.SessionWorkload.synthetic(
            f"user{i}", duration_s=DURATION_S, seed=seed + i,
            chaos=injector))
    return built


def _drain(workloads, batched=True, **config_kwargs):
    config_kwargs.setdefault("block_size", BLOCK)
    config_kwargs.setdefault("max_sessions", max(len(workloads), 1))
    server = serving.SessionServer(
        serving.ServerConfig(batched=batched, **config_kwargs))
    for workload in workloads:
        server.submit(workload)
    return server.run_until_drained()


class TestChaosPlan:
    def test_events_sorted_and_key_deterministic(self):
        plan = ChaosPlan(events=(StallAt(9), CrashAt(2), CrashAt(7)))
        assert [e.block for e in plan.events] == [2, 7, 9]
        reordered = ChaosPlan(events=(CrashAt(7), StallAt(9), CrashAt(2)))
        assert plan.plan_key() == reordered.plan_key()
        assert plan.plan_key() != ChaosPlan(events=(CrashAt(3),)).plan_key()

    def test_empty_plan_is_identity(self):
        assert ChaosPlan().empty
        assert len(ChaosPlan()) == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CrashAt(-1)
        with pytest.raises(ConfigurationError):
            StallAt(0, stall_s=0.0)
        with pytest.raises(ConfigurationError):
            StallAt(0, blocks=0)
        with pytest.raises(ConfigurationError):
            ChaosPlan(events=("boom",))
        with pytest.raises(ConfigurationError):
            SessionChaosInjector("not a plan")

    def test_soak_plans_deterministic_and_independent(self):
        first = soak_plans(4, 18, seed=7)
        again = soak_plans(4, 18, seed=7)
        assert [p.plan_key() for p in first] == \
            [p.plan_key() for p in again]
        # Adding a session never perturbs earlier sessions' chaos.
        grown = soak_plans(5, 18, seed=7)
        assert [p.plan_key() for p in grown[:4]] == \
            [p.plan_key() for p in first]


class TestInjectorOneShot:
    def test_crash_fires_exactly_once(self):
        session = serving.DeviceSession(
            0, serving.SessionWorkload.synthetic("u", duration_s=DURATION_S),
            serving.SessionConfig(), BLOCK)
        injector = SessionChaosInjector(ChaosPlan(events=(CrashAt(0),)))
        with pytest.raises(InjectedCrashError):
            injector.before_block(session)
        # The replayed block after a restore must not re-crash.
        assert injector.before_block(session) == 0.0
        assert injector.crashes == 1

    def test_stalls_accumulate_once_per_block(self):
        session = serving.DeviceSession(
            0, serving.SessionWorkload.synthetic("u", duration_s=DURATION_S),
            serving.SessionConfig(), BLOCK)
        injector = SessionChaosInjector(
            ChaosPlan(events=(StallAt(0, stall_s=0.01, blocks=2),)))
        assert injector.before_block(session) == pytest.approx(0.01)
        assert injector.before_block(session) == 0.0     # one-shot replay
        session.block_index = 1
        assert injector.before_block(session) == pytest.approx(0.01)
        session.block_index = 2
        assert injector.before_block(session) == 0.0     # past the window
        assert injector.stats()["stalls"] == 2


class TestZeroChaosBitIdentity:
    """Supervision + breakers enabled, nothing injected: same bits."""

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000),
           batched=st.booleans())
    def test_matches_unsupervised_baseline(self, seed, batched):
        plain = _drain(_workloads(3, seed=seed), batched=batched)
        hardened = _drain(
            _workloads(3, seed=seed), batched=batched,
            supervision=SupervisionConfig(checkpoint_every_blocks=4),
            deadline=DeadlineConfig(),
        )
        assert hardened.digests() == plain.digests()
        assert hardened.statuses() == {serving.DONE: 3}
        assert hardened.recovery["restores"] == 0
        assert hardened.recovery["escalations"] == 0


class TestCrashRecovery:
    def test_warm_restore_is_bit_identical(self):
        baseline = _drain(_workloads(3))
        plans = {1: ChaosPlan(events=(CrashAt(5),))}
        recovered = _drain(
            _workloads(3, plans=plans),
            supervision=SupervisionConfig(checkpoint_every_blocks=2,
                                          max_restarts=2),
        )
        assert recovered.digests() == baseline.digests()
        assert recovered.statuses() == {serving.DONE: 3}
        assert recovered.recovery["restores"] == 1
        assert recovered.recovery["crashed_sessions"] == 1

    def test_crash_leaves_neighbors_untouched(self):
        baseline = _drain(_workloads(4))
        plans = {2: ChaosPlan(events=(CrashAt(3), CrashAt(9)))}
        recovered = _drain(
            _workloads(4, plans=plans),
            supervision=SupervisionConfig(checkpoint_every_blocks=2,
                                          max_restarts=3),
        )
        assert recovered.digests() == baseline.digests()

    def test_escalates_to_shed_after_budget(self):
        plans = {0: ChaosPlan(events=(CrashAt(2), CrashAt(4), CrashAt(6)))}
        report = _drain(
            _workloads(2, plans=plans),
            supervision=SupervisionConfig(checkpoint_every_blocks=2,
                                          max_restarts=2),
        )
        by_name = {r.name: r for r in report.results}
        assert by_name["user0"].status == serving.SHED
        assert "escalated to shed" in by_name["user0"].error
        assert by_name["user1"].status == serving.DONE
        assert report.recovery["escalations"] == 1

    def test_unsupervised_crash_raises(self):
        plans = {0: ChaosPlan(events=(CrashAt(1),))}
        with pytest.raises(InjectedCrashError):
            _drain(_workloads(1, plans=plans))

    def test_backoff_sits_out_ticks(self):
        supervisor = serving.SessionSupervisor(
            SupervisionConfig(backoff_ticks=2, max_restarts=3))
        session = serving.DeviceSession(
            0, serving.SessionWorkload.synthetic("u", duration_s=DURATION_S),
            serving.SessionConfig(), BLOCK)
        supervisor.on_admit(session)
        replacement = supervisor.on_crash(session, RuntimeError("boom"),
                                          tick=10)
        assert replacement is not None
        assert not supervisor.ready(replacement, 11)
        assert not supervisor.ready(replacement, 12)
        assert supervisor.ready(replacement, 13)


class TestDeadlineBreaker:
    def test_eq3_budget(self):
        config = serving.SessionConfig(n_future=32, sample_rate=8000.0)
        assert DeadlineConfig().resolved_budget_s(config) == \
            pytest.approx(32 / 8000.0)
        assert DeadlineConfig(budget_factor=2.0).resolved_budget_s(config) \
            == pytest.approx(64 / 8000.0)
        assert DeadlineConfig(budget_s=0.5).resolved_budget_s(config) == 0.5

    def test_state_machine_walk(self):
        breaker = DeadlineCircuitBreaker(
            0.01, DeadlineConfig(miss_threshold=2, cooldown_blocks=2))
        assert breaker.mode_floor() == "mute"
        breaker.observe(0.02)
        assert breaker.state == BREAKER_CLOSED        # one miss: not yet
        breaker.observe(0.001)
        breaker.observe(0.02)
        breaker.observe(0.02)                         # 2 consecutive: trip
        assert breaker.state == BREAKER_OPEN
        assert breaker.mode_floor() == "feedback"
        breaker.observe(0.001)
        breaker.observe(0.001)                        # cooldown elapses
        assert breaker.state == BREAKER_HALF_OPEN
        assert breaker.mode_floor() == "mute"         # probe runs at full
        breaker.observe(0.001)                        # probe meets deadline
        assert breaker.state == BREAKER_CLOSED
        assert breaker.summary()["recoveries"] == 1

    def test_failed_probe_escalates_cooldown_and_floor(self):
        breaker = DeadlineCircuitBreaker(
            0.01, DeadlineConfig(miss_threshold=1, cooldown_blocks=2,
                                 escalate_trips=2))
        breaker.observe(0.02)                         # trip 1
        first_cooldown = breaker.cooldown_remaining
        breaker.observe(0.001)
        breaker.observe(0.001)
        assert breaker.state == BREAKER_HALF_OPEN
        breaker.observe(0.02)                         # failed probe: trip 2
        assert breaker.state == BREAKER_OPEN
        assert breaker.trips == 2
        assert breaker.cooldown_remaining == 2 * first_cooldown
        assert breaker.mode_floor() == "passive"      # escalate_trips hit

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DeadlineCircuitBreaker(0.0)
        with pytest.raises(ConfigurationError):
            DeadlineConfig(miss_threshold=0)
        with pytest.raises(ConfigurationError):
            DeadlineConfig(budget_s=-1.0)

    def test_stall_trips_breaker_in_server(self):
        """Injected stalls (simulated latency) drive the breaker."""
        plans = {0: ChaosPlan(events=(StallAt(2, stall_s=0.05, blocks=6),))}
        report = _drain(
            _workloads(2, plans=plans),
            supervision=SupervisionConfig(),
            deadline=DeadlineConfig(miss_threshold=2, cooldown_blocks=4),
        )
        by_name = {r.name: r for r in report.results}
        assert by_name["user0"].breaker["trips"] >= 1
        assert by_name["user0"].breaker["misses"] >= 2
        assert by_name["user1"].breaker["trips"] == 0
        # Latency degradation, not failure: the session still finishes.
        assert by_name["user0"].status == serving.DONE


class TestSoakHarness:
    def test_soak_passes_and_round_trips(self):
        report = run_soak(sessions=4, duration_s=DURATION_S,
                          block_size=BLOCK, seed=7, crash_prob=1.0)
        assert report.ok()
        assert report.crashes_injected >= 1
        assert report.unaccounted == []
        assert report.mismatches == []
        assert all(status in (serving.DONE, serving.SHED)
                   for status in report.statuses)
        # Recovery must be visible, not silent.
        assert (report.recovery["restores"]
                + report.recovery["escalations"]) >= 1

        document = json.loads(json.dumps(report.to_dict()))
        assert document["schema"] == SOAK_SCHEMA
        assert document["ok"] is True
        assert "PASS" in report.report()

    def test_serial_and_batched_agree(self):
        batched = run_soak(sessions=3, duration_s=DURATION_S,
                           block_size=BLOCK, seed=3, batched=True)
        serial = run_soak(sessions=3, duration_s=DURATION_S,
                          block_size=BLOCK, seed=3, batched=False)
        assert batched.ok() and serial.ok()
        assert batched.statuses == serial.statuses
        assert batched.crashes_injected == serial.crashes_injected

    def test_recovery_metrics_exported(self):
        obs.reset()
        with obs.enabled_scope():
            report = run_soak(sessions=3, duration_s=DURATION_S,
                              block_size=BLOCK, seed=7, crash_prob=1.0)
            metrics = obs.get_registry().to_dict()["metrics"]
        obs.reset()
        assert report.ok()
        names = {m["name"] for m in metrics}
        assert "serving.recovery.crashes" in names
        assert "serving.recovery.checkpoints" in names
        assert "serving.recovery.restores" in names

    def test_rejects_sub_two_block_sessions(self):
        with pytest.raises(ConfigurationError):
            run_soak(sessions=2, duration_s=0.01, block_size=BLOCK)


class TestChaosExperiment:
    def test_registered_and_runs(self):
        entry = experiments.get("chaos")
        result = entry.run(duration_s=DURATION_S, sessions=3,
                           block_size=BLOCK)
        assert result["name"] == "chaos"
        assert result.results.ok
        assert result.results.mismatches == []
        assert "chaos soak: 3 session(s)" in result.report()
        assert "PASS" in result.report()


class TestChaosSoakCli:
    def test_passes(self):
        out = io.StringIO()
        code = main(["chaos-soak", "--sessions", "3",
                     "--duration", str(DURATION_S), "--block", str(BLOCK),
                     "--seed", "7"], out=out)
        assert code == 0
        assert "PASS" in out.getvalue()

    def test_json_out_writes_soak_document(self, tmp_path):
        path = tmp_path / "soak.json"
        out = io.StringIO()
        code = main(["chaos-soak", "--sessions", "3",
                     "--duration", str(DURATION_S), "--json",
                     "--out", str(path)], out=out)
        assert code == 0
        document = json.loads(path.read_text())
        assert document["schema"] == SOAK_SCHEMA
        assert document["ok"] is True

    def test_bad_arguments_rejected(self):
        out = io.StringIO()
        assert main(["chaos-soak", "--sessions", "0"], out=out) == 2
        assert main(["chaos-soak", "--duration", "-1"], out=out) == 2
        assert main(["chaos-soak", "--crash-prob", "2.0"], out=out) == 2


class TestExecutorResilience:
    """Worker deaths and deadlines, driven through the chaos experiment."""

    PARAMS = {"duration_s": 0.25, "sessions": 2, "crash_prob": 0.25}

    def test_worker_death_retried_to_success(self, tmp_path):
        flag = tmp_path / "died-once"
        suite = runtime.run_experiments(
            ["chaos"],
            request=RunRequest(jobs=2, with_obs=False, params={
                **self.PARAMS, "worker_kill_flag": str(flag)}),
            retry=JobRetryPolicy(max_retries=1, backoff_s=0.01),
        )
        assert flag.exists()
        assert not suite.aborted
        assert suite.outcomes[0].ok
        assert suite.outcomes[0].result.results.ok

    def test_retry_budget_exhausted_aborts_with_partial_report(
            self, tmp_path):
        flag = tmp_path / "always-dead"
        suite = runtime.run_experiments(
            ["chaos"],
            request=RunRequest(jobs=2, with_obs=False, params={
                **self.PARAMS, "worker_kill_flag": str(flag)}),
            retry=JobRetryPolicy(max_retries=0, max_pool_rebuilds=0),
        )
        assert suite.aborted
        assert not suite.outcomes[0].ok
        assert "worker died" in suite.outcomes[0].error
        # The partial report still serializes and round-trips.
        restored = SuiteReport.from_dict(suite.to_dict())
        assert restored.aborted
        assert "ABORTED" in restored.report()

    def test_per_job_deadline_enforced(self):
        suite = runtime.run_experiments(
            ["chaos"],
            request=RunRequest(jobs=2, with_obs=False, params={
                **self.PARAMS, "sleep_s": 30.0}),
            retry=JobRetryPolicy(timeout_s=1.0),
        )
        assert not suite.outcomes[0].ok
        assert "deadline exceeded" in suite.outcomes[0].error
        assert not suite.aborted          # a timeout is not an abort

    def test_main_process_kill_flag_raises_instead(self, tmp_path):
        """Serial execution must never SIGKILL the caller's interpreter."""
        flag = tmp_path / "serial-flag"
        entry = experiments.get("chaos")
        with pytest.raises(InjectedCrashError):
            entry.run(duration_s=0.25, sessions=2,
                      worker_kill_flag=str(flag))
        assert flag.exists()
