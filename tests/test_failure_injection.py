"""Failure injection: what breaks gracefully, what must raise.

Fault scenarios are expressed as ``repro.faults`` :class:`FaultPlan`\\ s
injected through :class:`FaultyRelay`, rather than by hand-editing
arrays — the same machinery the ``resilience`` experiment uses.  The
hypothesis properties at the bottom pin the two contracts the fault
layer guarantees: a zero-fault plan is bit-identical to no wrapper at
all, and the degradation controller recovers after *every* outage
window.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LancFilter, MuteConfig, MuteSystem, StreamingLanc
from repro.errors import ConfigurationError, LookaheadError
from repro.faults import (
    MODE_MUTE,
    DegradationController,
    FaultPlan,
    FaultyRelay,
    RelayOutage,
    packet_loss_plan,
    wrap_relay,
)
from repro.signals import WhiteNoise
from repro.utils.buffers import LookaheadBuffer
from repro.wireless.digital import DigitalRelay
from repro.wireless.relay import IdealRelay

FS = 8000.0
SECONDARY = np.array([0.0, 1.0])


class TestReferenceDropout:
    """A relay stream that goes silent mid-run (RF fade / mute)."""

    def _scene(self, T=12000, seed=0):
        rng = np.random.default_rng(seed)
        n = rng.standard_normal(T) * 0.1
        delta = 12
        x = np.zeros(T)
        x[delta:] = np.convolve(n, [1.0, 0.5])[:T][:-delta]
        d = np.zeros(T)
        d[delta:] = n[:-delta]
        return x, d

    def _fade(self, x, start_s, stop_s):
        """Reference with an outage window, via the fault layer."""
        plan = FaultPlan(events=(RelayOutage(start_s, stop_s),))
        return FaultyRelay(IdealRelay(mic_noise_rms=0.0), plan,
                           sample_rate=FS).forward(x)

    def test_dropout_degrades_but_recovers(self):
        x, d = self._scene()
        # Kill the reference for 1/8 s in the middle.
        x_faded = self._fade(x, 5000 / FS, 6000 / FS)
        assert np.all(x_faded[5000:6000] == 0.0)
        f = LancFilter(6, 48, SECONDARY, mu=0.3)
        result = f.run(x_faded, d)
        during = np.sqrt(np.mean(result.error[5200:5900] ** 2))
        after = np.sqrt(np.mean(result.error[-2000:] ** 2))
        d_rms = np.sqrt(np.mean(d[5200:5900] ** 2))
        # During the fade the device cannot cancel (error ≈ disturbance)...
        assert during > 0.5 * d_rms
        # ...but recovers once the reference returns.
        assert after < 0.2 * d_rms

    def test_dropout_never_diverges(self):
        x, d = self._scene()
        x = self._fade(x, 4000 / FS, 7000 / FS)
        f = LancFilter(6, 48, SECONDARY, mu=0.5)
        result = f.run(x, d)
        assert np.all(np.isfinite(result.error))


class TestPacketLossThroughAnc:
    def test_loss_costs_cancellation(self):
        """Injected frame loss translates to lost cancellation."""
        rng = np.random.default_rng(3)
        T = 16000
        n = rng.standard_normal(T) * 0.1
        delta = 30
        d = np.zeros(T)
        d[delta:] = n[:-delta]

        clean_relay = DigitalRelay(frame_s=1e-3, codec_delay_s=0.0,
                                   radio_delay_s=0.0, bits=None)

        def run_with(relay):
            forwarded = relay.forward(n)
            lag = relay.latency_samples
            # Align what lookahead remains after the relay's latency.
            shift = delta - lag
            assert shift > 0, "test setup: relay must leave lookahead"
            x = np.zeros(T)
            x[shift + lag:] = forwarded[lag: T - shift]
            f = LancFilter(4, 48, SECONDARY, mu=0.3)
            result = f.run(x, d)
            tail = result.error[-4000:]
            return 10 * np.log10(np.mean(tail ** 2)
                                 / np.mean(d[-4000:] ** 2))

        clean = run_with(clean_relay)
        # Same clean relay, with frame loss injected by the fault layer.
        plan = packet_loss_plan(T / FS, 0.2, frame_s=1e-3, seed=7)
        lossy = run_with(wrap_relay(clean_relay, plan, FS))
        assert lossy > clean + 3.0


class TestStrictFailures:
    """Conditions that must raise, not limp along."""

    def test_lookahead_buffer_underrun(self):
        lb = LookaheadBuffer(lookahead=8, history=8)
        lb.feed_block(np.zeros(8))
        with pytest.raises(LookaheadError, match="underrun"):
            lb.advance()

    def test_streaming_underrun(self):
        f = LancFilter(8, 8, SECONDARY)
        stream = StreamingLanc(f)
        stream.feed(np.zeros(4))
        with pytest.raises(ConfigurationError, match="underrun"):
            stream.process(np.zeros(4))

    def test_negative_lookahead_refused(self, fast_scenario):
        import dataclasses

        swapped = dataclasses.replace(
            fast_scenario,
            client=fast_scenario.relays[0],
            relays=(fast_scenario.client,),
        )
        system = MuteSystem(swapped, MuteConfig(probe_secondary=False))
        with pytest.raises(LookaheadError):
            system.prepare(WhiteNoise(seed=0, level_rms=0.1).generate(0.5))

    def test_nan_reference_rejected(self):
        f = LancFilter(2, 8, SECONDARY)
        bad = np.zeros(100)
        bad[50] = np.nan
        with pytest.raises(Exception):
            f.run(bad, np.zeros(100))


# ---------------------------------------------------------------------------
# Properties of the fault layer
# ---------------------------------------------------------------------------
class TestFaultProperties:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2 ** 32 - 1),
           audio_seed=st.integers(min_value=0, max_value=1000))
    def test_zero_fault_plan_bit_identical_to_no_wrapper(self, seed,
                                                         audio_seed):
        """An empty plan — any seed — never perturbs the relay output."""
        audio = WhiteNoise(sample_rate=FS, level_rms=0.1,
                           seed=audio_seed).generate(0.25)
        relay = IdealRelay(mic_noise_rms=1e-3, seed=9)
        wrapped = FaultyRelay(IdealRelay(mic_noise_rms=1e-3, seed=9),
                              FaultPlan(seed=seed), sample_rate=FS)
        assert np.array_equal(wrapped.forward(audio), relay.forward(audio))

    @settings(max_examples=25, deadline=None)
    @given(windows=st.lists(
        st.tuples(st.floats(min_value=0.1, max_value=0.6),
                  st.floats(min_value=0.01, max_value=0.1)),
        min_size=0, max_size=3))
    def test_controller_recovers_after_every_outage_window(self, windows):
        """Whatever the outage schedule, a healthy tail restores mute."""
        duration_s, block = 1.0, 50
        fs = 1000.0
        events = tuple(RelayOutage(start, min(start + length, 0.72))
                       for start, length in windows)
        plan = FaultPlan(events=events)
        reference = np.full(int(duration_s * fs), 0.1)
        faulted = wrap_relay(IdealRelay(mic_noise_rms=0.0), plan,
                             fs).forward(reference)

        ctrl = DegradationController(LancFilter(4, 16, SECONDARY),
                                     sample_rate=fs)
        for t0 in range(0, faulted.size, block):
            mode = ctrl.observe(faulted[t0:t0 + block], t0)
        # Last window ends by 0.72 s; the 0.28 s healthy tail (5+ blocks)
        # clears the 2-block hysteresis no matter the schedule.
        assert mode == MODE_MUTE
        assert ctrl.recovered
        if events:
            assert plan.outage_fraction(duration_s) > 0.0
