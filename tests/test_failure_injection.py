"""Failure injection: what breaks gracefully, what must raise."""

import numpy as np
import pytest

from repro.core import LancFilter, MuteConfig, MuteSystem, StreamingLanc
from repro.errors import ConfigurationError, LookaheadError
from repro.signals import WhiteNoise
from repro.utils.buffers import LookaheadBuffer
from repro.wireless.digital import DigitalRelay

SECONDARY = np.array([0.0, 1.0])


class TestReferenceDropout:
    """A relay stream that goes silent mid-run (RF fade / mute)."""

    def _scene(self, T=12000, seed=0):
        rng = np.random.default_rng(seed)
        n = rng.standard_normal(T) * 0.1
        delta = 12
        x = np.zeros(T)
        x[delta:] = np.convolve(n, [1.0, 0.5])[:T][:-delta]
        d = np.zeros(T)
        d[delta:] = n[:-delta]
        return x, d

    def test_dropout_degrades_but_recovers(self):
        x, d = self._scene()
        # Kill the reference for 1 s in the middle.
        x_faded = x.copy()
        hole = slice(5000, 6000)
        x_faded[hole] = 0.0
        f = LancFilter(6, 48, SECONDARY, mu=0.3)
        result = f.run(x_faded, d)
        during = np.sqrt(np.mean(result.error[5200:5900] ** 2))
        after = np.sqrt(np.mean(result.error[-2000:] ** 2))
        d_rms = np.sqrt(np.mean(d[5200:5900] ** 2))
        # During the fade the device cannot cancel (error ≈ disturbance)...
        assert during > 0.5 * d_rms
        # ...but recovers once the reference returns.
        assert after < 0.2 * d_rms

    def test_dropout_never_diverges(self):
        x, d = self._scene()
        x[4000:7000] = 0.0
        f = LancFilter(6, 48, SECONDARY, mu=0.5)
        result = f.run(x, d)
        assert np.all(np.isfinite(result.error))


class TestPacketLossThroughAnc:
    def test_loss_costs_cancellation(self):
        """Digital-relay frame loss translates to lost cancellation."""
        rng = np.random.default_rng(3)
        T = 16000
        n = rng.standard_normal(T) * 0.1
        delta = 30
        d = np.zeros(T)
        d[delta:] = n[:-delta]

        def run_with(relay):
            forwarded = relay.forward(n)
            lag = relay.latency_samples
            # Align what lookahead remains after the relay's latency.
            shift = delta - lag
            assert shift > 0, "test setup: relay must leave lookahead"
            x = np.zeros(T)
            x[shift + lag:] = forwarded[lag: T - shift]
            f = LancFilter(4, 48, SECONDARY, mu=0.3)
            result = f.run(x, d)
            tail = result.error[-4000:]
            return 10 * np.log10(np.mean(tail ** 2)
                                 / np.mean(d[-4000:] ** 2))

        clean = run_with(DigitalRelay(frame_s=1e-3, codec_delay_s=0.0,
                                      radio_delay_s=0.0, bits=None))
        lossy = run_with(DigitalRelay(frame_s=1e-3, codec_delay_s=0.0,
                                      radio_delay_s=0.0, bits=None,
                                      packet_loss=0.2, seed=7))
        assert lossy > clean + 3.0


class TestStrictFailures:
    """Conditions that must raise, not limp along."""

    def test_lookahead_buffer_underrun(self):
        lb = LookaheadBuffer(lookahead=8, history=8)
        lb.feed_block(np.zeros(8))
        with pytest.raises(LookaheadError, match="underrun"):
            lb.advance()

    def test_streaming_underrun(self):
        f = LancFilter(8, 8, SECONDARY)
        stream = StreamingLanc(f)
        stream.feed(np.zeros(4))
        with pytest.raises(ConfigurationError, match="underrun"):
            stream.process(np.zeros(4))

    def test_negative_lookahead_refused(self, fast_scenario):
        import dataclasses

        swapped = dataclasses.replace(
            fast_scenario,
            client=fast_scenario.relays[0],
            relays=(fast_scenario.client,),
        )
        system = MuteSystem(swapped, MuteConfig(probe_secondary=False))
        with pytest.raises(LookaheadError):
            system.prepare(WhiteNoise(seed=0, level_rms=0.1).generate(0.5))

    def test_nan_reference_rejected(self):
        f = LancFilter(2, 8, SECONDARY)
        bad = np.zeros(100)
        bad[50] = np.nan
        with pytest.raises(Exception):
            f.run(bad, np.zeros(100))
