"""Unit conversions: dB, power, SPL calibration."""

import numpy as np
import pytest

from repro.errors import SignalError
from repro.utils import units


def test_db_power_roundtrip():
    for db in (-40.0, -3.0, 0.0, 10.0, 23.5):
        assert units.power_to_db(units.db_to_power(db)) == pytest.approx(db)


def test_db_amplitude_roundtrip():
    for db in (-60.0, -6.0, 0.0, 12.0):
        assert units.amplitude_to_db(
            units.db_to_amplitude(db)) == pytest.approx(db)


def test_power_to_db_floors_at_epsilon():
    assert units.power_to_db(0.0) == pytest.approx(
        10.0 * np.log10(units.EPSILON_POWER))


def test_db_conversions_vectorize():
    db = np.array([-10.0, 0.0, 10.0])
    assert units.db_to_power(db).shape == (3,)
    np.testing.assert_allclose(units.db_to_power(db), [0.1, 1.0, 10.0])


def test_rms_of_constant():
    assert units.rms(np.full(100, 2.0)) == pytest.approx(2.0)


def test_rms_of_sine():
    t = np.linspace(0.0, 1.0, 8000, endpoint=False)
    sine = np.sin(2 * np.pi * 100 * t)
    assert units.rms(sine) == pytest.approx(1.0 / np.sqrt(2.0), rel=1e-3)


def test_rms_empty_raises():
    with pytest.raises(SignalError):
        units.rms(np.array([]))


def test_signal_power_db_matches_rms():
    signal = np.array([1.0, -1.0, 1.0, -1.0])
    assert units.signal_power_db(signal) == pytest.approx(0.0)


def test_spl_calibration_roundtrip():
    amp = units.amplitude_for_spl(67.0)
    signal = np.full(1000, amp)  # "RMS amp" constant signal
    assert units.spl_db(signal) == pytest.approx(67.0, abs=1e-6)


def test_spl_full_scale():
    assert units.spl_db(np.ones(100)) == pytest.approx(
        units.FULL_SCALE_SPL_DB)


def test_snr_db_symmetric_scaling():
    signal = np.ones(100)
    noise = np.full(100, 0.1)
    assert units.snr_db(signal, noise) == pytest.approx(20.0)


def test_cancellation_db_negative_when_quieter():
    before = np.ones(256)
    after = np.full(256, 0.1)
    assert units.cancellation_db(before, after) == pytest.approx(-20.0)


def test_cancellation_db_zero_when_unchanged():
    x = np.random.default_rng(0).standard_normal(512)
    assert units.cancellation_db(x, x) == pytest.approx(0.0)
