"""The shared FIR engine (repro.utils.fastconv) and fastpath toggle.

Property-based bit-identity suite for the conv fast paths: every
regime of :func:`fir_apply` (direct, single-block FFT, overlap-save)
against the ``np.convolve`` reference, and :class:`StreamingFir`
against ``lfilter``-with-state — the contract every fast-path call
site in acoustics/hardware/core leans on (docs/PERFORMANCE.md).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import signal as sps

from repro.errors import ConfigurationError
from repro.utils import fastconv, fastpath
from repro.utils.fastconv import DIRECT_TAP_LIMIT, StreamingFir, fir_apply

TOL = 1e-10


def _signal(seed, n):
    return np.random.default_rng(seed).standard_normal(n)


def _ir(seed, m):
    return np.random.default_rng(seed + 1000).standard_normal(m) / m


class TestFirApply:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000),
           n=st.integers(min_value=1, max_value=700),
           m=st.integers(min_value=1, max_value=64))
    def test_full_matches_convolve(self, seed, n, m):
        """Direct + single-block regimes vs the np.convolve reference."""
        x, h = _signal(seed, n), _ir(seed, m)
        expected = np.convolve(x, h)
        np.testing.assert_allclose(fir_apply(x, h, mode="full"), expected,
                                   atol=TOL, rtol=0)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000),
           n=st.integers(min_value=1, max_value=700),
           m=st.integers(min_value=1, max_value=64))
    def test_same_is_full_truncated(self, seed, n, m):
        x, h = _signal(seed, n), _ir(seed, m)
        full = fir_apply(x, h, mode="full")
        np.testing.assert_array_equal(fir_apply(x, h, mode="same"), full[:n])

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000),
           n=st.integers(min_value=6000, max_value=20000),
           m=st.integers(min_value=16, max_value=128))
    def test_overlap_save_matches_convolve(self, seed, n, m):
        """n + m - 1 > the per-IR block size -> the multi-block path."""
        x, h = _signal(seed, n), _ir(seed, m)
        assert n + m - 1 > fastconv._block_nfft(m)
        np.testing.assert_allclose(fir_apply(x, h, mode="full"),
                                   np.convolve(x, h), atol=TOL, rtol=0)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000),
           n=st.integers(min_value=128, max_value=2000),
           m=st.integers(min_value=DIRECT_TAP_LIMIT + 1, max_value=64))
    def test_single_block_bit_identical_to_fftconvolve(self, seed, n, m):
        """Same next_fast_len + rfft/irfft pipeline as fftconvolve.

        n >= 2m keeps the example inside the FFT regime (shorter
        signals take the direct path, bit-identical to np.convolve
        instead).
        """
        x, h = _signal(seed, n), _ir(seed, m)
        np.testing.assert_array_equal(fir_apply(x, h, mode="full"),
                                      sps.fftconvolve(x, h))

    def test_tiny_kernel_bit_identical_to_direct(self):
        """<= DIRECT_TAP_LIMIT taps stays on np.convolve exactly."""
        x, h = _signal(3, 500), _ir(3, DIRECT_TAP_LIMIT)
        np.testing.assert_array_equal(fir_apply(x, h, mode="full"),
                                      np.convolve(x, h))

    def test_slow_path_is_fftconvolve(self):
        x, h = _signal(5, 300), _ir(5, 32)
        with fastpath.scope(False):
            np.testing.assert_array_equal(fir_apply(x, h, mode="full"),
                                          sps.fftconvolve(x, h))

    def test_complex_input_falls_back_to_direct(self):
        x = _signal(9, 200) + 1j * _signal(10, 200)
        h = _ir(9, 24)
        np.testing.assert_array_equal(fir_apply(x, h, mode="full"),
                                      np.convolve(x, h))

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            fir_apply(_signal(0, 8), _ir(0, 4), mode="valid")
        with pytest.raises(ConfigurationError):
            fir_apply(np.empty(0), _ir(0, 4))
        with pytest.raises(ConfigurationError):
            fir_apply(np.zeros((4, 4)), _ir(0, 4))


class TestSpectrumCache:
    def test_repeat_ir_hits_cache(self):
        fastconv.clear_cache()
        x, h = _signal(1, 400), _ir(1, 32)
        fir_apply(x, h)
        first = fastconv.cache_info()
        fir_apply(_signal(2, 400), h)       # same IR, same nfft
        second = fastconv.cache_info()
        assert first["misses"] >= 1
        assert second["hits"] == first["hits"] + 1
        assert second["size"] == first["size"]

    def test_clear_cache_resets_counters(self):
        fir_apply(_signal(1, 400), _ir(1, 32))
        fastconv.clear_cache()
        assert fastconv.cache_info() == {
            "size": 0, "capacity": fastconv._CACHE_CAPACITY,
            "hits": 0, "misses": 0}


class TestStreamingFir:
    def _reference(self, ir, blocks):
        """lfilter with carried zi — the pre-overhaul streaming path."""
        zi = np.zeros(ir.size - 1)
        out = []
        for block in blocks:
            y, zi = sps.lfilter(ir, [1.0], block, zi=zi)
            out.append(y)
        return np.concatenate(out)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000),
           m=st.integers(min_value=2, max_value=96),
           sizes=st.lists(st.integers(min_value=1, max_value=400),
                          min_size=1, max_size=6))
    def test_matches_lfilter_with_state(self, seed, m, sizes):
        """Any block schedule — including blocks shorter than the IR."""
        ir = _ir(seed, m)
        blocks = [_signal(seed + i, n) for i, n in enumerate(sizes)]
        fir = StreamingFir(ir)
        got = np.concatenate([fir.process(b) for b in blocks])
        np.testing.assert_allclose(got, self._reference(ir, blocks),
                                   atol=TOL, rtol=0)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000),
           m=st.integers(min_value=2, max_value=64))
    def test_fast_and_slow_paths_agree(self, seed, m):
        ir = _ir(seed, m)
        blocks = [_signal(seed + i, 160) for i in range(4)]
        with fastpath.scope(True):
            fir = StreamingFir(ir)
            fast = np.concatenate([fir.process(b) for b in blocks])
        with fastpath.scope(False):
            fir = StreamingFir(ir)
            slow = np.concatenate([fir.process(b) for b in blocks])
        np.testing.assert_allclose(fast, slow, atol=TOL, rtol=0)

    def test_state_is_lfilter_zi(self):
        """After any prefix the carry equals lfilter's zf vector."""
        ir = _ir(11, 24)
        block = _signal(11, 300)
        fir = StreamingFir(ir)
        fir.process(block)
        __, zf = sps.lfilter(ir, [1.0], block, zi=np.zeros(ir.size - 1))
        np.testing.assert_allclose(fir.state[:ir.size - 1], zf,
                                   atol=TOL, rtol=0)

    def test_shared_external_state_buffer(self):
        ir = _ir(12, 16)
        shared = np.zeros(ir.size - 1)
        fir = StreamingFir(ir, state=shared)
        fir.process(_signal(12, 100))
        assert fir.state is shared
        assert np.any(shared != 0.0)
        fir.reset()
        assert not np.any(shared)

    def test_single_tap_is_gain(self):
        fir = StreamingFir(np.array([0.5]))
        block = _signal(13, 64)
        np.testing.assert_array_equal(fir.process(block), 0.5 * block)

    def test_rejects_short_state_buffer(self):
        with pytest.raises(ConfigurationError):
            StreamingFir(_ir(14, 16), state=np.zeros(4))
        with pytest.raises(ConfigurationError):
            StreamingFir(np.empty(0))


class TestFastpathToggle:
    def test_scope_restores_ambient(self):
        ambient = fastpath.enabled()
        with fastpath.scope(not ambient):
            assert fastpath.enabled() is (not ambient)
            with fastpath.scope(None):      # None keeps the setting
                assert fastpath.enabled() is (not ambient)
        assert fastpath.enabled() is ambient

    def test_set_enabled_round_trip(self):
        ambient = fastpath.enabled()
        try:
            fastpath.set_enabled(False)
            assert not fastpath.enabled()
            fastpath.set_enabled(True)
            assert fastpath.enabled()
        finally:
            fastpath.set_enabled(ambient)
