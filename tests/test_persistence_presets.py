"""Learned-state persistence and scenario presets."""

import json

import numpy as np
import pytest

from repro.core import (
    FilterCache,
    MuteConfig,
    MuteSystem,
    ProfileClassifier,
    airport_gate,
    all_presets,
    bedroom_at_night,
    gym_floor,
    load_learned_state,
    save_learned_state,
)
from repro.errors import ConfigurationError
from repro.signals import BandlimitedNoise, MaleVoice


class TestPersistence:
    def _trained_classifier(self):
        clf = ProfileClassifier(sample_rate=8000.0, n_bands=10,
                                max_distance=1.1, energy_floor=2e-5)
        clf.register("speech", MaleVoice(seed=1, level_rms=0.2,
                                         speech_fraction=1.0).generate(1.0))
        clf.register("background",
                     BandlimitedNoise(100, 3000, seed=2,
                                      level_rms=0.2).generate(1.0))
        return clf

    def test_roundtrip_classifier(self, tmp_path):
        clf = self._trained_classifier()
        path = save_learned_state(tmp_path / "state.json", classifier=clf)
        loaded, cache, __ = load_learned_state(path)
        assert cache is None
        assert set(loaded.labels) == {"speech", "background"}
        assert loaded.max_distance == clf.max_distance
        # The loaded classifier actually classifies.
        speech = MaleVoice(seed=5, level_rms=0.2,
                           speech_fraction=1.0).generate(1.0)
        assert loaded.classify(speech) == "speech"

    def test_roundtrip_cache(self, tmp_path):
        cache = FilterCache()
        cache.store("speech", np.linspace(-1, 1, 48))
        cache.store("background", np.zeros(48))
        path = save_learned_state(tmp_path / "taps.json", cache=cache)
        __, loaded, ___ = load_learned_state(path)
        np.testing.assert_allclose(loaded.load("speech"),
                                   np.linspace(-1, 1, 48))
        assert set(loaded.labels()) == {"speech", "background"}

    def test_metadata_roundtrip(self, tmp_path):
        cache = FilterCache()
        cache.store("a", np.ones(4))
        path = save_learned_state(tmp_path / "m.json", cache=cache,
                                  metadata={"room": "office-3"})
        __, ___, metadata = load_learned_state(path)
        assert metadata == {"room": "office-3"}

    def test_nothing_to_save_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            save_learned_state(tmp_path / "x.json")

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"format_version": 99}))
        with pytest.raises(ConfigurationError, match="format"):
            load_learned_state(path)

    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("not json {{")
        with pytest.raises(ConfigurationError):
            load_learned_state(path)

    def test_file_is_plain_json(self, tmp_path):
        cache = FilterCache()
        cache.store("a", np.ones(2))
        path = save_learned_state(tmp_path / "plain.json", cache=cache)
        document = json.loads(path.read_text())
        assert document["cache"]["a"] == [1.0, 1.0]


class TestPresets:
    @pytest.mark.parametrize("factory", [airport_gate, gym_floor,
                                         bedroom_at_night])
    def test_preset_offers_lookahead(self, factory):
        scenario, source = factory()
        assert scenario.nominal_lead_s() > 2e-3
        waveform = source.generate(0.5)
        assert waveform.size == 4000

    def test_all_presets_keys(self):
        presets = all_presets()
        assert set(presets) == {"airport gate", "gym floor",
                                "bedroom at night"}

    def test_bedroom_preset_cancels(self):
        """End-to-end sanity: the bedroom preset actually works."""
        scenario, source = bedroom_at_night(seed=3)
        system = MuteSystem(scenario, MuteConfig(
            probe_secondary=False, mu=0.2, n_past=256, n_future=32))
        result = system.run(source.generate(3.0))
        assert result.mean_cancellation_db(settle_fraction=0.5) < -5.0
