"""The online ear-device: block streaming and relay handoff."""

import numpy as np
import pytest

from repro.acoustics import Point, Room
from repro.acoustics.rir import RirSettings
from repro.core import OnlineMuteDevice, Scenario
from repro.errors import ConfigurationError
from repro.signals import WhiteNoise


@pytest.fixture(scope="module")
def handoff_scenario():
    """Client center, two relays in opposite corners."""
    room = Room(6.0, 5.0, 3.0, absorption=0.4)
    return Scenario(
        room=room, source=Point(1, 1, 1.2), client=Point(3.0, 2.5, 1.2),
        relays=(Point(0.8, 0.8, 1.3), Point(5.2, 4.2, 1.3)),
        rir_settings=RirSettings(max_order=1),
    )


@pytest.fixture(scope="module")
def device(handoff_scenario):
    return OnlineMuteDevice(handoff_scenario, mu=0.15)


def _noise(seed, seconds=4.0, fs=8000.0):
    return WhiteNoise(sample_rate=fs, level_rms=0.1, seed=seed) \
        .generate(seconds)


class TestSingleSourceSession:
    @pytest.fixture(scope="class")
    def result(self, device):
        src = Point(0.9, 1.0, 1.3)     # near relay 0
        return device.run_session([(src, _noise(3, 5.0))])

    def test_selects_near_relay(self, result):
        chosen = {h.relay for h in result.handoffs if h.relay is not None}
        assert chosen == {0}

    def test_cancellation_after_convergence(self, result):
        T = result.residual.size
        assert result.segment_cancellation_db(T // 2, T) < -12.0

    def test_timeline_mostly_active(self, result):
        active = np.mean(result.active_relay_timeline >= 0)
        assert active > 0.8

    def test_output_shapes(self, result):
        assert result.residual.size == result.disturbance.size
        assert np.all(np.isfinite(result.residual))


class TestHandoffSession:
    @pytest.fixture(scope="class")
    def result(self, device):
        near_0 = Point(0.9, 1.0, 1.3)
        near_1 = Point(5.1, 4.0, 1.3)
        return device.run_session([
            (near_0, _noise(3, 5.0)),
            (near_1, _noise(4, 5.0)),
        ])

    def test_device_switches_relays(self, result):
        relays = [h.relay for h in result.handoffs if h.relay is not None]
        assert 0 in relays and 1 in relays

    def test_cancellation_recovers_after_handoff(self, result):
        T_half = result.residual.size // 2
        second_tail = result.segment_cancellation_db(
            T_half + T_half // 2, 2 * T_half)
        assert second_tail < -12.0

    def test_timeline_tracks_the_move(self, result):
        T_half = result.residual.size // 2
        first = result.active_relay_timeline[T_half // 2: T_half]
        second = result.active_relay_timeline[T_half + T_half // 2:]
        assert np.median(first[first >= 0]) == 0
        assert np.median(second[second >= 0]) == 1


class TestNoUsableRelay:
    def test_passthrough_when_source_at_client(self, handoff_scenario):
        device = OnlineMuteDevice(handoff_scenario, mu=0.15)
        src = Point(3.1, 2.4, 1.3)      # right next to the client
        result = device.run_session([(src, _noise(5, 2.0))])
        # No relay offers lookahead: the device must not fabricate
        # anti-noise; the residual equals the ambient.
        np.testing.assert_array_equal(result.residual, result.disturbance)
        assert np.all(result.active_relay_timeline == -1)


class TestValidation:
    def test_empty_schedule_rejected(self, device):
        with pytest.raises(ConfigurationError):
            device.run_session([])

    def test_requires_scenario(self):
        with pytest.raises(ConfigurationError):
            OnlineMuteDevice("nope")


class TestDeviceWithProfileSwitching:
    """The capstone integration: handoff + predictive switching."""

    @pytest.fixture(scope="class")
    def classifier(self, handoff_scenario):
        from repro.core import ProfileClassifier
        from repro.signals import MaleVoice

        fs = handoff_scenario.sample_rate
        clf = ProfileClassifier(sample_rate=fs, n_bands=12,
                                max_distance=1.5, level_weight=1.0,
                                energy_floor=1e-5)
        clf.register("noise", WhiteNoise(sample_rate=fs, level_rms=0.1,
                                         seed=1).generate(1.0))
        clf.register("speech", MaleVoice(sample_rate=fs, level_rms=0.12,
                                         seed=2, speech_fraction=1.0)
                     .generate(1.0))
        return clf

    def test_runs_and_cancels_across_profile_change(self, handoff_scenario,
                                                    classifier):
        from repro.signals import MaleVoice

        fs = handoff_scenario.sample_rate
        device = OnlineMuteDevice(handoff_scenario, mu=0.2,
                                  classifier=classifier)
        src = Point(0.9, 1.0, 1.3)
        w1 = WhiteNoise(sample_rate=fs, level_rms=0.1, seed=3).generate(3.0)
        w2 = MaleVoice(sample_rate=fs, level_rms=0.12, seed=4,
                       speech_fraction=1.0).generate(3.0)
        result = device.run_session([(src, w1), (src, w2)])
        T1 = w1.size
        assert result.segment_cancellation_db(T1 // 2, T1) < -12.0
        assert result.segment_cancellation_db(T1 + T1 // 2, 2 * T1) < -12.0
        assert np.all(np.isfinite(result.residual))

    def test_classifier_optional(self, handoff_scenario):
        device = OnlineMuteDevice(handoff_scenario, mu=0.2)
        assert device.classifier is None

    def test_rejects_wrong_classifier_type(self, handoff_scenario):
        with pytest.raises(ConfigurationError):
            OnlineMuteDevice(handoff_scenario, classifier="not one")
