"""The analog relay end-to-end, and the link budget."""

import numpy as np
import pytest

from repro.signals import MaleVoice, WhiteNoise
from repro.wireless import (
    AnalogRelay,
    IdealRelay,
    RfChannelConfig,
    band_occupancy_fraction,
    free_space_path_loss_db,
    received_snr_db,
    thermal_noise_dbm,
)


class TestIdealRelay:
    def test_passthrough(self):
        x = WhiteNoise(seed=0, level_rms=0.1).generate(0.2)
        out = IdealRelay().forward(x)
        np.testing.assert_array_equal(out, x)
        assert out is not x

    def test_mic_noise_added(self):
        x = np.zeros(1000)
        out = IdealRelay(mic_noise_rms=0.1, seed=1).forward(x)
        assert np.sqrt(np.mean(out ** 2)) == pytest.approx(0.1, rel=0.1)

    def test_zero_latency(self):
        assert IdealRelay().latency_samples == 0


class TestAnalogRelay:
    @pytest.fixture(scope="class")
    def relay(self):
        return AnalogRelay(seed=3)

    def test_latency_under_one_ms(self, relay):
        assert 0.0 <= relay.latency_samples < 8.0   # < 1 ms at 8 kHz

    def test_output_length_matches(self, relay):
        x = WhiteNoise(seed=4, level_rms=0.2).generate(0.5)
        assert relay.forward(x).size == x.size

    def test_coherent_snr_clean_link(self, relay):
        x = WhiteNoise(seed=5, level_rms=0.2).generate(1.0)
        assert relay.audio_snr_db(x) > 30.0

    def test_voice_forwarding(self, relay):
        v = MaleVoice(seed=7, level_rms=0.2).generate(1.0)
        assert relay.audio_snr_db(v) > 25.0

    def test_degrades_with_rf_noise(self):
        x = WhiteNoise(seed=5, level_rms=0.2).generate(1.0)
        clean = AnalogRelay(seed=3)
        noisy = AnalogRelay(seed=3, channel_config=RfChannelConfig(
            snr_db=5.0, seed=9))
        assert noisy.audio_snr_db(x) < clean.audio_snr_db(x) - 10.0

    def test_cfo_tolerated(self):
        x = WhiteNoise(seed=5, level_rms=0.2).generate(1.0)
        relay = AnalogRelay(seed=3, channel_config=RfChannelConfig(
            snr_db=40.0, cfo_hz=4000.0, seed=9))
        assert relay.audio_snr_db(x) > 25.0

    def test_forward_is_linear_in_level(self):
        x = WhiteNoise(seed=6, level_rms=0.05).generate(0.5)
        relay = AnalogRelay(seed=3, mic_noise_rms=0.0,
                            channel_config=RfChannelConfig(
                                snr_db=float("inf"), seed=0))
        a = relay.forward(x)
        b = relay.forward(2.0 * x)
        margin = 200
        np.testing.assert_allclose(b[margin:-margin], 2 * a[margin:-margin],
                                   atol=5e-3)


class TestLinkBudget:
    def test_fspl_grows_with_distance(self):
        assert (free_space_path_loss_db(10.0)
                > free_space_path_loss_db(1.0) + 19.0)

    def test_fspl_reference_value(self):
        # ~31.7 dB at 1 m, 915 MHz.
        assert free_space_path_loss_db(1.0) == pytest.approx(31.7, abs=0.5)

    def test_thermal_noise(self):
        # kTB for 30 kHz ≈ -129 dBm; +6 dB NF.
        assert thermal_noise_dbm(30e3) == pytest.approx(-123.0, abs=1.0)

    def test_indoor_snr_is_huge(self):
        assert received_snr_db(0.0, 3.0, 32000.0) > 60.0

    def test_band_occupancy_small(self):
        # Paper §6: a few relays occupy a tiny fraction of the ISM band.
        assert band_occupancy_fraction(32000.0, n_relays=4) < 0.01

    def test_occupancy_scales_with_relays(self):
        one = band_occupancy_fraction(32000.0, 1)
        four = band_occupancy_fraction(32000.0, 4)
        assert four == pytest.approx(4 * one)
