"""Documentation lint, as an opt-in test (marker: ``docs_lint``).

Runs the same checks as ``python -m repro.tools.check_docs`` against
this checkout: every relative link and backticked path reference in
``README.md`` / ``docs/*.md`` must resolve, and every registered
experiment must be mentioned in the docs.  Opt in with ``--docs-lint``
or ``REPRO_DOCS_LINT=1`` — the lint inspects the working tree, not the
installed library, so it is not part of the default suite.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.tools import check_docs

pytestmark = pytest.mark.docs_lint

ROOT = pathlib.Path(__file__).resolve().parents[1]


def test_docs_have_no_problems():
    problems = check_docs.collect_problems(ROOT)
    assert problems == [], "\n".join(problems)


def test_cli_exit_code_clean():
    assert check_docs.main(["--root", str(ROOT)]) == 0


def test_cli_exit_code_dirty(tmp_path):
    (tmp_path / "README.md").write_text(
        "[dead](missing.md) and `nowhere.py`\n", encoding="utf-8")
    problems = check_docs.collect_problems(tmp_path)
    assert any("missing.md" in p for p in problems)
    assert any("nowhere.py" in p for p in problems)
    assert check_docs.main(["--root", str(tmp_path)]) == 1


def test_experiment_mentions_detected(tmp_path):
    # A doc set that links fine but never mentions any experiment.
    (tmp_path / "README.md").write_text("hello\n", encoding="utf-8")
    problems = check_docs.collect_problems(tmp_path)
    assert any("registered but never mentioned" in p for p in problems)
