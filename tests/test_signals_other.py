"""Music, construction noise, and mixtures."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SignalError
from repro.signals import (
    ConstructionNoise,
    IntermittentSource,
    SyntheticMusic,
    Tone,
    WhiteNoise,
    mix,
    segments_from_mask,
)
from repro.utils.spectral import welch_psd


class TestSyntheticMusic:
    def test_reproducible(self):
        np.testing.assert_array_equal(
            SyntheticMusic(seed=9).generate(1.0),
            SyntheticMusic(seed=9).generate(1.0))

    def test_tonal_structure(self):
        x = SyntheticMusic(seed=4).generate(6.0)
        freqs, psd = welch_psd(x, 8000.0, nperseg=2048)
        # Tonal content: peak PSD well above median.
        assert np.max(psd) > 50 * np.median(psd[(freqs > 100)])

    def test_rejects_bad_tempo(self):
        with pytest.raises(ConfigurationError):
            SyntheticMusic(tempo_bpm=0.0)

    def test_rejects_empty_scale(self):
        with pytest.raises(ConfigurationError):
            SyntheticMusic(scale=[])


class TestConstructionNoise:
    def test_reproducible(self):
        np.testing.assert_array_equal(
            ConstructionNoise(seed=2).generate(1.0),
            ConstructionNoise(seed=2).generate(1.0))

    def test_rumble_dominates_low_band(self):
        x = ConstructionNoise(seed=1).generate(6.0)
        freqs, psd = welch_psd(x, 8000.0, nperseg=1024)
        low = psd[(freqs > 30) & (freqs < 400)].mean()
        top = psd[(freqs > 3200)].mean()
        assert low > 5 * top

    def test_impacts_create_crest(self):
        calm = ConstructionNoise(impact_rate_hz=0.0, seed=3).generate(4.0)
        hits = ConstructionNoise(impact_rate_hz=4.0, seed=3).generate(4.0)

        def crest(x):
            return np.max(np.abs(x)) / np.sqrt(np.mean(x ** 2))

        assert crest(hits) > crest(calm)

    def test_rejects_bad_whine(self):
        with pytest.raises(ConfigurationError):
            ConstructionNoise(whine_center_hz=4000.0, sample_rate=8000.0)


class TestIntermittentSource:
    def test_mask_alternates(self):
        src = IntermittentSource(WhiteNoise(seed=0), on_s=0.5, off_s=0.5,
                                 seed=1)
        __, mask = src.generate_with_activity(6.0)
        segments = segments_from_mask(mask)
        assert len(segments) >= 4
        states = [active for __, __, active in segments]
        assert all(a != b for a, b in zip(states, states[1:]))

    def test_quiet_during_off(self):
        src = IntermittentSource(Tone(500.0), on_s=0.5, off_s=0.5, seed=2)
        wave, mask = src.generate_with_activity(4.0)
        # Sample the middles of off-segments (away from ramps).
        for start, end, active in segments_from_mask(mask):
            if not active and end - start > 400:
                mid = slice(start + 150, end - 150)
                assert np.max(np.abs(wave[mid])) < 0.05

    def test_requires_signal_source(self):
        with pytest.raises(ConfigurationError):
            IntermittentSource("not a source")

    def test_activity_mask_deterministic(self):
        src = IntermittentSource(WhiteNoise(seed=0), seed=5)
        a = src.activity_mask(8000)
        b = src.activity_mask(8000)
        np.testing.assert_array_equal(a, b)


class TestMix:
    def test_sums(self):
        a, b = np.ones(4), np.full(4, 2.0)
        np.testing.assert_array_equal(mix(a, b), np.full(4, 3.0))

    def test_gains(self):
        a, b = np.ones(4), np.ones(4)
        np.testing.assert_array_equal(mix(a, b, gains=[2.0, 3.0]),
                                      np.full(4, 5.0))

    def test_length_mismatch(self):
        with pytest.raises(SignalError):
            mix(np.ones(4), np.ones(5))

    def test_empty(self):
        with pytest.raises(SignalError):
            mix()


class TestSegmentsFromMask:
    def test_basic(self):
        mask = np.array([True, True, False, True])
        assert segments_from_mask(mask) == [
            (0, 2, True), (2, 3, False), (3, 4, True)]

    def test_empty(self):
        assert segments_from_mask(np.array([], dtype=bool)) == []

    def test_uniform(self):
        assert segments_from_mask(np.ones(5, dtype=bool)) == [(0, 5, True)]
