"""Session checkpoint/restore (repro.serving.checkpoint).

The crash-safety contract under test: a snapshot taken mid-convergence
and applied to a fresh session must resume **bit-identically** — the
replayed blocks produce exactly the residual an uncrashed run would
have produced, across both kernel backends.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adaptive import kernels
from repro.errors import CheckpointError
from repro.serving import (
    CHECKPOINT_SCHEMA,
    CheckpointStore,
    checkpoint_payload,
    payload_digest,
)
from repro.serving.session import (
    ACTIVE,
    DeviceSession,
    SessionConfig,
    SessionWorkload,
)

BLOCK = 64
DURATION_S = 0.2        # 1600 samples -> 25 blocks of 64


def _session(seed=0, session_id=0, duration_s=DURATION_S):
    workload = SessionWorkload.synthetic(
        f"user{seed}", duration_s=duration_s, seed=seed)
    session = DeviceSession(session_id, workload, SessionConfig(), BLOCK)
    session.status = ACTIVE
    return session


def _advance(session, blocks):
    """Serve ``blocks`` lock-step blocks, exactly like the serial server."""
    config = session.config
    for __ in range(blocks):
        if session.done:
            break
        adapt, active = session.gates()
        taps = np.stack([session.filter.taps])
        d = np.stack([session.next_block()[1]])
        mu = np.array([session.filter.mu])
        errors, diverged = kernels.fxlms_block_batch(
            [session.state], taps, d, mu,
            normalized=config.normalized, leak=config.leak,
            adapt=np.array([adapt]), active=np.array([active]),
        )
        assert not diverged[0]
        session.filter.taps[:] = taps[0]
        session.record_block(errors[0])


def _drain(session):
    _advance(session, session.n_blocks)
    return session.result()


class TestRestoreBitIdentity:
    """save -> restore -> replay must equal the uninterrupted run."""

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000),
           checkpoint_block=st.integers(min_value=1, max_value=24))
    def test_mid_convergence_restore_is_bit_identical(
            self, seed, checkpoint_block):
        baseline = _drain(_session(seed=seed))

        victim = _session(seed=seed)
        _advance(victim, checkpoint_block)
        payload = checkpoint_payload(victim)

        restored = _session(seed=seed)
        restored.apply_checkpoint(payload)
        assert restored.block_index == checkpoint_block
        resumed = _drain(restored)

        assert resumed.digest() == baseline.digest()
        assert np.array_equal(resumed.residual, baseline.residual)

    @pytest.mark.parametrize("backend", sorted(kernels.available_backends()))
    def test_kernel_state_snapshot_round_trip(self, backend):
        """KernelState.snapshot/restore is exact on every backend."""
        config = SessionConfig()
        rng = np.random.default_rng(42)
        x = rng.normal(size=6 * BLOCK + config.n_future)
        d = rng.normal(size=6 * BLOCK)
        taps_a = np.zeros(config.n_future + config.n_past)
        taps_b = taps_a.copy()

        def fresh_state():
            state = kernels.KernelState.streaming(
                config.n_future, config.n_past, config.secondary())
            state.extend(x)
            return state

        uninterrupted = fresh_state()
        outputs_a = [kernels.fxlms_block(
            uninterrupted, taps_a, d[i * BLOCK:(i + 1) * BLOCK],
            config.mu, backend=backend, normalized=config.normalized,
        ) for i in range(6)]

        split = fresh_state()
        outputs_b = [kernels.fxlms_block(
            split, taps_b, d[i * BLOCK:(i + 1) * BLOCK],
            config.mu, backend=backend, normalized=config.normalized,
        ) for i in range(3)]
        handoff = fresh_state()
        handoff.restore(split.snapshot())
        outputs_b += [kernels.fxlms_block(
            handoff, taps_b, d[i * BLOCK:(i + 1) * BLOCK],
            config.mu, backend=backend, normalized=config.normalized,
        ) for i in range(3, 6)]

        assert np.array_equal(taps_a, taps_b)
        for block_a, block_b in zip(outputs_a, outputs_b):
            assert np.array_equal(np.asarray(block_a), np.asarray(block_b))


class TestPayloadDigest:
    def test_deterministic(self):
        session = _session()
        _advance(session, 3)
        payload = checkpoint_payload(session)
        assert payload["meta"]["schema"] == CHECKPOINT_SCHEMA
        assert payload_digest(payload) == payload_digest(payload)

    def test_sensitive_to_state(self):
        session = _session()
        _advance(session, 3)
        payload = checkpoint_payload(session)
        tampered = checkpoint_payload(session)
        tampered["arrays"]["taps"] = tampered["arrays"]["taps"] + 1e-12
        assert payload_digest(tampered) != payload_digest(payload)

    def test_payload_is_frozen_copy(self):
        """The session keeps mutating; the payload must not follow."""
        session = _session()
        _advance(session, 3)
        payload = checkpoint_payload(session)
        digest = payload_digest(payload)
        _advance(session, 3)
        assert payload_digest(payload) == digest


class TestMemoryStore:
    def test_save_latest_round_trip(self):
        store = CheckpointStore()
        session = _session()
        _advance(session, 4)
        digest = store.save(session)
        payload = store.latest(session.session_id)
        assert payload_digest(payload) == digest
        assert payload["meta"]["block_index"] == 4

    def test_keep_prunes_oldest(self):
        store = CheckpointStore(keep=2)
        session = _session()
        for __ in range(4):
            _advance(session, 1)
            store.save(session)
        entries = store._memory[session.session_id]
        assert [block for block, __, __ in entries] == [3, 4]

    def test_corrupt_snapshot_skipped_not_fatal(self):
        store = CheckpointStore()
        session = _session()
        _advance(session, 2)
        store.save(session)
        _advance(session, 2)
        store.save(session)
        # Bit-rot the newest in-memory payload: digest check must skip
        # it and fall back to the older intact snapshot.
        entries = store._memory[session.session_id]
        entries[-1][2]["arrays"]["taps"][:] += 1.0
        payload = store.latest(session.session_id)
        assert payload["meta"]["block_index"] == 2
        assert store.corrupt_skipped == 1
        assert store.stats() == {"saved": 2, "corrupt_skipped": 1}

    def test_restore_session_warm_and_cold(self):
        store = CheckpointStore()
        session = _session()
        _advance(session, 4)
        store.save(session)
        warm_session, warm = store.restore_session(session)
        assert warm
        assert warm_session.block_index == 4

        stranger = _session(seed=9, session_id=7)
        cold_session, warm = store.restore_session(stranger)
        assert not warm
        assert cold_session.block_index == 0

    def test_rejects_bad_keep(self):
        with pytest.raises(CheckpointError):
            CheckpointStore(keep=0)


class TestDiskStore:
    def test_round_trip_across_instances(self, tmp_path):
        writer = CheckpointStore(tmp_path)
        session = _session()
        _advance(session, 4)
        digest = writer.save(session)
        assert list(tmp_path.glob("session-*.npz"))

        reader = CheckpointStore(tmp_path)       # fresh "process"
        payload = reader.latest(session.session_id)
        assert payload_digest(payload) == digest

        restored, warm = reader.restore_session(_session())
        assert warm
        assert restored.block_index == 4

    def test_disk_restore_is_bit_identical(self, tmp_path):
        baseline = _drain(_session())

        store = CheckpointStore(tmp_path)
        victim = _session()
        _advance(victim, 5)
        store.save(victim)
        restored, warm = CheckpointStore(tmp_path).restore_session(
            _session())
        assert warm
        assert _drain(restored).digest() == baseline.digest()

    def test_corrupt_file_falls_back_to_older_snapshot(self, tmp_path):
        store = CheckpointStore(tmp_path)
        session = _session()
        _advance(session, 2)
        store.save(session)
        _advance(session, 2)
        store.save(session)
        newest = max(tmp_path.glob("session-*.npz"))
        newest.write_bytes(b"not an npz archive")

        reader = CheckpointStore(tmp_path)
        payload = reader.latest(session.session_id)
        assert payload["meta"]["block_index"] == 2
        assert reader.corrupt_skipped == 1

    def test_truncated_file_skipped(self, tmp_path):
        store = CheckpointStore(tmp_path)
        session = _session()
        _advance(session, 3)
        store.save(session)
        (path,) = tmp_path.glob("session-*.npz")
        path.write_bytes(path.read_bytes()[:40])
        assert CheckpointStore(tmp_path).latest(session.session_id) is None

    def test_keep_prunes_disk(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=2)
        session = _session()
        for __ in range(5):
            _advance(session, 1)
            store.save(session)
        assert len(list(tmp_path.glob("session-*.npz"))) == 2


class TestApplyCheckpointValidation:
    def _payload(self):
        session = _session()
        _advance(session, 3)
        return checkpoint_payload(session)

    def test_wrong_session_id(self):
        payload = self._payload()
        payload["meta"]["session_id"] = 99
        with pytest.raises(CheckpointError):
            _session().apply_checkpoint(payload)

    def test_wrong_workload_name(self):
        payload = self._payload()
        payload["meta"]["name"] = "somebody-else"
        with pytest.raises(CheckpointError):
            _session().apply_checkpoint(payload)

    def test_wrong_block_size(self):
        payload = self._payload()
        payload["meta"]["block_size"] = BLOCK * 2
        with pytest.raises(CheckpointError):
            _session().apply_checkpoint(payload)

    def test_wrong_taps_geometry(self):
        payload = self._payload()
        payload["arrays"]["taps"] = np.zeros(3)
        with pytest.raises(CheckpointError):
            _session().apply_checkpoint(payload)
