"""GCC-PHAT lookahead measurement and relay selection."""

import numpy as np
import pytest

from repro.core import RelaySelector, gcc_phat, measure_lookahead
from repro.errors import RelaySelectionError
from repro.signals import MaleVoice, WhiteNoise

FS = 8000.0


def _shifted_pair(shift_samples, seconds=1.0, seed=0):
    """(forwarded, ear) where the ear hears the same sound `shift` later."""
    x = WhiteNoise(sample_rate=FS, level_rms=0.2, seed=seed) \
        .generate(seconds)
    ear = np.zeros_like(x)
    if shift_samples >= 0:
        ear[shift_samples:] = x[: x.size - shift_samples]
        return x, ear
    fwd = np.zeros_like(x)
    fwd[-shift_samples:] = x[: x.size + shift_samples]
    return fwd, x


class TestGccPhat:
    @pytest.mark.parametrize("shift", [3, 17, 40])
    def test_positive_lag_when_forwarded_leads(self, shift):
        fwd, ear = _shifted_pair(shift)
        lags, corr = gcc_phat(fwd, ear, FS)
        peak_lag = lags[np.argmax(corr)]
        assert peak_lag == pytest.approx(shift / FS, abs=1.5 / FS)

    @pytest.mark.parametrize("shift", [-5, -25])
    def test_negative_lag_when_forwarded_lags(self, shift):
        fwd, ear = _shifted_pair(shift)
        lags, corr = gcc_phat(fwd, ear, FS)
        peak_lag = lags[np.argmax(corr)]
        assert peak_lag == pytest.approx(shift / FS, abs=1.5 / FS)

    def test_lag_grid_symmetric(self):
        fwd, ear = _shifted_pair(10)
        lags, corr = gcc_phat(fwd, ear, FS, max_lag_s=0.01)
        assert lags[0] == pytest.approx(-0.01, abs=1.0 / FS)
        assert lags[-1] == pytest.approx(0.01, abs=1.0 / FS)
        assert lags.size == corr.size

    def test_works_with_speech(self):
        voice = MaleVoice(sample_rate=FS, level_rms=0.2, seed=3,
                          speech_fraction=1.0).generate(1.5)
        shift = 20
        ear = np.zeros_like(voice)
        ear[shift:] = voice[:-shift]
        lags, corr = gcc_phat(voice, ear, FS)
        assert lags[np.argmax(corr)] == pytest.approx(shift / FS,
                                                      abs=2.0 / FS)

    def test_robust_to_scaling(self):
        fwd, ear = _shifted_pair(12)
        lags, corr = gcc_phat(0.01 * fwd, 100.0 * ear, FS)
        assert lags[np.argmax(corr)] == pytest.approx(12 / FS, abs=1.5 / FS)


class TestMeasureLookahead:
    def test_positive_measurement(self):
        fwd, ear = _shifted_pair(24)
        m = measure_lookahead(fwd, ear, FS)
        assert m.is_positive
        assert m.lag_s == pytest.approx(24 / FS, abs=1.5 / FS)
        assert m.confidence > 5.0

    def test_negative_measurement(self):
        fwd, ear = _shifted_pair(-24)
        m = measure_lookahead(fwd, ear, FS)
        assert not m.is_positive

    def test_uncorrelated_low_confidence(self):
        a = WhiteNoise(sample_rate=FS, seed=1).generate(1.0)
        b = WhiteNoise(sample_rate=FS, seed=2).generate(1.0)
        m = measure_lookahead(a, b, FS)
        assert m.confidence < 8.0


class TestRelaySelector:
    def test_picks_largest_positive(self):
        selector = RelaySelector(sample_rate=FS)
        ear_shift = 40
        x = WhiteNoise(sample_rate=FS, level_rms=0.2, seed=5).generate(1.0)
        ear = np.zeros_like(x)
        ear[ear_shift:] = x[:-ear_shift]
        forwarded = {}
        for relay_id, relay_shift in {"near": 5, "mid": 20, "far": 45}.items():
            f = np.zeros_like(x)
            f[relay_shift:] = x[:-relay_shift]
            forwarded[relay_id] = f
        best, measurements = selector.select(forwarded, ear)
        # 'near' leads the ear by 35 samples — the largest positive lead.
        assert best == "near"
        assert measurements["far"].lag_s < 0.0

    def test_all_negative_returns_none(self):
        selector = RelaySelector(sample_rate=FS)
        fwd, ear = _shifted_pair(-30)
        best, __ = selector.select({"only": fwd}, ear)
        assert best is None

    def test_min_lookahead_threshold(self):
        selector = RelaySelector(sample_rate=FS, min_lookahead_s=0.01)
        fwd, ear = _shifted_pair(8)   # 1 ms < 10 ms threshold
        best, __ = selector.select({"only": fwd}, ear)
        assert best is None

    def test_empty_relays_rejected(self):
        with pytest.raises(RelaySelectionError):
            RelaySelector(sample_rate=FS).select({}, np.zeros(100))

    def test_rejects_negative_min_lookahead(self):
        with pytest.raises(RelaySelectionError):
            RelaySelector(sample_rate=FS, min_lookahead_s=-1.0)
