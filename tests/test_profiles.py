"""Sound profiles: signatures, classifier, cache, predictive switcher."""

import numpy as np
import pytest

from repro.core import (
    FilterCache,
    LancFilter,
    PredictiveProfileSwitcher,
    ProfileClassifier,
    SoundProfile,
    signature_distance,
)
from repro.errors import ConfigurationError
from repro.signals import BandlimitedNoise, MaleVoice

FS = 8000.0


def _speech(seconds=1.0, seed=0):
    return MaleVoice(sample_rate=FS, level_rms=0.2, seed=seed,
                     speech_fraction=1.0).generate(seconds)


def _background(seconds=1.0, seed=0):
    return BandlimitedNoise(100.0, 3600.0, sample_rate=FS, level_rms=0.2,
                            seed=seed).generate(seconds)


class TestSoundProfile:
    def test_signature_normalized(self):
        p = SoundProfile("x", np.array([2.0, 6.0]))
        np.testing.assert_allclose(p.signature, [0.25, 0.75])

    def test_rejects_zero_mass(self):
        with pytest.raises(ConfigurationError):
            SoundProfile("x", np.zeros(4))


class TestSignatureDistance:
    def test_zero_for_identical(self):
        sig = np.array([0.5, 0.5])
        assert signature_distance(sig, sig) == 0.0

    def test_max_two_for_disjoint(self):
        assert signature_distance(np.array([1.0, 0.0]),
                                  np.array([0.0, 1.0])) == pytest.approx(2.0)

    def test_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            signature_distance(np.ones(2), np.ones(3))


class TestProfileClassifier:
    @pytest.fixture()
    def trained(self):
        clf = ProfileClassifier(sample_rate=FS, n_bands=12)
        clf.register("speech", _speech(seed=1))
        clf.register("background", _background(seed=1))
        return clf

    def test_classifies_unseen_takes(self, trained):
        assert trained.classify(_speech(seed=9)) == "speech"
        assert trained.classify(_background(seed=9)) == "background"

    def test_quiet_buffer(self, trained):
        assert trained.classify(np.zeros(800)) == "quiet"

    def test_unknown_profile_returns_none(self):
        clf = ProfileClassifier(sample_rate=FS, max_distance=0.1)
        clf.register("background", _background(seed=1))
        # A pure high tone is nothing like the broadband background.
        t = np.arange(4000) / FS
        tone = 0.2 * np.sin(2 * np.pi * 3500.0 * t)
        assert clf.classify(tone) is None

    def test_no_profiles_returns_none(self):
        clf = ProfileClassifier(sample_rate=FS)
        assert clf.classify(_speech()) is None

    def test_labels(self, trained):
        assert set(trained.labels) == {"speech", "background"}

    def test_register_signature_directly(self):
        clf = ProfileClassifier(sample_rate=FS, n_bands=4)
        clf.register_signature("flat", np.full(4, 0.25))
        assert "flat" in clf.labels

    def test_short_lookahead_buffer_classification(self, trained):
        # The switcher classifies short windows: the ~7 ms of physical
        # lookahead plus a short recent-past slice (≈120 samples total).
        # Majority accuracy on those windows is what matters; single
        # windows can land on syllable gaps.
        speech = _speech(seconds=2.0, seed=3)
        wins = [speech[i: i + 120] for i in range(2000, 12000, 500)]
        labels = [trained.classify(w) for w in wins]
        speech_votes = sum(1 for lbl in labels if lbl == "speech")
        wrong_votes = sum(1 for lbl in labels if lbl == "background")
        assert speech_votes > wrong_votes


class TestFilterCache:
    def test_store_load_roundtrip(self):
        cache = FilterCache()
        cache.store("a", np.array([1.0, 2.0]))
        np.testing.assert_array_equal(cache.load("a"), [1.0, 2.0])

    def test_load_returns_copy(self):
        cache = FilterCache()
        cache.store("a", np.array([1.0]))
        out = cache.load("a")
        out[0] = 99.0
        assert cache.load("a")[0] == 1.0

    def test_store_copies_input(self):
        cache = FilterCache()
        taps = np.array([1.0])
        cache.store("a", taps)
        taps[0] = 99.0
        assert cache.load("a")[0] == 1.0

    def test_missing_label(self):
        assert FilterCache().load("nope") is None

    def test_contains_and_len(self):
        cache = FilterCache()
        cache.store("a", np.zeros(2))
        assert "a" in cache
        assert len(cache) == 1
        assert cache.labels() == ["a"]


class TestPredictiveProfileSwitcher:
    def _make(self, min_dwell_blocks=1):
        # max_distance matches the Figure 17 experiment: speech takes
        # vary (random vowels), so the acceptance radius is generous.
        clf = ProfileClassifier(sample_rate=FS, n_bands=12,
                                max_distance=1.2)
        clf.register("speech", _speech(seed=1))
        clf.register("background", _background(seed=1))
        lanc = LancFilter(n_future=4, n_past=16,
                          secondary_path=np.array([1.0]))
        return PredictiveProfileSwitcher(clf, lanc,
                                         min_dwell_blocks=min_dwell_blocks), \
            lanc

    def test_first_observation_sets_label(self):
        switcher, __ = self._make()
        label = switcher.observe(_speech(seed=5), 0)
        assert label == "speech"
        assert len(switcher.events) == 1
        assert switcher.events[0].cache_hit is False

    def test_switch_saves_and_restores(self):
        switcher, lanc = self._make()
        switcher.observe(_speech(seed=5), 0)
        lanc.taps[:] = 1.0                      # "converged" speech taps
        switcher.observe(_background(seed=5), 100)
        assert switcher.current_label == "background"
        # Speech taps were cached at the switch.
        np.testing.assert_array_equal(switcher.cache.load("speech"),
                                      np.ones(20))
        lanc.taps[:] = -1.0                     # background taps
        switcher.observe(_speech(seed=8), 200)
        # Cache hit: the speech taps come back.
        np.testing.assert_array_equal(lanc.taps, np.ones(20))
        assert switcher.events[-1].cache_hit is True

    def test_same_label_no_event(self):
        switcher, __ = self._make()
        switcher.observe(_speech(seed=5), 0)
        switcher.observe(_speech(seed=6), 100)
        assert len(switcher.events) == 1

    def test_unknown_keeps_current(self):
        switcher, __ = self._make()
        switcher.observe(_speech(seed=5), 0)
        # A pure near-Nyquist tone matches no registered profile.
        t = np.arange(4000) / FS
        alien = 0.2 * np.sin(2 * np.pi * 3900.0 * t)
        label = switcher.observe(alien, 100)
        assert label == "speech"
        assert len(switcher.events) == 1

    def test_dwell_debounces(self):
        switcher, __ = self._make(min_dwell_blocks=3)
        switcher.observe(_speech(seed=5), 0)
        # A single contrary observation is ignored while dwell is young.
        switcher.observe(_background(seed=5), 100)
        assert switcher.current_label == "speech"

    def test_requires_classifier_type(self):
        lanc = LancFilter(n_future=1, n_past=2,
                          secondary_path=np.array([1.0]))
        with pytest.raises(ConfigurationError):
            PredictiveProfileSwitcher("nope", lanc)


class TestLevelFeature:
    def test_level_separates_identical_shapes(self):
        """Same spectral shape at different levels: only the level cue
        can tell them apart."""
        rng = np.random.default_rng(0)
        loud = 0.5 * rng.standard_normal(8000)
        quiet = 0.01 * rng.standard_normal(8000)
        clf = ProfileClassifier(sample_rate=FS, n_bands=8,
                                max_distance=2.0, level_weight=1.0,
                                energy_floor=1e-6)
        clf.register("loud", loud)
        clf.register("quiet", quiet)
        probe_loud = 0.5 * rng.standard_normal(2000)
        probe_quiet = 0.01 * rng.standard_normal(2000)
        assert clf.classify(probe_loud) == "loud"
        assert clf.classify(probe_quiet) == "quiet"

    def test_zero_weight_restores_shape_only(self):
        rng = np.random.default_rng(1)
        loud = 0.5 * rng.standard_normal(8000)
        quiet = 0.01 * rng.standard_normal(8000)
        clf = ProfileClassifier(sample_rate=FS, n_bands=8,
                                max_distance=2.0, level_weight=0.0,
                                energy_floor=1e-6)
        clf.register("loud", loud)
        clf.register("quiet", quiet)
        # With the level cue off, the two white profiles are ambiguous:
        # whatever wins, it must win for BOTH probes (shape is the same).
        a = clf.classify(0.5 * rng.standard_normal(2000))
        b = clf.classify(0.01 * rng.standard_normal(2000))
        assert a == b

    def test_signature_only_profiles_ignore_level(self):
        clf = ProfileClassifier(sample_rate=FS, n_bands=4,
                                max_distance=2.0, level_weight=1.0)
        clf.register_signature("flat", np.full(4, 0.25))   # no level_db
        rng = np.random.default_rng(2)
        assert clf.classify(0.3 * rng.standard_normal(2000)) == "flat"

    def test_rejects_negative_weight(self):
        with pytest.raises(ConfigurationError):
            ProfileClassifier(sample_rate=FS, level_weight=-0.1)
