"""MuteSystem end-to-end."""

import dataclasses

import numpy as np
import pytest

from repro.core import MuteConfig, MuteSystem
from repro.errors import ConfigurationError, LookaheadError
from repro.hardware import bose_qc35_earcup
from repro.signals import WhiteNoise


NOISE = WhiteNoise(level_rms=0.1, seed=7)


class TestConstruction:
    def test_requires_scenario(self):
        with pytest.raises(ConfigurationError):
            MuteSystem("nope")

    def test_relay_index_bounds(self, fast_scenario):
        with pytest.raises(ConfigurationError):
            MuteSystem(fast_scenario, relay_index=3)

    def test_summary_mentions_lookahead(self, fast_system):
        assert "lookahead" in fast_system.summary()

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            MuteConfig(n_future=-1)
        with pytest.raises(ConfigurationError):
            MuteConfig(injected_delay_s=-1.0)


class TestPrepare:
    def test_shapes_and_budget(self, fast_system):
        noise = NOISE.generate(1.0)
        prepared = fast_system.prepare(noise)
        assert prepared.reference.size == noise.size
        assert prepared.disturbance_open.size == noise.size
        assert prepared.n_future > 0
        assert prepared.budget.meets_deadline

    def test_reference_alignment(self, fast_system):
        """The aligned reference must *lead* the disturbance by ~0 lag."""
        noise = NOISE.generate(1.0)
        prepared = fast_system.prepare(noise)
        corr = np.correlate(prepared.disturbance_open[200:-200],
                            prepared.reference[200:-200], mode="full")
        lag = np.argmax(np.abs(corr)) - (corr.size // 2)
        # Alignment is to the direct path.  Reverberation legitimately
        # puts correlation mass at positive lags (reference leading —
        # harmless, absorbed by causal taps); what would break LANC is
        # significant mass at negative lags beyond the lookahead.
        assert -1 <= lag <= 60

    def test_negative_lookahead_raises(self, fast_scenario):
        # Client closer to the source than the relay: negative lead.
        swapped = dataclasses.replace(
            fast_scenario,
            client=fast_scenario.relays[0],
            relays=(fast_scenario.client,),
        )
        system = MuteSystem(swapped, MuteConfig(probe_secondary=False))
        with pytest.raises(LookaheadError, match="reposition"):
            system.prepare(NOISE.generate(0.5))

    def test_n_future_clipped_by_budget(self, fast_scenario):
        config = MuteConfig(n_future=10_000, probe_secondary=False)
        system = MuteSystem(fast_scenario, config)
        prepared = system.prepare(NOISE.generate(0.5))
        assert prepared.n_future < 10_000
        assert prepared.n_future == prepared.budget.usable_future_taps(
            fast_scenario.sample_rate)


class TestRun:
    def test_cancellation_achieved(self, fast_system):
        result = fast_system.run(NOISE.generate(4.0))
        assert result.mean_cancellation_db() < -6.0

    def test_residual_quieter_than_disturbance(self, fast_system):
        result = fast_system.run(NOISE.generate(3.0))
        tail = slice(result.residual.size // 2, None)
        assert (np.sqrt(np.mean(result.residual[tail] ** 2))
                < 0.5 * np.sqrt(np.mean(result.disturbance_open[tail] ** 2)))

    def test_earcup_improves_total(self, fast_scenario):
        noise = NOISE.generate(3.0)
        open_sys = MuteSystem(fast_scenario,
                              MuteConfig(probe_secondary=False))
        cup_sys = MuteSystem(fast_scenario, MuteConfig(
            probe_secondary=False,
            earcup=bose_qc35_earcup(fast_scenario.sample_rate)))
        open_run = open_sys.run(noise)
        cup_run = cup_sys.run(noise)
        assert (cup_run.mean_cancellation_db()
                < open_run.mean_cancellation_db() - 3.0)

    def test_injected_delay_reduces_future_taps(self, fast_scenario):
        base = MuteSystem(fast_scenario, MuteConfig(probe_secondary=False))
        injected = MuteSystem(fast_scenario, MuteConfig(
            probe_secondary=False, injected_delay_s=3e-3))
        noise = NOISE.generate(0.5)
        assert (injected.prepare(noise).n_future
                < base.prepare(noise).n_future)

    def test_band_mean_requires_bins(self, fast_system):
        result = fast_system.run(NOISE.generate(1.0))
        with pytest.raises(ConfigurationError):
            result.mean_cancellation_db(f_low=3999.9, f_high=3999.95)

    def test_deterministic(self, fast_scenario):
        noise = NOISE.generate(1.0)
        a = MuteSystem(fast_scenario,
                       MuteConfig(probe_secondary=False)).run(noise)
        b = MuteSystem(fast_scenario,
                       MuteConfig(probe_secondary=False)).run(noise)
        np.testing.assert_array_equal(a.residual, b.residual)


class TestForwardedSignals:
    def test_per_relay_outputs(self, two_relay_scenario):
        system = MuteSystem(two_relay_scenario,
                            MuteConfig(probe_secondary=False))
        noise = NOISE.generate(1.0)
        forwarded, ear = system.forwarded_and_ear_signals(noise)
        assert set(forwarded) == {0, 1}
        assert ear.size == noise.size
