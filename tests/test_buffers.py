"""RingBuffer, DelayLine, LookaheadBuffer."""

import numpy as np
import pytest

from repro.errors import LookaheadError
from repro.utils.buffers import DelayLine, LookaheadBuffer, RingBuffer


class TestRingBuffer:
    def test_starts_zero_filled(self):
        rb = RingBuffer(4)
        np.testing.assert_array_equal(rb.recent(4), np.zeros(4))

    def test_push_and_recent_order(self):
        rb = RingBuffer(4)
        for x in (1.0, 2.0, 3.0):
            rb.push(x)
        np.testing.assert_array_equal(rb.recent(3), [1.0, 2.0, 3.0])

    def test_eviction(self):
        rb = RingBuffer(3)
        for x in range(6):
            rb.push(float(x))
        np.testing.assert_array_equal(rb.recent(3), [3.0, 4.0, 5.0])

    def test_extend_matches_pushes(self):
        a, b = RingBuffer(5), RingBuffer(5)
        data = np.arange(13, dtype=float)
        for x in data:
            a.push(x)
        b.extend(data)
        np.testing.assert_array_equal(a.recent(5), b.recent(5))

    def test_extend_longer_than_capacity(self):
        rb = RingBuffer(3)
        rb.extend(np.arange(10, dtype=float))
        np.testing.assert_array_equal(rb.recent(3), [7.0, 8.0, 9.0])

    def test_recent_too_many_raises(self):
        rb = RingBuffer(2)
        with pytest.raises(LookaheadError):
            rb.recent(3)

    def test_newest(self):
        rb = RingBuffer(3)
        rb.push(7.5)
        assert rb.newest() == 7.5

    def test_len_caps_at_capacity(self):
        rb = RingBuffer(2)
        rb.extend([1.0, 2.0, 3.0])
        assert len(rb) == 2


class TestDelayLine:
    def test_zero_delay_passthrough(self):
        dl = DelayLine(0)
        assert dl.push(3.0) == 3.0

    def test_integer_delay(self):
        dl = DelayLine(3)
        out = [dl.push(float(x)) for x in range(6)]
        assert out == [0.0, 0.0, 0.0, 0.0, 1.0, 2.0]

    def test_process_block_equals_pushes(self):
        a, b = DelayLine(5), DelayLine(5)
        data = np.arange(20, dtype=float)
        pushed = np.array([a.push(x) for x in data])
        block = b.process(data)
        np.testing.assert_array_equal(pushed, block)

    def test_state_persists_across_blocks(self):
        dl = DelayLine(2)
        first = dl.process(np.array([1.0, 2.0]))
        second = dl.process(np.array([3.0, 4.0]))
        np.testing.assert_array_equal(first, [0.0, 0.0])
        np.testing.assert_array_equal(second, [1.0, 2.0])

    def test_reset(self):
        dl = DelayLine(2)
        dl.process(np.array([5.0, 6.0]))
        dl.reset()
        np.testing.assert_array_equal(dl.process(np.array([0.0, 0.0])),
                                      [0.0, 0.0])

    def test_negative_delay_rejected(self):
        with pytest.raises(Exception):
            DelayLine(-1)


class TestLookaheadBuffer:
    def _primed(self, lookahead=4, history=8, n=20):
        lb = LookaheadBuffer(lookahead=lookahead, history=history)
        lb.feed_block(np.arange(n, dtype=float))
        return lb

    def test_advance_requires_lookahead_margin(self):
        lb = LookaheadBuffer(lookahead=4, history=4)
        lb.feed_block(np.arange(4, dtype=float))
        with pytest.raises(LookaheadError):
            lb.advance()   # needs sample index 4 (time 0 + lookahead 4)

    def test_read_present_past_future(self):
        lb = self._primed()
        for __ in range(10):
            lb.advance()
        assert lb.time == 9
        assert lb.read(0) == 9.0          # now
        assert lb.read(3) == 6.0          # past
        assert lb.read(-4) == 13.0        # future
        assert lb.read(-1) == 10.0

    def test_read_before_time_zero_is_zero(self):
        lb = self._primed()
        lb.advance()
        assert lb.read(5) == 0.0   # acoustic time -4: pre power-up

    def test_read_out_of_tap_range(self):
        lb = self._primed()
        lb.advance()
        with pytest.raises(LookaheadError):
            lb.read(-5)
        with pytest.raises(LookaheadError):
            lb.read(8)

    def test_window_content(self):
        lb = self._primed()
        for __ in range(10):
            lb.advance()
        window = lb.window(n_future=4, n_past=8)
        np.testing.assert_array_equal(window, np.arange(2.0, 14.0))

    def test_window_too_much_future(self):
        lb = self._primed()
        lb.advance()
        with pytest.raises(LookaheadError):
            lb.window(n_future=5, n_past=2)

    def test_available_future(self):
        lb = self._primed(n=20)
        for __ in range(10):
            lb.advance()
        assert lb.available_future == 10

    def test_compact_keeps_history(self):
        lb = self._primed(n=20)
        for __ in range(12):
            lb.advance()
        lb.compact()
        assert lb.read(7) == 4.0   # oldest retained history sample

    def test_feed_single_samples(self):
        lb = LookaheadBuffer(lookahead=1, history=2)
        for x in (1.0, 2.0, 3.0):
            lb.feed(x)
        lb.advance()
        assert lb.read(0) == 1.0
        assert lb.read(-1) == 2.0

    def test_growth_beyond_initial_capacity(self):
        lb = LookaheadBuffer(lookahead=2, history=4)
        lb.feed_block(np.arange(5000, dtype=float))
        for __ in range(4000):
            lb.advance()
        assert lb.read(0) == 3999.0
