"""AcousticChannel application modes and composition."""

import numpy as np
import pytest

from repro.acoustics import AcousticChannel, cascade, channel_delay_samples
from repro.errors import ChannelError, SignalError


@pytest.fixture()
def random_channel(rng):
    ir = np.zeros(32)
    ir[4] = 1.0
    ir[5:20] = 0.2 * rng.standard_normal(15)
    return AcousticChannel(ir, name="test")


class TestChannelDelay:
    def test_delta(self):
        assert channel_delay_samples(np.array([0.0, 0.0, 1.0])) == 2

    def test_ignores_weak_precursor(self):
        ir = np.array([0.05, 0.0, 1.0, 0.3])
        assert channel_delay_samples(ir) == 2

    def test_all_zero_rejected(self):
        with pytest.raises(SignalError):
            channel_delay_samples(np.zeros(4))


class TestApplication:
    def test_apply_matches_convolution(self, random_channel, rng):
        x = rng.standard_normal(200)
        expected = np.convolve(x, random_channel.ir)[:200]
        np.testing.assert_allclose(random_channel.apply(x), expected,
                                   atol=1e-12)

    def test_apply_full_length(self, random_channel, rng):
        x = rng.standard_normal(50)
        out = random_channel.apply_full(x)
        assert out.size == 50 + len(random_channel) - 1

    def test_step_matches_apply(self, random_channel, rng):
        x = rng.standard_normal(64)
        batch = random_channel.apply(x)
        random_channel.reset()
        stepped = np.array([random_channel.step(s) for s in x])
        np.testing.assert_allclose(batch, stepped, atol=1e-12)

    def test_blocks_match_apply(self, random_channel, rng):
        x = rng.standard_normal(100)
        batch = random_channel.apply(x)
        random_channel.reset()
        blocks = np.concatenate([
            random_channel.process_block(x[:30]),
            random_channel.process_block(x[30:80]),
            random_channel.process_block(x[80:]),
        ])
        np.testing.assert_allclose(batch, blocks, atol=1e-12)

    def test_reset_clears_state(self, random_channel):
        random_channel.process_block(np.ones(10))
        random_channel.reset()
        out = random_channel.process_block(np.zeros(10))
        np.testing.assert_array_equal(out, np.zeros(10))

    def test_single_tap_channel(self):
        ch = AcousticChannel(np.array([0.5]))
        assert ch.step(2.0) == 1.0

    def test_frequency_response_shape(self, random_channel):
        freqs, h = random_channel.frequency_response(8000.0, n_points=128)
        assert freqs.size == 128
        assert np.iscomplexobj(h)


class TestCascade:
    def test_two_delays_compose(self):
        a = AcousticChannel(np.array([0.0, 1.0]), name="d1")
        b = AcousticChannel(np.array([0.0, 0.0, 1.0]), name="d2")
        c = cascade(a, b)
        assert channel_delay_samples(c.ir) == 3

    def test_cascade_name(self):
        a = AcousticChannel(np.array([1.0]), name="a")
        b = AcousticChannel(np.array([1.0]), name="b")
        assert cascade(a, b).name == "a*b"

    def test_empty_rejected(self):
        with pytest.raises(ChannelError):
            cascade()

    def test_cascade_equals_sequential_apply(self, rng):
        a = AcousticChannel(rng.standard_normal(8))
        b = AcousticChannel(rng.standard_normal(8))
        x = rng.standard_normal(100)
        seq = b.apply(a.apply(x))
        combined = cascade(a, b).apply(x)
        np.testing.assert_allclose(seq, combined, atol=1e-10)
