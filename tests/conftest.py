"""Shared fixtures for the test suite.

Heavy objects (room channels, MuteSystem instances) are session-scoped:
they are deterministic, and rebuilding image-source models per test
would dominate the suite's runtime.

The documentation lint (``tests/test_docs_lint.py``, marker
``docs_lint``) is **opt-in** — it checks the working tree's markdown,
not the library, so it only runs with ``--docs-lint`` or
``REPRO_DOCS_LINT=1`` (mirroring ``benchmarks/conftest.py``'s
``runtime_bench`` pattern).
"""

from __future__ import annotations

import dataclasses
import os

import numpy as np
import pytest
from hypothesis import settings as hypothesis_settings

from repro.acoustics import Point, Room
from repro.acoustics.rir import RirSettings
from repro.core import MuteConfig, MuteSystem, Scenario

# CI pins hypothesis to the derandomized profile (HYPOTHESIS_PROFILE=ci)
# so property-test failures reproduce exactly across runs and machines.
hypothesis_settings.register_profile("ci", derandomize=True,
                                     deadline=None, print_blob=True)
if os.environ.get("HYPOTHESIS_PROFILE"):
    hypothesis_settings.load_profile(os.environ["HYPOTHESIS_PROFILE"])


def pytest_addoption(parser):
    parser.addoption(
        "--docs-lint", action="store_true", default=False,
        help="run the documentation lint (repro.tools.check_docs)",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "docs_lint: documentation lint (opt in with --docs-lint or "
        "REPRO_DOCS_LINT=1)",
    )


def _docs_lint_enabled(config):
    if config.getoption("--docs-lint"):
        return True
    return os.environ.get("REPRO_DOCS_LINT", "").strip().lower() in (
        "1", "true", "yes", "on")


def pytest_collection_modifyitems(config, items):
    if _docs_lint_enabled(config):
        return
    skip = pytest.mark.skip(
        reason="docs lint; opt in with --docs-lint or REPRO_DOCS_LINT=1")
    for item in items:
        if "docs_lint" in item.keywords:
            item.add_marker(skip)


@pytest.fixture()
def rng():
    """Fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def fast_scenario():
    """A small scene with first-order reflections only — fast RIRs."""
    room = Room(5.0, 4.0, 3.0, absorption=0.4)
    return Scenario(
        room=room,
        source=Point(0.8, 0.8, 1.2),
        client=Point(4.0, 3.0, 1.2),
        relays=(Point(1.2, 0.5, 1.2),),
        sample_rate=8000.0,
        rir_settings=RirSettings(max_order=1),
    )


@pytest.fixture(scope="session")
def fast_channels(fast_scenario):
    return fast_scenario.build_channels()


@pytest.fixture(scope="session")
def fast_system(fast_scenario):
    """A MuteSystem with cheap settings (exact secondary path, few taps)."""
    config = MuteConfig(
        n_future=32,
        n_past=192,
        mu=0.2,
        probe_secondary=False,
    )
    return MuteSystem(fast_scenario, config)


@pytest.fixture(scope="session")
def two_relay_scenario(fast_scenario):
    """The fast scene plus a second relay beyond the client."""
    far = Point(4.6, 3.4, 1.2)
    return dataclasses.replace(fast_scenario,
                               relays=fast_scenario.relays + (far,))
