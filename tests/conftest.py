"""Shared fixtures for the test suite.

Heavy objects (room channels, MuteSystem instances) are session-scoped:
they are deterministic, and rebuilding image-source models per test
would dominate the suite's runtime.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.acoustics import Point, Room
from repro.acoustics.rir import RirSettings
from repro.core import MuteConfig, MuteSystem, Scenario


@pytest.fixture()
def rng():
    """Fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def fast_scenario():
    """A small scene with first-order reflections only — fast RIRs."""
    room = Room(5.0, 4.0, 3.0, absorption=0.4)
    return Scenario(
        room=room,
        source=Point(0.8, 0.8, 1.2),
        client=Point(4.0, 3.0, 1.2),
        relays=(Point(1.2, 0.5, 1.2),),
        sample_rate=8000.0,
        rir_settings=RirSettings(max_order=1),
    )


@pytest.fixture(scope="session")
def fast_channels(fast_scenario):
    return fast_scenario.build_channels()


@pytest.fixture(scope="session")
def fast_system(fast_scenario):
    """A MuteSystem with cheap settings (exact secondary path, few taps)."""
    config = MuteConfig(
        n_future=32,
        n_past=192,
        mu=0.2,
        probe_secondary=False,
    )
    return MuteSystem(fast_scenario, config)


@pytest.fixture(scope="session")
def two_relay_scenario(fast_scenario):
    """The fast scene plus a second relay beyond the client."""
    far = Point(4.6, 3.4, 1.2)
    return dataclasses.replace(fast_scenario,
                               relays=fast_scenario.relays + (far,))
