"""Adaptive-filter shared machinery."""

import numpy as np
import pytest

from repro.core.adaptive.base import (
    AdaptationResult,
    TapVector,
    effective_step,
    guard_divergence,
    mse_curve,
    padded_reference,
    tap_window,
)
from repro.errors import ConvergenceError


class TestTapVector:
    def test_zero_initialized(self):
        tv = TapVector(n_future=2, n_past=3)
        assert len(tv) == 5
        assert tv.tap(-2) == 0.0

    def test_paper_indexing(self):
        tv = TapVector(n_future=2, n_past=3,
                       values=np.array([1.0, 2.0, 3.0, 4.0, 5.0]))
        assert tv.tap(-2) == 1.0    # most futuristic
        assert tv.tap(0) == 3.0     # current sample
        assert tv.tap(2) == 5.0     # oldest

    def test_set_tap(self):
        tv = TapVector(n_future=1, n_past=1)
        tv.set_tap(-1, 7.0)
        assert tv.values[0] == 7.0

    def test_copy_independent(self):
        tv = TapVector(n_future=1, n_past=1)
        cp = tv.copy()
        cp.set_tap(0, 9.0)
        assert tv.tap(0) == 0.0

    def test_wrong_length_rejected(self):
        with pytest.raises(ConvergenceError):
            TapVector(n_future=1, n_past=1, values=np.zeros(3))


class TestWindows:
    def test_padded_reference_alignment(self):
        x = np.arange(1.0, 6.0)
        padded, offset = padded_reference(x, n_future=2, n_past=3)
        assert padded[offset] == 1.0
        assert padded.size == 5 + 2 + 2

    def test_tap_window_orientation(self):
        # y(t) = sum_i taps[i] * x(t + n_future - i): window[0] is the
        # most futuristic sample.
        x = np.arange(10.0)
        padded, offset = padded_reference(x, n_future=2, n_past=3)
        win = tap_window(padded, offset, t=5, n_future=2, n_past=3)
        np.testing.assert_array_equal(win, [7.0, 6.0, 5.0, 4.0, 3.0])

    def test_tap_window_zero_padding_at_edges(self):
        x = np.arange(10.0)
        padded, offset = padded_reference(x, n_future=2, n_past=3)
        win = tap_window(padded, offset, t=0, n_future=2, n_past=3)
        np.testing.assert_array_equal(win, [2.0, 1.0, 0.0, 0.0, 0.0])
        win_end = tap_window(padded, offset, t=9, n_future=2, n_past=3)
        np.testing.assert_array_equal(win_end, [0.0, 0.0, 9.0, 8.0, 7.0])


class TestMseCurve:
    def test_constant_error(self):
        curve = mse_curve(np.full(100, 2.0), window=10)
        np.testing.assert_allclose(curve[20:80], 4.0)

    def test_length_preserved(self):
        assert mse_curve(np.ones(37)).size == 37


class TestGuards:
    def test_divergence_raises(self):
        with pytest.raises(ConvergenceError, match="step size"):
            guard_divergence(1e7, "test")

    def test_nan_raises(self):
        with pytest.raises(ConvergenceError):
            guard_divergence(float("nan"), "test")

    def test_normal_value_passes(self):
        guard_divergence(0.5, "test")


class TestEffectiveStep:
    def test_unnormalized(self):
        assert effective_step(0.1, np.ones(4), normalized=False) == 0.1

    def test_normalized_by_power(self):
        step = effective_step(1.0, np.array([2.0, 0.0]), normalized=True)
        assert step == pytest.approx(0.25, rel=1e-6)

    def test_epsilon_prevents_blowup(self):
        step = effective_step(1.0, np.zeros(4), normalized=True)
        assert np.isfinite(step)


class TestAdaptationResult:
    def test_converged_error_uses_tail(self):
        error = np.concatenate([np.full(75, 10.0), np.zeros(25)])
        result = AdaptationResult(error=error, output=error,
                                  taps=np.zeros(2),
                                  mse_trajectory=mse_curve(error))
        assert result.converged_error(fraction=0.25) == 0.0
