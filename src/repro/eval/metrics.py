"""Measurement helpers shared by the experiment runners.

Everything the paper's figures put on their axes lives here: banded
cancellation curves, band averages, convergence envelopes, and the
"additional cancellation" delta of Figure 17.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..errors import SignalError
from ..utils.spectral import cancellation_spectrum_db, smooth_spectrum_db
from ..utils.validation import check_positive, check_waveform

__all__ = [
    "CancellationCurve",
    "measure_cancellation",
    "band_means",
    "additional_cancellation_db",
    "convergence_envelope",
]


@dataclasses.dataclass(frozen=True)
class CancellationCurve:
    """A cancellation-vs-frequency series (one line on a paper figure)."""

    label: str
    freqs: np.ndarray
    values_db: np.ndarray

    def __post_init__(self):
        if self.freqs.shape != self.values_db.shape:
            raise SignalError("freqs and values must match in shape")

    def mean_db(self, f_low=0.0, f_high=None):
        """Band-average cancellation."""
        f_high = f_high if f_high is not None else float(self.freqs[-1])
        mask = (self.freqs >= f_low) & (self.freqs <= f_high)
        mask &= ~np.isnan(self.values_db)
        if not np.any(mask):
            raise SignalError(f"no signal-carrying bins in [{f_low}, {f_high}] Hz")
        return float(np.mean(self.values_db[mask]))

    def at(self, freq_hz):
        """Cancellation at the bin nearest ``freq_hz``."""
        idx = int(np.argmin(np.abs(self.freqs - freq_hz)))
        return float(self.values_db[idx])

    def smoothed(self, window=5):
        """A copy with the dB values smoothed for plotting."""
        return CancellationCurve(
            label=self.label,
            freqs=self.freqs.copy(),
            values_db=smooth_spectrum_db(self.values_db, window=window),
        )


def measure_cancellation(before, after, sample_rate, label="",
                         settle_fraction=0.3, nperseg=512, smooth=5,
                         min_signal_db=-45.0):
    """Build a :class:`CancellationCurve` from off/on recordings.

    ``min_signal_db`` masks PSD bins carrying no noise (see
    :func:`repro.utils.spectral.cancellation_spectrum_db`): sparse
    sources like music only show cancellation where they have energy.
    """
    before = check_waveform("before", before, min_length=64)
    after = check_waveform("after", after, min_length=64)
    sample_rate = check_positive("sample_rate", sample_rate)
    start_b = int(before.size * settle_fraction)
    start_a = int(after.size * settle_fraction)
    freqs, spec = cancellation_spectrum_db(
        before[start_b:], after[start_a:], sample_rate, nperseg=nperseg,
        min_signal_db=min_signal_db,
    )
    if smooth and smooth > 1:
        spec = smooth_spectrum_db(spec, window=smooth)
    return CancellationCurve(label=label, freqs=freqs, values_db=spec)


def band_means(curve, edges):
    """Mean cancellation per band; ``edges`` like ``[0, 500, 1000, ...]``."""
    edges = np.asarray(edges, dtype=float)
    out = []
    for lo, hi in zip(edges[:-1], edges[1:]):
        out.append(((float(lo), float(hi)), curve.mean_db(lo, hi)))
    return out


def additional_cancellation_db(curve_with, curve_without):
    """Figure 17's y-axis: gain of scheme A over scheme B, per frequency.

    Negative values mean ``curve_with`` cancels *more*.
    """
    if curve_with.freqs.shape != curve_without.freqs.shape:
        raise SignalError("curves must share a frequency grid")
    return CancellationCurve(
        label=f"{curve_with.label} minus {curve_without.label}",
        freqs=curve_with.freqs.copy(),
        values_db=curve_with.values_db - curve_without.values_db,
    )


def convergence_envelope(error, sample_rate, window_s=0.05):
    """(times_s, rms) sliding-RMS envelope — Figure 8's plots."""
    error = check_waveform("error", error, min_length=8)
    sample_rate = check_positive("sample_rate", sample_rate)
    window = max(int(window_s * sample_rate), 1)
    squared = np.square(error)
    kernel = np.full(window, 1.0 / window)
    envelope = np.sqrt(np.convolve(squared, kernel, mode="same"))
    times = np.arange(error.size) / sample_rate
    return times, envelope
