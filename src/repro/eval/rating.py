"""Psychoacoustic rating model — the Figure 15 substitute for volunteers.

The paper asked 5 volunteers to rate cancellation quality 1–5.  Without
humans, we model the rating as a function of *A-weighted residual
loudness* (what the listener actually perceives), with per-subject
sensitivity and offset drawn from a seeded generator:

    score = clip(base − slope_subject * (loudness − anchor) + bias_subject)

The model's purpose is the figure's *qualitative* claim — every subject
rates the quieter residual higher — while producing plausible 1–5 star
spreads.  It is deliberately simple and fully documented as a
substitution in DESIGN.md.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..errors import ConfigurationError
from ..utils.spectral import a_weighting_db, welch_psd
from ..utils.validation import check_positive, check_positive_int, check_waveform

__all__ = ["a_weighted_level_db", "RatingModel", "SubjectRating"]


def a_weighted_level_db(signal, sample_rate):
    """A-weighted level of a residual recording, in dB (arbitrary ref).

    Integrates the Welch PSD under the IEC A-weighting curve.
    """
    signal = check_waveform("signal", signal, min_length=64)
    sample_rate = check_positive("sample_rate", sample_rate)
    freqs, psd = welch_psd(signal, sample_rate)
    weights = 10.0 ** (a_weighting_db(freqs) / 10.0)
    power = float(np.sum(psd * weights))
    return 10.0 * np.log10(max(power, 1e-20))


@dataclasses.dataclass(frozen=True)
class SubjectRating:
    """One subject's score for one condition."""

    subject_id: int
    condition: str
    score: float          # 1.0 … 5.0 (half-star granularity)
    loudness_db: float    # the A-weighted level that produced it


class RatingModel:
    """Map residual recordings to 1–5 star ratings for N subjects.

    Parameters
    ----------
    n_subjects:
        Number of simulated volunteers (the paper used 5).
    anchor_db:
        A-weighted level that earns the midpoint score of 3.0.
    slope_db_per_star:
        How many dB of loudness change move the score by one star
        (mean across subjects; each subject varies ±20%).
    seed:
        Controls per-subject offsets and sensitivity jitter.
    """

    def __init__(self, n_subjects=5, anchor_db=-18.0, slope_db_per_star=6.0,
                 seed=0):
        self.n_subjects = check_positive_int("n_subjects", n_subjects)
        self.anchor_db = float(anchor_db)
        self.slope = check_positive("slope_db_per_star", slope_db_per_star)
        rng = np.random.default_rng(seed)
        self._sensitivity = 1.0 + 0.2 * rng.standard_normal(self.n_subjects)
        self._bias = 0.3 * rng.standard_normal(self.n_subjects)

    def rate(self, residual, sample_rate, condition=""):
        """Score a residual recording for every subject.

        Returns a list of :class:`SubjectRating`, one per subject, with
        scores rounded to half stars and clipped to [1, 5].
        """
        loudness = a_weighted_level_db(residual, sample_rate)
        ratings = []
        for subject in range(self.n_subjects):
            raw = (3.0
                   - self._sensitivity[subject]
                   * (loudness - self.anchor_db) / self.slope
                   + self._bias[subject])
            score = float(np.clip(np.round(raw * 2.0) / 2.0, 1.0, 5.0))
            ratings.append(SubjectRating(
                subject_id=subject + 1,
                condition=condition,
                score=score,
                loudness_db=loudness,
            ))
        return ratings

    def compare(self, residuals_by_condition, sample_rate):
        """Rate several conditions; returns ``{condition: [ratings]}``."""
        if not residuals_by_condition:
            raise ConfigurationError("no conditions supplied")
        return {
            condition: self.rate(residual, sample_rate, condition)
            for condition, residual in residuals_by_condition.items()
        }
