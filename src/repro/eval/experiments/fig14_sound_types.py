"""Figure 14 — MUTE_Hollow vs Bose_Overall across four real-world sounds.

Male voice, female voice, construction sound, and music, each played at
the ambient level; MUTE_Hollow (open ear, LANC) should track within a
couple of dB of Bose_Overall (active + sealed earcup) on every workload.
"""

from __future__ import annotations

import dataclasses

from ...core.baselines import BoseHeadphone
from ..metrics import measure_cancellation
from ..reporting import format_curves
from .common import (
    DEFAULT_DURATION_S,
    bench_scenario,
    build_system,
    standard_sources,
)
from .registry import experiment_result

__all__ = ["Fig14Result", "run_fig14"]


@dataclasses.dataclass
class Fig14Result:
    """Per-sound-type curve pairs."""

    panels: dict    # sound name -> {"MUTE_Hollow": curve, "Bose_Overall": curve}

    def mean_gap_db(self, sound):
        """MUTE_Hollow minus Bose_Overall mean for one workload."""
        pair = self.panels[sound]
        return pair["MUTE_Hollow"].mean_db() - pair["Bose_Overall"].mean_db()

    def report(self):
        blocks = []
        for sound, pair in self.panels.items():
            table = format_curves(
                [pair["MUTE_Hollow"], pair["Bose_Overall"]],
                title=f"Figure 14 — {sound}",
            )
            blocks.append(
                table + f"\ngap (MUTE - Bose): {self.mean_gap_db(sound):+.1f} dB"
            )
        return "\n\n".join(blocks)


def run_fig14(duration_s=DEFAULT_DURATION_S, *, seed=11, scenario=None,
              settle_fraction=0.5, sources=None):
    """One MUTE run and one Bose composition per sound type."""
    scenario = scenario or bench_scenario()
    sources = sources or standard_sources(sample_rate=scenario.sample_rate,
                                          seed=seed)
    bose = BoseHeadphone(sample_rate=scenario.sample_rate)
    # Speech and music are non-stationary; a larger NLMS step tracks the
    # changing spectra (the white-noise default favors a deeper floor).
    system = build_system(scenario, mu=0.35)

    panels = {}
    for name, source in sources.items():
        noise = source.generate(duration_s)
        run = system.run(noise)
        d_open = run.disturbance_open
        bose_residual = bose.residual_waveform(d_open)
        kwargs = dict(sample_rate=scenario.sample_rate,
                      settle_fraction=settle_fraction)
        panels[name] = {
            "MUTE_Hollow": measure_cancellation(
                d_open, run.residual, label="MUTE_Hollow", **kwargs),
            "Bose_Overall": measure_cancellation(
                d_open, bose_residual, label="Bose_Overall", **kwargs),
        }
    return experiment_result(
        "fig14",
        dict(duration_s=duration_s, seed=seed, scenario=scenario,
             settle_fraction=settle_fraction,
             sources=sorted(sources)),
        Fig14Result(panels=panels),
    )
