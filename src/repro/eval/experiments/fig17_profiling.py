"""Figure 17 — additional cancellation from predictive profile switching.

The paper's setup: wide-band background noise plays *continuously from
one ambient speaker* while a voice talks intermittently *from another*.
When speech is active the dominant source — and therefore the acoustic
channels the adaptive filter must invert — changes; a single LANC filter
re-converges at every onset/offset (Figure 8b), while the predictive
switcher classifies the lookahead buffer, anticipates the transition,
and loads cached converged taps for the incoming profile (Figure 8c).

The paper reports ≈3 dB average additional cancellation; the sign
convention here is negative = switching cancels more.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ...acoustics.geometry import Point
from ...core.adaptive.lanc import LancFilter, StreamingLanc
from ...core.profiles import PredictiveProfileSwitcher, ProfileClassifier
from ...core.secondary_path import estimate_secondary_path
from ...errors import LookaheadError
from ...hardware.dsp_board import tms320c6713
from ...signals import BandlimitedNoise, IntermittentSource, MaleVoice
from ..metrics import additional_cancellation_db, measure_cancellation
from ..reporting import format_curves
from .registry import experiment_result
from .common import bench_scenario

__all__ = ["Fig17Result", "run_fig17", "TwoSourceScene", "build_two_source_scene"]


@dataclasses.dataclass
class TwoSourceScene:
    """Prepared signals for the two-speaker profiling experiment."""

    reference: np.ndarray            # aligned reference at the DSP
    disturbance: np.ndarray          # mixture at the error mic
    secondary_true: np.ndarray
    secondary_estimate: np.ndarray
    n_future: int
    speech_mask: np.ndarray          # ground truth voice activity
    sample_rate: float


@dataclasses.dataclass
class Fig17Result:
    """Curves for both conditions plus the Figure 17 delta."""

    curve_single: object
    curve_switching: object
    additional: object           # switching minus single (negative = gain)
    mean_additional_db: float    # paper: ≈ −3 dB
    switch_events: list
    cache_hits: int

    def report(self):
        table = format_curves(
            [self.curve_single, self.curve_switching, self.additional],
            title="Figure 17 — profile switching gain (intermittent voice "
                  "over background)",
        )
        return table + (
            f"\nmean additional cancellation: {self.mean_additional_db:+.1f} dB "
            f"(paper: ~-3 dB); switches: {len(self.switch_events)}, "
            f"cache hits: {self.cache_hits}"
        )


def build_two_source_scene(duration_s=16.0, seed=31, scenario=None,
                           voice_position=None, background_level=0.05,
                           voice_level=0.16, n_past=384):
    """Propagate two sources through the room and align the reference.

    The background speaker sits at the scenario's source position; the
    voice speaker at ``voice_position`` (default: a different corner,
    still farther from the client than the relay).
    """
    scenario = scenario or bench_scenario()
    fs = scenario.sample_rate
    # The voice speaker stands ~1.2 m from the background speaker — far
    # enough that the two profiles need different filters, close enough
    # that the relay still leads the ear for both sources.
    voice_position = voice_position or Point(2.2, 0.6, 1.3)

    scen_bg = scenario
    scen_voice = scenario.with_source(voice_position)
    ch_bg = scen_bg.build_channels()
    ch_voice = scen_voice.build_channels()

    background = BandlimitedNoise(100.0, 3600.0, sample_rate=fs,
                                  level_rms=background_level, seed=seed)
    voice_src = MaleVoice(sample_rate=fs, level_rms=voice_level,
                          seed=seed + 1, speech_fraction=1.0)
    gated = IntermittentSource(voice_src, on_s=1.6, off_s=1.1, seed=seed + 2)
    speech_wave, mask = gated.generate_with_activity(duration_s)
    bg_wave = background.generate(duration_s)

    disturbance = (ch_bg.h_ne.apply(bg_wave)
                   + ch_voice.h_ne.apply(speech_wave))
    captured = (ch_bg.h_nr[0].apply(bg_wave)
                + ch_voice.h_nr[0].apply(speech_wave))

    # One physical reference stream, one alignment shift: use the smaller
    # of the two leads so the future taps stay realizable for both
    # sources; the tap vector absorbs the per-source difference.
    lead = min(ch_bg.acoustic_lead_samples[0],
               ch_voice.acoustic_lead_samples[0])
    pipeline = tms320c6713().total_latency_s
    n_future = int(np.floor(lead - pipeline * fs))
    if n_future <= 0:
        raise LookaheadError(
            "two-source scene offers no usable lookahead; move the relay"
        )
    reference = np.zeros_like(captured)
    reference[lead:] = captured[: captured.size - lead]

    secondary_true = ch_bg.h_se.ir
    estimate = estimate_secondary_path(
        secondary_true, n_taps=min(secondary_true.size, 128),
        probe_duration_s=1.0, sample_rate=fs, ambient_noise_rms=0.002,
        seed=seed,
    )
    return TwoSourceScene(
        reference=reference,
        disturbance=disturbance,
        secondary_true=secondary_true,
        secondary_estimate=estimate.impulse_response,
        n_future=min(n_future, 64),
        speech_mask=mask,
        sample_rate=fs,
    ), n_past


def _train_classifier(classifier, reference, mask, sample_rate):
    """Teach 'speech' and 'background' from labeled reference segments."""
    min_len = int(0.3 * sample_rate)
    speech_idx = np.flatnonzero(mask)
    quiet_idx = np.flatnonzero(~mask)
    if speech_idx.size < min_len or quiet_idx.size < min_len:
        raise ValueError("schedule leaves too little data to train profiles")
    classifier.register("speech", reference[speech_idx[: min_len * 3]])
    classifier.register("background", reference[quiet_idx[: min_len * 3]])


def run_fig17(duration_s=16.0, *, seed=31, scenario=None, block_s=0.02,
              settle_fraction=0.35, mu=0.1):
    """Run single-filter and switching conditions over one scene."""
    scene, n_past = build_two_source_scene(duration_s=duration_s, seed=seed,
                                           scenario=scenario)
    fs = scene.sample_rate
    n_future = scene.n_future

    # --- Condition A: one filter, no profiling -----------------------
    single = LancFilter(n_future=n_future, n_past=n_past,
                        secondary_path=scene.secondary_estimate, mu=mu)
    res_single = single.run(scene.reference, scene.disturbance,
                            secondary_path_true=scene.secondary_true)

    # --- Condition B: predictive profile switching --------------------
    classifier = ProfileClassifier(sample_rate=fs, n_bands=12,
                                   max_distance=1.2, energy_floor=1e-5)
    _train_classifier(classifier, scene.reference, scene.speech_mask, fs)

    switched = LancFilter(n_future=n_future, n_past=n_past,
                          secondary_path=scene.secondary_estimate, mu=mu)
    switcher = PredictiveProfileSwitcher(classifier, switched,
                                         min_dwell_blocks=4)
    stream = StreamingLanc(switched,
                           secondary_path_true=scene.secondary_true)
    stream.feed(np.concatenate([scene.reference, np.zeros(n_future)]))

    block = max(int(block_s * fs), 1)
    T = scene.reference.size
    for start in range(0, T, block):
        # Classify what is about to arrive: the physically available
        # n_future samples of lookahead plus a short recent window.
        future = stream.peek_future(n_future)
        recent_start = max(start - 128, 0)
        window = np.concatenate([scene.reference[recent_start:start], future])
        switcher.observe(window, start)
        stop = min(start + block, T)
        stream.process(scene.disturbance[start:stop])
    res_switching = stream.error_signal()

    kwargs = dict(sample_rate=fs, settle_fraction=settle_fraction)
    curve_single = measure_cancellation(
        scene.disturbance, res_single.error,
        label="single filter", **kwargs)
    curve_switching = measure_cancellation(
        scene.disturbance, res_switching,
        label="with switching", **kwargs)
    additional = additional_cancellation_db(curve_switching, curve_single)

    result = Fig17Result(
        curve_single=curve_single,
        curve_switching=curve_switching,
        additional=additional,
        mean_additional_db=additional.mean_db(),
        switch_events=list(switcher.events),
        cache_hits=sum(1 for e in switcher.events if e.cache_hit),
    )
    return experiment_result(
        "fig17",
        dict(duration_s=duration_s, seed=seed, scenario=scenario,
             block_s=block_s, settle_fraction=settle_fraction, mu=mu),
        result,
    )
