"""Figure 13 — combined frequency response of the anti-noise speaker
and microphone.

The paper measures the response of its cheap transducers to explain the
diminishing cancellation below ~100 Hz in Figure 12.  We reproduce the
curve from the parametric transducer model and verify the same two
properties the paper reads off it: near-zero response at very low
frequency and a broad usable mid band.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ...hardware.transducers import cheap_transducer
from ...signals import ToneSweep
from ..reporting import format_table, sparkline
from .registry import experiment_result

__all__ = ["Fig13Result", "run_fig13"]


@dataclasses.dataclass
class Fig13Result:
    """The response curve plus summary landmarks."""

    freqs: np.ndarray
    response: np.ndarray          # linear magnitude (paper's y-axis)
    measured_response: np.ndarray  # swept-tone measurement through the FIR
    peak_hz: float
    response_at_50hz: float
    response_at_peak: float

    def report(self):
        rows = [
            (f"{f:.0f}", f"{r:.3f}", f"{m:.3f}")
            for f, r, m in zip(self.freqs[::4], self.response[::4],
                               self.measured_response[::4])
        ]
        table = format_table(
            ["freq (Hz)", "model response", "swept-tone measured"],
            rows,
            title="Figure 13 — combined speaker+mic frequency response",
        )
        summary = (
            f"\npeak {self.response_at_peak:.3f} at {self.peak_hz:.0f} Hz; "
            f"response at 50 Hz = {self.response_at_50hz:.4f} "
            "(the paper's low-frequency weakness)\n"
            + sparkline(self.response)
        )
        return table + summary


def run_fig13(duration_s=4.0, *, seed=0, scenario=None, n_points=64):
    """Model curve + an actual swept-tone measurement through the FIR.

    ``duration_s`` is the length of the measurement chirp.  The
    transducer model is deterministic, so ``seed`` is accepted only for
    signature uniformity; ``scenario`` (if given) supplies the sample
    rate, otherwise the paper's 8 kHz is used.
    """
    del seed  # deterministic measurement; accepted for uniformity
    sample_rate = scenario.sample_rate if scenario is not None else 8000.0
    sweep_duration_s = duration_s
    transducer = cheap_transducer(sample_rate=sample_rate)
    freqs, response = transducer.response_table(n_points=n_points)

    # Independent check: drive a slow chirp through the FIR realization
    # and read the output envelope at each instantaneous frequency.
    sweep = ToneSweep(f_start=30.0, f_end=sample_rate / 2.0 * 0.97,
                      sample_rate=sample_rate, level_rms=0.5)
    probe = sweep.generate(sweep_duration_s)
    out = transducer.apply(probe)
    # Instantaneous frequency of the linear chirp is linear in time.
    inst_freq = np.linspace(sweep.f_start, sweep.f_end, probe.size)
    window = max(int(0.02 * sample_rate), 1)
    envelope = np.sqrt(np.convolve(out ** 2, np.full(window, 1.0 / window),
                                   mode="same"))
    probe_env = np.sqrt(np.convolve(probe ** 2,
                                    np.full(window, 1.0 / window),
                                    mode="same"))
    gain = envelope / np.maximum(probe_env, 1e-9)
    measured = np.interp(freqs, inst_freq, gain)

    peak_idx = int(np.argmax(response))
    result = Fig13Result(
        freqs=freqs,
        response=response,
        measured_response=measured,
        peak_hz=float(freqs[peak_idx]),
        response_at_50hz=float(np.interp(50.0, freqs, response)),
        response_at_peak=float(response[peak_idx]),
    )
    return experiment_result(
        "fig13",
        dict(duration_s=duration_s, seed=0, scenario=scenario,
             n_points=n_points, sample_rate=sample_rate),
        result,
    )
