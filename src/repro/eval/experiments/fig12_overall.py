"""Figure 12 — overall noise cancellation, four schemes, white noise.

Reproduces the paper's headline comparison: wide-band white noise at
~67 dB SPL; cancellation-vs-frequency for

* **Bose_Active** — delay-limited active stage only (effective <1 kHz),
* **Bose_Overall** — active + passive earcup (≈ −15 dB average),
* **MUTE_Hollow** — LANC with an open ear (within ~1 dB of Bose_Overall),
* **MUTE+Passive** — LANC under the same earcup (several dB better).
"""

from __future__ import annotations

import dataclasses

from ...core.baselines import BoseHeadphone
from ..metrics import measure_cancellation
from ..reporting import format_curves, format_table
from .registry import experiment_result
from .common import (
    DEFAULT_DURATION_S,
    bench_scenario,
    build_system,
    white_noise,
)

__all__ = ["Fig12Result", "run_fig12"]


@dataclasses.dataclass
class Fig12Result:
    """Curves and headline deltas for Figure 12."""

    curves: dict                      # label -> CancellationCurve
    mute_vs_bose_active_sub1k_db: float   # paper: −6.7 dB (MUTE better)
    mute_hollow_vs_bose_overall_db: float  # paper: +0.9 dB (Bose better)
    mute_passive_vs_bose_overall_db: float  # paper: −8.9 dB (MUTE better)

    def report(self):
        """The figure as a banded table plus the headline numbers."""
        table = format_curves(list(self.curves.values()), title=(
            "Figure 12 — cancellation vs frequency, white noise "
            "(negative = quieter)"
        ))
        headline = format_table(
            ["comparison", "dB (negative = MUTE better)", "paper"],
            [
                ("MUTE_Hollow - Bose_Active, [0,1] kHz",
                 f"{self.mute_vs_bose_active_sub1k_db:+.1f}", "-6.7"),
                ("MUTE_Hollow - Bose_Overall, [0,4] kHz",
                 f"{self.mute_hollow_vs_bose_overall_db:+.1f}", "+0.9"),
                ("MUTE+Passive - Bose_Overall, [0,4] kHz",
                 f"{self.mute_passive_vs_bose_overall_db:+.1f}", "-8.9"),
            ],
            title="Headline comparisons",
        )
        return table + "\n\n" + headline


def run_fig12(duration_s=DEFAULT_DURATION_S, *, seed=7, scenario=None,
              settle_fraction=0.5):
    """Run all four schemes over the same white-noise take."""
    scenario = scenario or bench_scenario()
    noise = white_noise(sample_rate=scenario.sample_rate, seed=seed) \
        .generate(duration_s)

    # MUTE runs (hollow and passive share the scene and the noise take).
    hollow = build_system(scenario)
    hollow_run = hollow.run(noise)
    d_open = hollow_run.disturbance_open

    passive = build_system(scenario, earcup="bose")
    passive_run = passive.run(noise)

    # Bose models applied to the identical open-ear disturbance.
    bose = BoseHeadphone(sample_rate=scenario.sample_rate)
    bose_active_residual = bose.active.residual_waveform(
        d_open, scenario.sample_rate
    )
    bose_overall_residual = bose.residual_waveform(d_open)

    kwargs = dict(sample_rate=scenario.sample_rate,
                  settle_fraction=settle_fraction)
    curves = {
        "Bose_Active": measure_cancellation(
            d_open, bose_active_residual, label="Bose_Active", **kwargs),
        "Bose_Overall": measure_cancellation(
            d_open, bose_overall_residual, label="Bose_Overall", **kwargs),
        "MUTE_Hollow": measure_cancellation(
            d_open, hollow_run.residual, label="MUTE_Hollow", **kwargs),
        "MUTE+Passive": measure_cancellation(
            d_open, passive_run.residual, label="MUTE+Passive", **kwargs),
    }

    result = Fig12Result(
        curves=curves,
        mute_vs_bose_active_sub1k_db=(
            curves["MUTE_Hollow"].mean_db(0, 1000)
            - curves["Bose_Active"].mean_db(0, 1000)
        ),
        mute_hollow_vs_bose_overall_db=(
            curves["MUTE_Hollow"].mean_db()
            - curves["Bose_Overall"].mean_db()
        ),
        mute_passive_vs_bose_overall_db=(
            curves["MUTE+Passive"].mean_db()
            - curves["Bose_Overall"].mean_db()
        ),
    )
    return experiment_result(
        "fig12",
        dict(duration_s=duration_s, seed=seed, scenario=scenario,
             settle_fraction=settle_fraction),
        result,
    )
