"""Figures 7–8 — adaptive-filter convergence behavior.

Three timelines the paper uses to motivate profiling:

* (8a) persistent machine hum: the filter converges once and stays
  converged;
* (8b) intermittent speech with a single filter: the error spikes and
  re-converges at every onset;
* (8c) the same speech with predictive switching: the spikes shrink.

The runner reports sliding-RMS envelopes and a transition-spike metric
(mean residual in the first 150 ms after each speech onset).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ...core.adaptive.lanc import LancFilter, StreamingLanc
from ...core.profiles import PredictiveProfileSwitcher, ProfileClassifier
from ...signals import MachineHum, segments_from_mask
from ..metrics import convergence_envelope
from ..reporting import format_table, sparkline
from .common import bench_scenario, build_system
from .fig17_profiling import _train_classifier, build_two_source_scene
from .registry import experiment_result

__all__ = ["ConvergenceResult", "run_convergence"]


@dataclasses.dataclass
class ConvergenceResult:
    """Envelopes + onset-spike statistics for the three timelines."""

    envelopes: dict            # label -> (times, rms)
    onset_spike_single: float  # mean RMS in post-onset windows, single filter
    onset_spike_switching: float
    steady_hum_rms: float      # converged residual on persistent noise
    initial_hum_rms: float     # pre-convergence residual

    def spike_reduction_db(self):
        """Switching's improvement in post-onset residual."""
        if self.onset_spike_single <= 0:
            return 0.0
        return 20.0 * np.log10(
            max(self.onset_spike_switching, 1e-12) / self.onset_spike_single
        )

    def report(self):
        rows = [
            ("hum residual, first 0.5 s", f"{self.initial_hum_rms:.4f}"),
            ("hum residual, converged", f"{self.steady_hum_rms:.4f}"),
            ("post-onset residual, single filter",
             f"{self.onset_spike_single:.4f}"),
            ("post-onset residual, with switching",
             f"{self.onset_spike_switching:.4f}"),
            ("switching spike reduction",
             f"{self.spike_reduction_db():+.1f} dB"),
        ]
        table = format_table(["metric", "value"], rows,
                             title="Figures 7-8 — convergence behavior")
        lines = [table]
        for label, (times, env) in self.envelopes.items():
            step = max(len(env) // 160, 1)
            lines.append(f"{label}: {sparkline(env[::step])}")
        return "\n".join(lines)


def _onset_spike(error, mask, sample_rate, window_s=0.15, skip_first=1):
    """Mean RMS of the residual right after each speech onset."""
    window = int(window_s * sample_rate)
    onsets = [start for start, __, active in segments_from_mask(mask)
              if active][skip_first:]
    if not onsets:
        return 0.0
    chunks = [error[s: s + window] for s in onsets if s + window <= error.size]
    if not chunks:
        return 0.0
    stacked = np.concatenate(chunks)
    return float(np.sqrt(np.mean(np.square(stacked))))


def run_convergence(duration_s=12.0, *, seed=41, scenario=None):
    """Produce the three timelines and their statistics."""
    scenario = scenario or bench_scenario()
    fs = scenario.sample_rate

    # --- (a) persistent machine hum -----------------------------------
    hum = MachineHum(sample_rate=fs, level_rms=0.1, seed=seed)
    system = build_system(scenario)
    hum_run = system.run(hum.generate(duration_s / 2.0))
    t_hum, env_hum = convergence_envelope(hum_run.residual, fs)
    half_second = int(0.5 * fs)
    initial_hum = float(np.sqrt(np.mean(hum_run.residual[:half_second] ** 2)))
    steady_hum = float(np.sqrt(np.mean(hum_run.residual[-half_second:] ** 2)))

    # --- (b)+(c) intermittent speech over background -------------------
    scene, n_past = build_two_source_scene(duration_s=duration_s,
                                           seed=seed + 1, scenario=scenario)
    single = LancFilter(n_future=scene.n_future, n_past=n_past,
                        secondary_path=scene.secondary_estimate, mu=0.1)
    res_single = single.run(scene.reference, scene.disturbance,
                            secondary_path_true=scene.secondary_true)

    classifier = ProfileClassifier(sample_rate=fs, n_bands=12,
                                   max_distance=1.2, energy_floor=1e-5)
    _train_classifier(classifier, scene.reference, scene.speech_mask, fs)
    switched = LancFilter(n_future=scene.n_future, n_past=n_past,
                          secondary_path=scene.secondary_estimate, mu=0.1)
    switcher = PredictiveProfileSwitcher(classifier, switched,
                                         min_dwell_blocks=4)
    stream = StreamingLanc(switched,
                           secondary_path_true=scene.secondary_true)
    stream.feed(np.concatenate([scene.reference, np.zeros(scene.n_future)]))
    block = max(int(0.02 * fs), 1)
    for start in range(0, scene.reference.size, block):
        window = np.concatenate([
            scene.reference[max(start - 128, 0): start],
            stream.peek_future(scene.n_future),
        ])
        switcher.observe(window, start)
        stop = min(start + block, scene.reference.size)
        stream.process(scene.disturbance[start:stop])
    res_switching = stream.error_signal()

    t_single, env_single = convergence_envelope(res_single.error, fs)
    t_switch, env_switch = convergence_envelope(res_switching, fs)

    result = ConvergenceResult(
        envelopes={
            "(a) persistent hum": (t_hum, env_hum),
            "(b) speech, single filter": (t_single, env_single),
            "(c) speech, with switching": (t_switch, env_switch),
        },
        onset_spike_single=_onset_spike(res_single.error, scene.speech_mask,
                                        fs),
        onset_spike_switching=_onset_spike(res_switching, scene.speech_mask,
                                           fs),
        steady_hum_rms=steady_hum,
        initial_hum_rms=initial_hum,
    )
    return experiment_result(
        "convergence",
        dict(duration_s=duration_s, seed=seed, scenario=scenario),
        result,
    )
