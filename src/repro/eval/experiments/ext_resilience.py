"""Extension experiment — cancellation under relay-path faults.

The paper assumes the IoT relay keeps streaming; this extension asks
what MUTE loses when it does not.  Two sweeps over
:meth:`~repro.core.system.MuteSystem.run_resilient`:

* **outage fraction** — a centered relay blackout covering 0..50 % of
  the run (``repro.faults.outage_plan``), exercising the full
  ``mute → passive → mute`` degradation round-trip;
* **packet-loss rate** — uniform frame erasures
  (``repro.faults.packet_loss_plan``), the degraded-but-alive regime
  where freezing adaptation (*feedback* mode) protects the converged
  taps.

Cancellation should be monotone: more outage / more loss → less mean
cancellation, converging to the passive/no-device floor.  Results carry
only floats and small dicts, so they pickle cheaply through the
:mod:`repro.runtime` process-pool executor and cache bit-identically.
"""

from __future__ import annotations

import dataclasses

from ...acoustics.geometry import Point, Room
from ...acoustics.rir import RirSettings
from ...core.scenario import Scenario
from ...core.system import MuteConfig, MuteSystem
from ...faults import outage_plan, packet_loss_plan
from ...signals import WhiteNoise
from ...wireless.relay import IdealRelay
from ..reporting import format_table
from .registry import experiment_result

__all__ = ["ResilienceResult", "run_resilience", "resilience_scenario"]


def resilience_scenario(sample_rate=8000.0):
    """A small, fast-RIR room for the fault sweeps.

    First-order reflections only — the sweeps need many full runs, and
    fault behaviour does not depend on late reverberation.
    """
    return Scenario(
        room=Room(5.0, 4.0, 3.0, absorption=0.4),
        source=Point(0.8, 0.7, 1.2),
        client=Point(3.8, 2.2, 1.2),
        relays=(Point(1.05, 0.3, 1.2),),
        sample_rate=sample_rate,
        rir_settings=RirSettings(max_order=1),
    )


def _make_system(scenario, seed):
    # Fresh system (and therefore fresh relay RNG) per sweep point, so
    # each point is independent of sweep order.
    config = MuteConfig(
        n_future=32, n_past=192, mu=0.3, probe_secondary=False,
        relay=IdealRelay(mic_noise_rms=1e-3, seed=seed),
    )
    return MuteSystem(scenario, config)


def _run_point(scenario, noise, plan, seed, block_size):
    system = _make_system(scenario, seed)
    result = system.run_resilient(noise, fault_plan=plan,
                                  block_size=block_size)
    return {
        "cancellation_db": result.mean_cancellation_db(),
        "transitions": len(result.transitions),
        "recovered": result.recovered,
        "mode_fractions": {k: round(v, 4)
                           for k, v in result.mode_fractions.items()},
        "plan": result.plan_key,
    }


@dataclasses.dataclass
class ResilienceResult:
    """Cancellation vs outage fraction and vs packet-loss rate."""

    outage_curve: dict    #: outage fraction -> point summary dict
    loss_curve: dict      #: packet-loss rate -> point summary dict

    def report(self):
        rows = []
        for fraction, point in sorted(self.outage_curve.items()):
            rows.append((
                f"outage {fraction:.0%}",
                f"{point['cancellation_db']:.1f}",
                point["transitions"],
                "yes" if point["recovered"] else "NO",
            ))
        for rate, point in sorted(self.loss_curve.items()):
            rows.append((
                f"loss {rate:.0%}",
                f"{point['cancellation_db']:.1f}",
                point["transitions"],
                "yes" if point["recovered"] else "NO",
            ))
        return format_table(
            ["fault", "mean dB", "transitions", "recovered"],
            rows,
            title="Extension — cancellation under relay-path faults",
        )

    def outage_monotone(self):
        """True when cancellation only worsens as the outage grows."""
        curve = [self.outage_curve[f]["cancellation_db"]
                 for f in sorted(self.outage_curve)]
        return all(b >= a - 1e-9 for a, b in zip(curve, curve[1:]))

    def outage_penalty_db(self):
        """Cancellation lost from the cleanest to the worst outage."""
        fractions = sorted(self.outage_curve)
        return (self.outage_curve[fractions[-1]]["cancellation_db"]
                - self.outage_curve[fractions[0]]["cancellation_db"])


def run_resilience(duration_s=6.0, *, seed=0, scenario=None,
                   outage_fractions=(0.0, 0.1, 0.25, 0.5),
                   loss_rates=(0.0, 0.1, 0.3), block_size=256):
    """Sweep relay outage fraction and packet-loss rate.

    Parameters
    ----------
    duration_s : float
        Length of each simulated run.
    seed : int
        Noise and fault-plan seed.
    scenario : Scenario, optional
        Defaults to :func:`resilience_scenario`.
    outage_fractions : tuple of float
        Fractions of the run covered by a centered relay blackout.
    loss_rates : tuple of float
        Uniform frame-erasure probabilities.
    block_size : int
        Degradation-controller block size, samples.

    Returns
    -------
    ExperimentResult
        ``results`` is a :class:`ResilienceResult`.
    """
    scenario = scenario or resilience_scenario()
    noise = WhiteNoise(sample_rate=scenario.sample_rate, level_rms=0.1,
                       seed=seed).generate(duration_s)
    outage_curve = {}
    for fraction in outage_fractions:
        plan = outage_plan(duration_s, fraction, seed=seed)
        outage_curve[float(fraction)] = _run_point(
            scenario, noise, plan, seed, block_size)
    loss_curve = {}
    for rate in loss_rates:
        plan = packet_loss_plan(duration_s, rate, seed=seed + 1)
        loss_curve[float(rate)] = _run_point(
            scenario, noise, plan, seed, block_size)
    return experiment_result(
        "resilience",
        dict(duration_s=duration_s, seed=seed,
             outage_fractions=tuple(outage_fractions),
             loss_rates=tuple(loss_rates), block_size=block_size),
        ResilienceResult(outage_curve=outage_curve, loss_curve=loss_curve),
    )
