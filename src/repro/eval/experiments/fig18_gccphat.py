"""Figure 18 — GCC-PHAT correlation for positive vs negative lookahead.

Two relays forward the same ambient sound: one mounted near the noise
source (positive lookahead) and one on the far wall, beyond the client
(negative lookahead).  The client correlates each forwarded waveform
against its own error-mic signal; the correlation spike's lag gives the
sign — the paper's relay-usability test.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ...acoustics.geometry import Point
from ...core.relay_selection import gcc_phat, measure_lookahead
from ...core.system import MuteConfig, MuteSystem
from ...errors import ConfigurationError
from ..reporting import format_table, sparkline
from .common import bench_scenario, white_noise
from .registry import experiment_result

__all__ = ["Fig18Result", "run_fig18"]


@dataclasses.dataclass
class Fig18Result:
    """Correlation curves and measured lags for the two relays."""

    lags_s: np.ndarray
    correlations: dict        # label -> correlation array
    measured: dict            # label -> LookaheadMeasurement
    expected_sign: dict       # label -> +1 / -1 from geometry

    def correct_signs(self):
        """Whether every relay's measured sign matches geometry."""
        return all(
            np.sign(self.measured[label].lag_s) == self.expected_sign[label]
            for label in self.measured
        )

    def report(self):
        rows = [
            (label,
             f"{m.lag_s * 1e3:+.2f}",
             f"{m.peak_value:.3f}",
             f"{m.confidence:.1f}",
             "+" if self.expected_sign[label] > 0 else "-")
            for label, m in self.measured.items()
        ]
        table = format_table(
            ["relay", "peak lag (ms)", "peak", "confidence",
             "expected sign"],
            rows,
            title="Figure 18 — GCC-PHAT lookahead measurement",
        )
        lines = [table]
        for label, corr in self.correlations.items():
            lines.append(f"{label}: {sparkline(corr)}")
        lines.append(
            f"all signs correct: {self.correct_signs()} "
            "(paper: correct in every instance)"
        )
        return "\n".join(lines)


def run_fig18(duration_s=2.0, *, seed=13, scenario=None):
    """Measure both relays' correlation against the ear signal."""
    base = scenario or bench_scenario()
    if len(base.relays) != 1:
        raise ConfigurationError("run_fig18 expects the single-relay bench")
    near_relay = base.relays[0]
    far_relay = Point(5.6, 2.5, 1.2)   # beyond the client, away from source
    import dataclasses as dc

    scen = dc.replace(base, relays=(near_relay, far_relay))
    system = MuteSystem(scen, MuteConfig(probe_secondary=False))
    noise = white_noise(sample_rate=scen.sample_rate, seed=seed) \
        .generate(duration_s)
    forwarded, ear = system.forwarded_and_ear_signals(noise)

    labels = {0: "Positive Lookahead (near relay)",
              1: "Negative Lookahead (far relay)"}
    correlations = {}
    measured = {}
    lags_s = None
    for idx, label in labels.items():
        lags_s, corr = gcc_phat(forwarded[idx], ear, scen.sample_rate,
                                max_lag_s=0.015)
        correlations[label] = corr
        measured[label] = measure_lookahead(forwarded[idx], ear,
                                            scen.sample_rate,
                                            max_lag_s=0.015)
    source = scen.source
    client = scen.client
    expected_sign = {
        labels[i]: (1 if source.distance_to(scen.relays[i])
                    < source.distance_to(client) else -1)
        for i in labels
    }
    result = Fig18Result(
        lags_s=lags_s,
        correlations=correlations,
        measured=measured,
        expected_sign=expected_sign,
    )
    return experiment_result(
        "fig18",
        dict(duration_s=duration_s, seed=seed, scenario=scenario),
        result,
    )
