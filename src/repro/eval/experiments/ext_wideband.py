"""Extension experiment — lifting the 4 kHz cap with a faster DSP.

Paper §5.2: "MUTE's cancellation is capped at 4 kHz due to limited
processing speed of the TMS320C6713 DSP.  It can sample at most 8 kHz to
finish the computation within one sampling interval.  A faster DSP will
ease the problem."

This experiment builds the eased system: the same bench geometry
simulated at 16 kHz with the ``fast_dsp`` board and the block LANC
engine (the throughput path a faster DSP enables), cancelling out to
8 kHz.  The paper's board contributes a comparison row: above its 4 kHz
Nyquist band it cannot act at all, so its cancellation there is 0 dB by
construction.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ...acoustics.geometry import Point, Room
from ...acoustics.rir import RirSettings
from ...core.adaptive.block import BlockLancFilter
from ...core.scenario import Scenario
from ...core.secondary_path import estimate_secondary_path
from ...errors import LookaheadError
from ...hardware.dsp_board import fast_dsp
from ...signals import WhiteNoise
from ...utils.units import cancellation_db
from ..metrics import measure_cancellation
from ..reporting import format_table
from .registry import experiment_result

__all__ = ["WidebandResult", "run_wideband", "wideband_bench"]


def wideband_bench(sample_rate=16000.0):
    """The standard bench geometry, sampled at 16 kHz."""
    room = Room(6.0, 5.0, 3.0, absorption=0.3)
    return Scenario(
        room=room,
        source=Point(1.0, 0.8, 1.2),
        client=Point(4.5, 2.5, 1.2),
        relays=(Point(1.3, 0.25, 1.2),),
        sample_rate=sample_rate,
        rir_settings=RirSettings(max_order=2),
    )


@dataclasses.dataclass
class WidebandResult:
    """Band-by-band cancellation of the fast-DSP system."""

    curve: object
    band_means_db: dict     # (lo, hi) -> dB
    broadband_db: float
    n_future: int
    sample_rate: float

    def report(self):
        rows = []
        for (lo, hi), value in self.band_means_db.items():
            paper_board = "—(cannot act)" if lo >= 4000 else "active"
            rows.append((f"{lo}-{hi}", f"{value:.1f}", paper_board))
        table = format_table(
            ["band (Hz)", "fast DSP @16 kHz (dB)",
             "paper's 8 kHz board"],
            rows,
            title="Extension — cancellation beyond the 4 kHz cap",
        )
        return table + (
            f"\nbroadband: {self.broadband_db:.1f} dB with "
            f"N = {self.n_future} future taps at "
            f"{self.sample_rate / 1e3:.0f} kHz"
        )


def run_wideband(duration_s=8.0, *, seed=7, scenario=None, n_past=1024,
                 mu=0.15, settle_fraction=0.5):
    """Run the 16 kHz fast-DSP system over the bench."""
    scenario = scenario or wideband_bench()
    fs = scenario.sample_rate
    channels = scenario.build_channels()
    noise = WhiteNoise(sample_rate=fs, level_rms=0.1, seed=seed) \
        .generate(duration_s)

    d = channels.h_ne.apply(noise)
    capture = channels.h_nr[0].apply(noise)
    lead = channels.acoustic_lead_samples[0]
    pipeline = fast_dsp().total_latency_s * fs
    n_future = int(np.floor(lead - pipeline))
    if n_future <= 0:
        raise LookaheadError("wideband bench offers no lookahead")
    n_future = min(n_future, 128)
    reference = np.zeros_like(capture)
    reference[lead:] = capture[: capture.size - lead]

    s_true = channels.h_se.ir
    estimate = estimate_secondary_path(
        s_true, n_taps=min(s_true.size, 256), probe_duration_s=2.0,
        sample_rate=fs, ambient_noise_rms=0.002, seed=seed)

    lanc = BlockLancFilter(n_future=n_future, n_past=n_past,
                           secondary_path=estimate.impulse_response,
                           mu=mu, block_size=128)
    result = lanc.run(reference, d, secondary_path_true=s_true)

    curve = measure_cancellation(d, result.error, fs,
                                 label="fast DSP @ 16 kHz",
                                 settle_fraction=settle_fraction)
    bands = [(0, 2000), (2000, 4000), (4000, 6000), (6000, 8000)]
    band_means = {band: curve.mean_db(*band) for band in bands}
    tail = slice(int(d.size * settle_fraction), None)
    return experiment_result(
        "wideband",
        dict(duration_s=duration_s, seed=seed, scenario=scenario,
             n_past=n_past, mu=mu, settle_fraction=settle_fraction),
        WidebandResult(
            curve=curve,
            band_means_db=band_means,
            broadband_db=cancellation_db(d[tail], result.error[tail]),
            n_future=n_future,
            sample_rate=fs,
        ),
    )
