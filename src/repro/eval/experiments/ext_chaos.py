"""Extension experiment: the chaos soak (crash-safe serving, verified).

Not a paper figure — the robustness extension's end-to-end probe.  The
paper's serving premise (the Eq. 3 lookahead budget) only matters if
the server *survives*: this experiment runs
:func:`repro.chaos.run_soak` — baseline the fleet, re-serve it under
injected crashes and deadline stalls, and verify every session ends
warm-restored **bit-identically** or deliberately shed — and records
the verdict in the experiment envelope, so ``repro run chaos`` and the
runtime executor both exercise the full recovery path.

Harness hooks
-------------
Two keyword-only parameters exist for the *executor's* resilience
tests, not for studying MUTE:

``sleep_s``
    Sleep before doing anything — how ``tests/test_chaos.py`` makes a
    job overrun the executor's per-job deadline.
``worker_kill_flag``
    Path to a sentinel file implementing **die-once** semantics: when
    the file does not exist yet, create it and kill the hosting
    *worker process* outright (``SIGKILL`` — a real worker death, not
    an exception), so the executor's worker-loss retry path runs; on
    the retry the file exists and the run proceeds.  In the *main*
    process (serial execution) a typed
    :class:`~repro.errors.InjectedCrashError` is raised instead —
    killing the caller's interpreter is never acceptable fallback
    behavior.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import signal
import time

from ...chaos import run_soak
from ...errors import InjectedCrashError
from .registry import experiment_result

__all__ = ["ChaosResult", "run_chaos"]


@dataclasses.dataclass
class ChaosResult:
    """Results of one ``chaos`` experiment run."""

    sessions: int
    n_blocks: int
    batched: bool
    ok: bool                      #: every crash-safety invariant held
    crashes_injected: int
    stalls_injected: int
    statuses: dict                #: status -> count
    restores: int                 #: warm checkpoint restores
    cold_starts: int
    escalations: int              #: sessions escalated to shed
    breaker_trips: int
    verified_sessions: int        #: done sessions bit-compared to baseline
    mismatches: list              #: names whose digest diverged (must be [])
    soak_report: object           #: the full SoakReport

    def report(self):
        """Deterministic text summary (no wall-clock values)."""
        verdict = "PASS" if self.ok else "FAIL"
        mode = "batched" if self.batched else "serial"
        lines = [
            f"chaos soak: {self.sessions} session(s) x {self.n_blocks} "
            f"block(s), {mode} — {verdict}",
            f"injected {self.crashes_injected} crash(es), "
            f"{self.stalls_injected} stall(s); recovered with "
            f"{self.restores} warm restore(s), {self.cold_starts} cold, "
            f"{self.escalations} escalation(s), "
            f"{self.breaker_trips} breaker trip(s)",
            f"statuses: " + ", ".join(
                f"{k}={v}" for k, v in sorted(self.statuses.items())),
            f"bit-identity: {self.verified_sessions} verified, "
            f"{len(self.mismatches)} mismatch(es)",
        ]
        return "\n".join(lines)


def _maybe_die_once(flag_path):
    """Die-once worker kill (see the module docstring's harness notes)."""
    if flag_path is None:
        return
    flag_path = str(flag_path)
    if os.path.exists(flag_path):
        return
    with open(flag_path, "w", encoding="utf-8") as fh:
        fh.write("died\n")
    if multiprocessing.parent_process() is not None:
        os.kill(os.getpid(), signal.SIGKILL)
    raise InjectedCrashError(
        "worker_kill_flag fired in the main process; raising instead of "
        "killing the interpreter"
    )


def run_chaos(duration_s=0.4, *, seed=0, scenario=None, sessions=6,
              block_size=128, crash_prob=0.5, stall_prob=0.5,
              batched=True, sleep_s=0.0, worker_kill_flag=None):
    """Run one chaos soak through the experiment registry.

    Parameters
    ----------
    duration_s:
        Simulated seconds of audio per session.
    seed:
        Root seed for workloads and chaos schedules.
    scenario:
        Accepted for signature uniformity; the soak synthesizes its
        own per-user workloads.
    sessions / block_size / crash_prob / stall_prob / batched:
        Soak geometry, passed through to :func:`repro.chaos.run_soak`.
    sleep_s / worker_kill_flag:
        Executor-test harness hooks — see the module docstring.
    """
    del scenario  # synthesized workloads; kept for uniform signatures
    if sleep_s:
        time.sleep(float(sleep_s))
    _maybe_die_once(worker_kill_flag)

    soak = run_soak(sessions=int(sessions), duration_s=duration_s,
                    block_size=int(block_size), seed=int(seed),
                    batched=bool(batched), crash_prob=float(crash_prob),
                    stall_prob=float(stall_prob))
    results = ChaosResult(
        sessions=soak.sessions,
        n_blocks=soak.n_blocks,
        batched=soak.batched,
        ok=soak.ok(),
        crashes_injected=soak.crashes_injected,
        stalls_injected=soak.stalls_injected,
        statuses=soak.statuses,
        restores=soak.recovery.get("restores", 0),
        cold_starts=soak.recovery.get("cold_starts", 0),
        escalations=soak.recovery.get("escalations", 0),
        breaker_trips=soak.breaker_trips,
        verified_sessions=soak.verified_sessions,
        mismatches=soak.mismatches,
        soak_report=soak,
    )
    return experiment_result("chaos", {
        "duration_s": duration_s, "seed": seed, "sessions": sessions,
        "block_size": block_size, "crash_prob": crash_prob,
        "stall_prob": stall_prob, "batched": batched,
    }, results)
