"""Extension experiment — head mobility (paper §6).

The client's head sways slowly while MUTE cancels wide-band noise: the
noise→ear channel ``h_ne`` drifts, forcing the adaptive filter to track.
Three conditions:

* **static head** — the usual bench (upper bound);
* **moving, slow step** — the deep-cancellation step size tuned for
  static scenes (µ = 0.1) now lags the channel;
* **moving, tracking step** — a faster step (µ = 0.35) trades
  steady-state depth for agility — the paper's "enhanced filtering
  methods known to converge faster", in its simplest NLMS form.

Expected shape: mobility costs several dB; a tracking-tuned step
recovers a meaningful part of it.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ...acoustics.geometry import Point
from ...acoustics.timevarying import moving_client_channel
from ...core.adaptive.lanc import LancFilter
from ...core.secondary_path import estimate_secondary_path
from ...errors import LookaheadError
from ...hardware.dsp_board import tms320c6713
from ...signals import WhiteNoise
from ...utils.units import cancellation_db
from ..reporting import format_table
from .common import bench_scenario
from .registry import experiment_result

__all__ = ["MobilityResult", "run_mobility", "sway_path"]


def sway_path(center, amplitude_m=0.15, n_periods=4, points_per_period=8):
    """Waypoints of a lateral head sway around ``center``.

    ``n_periods`` oscillations sampled densely enough that consecutive
    waypoints move a small fraction of a wavelength.
    """
    n_points = n_periods * points_per_period + 1
    offsets = amplitude_m * np.sin(
        np.linspace(0.0, n_periods * 2.0 * np.pi, n_points))
    return [Point(center.x, center.y + dy, center.z) for dy in offsets]


@dataclasses.dataclass
class MobilityResult:
    """Broadband cancellation per condition."""

    total_db: dict     # condition -> dB
    sway_amplitude_m: float

    @property
    def mobility_cost_db(self):
        """How much the moving head costs the slow-step filter."""
        return (self.total_db["moving, slow step"]
                - self.total_db["static head"])

    @property
    def tracking_recovery_db(self):
        """How much the faster step wins back (negative = recovers)."""
        return (self.total_db["moving, tracking step"]
                - self.total_db["moving, slow step"])

    def report(self):
        rows = [(condition, f"{value:.1f}")
                for condition, value in self.total_db.items()]
        table = format_table(
            ["condition", "broadband cancellation (dB)"], rows,
            title=(f"Extension — head mobility "
                   f"(±{self.sway_amplitude_m * 100:.0f} cm sway)"),
        )
        return table + (
            f"\nmobility cost at the static step: "
            f"{self.mobility_cost_db:+.1f} dB; tracking step recovers "
            f"{self.tracking_recovery_db:+.1f} dB"
        )


def run_mobility(duration_s=12.0, *, seed=5, scenario=None, sway_m=0.15,
                 n_past=384, settle_fraction=0.5):
    """Run the three mobility conditions over one noise take."""
    scenario = scenario or bench_scenario()
    fs = scenario.sample_rate
    noise = WhiteNoise(sample_rate=fs, level_rms=0.1, seed=seed) \
        .generate(duration_s)

    channels = scenario.build_channels()
    relay_capture = channels.h_nr[0].apply(noise)
    lead = channels.acoustic_lead_samples[0]
    pipeline = tms320c6713().total_latency_s * fs
    n_future = int(np.floor(lead - pipeline))
    if n_future <= 0:
        raise LookaheadError("bench offers no lookahead; cannot run")
    n_future = min(n_future, 64)
    reference = np.zeros_like(relay_capture)
    reference[lead:] = relay_capture[: relay_capture.size - lead]

    s_true = channels.h_se.ir
    estimate = estimate_secondary_path(
        s_true, n_taps=min(s_true.size, 128), probe_duration_s=1.0,
        sample_rate=fs, ambient_noise_rms=0.002, seed=seed)
    s_hat = estimate.impulse_response

    # Static disturbance vs the swaying-head disturbance.
    d_static = channels.h_ne.apply(noise)
    moving = moving_client_channel(
        scenario.room, scenario.source,
        sway_path(scenario.client, amplitude_m=sway_m),
        fs, settings=scenario.rir_settings)
    d_moving = moving.apply(noise)

    tail = slice(int(noise.size * settle_fraction), None)
    conditions = {
        "static head": (d_static, 0.1),
        "moving, slow step": (d_moving, 0.1),
        "moving, tracking step": (d_moving, 0.35),
    }
    total_db = {}
    for label, (disturbance, mu) in conditions.items():
        # The light leak keeps FxLMS stable against the secondary-path
        # estimate's truncation error at the larger tracking step.
        lanc = LancFilter(n_future=n_future, n_past=n_past,
                          secondary_path=s_hat, mu=mu, leak=1e-4)
        result = lanc.run(reference, disturbance,
                          secondary_path_true=s_true)
        total_db[label] = cancellation_db(disturbance[tail],
                                          result.error[tail])
    return experiment_result(
        "mobility",
        dict(duration_s=duration_s, seed=seed, scenario=scenario,
             sway_m=sway_m, n_past=n_past, settle_fraction=settle_fraction),
        MobilityResult(total_db=total_db, sway_amplitude_m=sway_m),
    )
