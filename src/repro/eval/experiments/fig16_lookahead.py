"""Figure 16 — cancellation vs lookahead length.

The paper fixes the physical layout (so the multipath stays identical)
and shrinks the usable lookahead by *injecting delay into the reference
inside the DSP* (a delayed line buffer).  Curves are labeled relative to
the Eq.-3 "Lower Bound" (just enough lookahead to cover the pipeline,
i.e. zero anti-causal taps): Lower Bound, +0.38 ms, +0.75 ms, +1.13 ms.
More lookahead → better inverse filtering → deeper cancellation.
"""

from __future__ import annotations

import dataclasses

from ...core.optimal import wiener_lanc
from ..metrics import measure_cancellation
from ..reporting import format_curves, format_table
from .common import (
    DEFAULT_DURATION_S,
    bench_scenario,
    build_system,
    white_noise,
)
from .registry import experiment_result

__all__ = ["Fig16Result", "run_fig16", "PAPER_EXTRA_LOOKAHEADS_S"]

#: The paper's extra-lookahead settings, relative to the Eq.-3 bound.
PAPER_EXTRA_LOOKAHEADS_S = (0.0, 0.38e-3, 0.75e-3, 1.13e-3)


@dataclasses.dataclass
class Fig16Result:
    """One cancellation curve per lookahead setting."""

    curves: dict          # label -> CancellationCurve
    extras_s: tuple       # the swept extra lookaheads
    future_taps: dict     # label -> N actually used
    optimal_db: dict = dataclasses.field(default_factory=dict)
    # label -> Wiener-optimal broadband dB for that tap budget: the
    # *causality* limit, free of adaptation noise.

    def monotone_improvement(self):
        """Mean cancellation per setting, in sweep order (should fall)."""
        return [self.curves[label].mean_db() for label in self.curves]

    def report(self):
        table = format_curves(list(self.curves.values()), title=(
            "Figure 16 — cancellation vs lookahead "
            "(relative to the Eq. 3 lower bound)"
        ))
        rows = [
            (label, self.future_taps[label],
             f"{self.curves[label].mean_db():.1f}",
             f"{self.optimal_db[label]:.1f}" if label in self.optimal_db
             else "-")
            for label in self.curves
        ]
        return table + "\n\n" + format_table(
            ["setting", "future taps N", "adaptive mean dB",
             "Wiener-optimal dB"], rows)


def _label(extra_s):
    if extra_s == 0.0:
        return "Lower Bound"
    return f"{extra_s * 1e3:.2f}ms More"


def run_fig16(duration_s=DEFAULT_DURATION_S, *, seed=7, scenario=None,
              extras_s=PAPER_EXTRA_LOOKAHEADS_S, settle_fraction=0.5):
    """Sweep injected reference delay; measure each cancellation curve."""
    scenario = scenario or bench_scenario()
    noise = white_noise(sample_rate=scenario.sample_rate, seed=seed) \
        .generate(duration_s)

    # How much usable lookahead does the bench offer at zero injection?
    probe = build_system(scenario)
    full_budget = probe.lookahead_budget
    prepared = probe.prepare(noise)   # shared signals for the bound

    curves = {}
    future_taps = {}
    optimal_db = {}
    for extra_s in extras_s:
        # Inject enough delay that exactly `extra_s` of lookahead remains.
        injected = max(full_budget.usable_lookahead_s - extra_s, 0.0)
        system = build_system(scenario, injected_delay_s=injected)
        run = system.run(noise)
        label = _label(extra_s)
        curves[label] = measure_cancellation(
            run.disturbance_open, run.residual,
            sample_rate=scenario.sample_rate, label=label,
            settle_fraction=settle_fraction,
        )
        future_taps[label] = run.n_future_used
        # The same PSD-based measurement, applied to the Wiener-optimal
        # residual for this tap budget (the causality limit).
        solution = wiener_lanc(
            prepared.reference, prepared.disturbance_at_ear,
            prepared.secondary_path_true, run.n_future_used,
            probe.config.n_past,
        )
        optimal_db[label] = measure_cancellation(
            run.disturbance_open, solution.residual,
            sample_rate=scenario.sample_rate, label=f"optimal {label}",
            settle_fraction=settle_fraction,
        ).mean_db()
    return experiment_result(
        "fig16",
        dict(duration_s=duration_s, seed=seed, scenario=scenario,
             extras_s=tuple(extras_s), settle_fraction=settle_fraction),
        Fig16Result(curves=curves, extras_s=tuple(extras_s),
                    future_taps=future_taps, optimal_db=optimal_db),
    )
