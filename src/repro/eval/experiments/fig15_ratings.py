"""Figure 15 — simulated listener ratings: MUTE+Passive vs Bose_Overall.

The paper had 5 volunteers rate both systems (1–5 stars) on music and
voice; every volunteer rated MUTE above Bose.  We reproduce the setup
with the psychoacoustic rating model: run both systems on the same
takes, rate the *residuals* each subject would hear, and check the
per-subject ordering.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ...core.baselines import BoseHeadphone
from ...signals import MaleVoice, SyntheticMusic
from ..rating import RatingModel, a_weighted_level_db
from ..reporting import format_table
from .registry import experiment_result
from .common import DEFAULT_DURATION_S, bench_scenario, build_system

__all__ = ["Fig15Result", "run_fig15"]


@dataclasses.dataclass
class Fig15Result:
    """Scores per subject, condition, and sound type."""

    scores: dict     # (sound, condition) -> [SubjectRating]
    n_subjects: int

    def mute_wins(self, sound):
        """Subjects who rated MUTE+Passive >= Bose_Overall on ``sound``."""
        mute = {r.subject_id: r.score
                for r in self.scores[(sound, "MUTE+Passive")]}
        bose = {r.subject_id: r.score
                for r in self.scores[(sound, "Bose_Overall")]}
        return sum(1 for s in mute if mute[s] >= bose[s])

    def report(self):
        rows = []
        for subject in range(1, self.n_subjects + 1):
            row = [f"#{subject}"]
            for sound in ("music", "voice"):
                for condition in ("MUTE+Passive", "Bose_Overall"):
                    score = next(
                        r.score for r in self.scores[(sound, condition)]
                        if r.subject_id == subject
                    )
                    row.append(f"{score:.1f}")
            rows.append(row)
        table = format_table(
            ["subject", "MUTE (music)", "Bose (music)",
             "MUTE (voice)", "Bose (voice)"],
            rows,
            title="Figure 15 — simulated user ratings (1-5 stars)",
        )
        summary = (
            f"\nMUTE rated >= Bose: music {self.mute_wins('music')}"
            f"/{self.n_subjects}, voice {self.mute_wins('voice')}"
            f"/{self.n_subjects} (paper: 5/5 both)"
        )
        return table + summary


def run_fig15(duration_s=DEFAULT_DURATION_S, *, seed=21, scenario=None,
              n_subjects=5):
    """Rate MUTE+Passive vs Bose_Overall on music and voice."""
    scenario = scenario or bench_scenario()
    fs = scenario.sample_rate
    sounds = {
        "music": SyntheticMusic(sample_rate=fs, level_rms=0.1, seed=seed),
        "voice": MaleVoice(sample_rate=fs, level_rms=0.1, seed=seed + 1),
    }
    mute = build_system(scenario, earcup="bose")
    bose = BoseHeadphone(sample_rate=fs)

    residuals = {}
    settle = int(duration_s * fs * 0.4)
    for sound_name, source in sounds.items():
        noise = source.generate(duration_s)
        run = mute.run(noise)
        bose_residual = bose.residual_waveform(run.disturbance_open)
        residuals[(sound_name, "MUTE+Passive")] = run.residual[settle:]
        residuals[(sound_name, "Bose_Overall")] = bose_residual[settle:]

    # Anchor the 1-5 scale to the session's own loudness range, as human
    # subjects implicitly do: the midpoint score lands between the two
    # systems' residual levels.
    levels = [a_weighted_level_db(r, fs) for r in residuals.values()]
    anchor = float(np.mean(levels))
    model = RatingModel(n_subjects=n_subjects, seed=seed, anchor_db=anchor,
                        slope_db_per_star=4.0)

    scores = {
        key: model.rate(residual, fs, condition=key[1])
        for key, residual in residuals.items()
    }
    return experiment_result(
        "fig15",
        dict(duration_s=duration_s, seed=seed, scenario=scenario,
             n_subjects=n_subjects),
        Fig15Result(scores=scores, n_subjects=n_subjects),
    )
