"""Extension experiment — multiple simultaneous noise sources (paper §6).

The paper's current-limitations section: "With multiple noise sources,
the problem is involved, requiring either multiple microphones (one for
each noise channel), or source separation algorithms ... We believe the
benefits of looking ahead into future samples will be valuable for
multiple sources as well — a topic we leave to future work."

This experiment builds that future-work system: two simultaneous sources
at different positions, each with its own relay, canceled by the
multi-reference LANC (:class:`MultiRefLancFilter`).  Compared against:

* **no ANC** — the raw mixture,
* **single reference** — standard LANC on the best single relay (what
  the paper's prototype would do),
* **multi reference** — one aligned branch per relay.

The single-reference system stalls: the second source reaches the relay
and the ear through *different* channels, so no one filter maps the
mixture.  One reference per source restores identifiability, and the
lookahead taps remain available per branch.
"""

from __future__ import annotations

import dataclasses


from ...acoustics.geometry import Point, Room
from ...acoustics.rir import RirSettings
from ...core.adaptive.lanc import LancFilter
from ...core.adaptive.multiref import MultiRefLancFilter
from ...core.multisource import build_multisource_scene
from ...core.scenario import Scenario
from ...signals import BandlimitedNoise, MaleVoice
from ...utils.units import cancellation_db
from ..metrics import measure_cancellation
from ..reporting import format_curves, format_table
from .registry import experiment_result

__all__ = ["MultiSourceResult", "run_multisource", "two_source_layout"]


def two_source_layout(sample_rate=8000.0):
    """Two sources in opposite corners, a relay pasted near each."""
    room = Room(6.0, 5.0, 3.0, absorption=0.35)
    scenario = Scenario(
        room=room,
        source=Point(1.0, 1.0, 1.2),   # placeholder; sources given per run
        client=Point(4.5, 2.5, 1.2),
        relays=(Point(1.2, 0.7, 1.3), Point(1.0, 4.2, 1.3)),
        rir_settings=RirSettings(max_order=2),
        sample_rate=sample_rate,
    )
    sources = (Point(0.9, 0.9, 1.3), Point(0.8, 4.3, 1.3))
    return scenario, sources


@dataclasses.dataclass
class MultiSourceResult:
    """Totals and curves for the three conditions."""

    total_db: dict          # condition -> broadband cancellation (dB)
    curves: dict            # condition -> CancellationCurve
    n_futures: list
    multi_vs_single_db: float

    def report(self):
        rows = [(condition, f"{value:.1f}")
                for condition, value in self.total_db.items()]
        table = format_table(
            ["condition", "broadband cancellation (dB)"], rows,
            title="Extension — two simultaneous noise sources (paper §6)",
        )
        curves = format_curves(list(self.curves.values()))
        return (
            table + "\n\n" + curves
            + f"\nmulti-reference advantage over single: "
              f"{self.multi_vs_single_db:+.1f} dB "
              f"(branches use N = {self.n_futures} future taps)"
        )


def run_multisource(duration_s=8.0, *, seed=1, scenario=None, n_past=384,
                    mu=0.15, settle_fraction=0.5):
    """Run the two-source comparison.

    ``scenario`` (if given) replaces the canned :func:`two_source_layout`
    room — it must carry two relays; the two sources then sit next to
    those relays, mirroring the default layout.
    """
    if scenario is None:
        scenario, sources = two_source_layout()
    else:
        layout, sources = two_source_layout(
            sample_rate=scenario.sample_rate)
        del layout
    fs = scenario.sample_rate
    waveforms = [
        BandlimitedNoise(100.0, 3000.0, sample_rate=fs, level_rms=0.08,
                         seed=seed).generate(duration_s),
        MaleVoice(sample_rate=fs, level_rms=0.1, seed=seed + 1,
                  speech_fraction=1.0).generate(duration_s),
    ]
    scene = build_multisource_scene(scenario, sources, waveforms,
                                    seed=seed + 2)

    tail = slice(int(scene.disturbance.size * settle_fraction), None)

    single = LancFilter(scene.n_futures[0], n_past,
                        scene.secondary_estimate, mu=mu)
    res_single = single.run(scene.references[0], scene.disturbance,
                            secondary_path_true=scene.secondary_true)

    multi = MultiRefLancFilter(scene.n_futures, n_past,
                               scene.secondary_estimate, mu=mu)
    res_multi = multi.run(scene.references, scene.disturbance,
                          secondary_path_true=scene.secondary_true)

    total_db = {
        "no ANC": 0.0,
        "single reference": cancellation_db(scene.disturbance[tail],
                                            res_single.error[tail]),
        "multi reference": cancellation_db(scene.disturbance[tail],
                                           res_multi.error[tail]),
    }
    kwargs = dict(sample_rate=fs, settle_fraction=settle_fraction)
    curves = {
        "single reference": measure_cancellation(
            scene.disturbance, res_single.error,
            label="single reference", **kwargs),
        "multi reference": measure_cancellation(
            scene.disturbance, res_multi.error,
            label="multi reference", **kwargs),
    }
    result = MultiSourceResult(
        total_db=total_db,
        curves=curves,
        n_futures=list(scene.n_futures),
        multi_vs_single_db=(total_db["multi reference"]
                            - total_db["single reference"]),
    )
    return experiment_result(
        "multisource",
        dict(duration_s=duration_s, seed=seed, scenario=scenario,
             n_past=n_past, mu=mu, settle_fraction=settle_fraction),
        result,
    )
