"""First-class experiment registry and the uniform result envelope.

Every figure/extension runner used to be wired into three hand-rolled
tables: the CLI's ``EXPERIMENTS`` tuple-dict, the per-figure benchmark
files, and whatever ad-hoc loop a caller wrote.  This module replaces
all of that with one API:

* :class:`Experiment` — name, runner, description, and an inspectable
  ``defaults`` dict (read straight off the runner's signature);
* :func:`register` / :func:`get` / :func:`all_experiments` — the
  registry itself;
* :class:`ExperimentResult` — the normalized envelope every runner
  returns: a ``dict`` with top-level keys ``name`` / ``params`` /
  ``results``, so sweep output is mergeable and JSON-friendly, while
  attribute access still reaches the figure's rich result object
  (``result.curves``, ``result.report()``, …).

The registry is what makes the :mod:`repro.runtime` executor possible:
a worker process only needs an experiment *name* and a params dict to
run anything — see ``docs/RUNTIME.md``.
"""

from __future__ import annotations

import dataclasses
import inspect
import json

from ...errors import ConfigurationError, UnknownParameterError

__all__ = [
    "REPORT_SCHEMA",
    "Experiment",
    "ExperimentResult",
    "RehydratedResults",
    "all_experiments",
    "experiment_names",
    "experiment_result",
    "get",
    "register",
]

#: Schema identifier of the ``report/v2`` envelope family.  Result and
#: suite documents share it and are told apart by their ``kind`` field
#: (``"result"`` vs ``"suite"`` — see ``repro.runtime.executor``).
REPORT_SCHEMA = "repro.runtime.report/v2"


def _jsonable_param(value):
    """Coerce one runner parameter to a JSON-friendly, mergeable value.

    Scalars pass through; containers recurse; anything structured (a
    Scenario, a Point, a signal source) is recorded by its ``repr`` so
    the params dict stays printable and picklable without dragging the
    object graph along.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (tuple, list)):
        return [_jsonable_param(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable_param(v) for k, v in value.items()}
    text = repr(value)
    return text if len(text) <= 120 else text[:117] + "..."


class RehydratedResults:
    """Results placeholder rebuilt from a serialized ``report/v2`` doc.

    A deserialized envelope cannot restore the figure's rich result
    dataclass (numpy arrays never enter the JSON document); this stands
    in for it, carrying the one thing the document preserved — the
    rendered report text — so ``result.report()`` keeps working after
    :meth:`ExperimentResult.from_json`.
    """

    def __init__(self, report_text):
        self.report_text = report_text

    def report(self):
        """The report text as serialized (``None`` if absent)."""
        return self.report_text

    def __repr__(self):
        return f"{type(self).__name__}(report_text=...)"


class ExperimentResult(dict):
    """The normalized runner return value (``report/v2`` envelope).

    A plain ``dict`` (mergeable, picklable, iterable like any sweep
    record) with top-level keys ``schema`` / ``name`` / ``params`` /
    ``results``, whose attribute access falls through to the
    ``results`` object, so legacy call sites keep reading
    ``result.curves`` or calling ``result.report()`` unchanged.
    :meth:`to_json` / :meth:`from_json` round-trip the JSON-able
    subset (schema, name, params, report text).
    """

    def __init__(self, name, params, results):
        super().__init__(
            schema=REPORT_SCHEMA,
            name=str(name),
            params={str(k): _jsonable_param(v) for k, v in params.items()},
            results=results,
        )

    @property
    def schema(self):
        """The envelope schema identifier (:data:`REPORT_SCHEMA`)."""
        return self["schema"]

    @property
    def name(self):
        """The experiment's registry name."""
        return self["name"]

    @property
    def params(self):
        """The (JSON-friendly) parameters this run was invoked with."""
        return self["params"]

    @property
    def results(self):
        """The figure's rich result dataclass."""
        return self["results"]

    def report(self):
        """The figure's text report (tables the paper's figure plots)."""
        results = self["results"]
        if hasattr(results, "report"):
            return results.report()
        return str(results)

    # ------------------------------------------------------------------
    # report/v2 serialization
    # ------------------------------------------------------------------
    def to_dict(self):
        """JSON-able ``report/v2`` result document.

        Carries the envelope metadata and the rendered report text; the
        rich results object (numpy arrays and all) stays on the live
        envelope only.
        """
        return {
            "schema": REPORT_SCHEMA,
            "kind": "result",
            "name": self["name"],
            "params": self["params"],
            "report": self.report(),
        }

    def to_json(self, **kwargs):
        """:meth:`to_dict` as a JSON string (kwargs go to ``json.dumps``)."""
        kwargs.setdefault("default", str)
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_dict(cls, document):
        """Rebuild an envelope from a ``report/v2`` result document.

        The results object comes back as :class:`RehydratedResults`
        (report text only); ``from_dict(x.to_dict()).to_dict() ==
        x.to_dict()`` is the round-trip contract.
        """
        schema = document.get("schema")
        if schema != REPORT_SCHEMA:
            raise ConfigurationError(
                f"cannot load result document with schema {schema!r}; "
                f"expected {REPORT_SCHEMA!r}"
            )
        if document.get("kind") not in (None, "result"):
            raise ConfigurationError(
                f"expected a 'result' document, got kind "
                f"{document.get('kind')!r}"
            )
        return cls(document["name"], document.get("params", {}),
                   RehydratedResults(document.get("report")))

    @classmethod
    def from_json(cls, text):
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    def __getattr__(self, attr):
        try:
            results = self["results"]
        except KeyError:
            # Mid-unpickle the items are not restored yet; behave like a
            # plain attribute miss so pickle's protocol probes pass.
            raise AttributeError(attr) from None
        try:
            return getattr(results, attr)
        except AttributeError:
            raise AttributeError(
                f"{type(self).__name__!s} has no attribute {attr!r} "
                f"(and neither does its results object "
                f"{type(results).__name__!s})"
            ) from None


def experiment_result(name, params, results):
    """Wrap a runner's output in the normalized envelope.

    Every ``run_*`` entry point ends with this call; ``params`` is the
    dict of arguments the run actually used (defaults included), which
    is what makes sweep output self-describing.
    """
    return ExperimentResult(name, params, results)


@dataclasses.dataclass(frozen=True)
class Experiment:
    """One registered experiment: the unit the CLI and executor dispatch.

    Attributes
    ----------
    name:
        Registry key (``"fig12"``, ``"timing"``, …).
    runner:
        The ``run_*`` entry point.  Normalized signature: positional
        ``duration_s`` first, everything after it keyword-only, and
        ``seed`` / ``scenario`` accepted uniformly.
    description:
        One line for ``repro list``.
    defaults:
        Parameter name → default value, read off the runner's signature —
        inspectable without calling anything.
    """

    name: str
    runner: object
    description: str
    defaults: dict

    def run(self, request=None, **overrides):
        """Invoke the runner; returns the :class:`ExperimentResult` dict.

        Parameters
        ----------
        request:
            Optional :class:`repro.runtime.RunRequest`.  Its
            ``seed`` / ``duration_s`` / ``fault_plan`` / extra params
            are applied *where the runner accepts them* (a broadcast
            context must compose with runners of differing
            signatures), and its kernel backend is scoped around the
            run.
        overrides:
            Per-run parameters, laid over the request's.  Unknown
            names raise :class:`~repro.errors.UnknownParameterError`
            up front (rather than a ``TypeError`` from deep inside a
            worker); values set to ``None`` fall back to the runner
            default so callers can pass CLI values through
            unconditionally.
        """
        unknown = sorted(set(overrides) - set(self.defaults))
        if unknown:
            raise UnknownParameterError(
                f"experiment {self.name!r} has no parameter(s) "
                f"{', '.join(unknown)}; valid: {', '.join(self.defaults)}",
                unknown=unknown, valid=tuple(self.defaults),
            )
        kwargs = {}
        if request is not None:
            kwargs.update((k, v)
                          for k, v in request.experiment_params().items()
                          if k in self.defaults)
        kwargs.update(overrides)
        kwargs = {k: v for k, v in kwargs.items() if v is not None}
        if request is not None:
            with request.kernel_backend_scope():
                result = self.runner(**kwargs)
        else:
            result = self.runner(**kwargs)
        if not isinstance(result, ExperimentResult):
            result = ExperimentResult(self.name, kwargs, result)
        return result


_REGISTRY = {}


def register(name, runner, description):
    """Add (or replace) one experiment; returns the registry entry."""
    defaults = {}
    for param in inspect.signature(runner).parameters.values():
        if param.kind in (param.VAR_POSITIONAL, param.VAR_KEYWORD):
            continue
        defaults[param.name] = (None if param.default is param.empty
                                else param.default)
    entry = Experiment(name=str(name), runner=runner,
                       description=str(description), defaults=defaults)
    _REGISTRY[entry.name] = entry
    return entry


def get(name):
    """Look one experiment up; raises ``ConfigurationError`` if unknown."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {name!r}; "
            f"known: {', '.join(sorted(_REGISTRY))}"
        ) from None


def experiment_names():
    """All registered names, sorted."""
    return sorted(_REGISTRY)


def all_experiments():
    """All registry entries, sorted by name."""
    return [_REGISTRY[name] for name in experiment_names()]
