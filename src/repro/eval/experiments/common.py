"""Shared setup for the figure-reproduction experiments.

Every experiment runs on the same bench unless its figure demands
otherwise: a 6 m × 5 m room, the ambient (noise) speaker near one wall,
the IoT relay pasted 0.6 m from it, and the ear-device 3.5 m away —
mirroring the paper's Figure 2 arrangement and giving ≈8 ms of acoustic
lead.

The default LANC configuration (``default_config``) was chosen so the
simulated MUTE_Hollow lands in the paper's reported range (≈ −14 dB mean
against an open ear for white noise); experiments override only what
their figure varies.
"""

from __future__ import annotations

from ...acoustics.geometry import Point, Room
from ...core.scenario import Scenario
from ...core.system import MuteConfig, MuteSystem
from ...hardware.headphone import bose_qc35_earcup
from ...signals import (
    ConstructionNoise,
    FemaleVoice,
    MaleVoice,
    SyntheticMusic,
    WhiteNoise,
)

__all__ = [
    "DEFAULT_DURATION_S",
    "DEFAULT_LEVEL_RMS",
    "bench_scenario",
    "default_config",
    "build_system",
    "standard_sources",
    "AMBIENT_SPL_DB",
]

#: Length of each simulated recording.  Long enough for the adaptive
#: filter to converge and leave a clean steady-state measurement window.
DEFAULT_DURATION_S = 8.0

#: Digital RMS of the ambient noise at the source.  Under the library's
#: SPL calibration this puts ~67 dB SPL at the measurement microphone —
#: the level the paper maintains.
DEFAULT_LEVEL_RMS = 0.1

#: The paper's ambient level at the measurement mic.
AMBIENT_SPL_DB = 67.0


def bench_scenario(sample_rate=8000.0, absorption=0.3):
    """The Figure 2 bench.

    The ambient speaker stands near one wall and the relay is *taped on
    that wall* a little closer to it — the paper's arrangement.  The
    wall immediately behind the relay microphone produces a strong early
    reflection, which is what makes ``h_nr`` non-minimum-phase and the
    lookahead taps valuable (the Figure 16 effect).  The client sits
    ~3.6 m away, giving ≈9 ms of acoustic lead.
    """
    room = Room(6.0, 5.0, 3.0, absorption=absorption)
    return Scenario(
        room=room,
        source=Point(1.0, 0.8, 1.2),
        client=Point(4.5, 2.5, 1.2),
        relays=(Point(1.3, 0.25, 1.2),),
        sample_rate=sample_rate,
    )


def default_config(**overrides):
    """Baseline MUTE configuration used across experiments."""
    settings = {
        "n_future": 64,
        "n_past": 512,
        "mu": 0.1,
        "probe_noise_rms": 0.002,
    }
    settings.update(overrides)
    return MuteConfig(**settings)


def build_system(scenario=None, earcup=None, **config_overrides):
    """Convenience: scenario + config → :class:`MuteSystem`.

    ``earcup="bose"`` attaches the QC35 passive model (MUTE+Passive);
    ``earcup=None`` leaves the ear open (MUTE_Hollow).
    """
    scenario = scenario or bench_scenario()
    if earcup == "bose":
        earcup = bose_qc35_earcup(sample_rate=scenario.sample_rate)
    config = default_config(earcup=earcup, **config_overrides)
    return MuteSystem(scenario, config)


def standard_sources(sample_rate=8000.0, level_rms=DEFAULT_LEVEL_RMS,
                     seed=11):
    """The Figure 14 workload set, in the paper's order."""
    return {
        "male voice": MaleVoice(sample_rate=sample_rate, level_rms=level_rms,
                                seed=seed, speech_fraction=1.0),
        "female voice": FemaleVoice(sample_rate=sample_rate,
                                    level_rms=level_rms, seed=seed + 1,
                                    speech_fraction=1.0),
        "construction": ConstructionNoise(sample_rate=sample_rate,
                                          level_rms=level_rms, seed=seed + 2),
        "music": SyntheticMusic(sample_rate=sample_rate, level_rms=level_rms,
                                seed=seed + 3),
    }


def white_noise(sample_rate=8000.0, level_rms=DEFAULT_LEVEL_RMS, seed=7):
    """The Figure 12 workload ("most unpredictable of all noises")."""
    return WhiteNoise(sample_rate=sample_rate, level_rms=level_rms, seed=seed)
