"""Figure 6 — acoustic spectrum with and without speech.

The paper's Figure 6 shows the two spectra that make profiling possible:
(a) background noise while somebody talks over it, (b) background alone.
"LANC recognizes the profile and pre-loads its filter coefficients for
faster convergence."

This runner reproduces the figure's content from the two-speaker scene:
per-band spectra of the *reference stream* during speech-active and
speech-silent segments, the L1 signature distance between them (the
classifier's decision variable), and the classifier's accuracy on held
out segments.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ...core.profiles import ProfileClassifier, signature_distance
from ...signals import segments_from_mask
from ...utils.spectral import band_energy_signature, welch_psd
from ..reporting import format_table, sparkline
from .fig17_profiling import build_two_source_scene
from .registry import experiment_result

__all__ = ["Fig6Result", "run_fig6"]


@dataclasses.dataclass
class Fig6Result:
    """The two profile spectra and their separability."""

    freqs: np.ndarray
    psd_speech: np.ndarray          # panel (a): speech over background
    psd_background: np.ndarray      # panel (b): background alone
    signature_distance: float       # L1 between normalized signatures
    classifier_accuracy: float      # on held-out 120 ms segments

    def report(self):
        def rows(psd):
            out = []
            for lo in range(0, 4000, 500):
                mask = (self.freqs >= lo) & (self.freqs < lo + 500)
                db = 10 * np.log10(np.mean(psd[mask]) + 1e-20)
                out.append(f"{db:.1f}")
            return out

        bands = [f"{lo}-{lo + 500}" for lo in range(0, 4000, 500)]
        table = format_table(
            ["band (Hz)"] + bands,
            [["(a) speech present"] + rows(self.psd_speech),
             ["(b) background only"] + rows(self.psd_background)],
            title="Figure 6 — reference spectra per profile (dB)",
        )
        sparks = (
            f"(a) {sparkline(10 * np.log10(self.psd_speech + 1e-20))}\n"
            f"(b) {sparkline(10 * np.log10(self.psd_background + 1e-20))}"
        )
        return table + "\n" + sparks + (
            f"\nsignature L1 distance: {self.signature_distance:.2f}; "
            f"held-out segment accuracy (majority vote): "
            f"{self.classifier_accuracy * 100:.0f}%"
        )


def run_fig6(duration_s=16.0, *, seed=31, scenario=None, n_bands=12):
    """Compute the two profile spectra from the Figure 17 scene."""
    scene, __ = build_two_source_scene(duration_s=duration_s, seed=seed,
                                       scenario=scenario)
    fs = scene.sample_rate
    x = scene.reference
    mask = scene.speech_mask

    active = x[mask]
    quiet = x[~mask]
    freqs, psd_speech = welch_psd(active, fs, nperseg=512)
    __, psd_background = welch_psd(quiet, fs, nperseg=512)

    sig_speech = band_energy_signature(active, fs, n_bands=n_bands)
    sig_background = band_energy_signature(quiet, fs, n_bands=n_bands)
    distance = signature_distance(sig_speech, sig_background)

    # Train on the first half, classify held-out 120 ms segments.
    half = x.size // 2
    classifier = ProfileClassifier(sample_rate=fs, n_bands=n_bands,
                                   max_distance=1.5, energy_floor=1e-5,
                                   level_weight=1.0)
    train_mask = mask[:half]
    classifier.register("speech", x[:half][train_mask])
    classifier.register("background", x[:half][~train_mask])

    # Accuracy is evaluated per *segment* by majority vote over its
    # 120 ms windows: single windows inside a speech burst legitimately
    # land on syllable gaps (quiet → "background"), which is exactly why
    # the runtime switcher debounces with a dwell count.
    window = int(0.12 * fs)
    correct = total = 0
    for start, stop, is_speech in segments_from_mask(mask[half:]):
        seg = x[half + start: half + stop]
        votes = {"speech": 0, "background": 0}
        for offset in range(0, seg.size - window, window):
            label = classifier.classify(seg[offset: offset + window])
            if label in votes:
                votes[label] += 1
        if not any(votes.values()):
            continue
        total += 1
        majority = max(votes, key=votes.get)
        expected = "speech" if is_speech else "background"
        correct += int(majority == expected)

    result = Fig6Result(
        freqs=freqs,
        psd_speech=psd_speech,
        psd_background=psd_background,
        signature_distance=distance,
        classifier_accuracy=(correct / total) if total else 0.0,
    )
    return experiment_result(
        "fig6",
        dict(duration_s=duration_s, seed=seed, scenario=scenario,
             n_bands=n_bands),
        result,
    )
