"""Headline summary table — the paper's §1/§5.2 bullet numbers.

The paper has no numbered tables; its headline comparisons are stated in
the text.  This runner gathers them from the Figure 12 and Figure 17
experiments into one table:

* MUTE beats Bose_Active by 6.7 dB within 1 kHz;
* MUTE_Hollow is 0.9 dB behind Bose_Overall (open ear!);
* MUTE+Passive beats Bose_Overall by 8.9 dB;
* profiling adds ~3 dB for intermittent sounds.
"""

from __future__ import annotations

import dataclasses

from ..reporting import format_table
from .fig12_overall import run_fig12
from .fig17_profiling import run_fig17
from .registry import experiment_result

__all__ = ["HeadlineResult", "run_headline"]


@dataclasses.dataclass
class HeadlineResult:
    """Measured vs paper headline numbers."""

    mute_vs_bose_active_sub1k_db: float
    mute_hollow_vs_bose_overall_db: float
    mute_passive_vs_bose_overall_db: float
    profiling_gain_db: float

    PAPER = {
        "mute_vs_bose_active_sub1k_db": -6.7,
        "mute_hollow_vs_bose_overall_db": +0.9,
        "mute_passive_vs_bose_overall_db": -8.9,
        "profiling_gain_db": -3.0,
    }

    def rows(self):
        labels = {
            "mute_vs_bose_active_sub1k_db":
                "MUTE_Hollow vs Bose_Active, [0,1] kHz",
            "mute_hollow_vs_bose_overall_db":
                "MUTE_Hollow vs Bose_Overall, [0,4] kHz",
            "mute_passive_vs_bose_overall_db":
                "MUTE+Passive vs Bose_Overall, [0,4] kHz",
            "profiling_gain_db":
                "profile switching gain (intermittent noise)",
        }
        out = []
        for key, label in labels.items():
            measured = getattr(self, key)
            paper = self.PAPER[key]
            out.append((label, f"{measured:+.1f}", f"{paper:+.1f}",
                        "same sign" if measured * paper > 0 or paper == 0
                        else "SIGN FLIP"))
        return out

    def report(self):
        return format_table(
            ["comparison (negative = MUTE better)", "measured dB",
             "paper dB", "check"],
            self.rows(),
            title="Headline numbers — measured vs paper",
        )


def run_headline(duration_s=8.0, *, seed=7, scenario=None):
    """Regenerate every headline number from fresh runs."""
    fig12 = run_fig12(duration_s=duration_s, seed=seed, scenario=scenario)
    fig17 = run_fig17(duration_s=max(duration_s, 12.0), seed=seed + 24,
                      scenario=scenario)
    result = HeadlineResult(
        mute_vs_bose_active_sub1k_db=fig12.mute_vs_bose_active_sub1k_db,
        mute_hollow_vs_bose_overall_db=fig12.mute_hollow_vs_bose_overall_db,
        mute_passive_vs_bose_overall_db=fig12.mute_passive_vs_bose_overall_db,
        profiling_gain_db=fig17.mean_additional_db,
    )
    return experiment_result(
        "headline",
        dict(duration_s=duration_s, seed=seed, scenario=scenario),
        result,
    )
