"""Extension experiment — cancellation at the eardrum (paper §6).

Runs the standard bench and then asks the paper's follow-up question:
the error microphone reads near-zero, but what does the *eardrum* hear?
Three measurement points:

* **error microphone** — what LANC optimizes (the paper's headline);
* **eardrum, uncalibrated** — the same run heard through the ear-canal
  coupling with a realistic speaker-path mismatch (delay + tilt);
* **eardrum, KEMAR-calibrated** — the coupling with the mismatch dialed
  out, the upper bound ear-model design can recover.

Expected shape: the mismatch costs little at low frequency and
progressively more toward 4 kHz (phase error ∝ f·Δτ), and calibration
recovers it — the reason Bose designs against anatomical ear models.
"""

from __future__ import annotations

import dataclasses


from ...hardware.ear import EarCanalCoupling
from ..metrics import measure_cancellation
from ..reporting import format_curves
from .common import bench_scenario, build_system, white_noise
from .registry import experiment_result

__all__ = ["EarModelResult", "run_ear_model"]


@dataclasses.dataclass
class EarModelResult:
    """Cancellation curves at the three measurement points."""

    curves: dict
    mic_mean_db: float
    drum_mean_db: float
    calibrated_mean_db: float

    @property
    def mismatch_cost_db(self):
        """What ignoring the ear model costs (positive = worse at drum)."""
        return self.drum_mean_db - self.mic_mean_db

    def report(self):
        table = format_curves(list(self.curves.values()), title=(
            "Extension — cancellation at the eardrum vs the error mic"
        ))
        return table + (
            f"\near-model mismatch cost: {self.mismatch_cost_db:+.1f} dB; "
            f"KEMAR-style calibration recovers to "
            f"{self.calibrated_mean_db:.1f} dB "
            f"(mic reference: {self.mic_mean_db:.1f} dB)"
        )


def run_ear_model(duration_s=8.0, *, seed=7, scenario=None,
                  settle_fraction=0.5, mismatch_delay_s=35e-6,
                  mismatch_tilt_db=1.5):
    """Run one bench take; evaluate at mic and (un)calibrated drum."""
    scenario = scenario or bench_scenario()
    fs = scenario.sample_rate
    system = build_system(scenario)
    noise = white_noise(sample_rate=fs, seed=seed).generate(duration_s)

    prepared = system.prepare(noise)
    lanc = system.make_filter(n_future=prepared.n_future)
    result = lanc.run(prepared.reference, prepared.disturbance_at_ear,
                      secondary_path_true=prepared.secondary_path_true)

    # Decompose the mic signal into its two components: ambient d(t) and
    # the anti-noise as heard at the mic (= error − ambient).
    ambient = prepared.disturbance_at_ear
    anti_at_mic = result.error - ambient

    coupling = EarCanalCoupling(sample_rate=fs,
                                mismatch_delay_s=mismatch_delay_s,
                                mismatch_tilt_db=mismatch_tilt_db)
    calibrated = coupling.calibrated()

    drum_open = coupling.ambient_to_drum(prepared.disturbance_open)
    drum_residual = coupling.drum_pressure(ambient, anti_at_mic)
    drum_calibrated = calibrated.drum_pressure(ambient, anti_at_mic)

    kwargs = dict(sample_rate=fs, settle_fraction=settle_fraction)
    curves = {
        "at error mic": measure_cancellation(
            prepared.disturbance_open, result.error,
            label="at error mic", **kwargs),
        "at eardrum": measure_cancellation(
            drum_open, drum_residual, label="at eardrum", **kwargs),
        "at eardrum, calibrated": measure_cancellation(
            drum_open, drum_calibrated,
            label="at eardrum, calibrated", **kwargs),
    }
    result = EarModelResult(
        curves=curves,
        mic_mean_db=curves["at error mic"].mean_db(),
        drum_mean_db=curves["at eardrum"].mean_db(),
        calibrated_mean_db=curves["at eardrum, calibrated"].mean_db(),
    )
    return experiment_result(
        "ear",
        dict(duration_s=duration_s, seed=seed, scenario=scenario,
             settle_fraction=settle_fraction,
             mismatch_delay_s=mismatch_delay_s,
             mismatch_tilt_db=mismatch_tilt_db),
        result,
    )
