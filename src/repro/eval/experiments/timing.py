"""Timing analysis — Figure 5 and Equations 3–4 as numbers.

Two questions the paper's §3.1 answers, reproduced quantitatively:

1. Does a conventional headphone meet its ~30 µs deadline?  (No: the
   pipeline is ~3× over budget, so the anti-noise plays late.)
2. How much lookahead does MUTE get as the relay's distance advantage
   grows?  (≈3 ms per meter, Eq. 4 — enough to subsume every delay.)
"""

from __future__ import annotations

import dataclasses

from ...acoustics.constants import CONVENTIONAL_ANC_BUDGET_S
from ...core.lookahead import LookaheadBudget, lookahead_seconds
from ...hardware.dsp_board import fast_dsp, headphone_dsp, tms320c6713
from ..reporting import format_table
from .registry import experiment_result

__all__ = ["TimingResult", "run_timing"]


@dataclasses.dataclass
class TimingResult:
    """Deadline verdicts per device and the Eq. 4 lookahead table."""

    device_rows: list      # (name, pipeline µs, budget/lookahead µs, verdict, lag µs)
    distance_rows: list    # (advantage m, lookahead ms, future taps @8k)
    headphone_overrun_ratio: float   # paper: "easily 3x"

    def report(self):
        devices = format_table(
            ["device", "pipeline (µs)", "available lookahead (µs)",
             "meets Eq.3?", "anti-noise lag (µs)"],
            self.device_rows,
            title="Figure 5 / Eq. 3 — timing budgets",
        )
        distances = format_table(
            ["relay advantage d_e - d_r (m)", "lookahead (ms)",
             "future taps at 8 kHz"],
            self.distance_rows,
            title="Eq. 4 — lookahead vs relay placement",
        )
        return (
            devices
            + f"\nheadphone pipeline / acoustic budget = "
              f"{self.headphone_overrun_ratio:.1f}x (paper: ~3x)\n\n"
            + distances
        )


def run_timing(duration_s=None, *, seed=0, scenario=None,
               bench_lead_s=8.5e-3):
    """Build both tables from the hardware models.

    The analysis is closed-form, so ``duration_s`` and ``seed`` are
    accepted only for signature uniformity; ``scenario`` (if given)
    supplies the sample rate for the Eq.-4 future-tap column.
    """
    del duration_s, seed  # closed-form; accepted for uniformity
    sample_rate = scenario.sample_rate if scenario is not None else 8000.0
    headphone = headphone_dsp()
    mute_board = tms320c6713()
    fast = fast_dsp()

    device_rows = []
    cases = [
        (f"{headphone.name} (conventional)", headphone,
         CONVENTIONAL_ANC_BUDGET_S),
        (f"{mute_board.name} (MUTE bench)", mute_board, bench_lead_s),
        (f"{fast.name} (MUTE, faster DSP)", fast, bench_lead_s),
    ]
    for label, board, lookahead_s in cases:
        budget = LookaheadBudget(
            acoustic_lead_s=lookahead_s,
            pipeline_latency_s=board.total_latency_s,
        )
        device_rows.append((
            label,
            f"{board.total_latency_s * 1e6:.0f}",
            f"{lookahead_s * 1e6:.0f}",
            "yes" if budget.meets_deadline else "NO",
            f"{budget.playback_lag_s * 1e6:.0f}",
        ))

    distance_rows = []
    for advantage_m in (0.25, 0.5, 1.0, 2.0, 3.0):
        lead = lookahead_seconds(advantage_m, 0.0)
        distance_rows.append((
            f"{advantage_m:.2f}",
            f"{lead * 1e3:.2f}",
            int(lead * sample_rate),
        ))

    result = TimingResult(
        device_rows=device_rows,
        distance_rows=distance_rows,
        headphone_overrun_ratio=(headphone.total_latency_s
                                 / CONVENTIONAL_ANC_BUDGET_S),
    )
    return experiment_result(
        "timing",
        dict(scenario=scenario, sample_rate=sample_rate,
             bench_lead_s=bench_lead_s),
        result,
    )
