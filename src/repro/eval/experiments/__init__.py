"""Per-figure experiment runners (Figures 5, 7-8, 12-19 + headline).

Every runner is registered with the :mod:`~repro.eval.experiments.registry`
so the CLI, the :mod:`repro.runtime` executor, and the benchmarks all
dispatch through one API::

    from repro.eval import experiments

    exp = experiments.get("fig16")          # Experiment entry
    exp.defaults                            # inspectable params
    result = exp.run(duration_s=5.0)        # {name, params, results}

Runner signatures are normalized: ``duration_s`` first (positional OK),
everything after keyword-only, and ``seed`` / ``scenario`` accepted
uniformly; each returns an
:class:`~repro.eval.experiments.registry.ExperimentResult` envelope.
"""

from .common import (
    AMBIENT_SPL_DB,
    DEFAULT_DURATION_S,
    DEFAULT_LEVEL_RMS,
    bench_scenario,
    build_system,
    default_config,
    standard_sources,
)
from .convergence import ConvergenceResult, run_convergence
from .fig06_profiles import Fig6Result, run_fig6
from .ext_chaos import ChaosResult, run_chaos
from .ext_ear_model import EarModelResult, run_ear_model
from .ext_edge import EdgeResult, run_edge
from .ext_mobility import MobilityResult, run_mobility
from .ext_multisource import MultiSourceResult, run_multisource
from .ext_resilience import ResilienceResult, run_resilience
from .ext_serving import ServingResult, run_serving
from .ext_wideband import WidebandResult, run_wideband
from .fig12_overall import Fig12Result, run_fig12
from .fig13_response import Fig13Result, run_fig13
from .fig14_sound_types import Fig14Result, run_fig14
from .fig15_ratings import Fig15Result, run_fig15
from .fig16_lookahead import Fig16Result, run_fig16
from .fig17_profiling import Fig17Result, run_fig17
from .fig18_gccphat import Fig18Result, run_fig18
from .fig19_relay_map import Fig19Result, relay_map_scenario, run_fig19
from .headline import HeadlineResult, run_headline
from .registry import (
    Experiment,
    ExperimentResult,
    all_experiments,
    experiment_names,
    experiment_result,
    get,
    register,
)
from .timing import TimingResult, run_timing

#: name -> (runner, one-line description) — the single source of truth
#: behind ``repro list``, ``repro run``/``run-all``, and the benchmarks.
_CATALOG = (
    ("fig6", run_fig6, "profile spectra (speech vs background)"),
    ("fig12", run_fig12, "overall cancellation, 4 schemes"),
    ("fig13", run_fig13, "speaker+mic frequency response"),
    ("fig14", run_fig14, "four real-world sound types"),
    ("fig15", run_fig15, "simulated listener ratings"),
    ("fig16", run_fig16, "cancellation vs lookahead"),
    ("fig17", run_fig17, "predictive profile switching"),
    ("fig18", run_fig18, "GCC-PHAT lookahead sign"),
    ("fig19", run_fig19, "relay association map"),
    ("headline", run_headline, "the paper's headline numbers"),
    ("timing", run_timing, "Eq. 3/4 timing analysis"),
    ("convergence", run_convergence, "Figures 7-8 timelines"),
    ("multisource", run_multisource, "extension: two simultaneous sources"),
    ("mobility", run_mobility, "extension: head mobility"),
    ("ear", run_ear_model, "extension: cancellation at the eardrum"),
    ("edge", run_edge, "extension: multi-user edge service"),
    ("wideband", run_wideband,
     "extension: beyond the 4 kHz cap (fast DSP)"),
    ("resilience", run_resilience,
     "extension: fault injection & graceful degradation"),
    ("serving", run_serving,
     "extension: multi-session serving runtime (batched kernels)"),
    ("chaos", run_chaos,
     "extension: chaos soak of the crash-safe serving layer"),
)

for _name, _runner, _description in _CATALOG:
    register(_name, _runner, _description)
del _name, _runner, _description

__all__ = [
    "Experiment",
    "ExperimentResult",
    "all_experiments",
    "experiment_names",
    "experiment_result",
    "get",
    "register",
    "AMBIENT_SPL_DB",
    "DEFAULT_DURATION_S",
    "DEFAULT_LEVEL_RMS",
    "bench_scenario",
    "build_system",
    "default_config",
    "standard_sources",
    "ChaosResult",
    "run_chaos",
    "ConvergenceResult",
    "run_convergence",
    "Fig6Result",
    "run_fig6",
    "EarModelResult",
    "run_ear_model",
    "EdgeResult",
    "run_edge",
    "MobilityResult",
    "run_mobility",
    "MultiSourceResult",
    "run_multisource",
    "ResilienceResult",
    "run_resilience",
    "ServingResult",
    "run_serving",
    "WidebandResult",
    "run_wideband",
    "Fig12Result",
    "run_fig12",
    "Fig13Result",
    "run_fig13",
    "Fig14Result",
    "run_fig14",
    "Fig15Result",
    "run_fig15",
    "Fig16Result",
    "run_fig16",
    "Fig17Result",
    "run_fig17",
    "Fig18Result",
    "run_fig18",
    "Fig19Result",
    "relay_map_scenario",
    "run_fig19",
    "HeadlineResult",
    "run_headline",
    "TimingResult",
    "run_timing",
]
