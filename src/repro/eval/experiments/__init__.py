"""Per-figure experiment runners (Figures 5, 7-8, 12-19 + headline)."""

from .common import (
    AMBIENT_SPL_DB,
    DEFAULT_DURATION_S,
    DEFAULT_LEVEL_RMS,
    bench_scenario,
    build_system,
    default_config,
    standard_sources,
)
from .convergence import ConvergenceResult, run_convergence
from .fig06_profiles import Fig6Result, run_fig6
from .ext_ear_model import EarModelResult, run_ear_model
from .ext_edge import EdgeResult, run_edge
from .ext_mobility import MobilityResult, run_mobility
from .ext_multisource import MultiSourceResult, run_multisource
from .ext_wideband import WidebandResult, run_wideband
from .fig12_overall import Fig12Result, run_fig12
from .fig13_response import Fig13Result, run_fig13
from .fig14_sound_types import Fig14Result, run_fig14
from .fig15_ratings import Fig15Result, run_fig15
from .fig16_lookahead import Fig16Result, run_fig16
from .fig17_profiling import Fig17Result, run_fig17
from .fig18_gccphat import Fig18Result, run_fig18
from .fig19_relay_map import Fig19Result, relay_map_scenario, run_fig19
from .headline import HeadlineResult, run_headline
from .timing import TimingResult, run_timing

__all__ = [
    "AMBIENT_SPL_DB",
    "DEFAULT_DURATION_S",
    "DEFAULT_LEVEL_RMS",
    "bench_scenario",
    "build_system",
    "default_config",
    "standard_sources",
    "ConvergenceResult",
    "run_convergence",
    "Fig6Result",
    "run_fig6",
    "EarModelResult",
    "run_ear_model",
    "EdgeResult",
    "run_edge",
    "MobilityResult",
    "run_mobility",
    "MultiSourceResult",
    "run_multisource",
    "WidebandResult",
    "run_wideband",
    "Fig12Result",
    "run_fig12",
    "Fig13Result",
    "run_fig13",
    "Fig14Result",
    "run_fig14",
    "Fig15Result",
    "run_fig15",
    "Fig16Result",
    "run_fig16",
    "Fig17Result",
    "run_fig17",
    "Fig18Result",
    "run_fig18",
    "Fig19Result",
    "relay_map_scenario",
    "run_fig19",
    "HeadlineResult",
    "run_headline",
    "TimingResult",
    "run_timing",
]
