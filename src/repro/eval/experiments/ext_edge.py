"""Extension experiment — the public edge service (paper §4.3).

One backend DSP server serves several MUTE users, each with a relay near
their own noise source.  The server can fully adapt ``capacity`` clients;
past that it time-shares adaptation round-robin.  The experiment sweeps
the subscriber count and reports per-client cancellation — the
"computation becomes the bottleneck with multiple users" sentence as a
curve.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ...acoustics.geometry import Point, Room
from ...acoustics.rir import RirSettings
from ...core.edge import EdgeAncService, EdgeClient
from ...core.scenario import Scenario
from ...core.secondary_path import estimate_secondary_path
from ...errors import LookaheadError
from ...hardware.dsp_board import tms320c6713
from ...signals import MaleVoice
from ..reporting import format_table
from .registry import experiment_result

__all__ = ["EdgeResult", "run_edge", "edge_hall_layout"]


def edge_hall_layout(n_clients, sample_rate=8000.0):
    """A hall with ``n_clients`` user/noise/relay triples along its length.

    Every user sits across the hall from their own noise source, with a
    ceiling relay near that source (Figure 10b's relays-on-the-ceiling).
    """
    if not 1 <= n_clients <= 6:
        raise ValueError("layout supports 1..6 clients")
    room = Room(14.0, 6.0, 3.5, absorption=0.35)
    triples = []
    for i in range(n_clients):
        x = 1.5 + i * 2.2
        source = Point(x, 0.8, 1.4)
        relay = Point(x + 0.2, 0.6, 2.8)
        client = Point(x + 0.4, 5.0, 1.2)
        triples.append((source, relay, client))
    return room, triples


def _prepare_client(room, source, relay, client, name, waveform,
                    sample_rate, seed):
    scenario = Scenario(
        room=room, source=source, client=client, relays=(relay,),
        sample_rate=sample_rate, rir_settings=RirSettings(max_order=1),
    )
    channels = scenario.build_channels()
    lead = channels.acoustic_lead_samples[0]
    pipeline = tms320c6713().total_latency_s * sample_rate
    n_future = int(np.floor(lead - pipeline))
    if n_future <= 0:
        raise LookaheadError(f"client {name}: no usable lookahead")
    capture = channels.h_nr[0].apply(waveform)
    reference = np.zeros_like(capture)
    reference[lead:] = capture[: capture.size - lead]
    s_true = channels.h_se.ir
    estimate = estimate_secondary_path(
        s_true, n_taps=min(s_true.size, 96), probe_duration_s=1.0,
        sample_rate=sample_rate, ambient_noise_rms=0.002, seed=seed)
    return EdgeClient(
        name=name,
        reference=reference,
        disturbance=channels.h_ne.apply(waveform),
        secondary_true=s_true,
        secondary_estimate=estimate.impulse_response,
        n_future=min(n_future, 48),
    )


@dataclasses.dataclass
class EdgeResult:
    """Per-client cancellation for each subscriber count."""

    by_count: dict        # n_clients -> EdgeServiceResult
    capacity: int

    def report(self):
        rows = []
        for n, service in sorted(self.by_count.items()):
            rows.append((
                n,
                f"{service.adaptation_duty:.2f}",
                f"{service.mean_cancellation_db():.1f}",
                f"{min(service.cancellation_db.values()):.1f}",
            ))
        return format_table(
            ["subscribers", "adaptation duty", "mean dB", "worst client dB"],
            rows,
            title=(f"Extension — edge service with adaptation capacity "
                   f"{self.capacity}"),
        )

    def degradation_db(self):
        """Mean-cancellation change from the smallest to largest count."""
        counts = sorted(self.by_count)
        return (self.by_count[counts[-1]].mean_cancellation_db()
                - self.by_count[counts[0]].mean_cancellation_db())


def run_edge(duration_s=6.0, *, seed=9, scenario=None, capacity=2,
             client_counts=(2, 4, 6)):
    """Sweep the subscriber count at a fixed server capacity.

    The workload is continuous speech (one talker per user's noise
    source): non-stationary, so the time-shared adaptation duty matters
    *persistently*, not just during initial convergence.  (With
    stationary noise the filters converge once and duty barely shows —
    we verified that during development.)

    The hall layout is generated per subscriber count, so ``scenario``
    is accepted only for signature uniformity.
    """
    del scenario  # layout generated per client count
    service = EdgeAncService(capacity=capacity, n_past=256, mu=0.3)
    fs = 8000.0
    by_count = {}
    for n_clients in client_counts:
        room, triples = edge_hall_layout(n_clients, sample_rate=fs)
        clients = []
        for i, (source, relay, client) in enumerate(triples):
            waveform = MaleVoice(sample_rate=fs, level_rms=0.12,
                                 seed=seed + i, speech_fraction=1.0) \
                .generate(duration_s)
            clients.append(_prepare_client(
                room, source, relay, client, f"user{i + 1}", waveform,
                fs, seed + 100 + i))
        by_count[n_clients] = service.serve(clients)
    return experiment_result(
        "edge",
        dict(duration_s=duration_s, seed=seed, capacity=capacity,
             client_counts=tuple(client_counts)),
        EdgeResult(by_count=by_count, capacity=capacity),
    )
