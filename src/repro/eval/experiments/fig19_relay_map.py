"""Figure 19 — relay association across noise-source positions.

The client sits at the room center with three relays around the edges.
For each candidate noise-source position the client runs GCC-PHAT
against every relay and associates with the one offering the largest
positive lookahead; sources closer to the client than to any relay must
yield *no* association.  The paper's map shows both behaviors.
"""

from __future__ import annotations

import dataclasses

from ...acoustics.geometry import Point, Room
from ...acoustics.rir import RirSettings
from ...core.relay_selection import RelaySelector
from ...core.scenario import Scenario
from ...core.system import MuteConfig, MuteSystem
from ...signals import WhiteNoise
from ..reporting import format_table
from .registry import experiment_result

__all__ = ["Fig19Result", "run_fig19", "relay_map_scenario"]


def relay_map_scenario(sample_rate=8000.0):
    """Client at room center, three relays around the edges (Figure 19)."""
    room = Room(6.0, 5.0, 3.0, absorption=0.5)
    client = Point(3.0, 2.5, 1.2)
    relays = (
        Point(0.6, 0.6, 1.4),    # relay 1: near corner
        Point(5.4, 0.8, 1.4),    # relay 2: opposite corner
        Point(3.0, 4.4, 1.4),    # relay 3: mid far wall
    )
    # Any source position works for construction; experiments replace it.
    return Scenario(room=room, source=Point(1.0, 1.0, 1.3), client=client,
                    relays=relays, sample_rate=sample_rate,
                    rir_settings=RirSettings(max_order=2))


def default_source_positions():
    """Source positions: two near each relay, two near the client."""
    return {
        "near relay 1 (a)": Point(0.9, 1.0, 1.3),
        "near relay 1 (b)": Point(1.3, 0.7, 1.3),
        "near relay 2 (a)": Point(5.1, 1.2, 1.3),
        "near relay 2 (b)": Point(4.9, 0.7, 1.3),
        "near relay 3 (a)": Point(3.2, 4.1, 1.3),
        "near relay 3 (b)": Point(2.6, 4.2, 1.3),
        "near client (a)": Point(3.1, 2.2, 1.3),
        "near client (b)": Point(2.7, 2.8, 1.3),
    }


@dataclasses.dataclass
class Fig19Result:
    """Association decision per source position."""

    decisions: dict       # position label -> selected relay index or None
    expected: dict        # position label -> geometric expectation
    measurements: dict    # position label -> {relay: LookaheadMeasurement}

    def accuracy(self):
        """Fraction of positions where selection matches geometry."""
        hits = sum(
            1 for label in self.decisions
            if self.decisions[label] == self.expected[label]
        )
        return hits / len(self.decisions)

    def report(self):
        rows = []
        for label in self.decisions:
            got = self.decisions[label]
            want = self.expected[label]
            rows.append((
                label,
                "none" if got is None else f"relay {got + 1}",
                "none" if want is None else f"relay {want + 1}",
                "ok" if got == want else "MISS",
            ))
        table = format_table(
            ["source position", "selected", "expected (geometry)", ""],
            rows,
            title="Figure 19 — relay association map",
        )
        return table + f"\naccuracy: {self.accuracy() * 100:.0f}%"


def _geometric_expectation(scenario, source, min_margin_m=0.0):
    """Which relay geometry says should win (None if client is nearest)."""
    d_client = source.distance_to(scenario.client)
    best, best_lead = None, min_margin_m
    for i, relay in enumerate(scenario.relays):
        lead_m = d_client - source.distance_to(relay)
        if lead_m > best_lead:
            best, best_lead = i, lead_m
    return best


def run_fig19(duration_s=1.5, *, seed=17, scenario=None, positions=None):
    """Sweep source positions; compare selection against geometry."""
    scenario = scenario or relay_map_scenario()
    positions = positions or default_source_positions()
    selector = RelaySelector(sample_rate=scenario.sample_rate,
                             min_confidence=3.0)
    noise_src = WhiteNoise(sample_rate=scenario.sample_rate, level_rms=0.1,
                           seed=seed)
    noise = noise_src.generate(duration_s)

    decisions, expected, measurements = {}, {}, {}
    for label, source in positions.items():
        scen = scenario.with_source(source)
        system = MuteSystem(scen, MuteConfig(probe_secondary=False))
        forwarded, ear = system.forwarded_and_ear_signals(noise)
        best, measured = selector.select(forwarded, ear, max_lag_s=0.02)
        decisions[label] = best
        expected[label] = _geometric_expectation(scen, source)
        measurements[label] = measured
    return experiment_result(
        "fig19",
        dict(duration_s=duration_s, seed=seed, scenario=scenario,
             positions=None if positions is None else sorted(positions)),
        Fig19Result(decisions=decisions, expected=expected,
                    measurements=measurements),
    )
