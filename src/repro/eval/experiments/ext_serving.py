"""Extension experiment: the multi-session serving runtime.

Not a paper figure — a scaling extension.  MUTE's lookahead (the RF
reference outrunning sound, §3.1) is exactly what makes *server-side*
noise cancellation viable: a whole block's deadline fits inside the
lookahead budget, so one machine can advance many user sessions in
lock-step through the batched cross-session kernel
(:mod:`repro.serving`).  This experiment serves ``sessions``
independent synthetic users — optionally with a fault plan on every
other session — both to measure cancellation under batch serving and
to lock the serial == batched bit-identity contract into the
experiment suite.

The resolved kernel-backend name is recorded in the results, which
makes this experiment the end-to-end probe for
:class:`~repro.runtime.RunRequest` propagation: a request's
``kernel_backend`` must reach worker processes, and its ``fault_plan``
must reach the sessions (``tests/test_runtime.py`` asserts both).
"""

from __future__ import annotations

import dataclasses

from ...core.adaptive import kernels
from ...serving import ServerConfig, SessionServer, SessionWorkload
from .registry import experiment_result

__all__ = ["ServingResult", "run_serving"]


@dataclasses.dataclass
class ServingResult:
    """Results of one ``serving`` experiment run."""

    sessions: int
    batched: bool
    block_size: int
    kernel_backend: str        #: backend name resolved inside the run
    faulted_sessions: int      #: sessions that carried the fault plan
    statuses: dict             #: status -> count
    digests: dict              #: session name -> residual SHA-256
    cancellations_db: dict     #: session name -> mean cancellation
    mode_fractions: dict       #: session name -> degradation occupancy
    shed: int
    serving_report: object     #: the full ServingReport

    def mean_cancellation_db(self):
        """Mean cancellation over sessions that produced residual."""
        values = [v for v in self.cancellations_db.values() if v != 0.0]
        return sum(values) / len(values) if values else 0.0

    def report(self):
        """Deterministic text summary (no wall-clock values)."""
        mode = "batched" if self.batched else "serial"
        lines = [
            f"serving: {self.sessions} session(s), {mode}, "
            f"block={self.block_size}, backend={self.kernel_backend}, "
            f"{self.faulted_sessions} faulted, shed={self.shed}",
            f"mean cancellation {self.mean_cancellation_db():.1f} dB",
        ]
        for name in sorted(self.digests):
            modes = ", ".join(
                f"{m}={f:.2f}"
                for m, f in sorted(self.mode_fractions[name].items()))
            lines.append(
                f"  {name:<12} {self.cancellations_db[name]:6.1f} dB  "
                f"digest={self.digests[name][:12]}  [{modes}]"
            )
        return "\n".join(lines)


def run_serving(duration_s=1.0, *, seed=0, scenario=None, sessions=8,
                fault_plan=None, batched=True, block_size=256):
    """Serve ``sessions`` concurrent synthetic users through the runtime.

    Parameters
    ----------
    duration_s:
        Simulated seconds of audio per session.
    seed:
        Base seed; session ``i`` uses ``seed + i`` (independent users).
    scenario:
        Accepted for signature uniformity with the other runners;
        serving synthesizes per-user workloads and does not use it.
    sessions:
        Number of concurrent device sessions.
    fault_plan:
        Optional :class:`~repro.faults.FaultPlan` applied to every
        *other* session (odd indices) — a mixed healthy/degraded
        batch, exercising per-row fault isolation.
    batched:
        Batched (one stacked kernel call per block) vs serial
        scheduling; outputs are bit-identical either way.
    block_size:
        Lock-step block length in samples.
    """
    del scenario  # synthesized workloads; kept for uniform signatures
    sessions = int(sessions)
    config = ServerConfig(batched=bool(batched),
                          block_size=int(block_size),
                          max_sessions=max(sessions, 1))
    server = SessionServer(config)
    faulted = 0
    for i in range(sessions):
        plan = fault_plan if (fault_plan is not None and i % 2 == 1) \
            else None
        faulted += plan is not None
        server.submit(SessionWorkload.synthetic(
            f"user{i}", duration_s=duration_s, seed=int(seed) + i,
            sample_rate=config.session.sample_rate, fault_plan=plan))
    serving_report = server.run_until_drained()

    results = ServingResult(
        sessions=sessions,
        batched=bool(batched),
        block_size=int(block_size),
        kernel_backend=kernels.resolve_backend_name(),
        faulted_sessions=faulted,
        statuses=serving_report.statuses(),
        digests=serving_report.digests(),
        cancellations_db={r.name: r.cancellation_db()
                          for r in serving_report.results},
        mode_fractions={r.name: r.mode_fractions
                        for r in serving_report.results},
        shed=serving_report.shed,
        serving_report=serving_report,
    )
    return experiment_result("serving", {
        "duration_s": duration_s, "seed": seed, "sessions": sessions,
        "fault_plan": fault_plan, "batched": batched,
        "block_size": block_size,
    }, results)
