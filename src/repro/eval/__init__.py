"""Evaluation harness: metrics, rating model, reporting, experiments."""

from .metrics import (
    CancellationCurve,
    additional_cancellation_db,
    band_means,
    convergence_envelope,
    measure_cancellation,
)
from .rating import RatingModel, SubjectRating, a_weighted_level_db
from .reporting import format_curves, format_series, format_table, sparkline

__all__ = [
    "CancellationCurve",
    "additional_cancellation_db",
    "band_means",
    "convergence_envelope",
    "measure_cancellation",
    "RatingModel",
    "SubjectRating",
    "a_weighted_level_db",
    "format_curves",
    "format_series",
    "format_table",
    "sparkline",
]
