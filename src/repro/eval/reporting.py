"""ASCII reporting: the benches print the same rows/series the paper plots.

No plotting dependencies are available offline, so every figure is
rendered as a table of (frequency, dB) rows plus, where it helps, a
small ASCII sparkline — enough to read off who wins, by how much, and
where the crossovers fall.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError

__all__ = ["format_table", "format_series", "sparkline", "format_curves"]

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def format_table(headers, rows, title=None):
    """Fixed-width table; all cells stringified."""
    headers = [str(h) for h in headers]
    str_rows = [[str(c) for c in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def sparkline(values, lo=None, hi=None):
    """Unicode sparkline of a numeric series (NaN renders as space)."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        return ""
    nan_mask = np.isnan(values)
    if nan_mask.all():
        return " " * values.size
    values = np.where(nan_mask, np.nanmin(values), values)
    lo = float(np.min(values)) if lo is None else lo
    hi = float(np.max(values)) if hi is None else hi
    if hi <= lo:
        return _SPARK_CHARS[0] * values.size
    scaled = (values - lo) / (hi - lo)
    indices = np.clip((scaled * (len(_SPARK_CHARS) - 1)).round().astype(int),
                      0, len(_SPARK_CHARS) - 1)
    chars = [_SPARK_CHARS[i] for i in indices]
    for i in np.flatnonzero(nan_mask):
        chars[i] = " "
    return "".join(chars)


def format_series(label, freqs, values_db, step_hz=500.0):
    """One figure line as banded rows plus a sparkline."""
    freqs = np.asarray(freqs, dtype=float)
    values_db = np.asarray(values_db, dtype=float)
    rows = []
    edges = np.arange(0.0, float(freqs[-1]) + step_hz, step_hz)
    for lo, hi in zip(edges[:-1], edges[1:]):
        mask = (freqs >= lo) & (freqs < hi) & ~np.isnan(values_db)
        if np.any(mask):
            rows.append((f"{lo:.0f}-{hi:.0f} Hz",
                         f"{float(np.mean(values_db[mask])):.1f}"))
    table = format_table(["band", f"{label} (dB)"], rows)
    return table + "\n" + label + " " + sparkline(values_db)


def format_curves(curves, step_hz=500.0, title=None):
    """Several :class:`CancellationCurve`-likes side by side (one figure)."""
    if not curves:
        raise ConfigurationError("no curves to format")
    freqs = np.asarray(curves[0].freqs, dtype=float)
    edges = np.arange(0.0, float(freqs[-1]) + step_hz, step_hz)
    headers = ["band (Hz)"] + [c.label for c in curves]
    rows = []
    for lo, hi in zip(edges[:-1], edges[1:]):
        row = [f"{lo:.0f}-{hi:.0f}"]
        for curve in curves:
            f = np.asarray(curve.freqs, dtype=float)
            v = np.asarray(curve.values_db, dtype=float)
            mask = (f >= lo) & (f < hi) & ~np.isnan(v)
            row.append(f"{float(np.mean(v[mask])):.1f}" if np.any(mask)
                       else "-")
        rows.append(row)
    mean_row = ["mean"] + [f"{c.mean_db():.1f}" for c in curves]
    rows.append(mean_row)
    return format_table(headers, rows, title=title)
