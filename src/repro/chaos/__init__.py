"""repro.chaos — deterministic chaos testing of the serving runtime.

The fault layer (:mod:`repro.faults`) breaks the *signal*; this package
breaks the *process*: scheduled session crashes
(:class:`~repro.errors.InjectedCrashError`) and deadline stalls,
injected into :mod:`repro.serving` to prove the crash-safety layer —
checkpoints, supervised restarts, circuit breakers — actually holds.
Full guide: ``docs/RESILIENCE.md``.

Two modules:

* :mod:`~repro.chaos.plan` — :class:`ChaosPlan` (frozen,
  content-addressed crash/stall schedules, the
  :class:`~repro.faults.FaultPlan` of the process domain) and
  :class:`SessionChaosInjector` (the per-session applicator with
  one-shot, replay-safe semantics);
* :mod:`~repro.chaos.soak` — :func:`run_soak`: baseline the fleet,
  re-serve it under chaos, and verify every session ends recovered
  **bit-identically** or deliberately shed; emits the
  ``repro.chaos.soak/v1`` JSON report.

Minimal soak::

    from repro import chaos

    report = chaos.run_soak(sessions=6, duration_s=0.3, seed=7)
    assert report.ok()
    print(report.report())

``python -m repro chaos-soak`` drives the same loop from the CLI (CI
runs it as a smoke job and uploads the JSON report); the ``chaos``
experiment wraps it for the experiment registry and the runtime
executor.

Layering note: :mod:`repro.serving` never imports this package — a
session carries its injector as an opaque duck-typed attachment, so
the serving layer stays chaos-agnostic.
"""

from __future__ import annotations

from .plan import (
    ChaosEvent,
    ChaosPlan,
    CrashAt,
    SessionChaosInjector,
    StallAt,
    soak_plans,
)
from .soak import SOAK_SCHEMA, SoakReport, run_soak

__all__ = [
    "ChaosEvent",
    "CrashAt",
    "StallAt",
    "ChaosPlan",
    "SessionChaosInjector",
    "soak_plans",
    "SOAK_SCHEMA",
    "SoakReport",
    "run_soak",
]
