"""The chaos soak harness: crash a serving run on purpose, prove recovery.

:func:`run_soak` is the end-to-end verification loop of the crash-safety
layer (``docs/RESILIENCE.md``):

1. serve a fleet of synthetic sessions **without** chaos — the baseline
   residual digests;
2. serve the *same* fleet under a supervised server with a
   deterministic :func:`~repro.chaos.plan.soak_plans` mix of injected
   crashes and deadline stalls;
3. check the invariants that define "crash-safe":

   * **accounted** — every submitted session finishes ``done`` or is
     *deliberately* ``shed`` (escalation after repeated crashes);
     nothing hangs, nothing silently disappears;
   * **bit-identity** — every ``done`` session whose breaker never
     tripped produced **exactly** the baseline residual (taps intact,
     no cold-start transient: a crash + warm restore is invisible in
     the output bits);
   * **visible** — recovery activity shows up in the supervisor stats
     (and the ``serving.recovery.*`` obs counters when obs is on).

The resulting :class:`SoakReport` serializes to the
``repro.chaos.soak/v1`` JSON schema — ``repro chaos-soak --json`` emits
it, CI uploads it as an artifact.
"""

from __future__ import annotations

import dataclasses
import time

from ..errors import ConfigurationError
from ..serving import (
    DONE,
    SHED,
    DeadlineConfig,
    ServerConfig,
    SessionServer,
    SessionWorkload,
    SupervisionConfig,
)
from .plan import SessionChaosInjector, soak_plans

__all__ = ["SOAK_SCHEMA", "SoakReport", "run_soak"]

#: Schema identifier of :meth:`SoakReport.to_dict`.
SOAK_SCHEMA = "repro.chaos.soak/v1"


@dataclasses.dataclass
class SoakReport:
    """Everything one soak run measured, plus its pass/fail invariants."""

    sessions: int
    n_blocks: int                 #: blocks per session
    block_size: int
    batched: bool
    seed: int
    crashes_injected: int
    stalls_injected: int
    statuses: dict                #: status -> count over finished sessions
    recovery: dict                #: supervisor stats (restores, escalations)
    breaker_trips: int            #: total breaker trips across sessions
    verified_sessions: int        #: done sessions compared bit-for-bit
    skipped_sessions: int         #: done sessions exempt (breaker tripped)
    mismatches: list              #: session names whose digest diverged
    unaccounted: list             #: sessions still active/pending at stop
    wall_s: float

    def ok(self):
        """Did the soak meet every crash-safety invariant?"""
        clean = all(status in (DONE, SHED) for status in self.statuses)
        return (not self.mismatches and not self.unaccounted and clean)

    def to_dict(self):
        """JSON-able ``repro.chaos.soak/v1`` document."""
        return {
            "schema": SOAK_SCHEMA,
            "ok": self.ok(),
            "sessions": self.sessions,
            "n_blocks": self.n_blocks,
            "block_size": self.block_size,
            "batched": self.batched,
            "seed": self.seed,
            "crashes_injected": self.crashes_injected,
            "stalls_injected": self.stalls_injected,
            "statuses": dict(self.statuses),
            "recovery": dict(self.recovery),
            "breaker_trips": self.breaker_trips,
            "verified_sessions": self.verified_sessions,
            "skipped_sessions": self.skipped_sessions,
            "mismatches": list(self.mismatches),
            "unaccounted": list(self.unaccounted),
            "wall_s": self.wall_s,
        }

    def report(self):
        """Terminal summary."""
        verdict = "PASS" if self.ok() else "FAIL"
        lines = [
            f"== chaos soak: {self.sessions} session(s) x "
            f"{self.n_blocks} block(s), seed={self.seed} — {verdict} ==",
            f"  injected    {self.crashes_injected} crash(es), "
            f"{self.stalls_injected} stall(s)",
            f"  recovery    {self.recovery.get('restores', 0)} warm "
            f"restore(s), {self.recovery.get('cold_starts', 0)} cold, "
            f"{self.recovery.get('escalations', 0)} escalation(s)",
            f"  breakers    {self.breaker_trips} trip(s)",
            f"  statuses    " + ", ".join(
                f"{k}={v}" for k, v in sorted(self.statuses.items())),
            f"  bit-ident   {self.verified_sessions} verified, "
            f"{self.skipped_sessions} exempt (breaker tripped), "
            f"{len(self.mismatches)} mismatch(es)",
        ]
        if self.unaccounted:
            lines.append(f"  UNACCOUNTED {', '.join(self.unaccounted)}")
        if self.mismatches:
            lines.append(f"  MISMATCHED  {', '.join(self.mismatches)}")
        return "\n".join(lines)


def _build_server(block_size, batched, sessions, supervision, deadline):
    config = ServerConfig(
        block_size=block_size,
        batched=batched,
        max_sessions=max(sessions, 1),
        supervision=supervision,
        deadline=deadline,
    )
    return SessionServer(config)


def run_soak(sessions=8, duration_s=0.5, block_size=128, *, seed=0,
             batched=True, crash_prob=0.5, stall_prob=0.5,
             supervision=None, deadline=None, max_ticks=None):
    """Run one chaos soak; returns its :class:`SoakReport`.

    Parameters
    ----------
    sessions / duration_s / block_size:
        Fleet geometry — ``sessions`` synthetic users of ``duration_s``
        seconds each, served in ``block_size``-sample lock-step blocks.
    seed:
        Root seed for the workloads *and* the chaos mix.
    batched:
        Batched vs serial scheduling of the supervised run.
    crash_prob / stall_prob:
        Per-session chaos probabilities (see
        :func:`~repro.chaos.plan.soak_plans`).
    supervision / deadline:
        Overrides for the supervised server's
        :class:`~repro.serving.SupervisionConfig` /
        :class:`~repro.serving.DeadlineConfig`; sensible chaos-friendly
        defaults when omitted.
    max_ticks:
        Hard tick ceiling on the supervised run — the no-hang
        guarantee.  Defaults to a generous bound derived from the
        restart budget; sessions still unfinished at the ceiling are
        reported as ``unaccounted`` (and fail :meth:`SoakReport.ok`).
    """
    sessions = int(sessions)
    block_size = int(block_size)
    if sessions < 1:
        raise ConfigurationError("sessions must be >= 1")
    supervision = supervision or SupervisionConfig(
        checkpoint_every_blocks=4, max_restarts=2)
    deadline = deadline or DeadlineConfig(
        miss_threshold=2, cooldown_blocks=4)

    def _workloads(plans=None):
        built = []
        for i in range(sessions):
            chaos = None
            if plans is not None and not plans[i].empty:
                chaos = SessionChaosInjector(plans[i])
            built.append(SessionWorkload.synthetic(
                f"soak{i}", duration_s=duration_s, seed=int(seed) + i,
                chaos=chaos))
        return built

    started = time.perf_counter()

    # Baseline: same fleet, no chaos, no supervision — the digests a
    # crash-free run produces.
    baseline = _build_server(block_size, batched, sessions, None, None)
    for workload in _workloads():
        baseline.submit(workload)
    baseline_digests = baseline.run_until_drained().digests()

    n_blocks = baseline.session_blocks // max(sessions, 1)
    if n_blocks < 2:
        raise ConfigurationError(
            f"soak needs >= 2 blocks per session; got {n_blocks} "
            f"(duration_s={duration_s}, block_size={block_size})"
        )
    plans = soak_plans(sessions, n_blocks, crash_prob=crash_prob,
                       stall_prob=stall_prob,
                       max_crashes=supervision.max_restarts + 1,
                       seed=seed)
    injectors = []

    # Supervised run under chaos.
    server = _build_server(block_size, batched, sessions, supervision,
                           deadline)
    for workload in _workloads(plans):
        if workload.chaos is not None:
            injectors.append(workload.chaos)
        server.submit(workload)
    if max_ticks is None:
        # Worst case: every block replayed once per allowed restart,
        # plus the full backoff ladder per session, plus slack.
        max_ticks = (n_blocks * (supervision.max_restarts + 2)
                     + sessions * supervision.max_backoff_ticks + 64)
    chaos_report = server.run_until_drained(max_ticks=max_ticks)
    wall_s = time.perf_counter() - started

    unaccounted = sorted(
        s.workload.name for s in
        list(server.active) + list(server.manager.pending)
    )
    mismatches = []
    verified = 0
    skipped = 0
    breaker_trips = 0
    for result in chaos_report.results:
        if result.breaker is not None:
            breaker_trips += result.breaker["trips"]
        if result.status != DONE:
            continue
        if result.breaker is not None and result.breaker["trips"] > 0:
            # A tripped breaker legitimately changed the gating, so the
            # residual differs from baseline by design.
            skipped += 1
            continue
        verified += 1
        if result.digest() != baseline_digests.get(result.name):
            mismatches.append(result.name)

    return SoakReport(
        sessions=sessions,
        n_blocks=n_blocks,
        block_size=block_size,
        batched=bool(batched),
        seed=int(seed),
        crashes_injected=sum(inj.crashes for inj in injectors),
        stalls_injected=sum(inj.stalls for inj in injectors),
        statuses=chaos_report.statuses(),
        recovery=chaos_report.recovery or {},
        breaker_trips=breaker_trips,
        verified_sessions=verified,
        skipped_sessions=skipped,
        mismatches=mismatches,
        unaccounted=unaccounted,
        wall_s=wall_s,
    )
