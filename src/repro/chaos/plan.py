"""Chaos events and plans: deterministic crash/stall schedules for serving.

The fault layer (:mod:`repro.faults`) impairs the *signal path* — what
a degraded relay delivers.  This module impairs the *serving process*
itself: sessions that crash mid-block, kernels that stall past the
paper's Eq. 3 deadline.  Same design rules as
:class:`~repro.faults.FaultPlan`:

* a :class:`ChaosEvent` is one scheduled process-level mishap, indexed
  by **serving block** (the server's unit of work), not by seconds —
  a crash "at block 7" is meaningful across block sizes and replay;
* a :class:`ChaosPlan` is a frozen, content-addressed
  (:meth:`ChaosPlan.plan_key`) tuple of events plus a seed — pure
  data, picklable, reproducible;
* applying a plan is the job of :class:`SessionChaosInjector`, the
  small mutable object a :class:`~repro.serving.session.DeviceSession`
  carries (``workload.chaos``) and the server consults before every
  block.

One-shot semantics
------------------
Injected events fire **once in wall time, not once per replay**: after
a supervised restore rewinds a session to its checkpoint, the replayed
blocks do *not* re-raise the crash that killed them (the injector's
fired-set travels to the replacement session by reference).  That is
exactly a real crash's semantics — the bug happened, the supervisor
recovered, the world moved on — and it is what makes crash-recovery
runs bit-identical to uncrashed ones (``tests/test_chaos.py``).
"""

from __future__ import annotations

import dataclasses
import hashlib

import numpy as np

from ..errors import ConfigurationError, InjectedCrashError

__all__ = [
    "ChaosEvent",
    "CrashAt",
    "StallAt",
    "ChaosPlan",
    "SessionChaosInjector",
    "soak_plans",
]


@dataclasses.dataclass(frozen=True)
class ChaosEvent:
    """One scheduled process-level mishap of a serving session.

    Parameters
    ----------
    block : int
        Serving block index (0-based) at which the event fires.
    """

    block: int

    def __post_init__(self):
        if self.block < 0:
            raise ConfigurationError(
                f"{type(self).__name__}: block must be >= 0, "
                f"got {self.block}"
            )


@dataclasses.dataclass(frozen=True)
class CrashAt(ChaosEvent):
    """The session's worker raises just before processing ``block``.

    Surfaces as :class:`~repro.errors.InjectedCrashError` from the
    injector's :meth:`~SessionChaosInjector.before_block` — the typed
    stand-in for a segfaulting codec, an OOM kill, a bug.  Fires once
    (see the module's one-shot note).
    """


@dataclasses.dataclass(frozen=True)
class StallAt(ChaosEvent):
    """Blocks ``[block, block + blocks)`` each take ``stall_s`` too long.

    The stand-in for a preempted worker or a page-cache miss storm:
    the block *completes correctly* but late.  The injected latency is
    **simulated** — fed to the session's deadline circuit breaker, not
    slept — so chaos soaks stay fast and deterministic.

    Parameters
    ----------
    stall_s : float
        Extra latency per stalled block, seconds.
    blocks : int
        Number of consecutive stalled blocks (breakers trip on
        *consecutive* misses, so one-block stalls rarely trip anything).
    """

    stall_s: float = 0.05
    blocks: int = 1

    def __post_init__(self):
        super().__post_init__()
        if self.stall_s <= 0:
            raise ConfigurationError("stall_s must be > 0")
        if self.blocks < 1:
            raise ConfigurationError("blocks must be >= 1")

    def covers(self, block):
        """Does this stall window include ``block``?"""
        return self.block <= block < self.block + self.blocks


def _event_blob(event):
    """``Type(field=value,...)`` with exact reprs — plan-key material."""
    fields = ",".join(
        f"{f.name}={getattr(event, f.name)!r}"
        for f in dataclasses.fields(event)
    )
    return f"{type(event).__name__}({fields})"


@dataclasses.dataclass(frozen=True)
class ChaosPlan:
    """A deterministic, content-addressed schedule of chaos events.

    Mirrors :class:`~repro.faults.FaultPlan`: frozen, events stored
    sorted, hashable by content via :meth:`plan_key`, and the empty
    plan is the identity — a session carrying it behaves exactly like
    one carrying no injector at all.
    """

    events: tuple = ()
    seed: int = 0

    def __post_init__(self):
        events = tuple(self.events)
        for event in events:
            if not isinstance(event, ChaosEvent):
                raise ConfigurationError(
                    f"plan events must be ChaosEvent instances, "
                    f"got {type(event).__name__}"
                )
        ordered = tuple(sorted(
            events, key=lambda e: (e.block, type(e).__name__)
        ))
        object.__setattr__(self, "events", ordered)

    def __len__(self):
        return len(self.events)

    @property
    def empty(self):
        """True when the plan injects nothing (the identity plan)."""
        return not self.events

    def plan_key(self):
        """Deterministic SHA-256 content key (stable across processes)."""
        parts = ["repro.chaos/v1", f"seed:{self.seed!r}"]
        parts.extend(_event_blob(event) for event in self.events)
        return hashlib.sha256("|".join(parts).encode("utf-8")).hexdigest()

    def events_of(self, *types):
        """The plan's events that are instances of the given types."""
        return tuple(e for e in self.events if isinstance(e, types))

    def describe(self):
        """One line per event — for soak reports and logs."""
        if self.empty:
            return "ChaosPlan: (no events)"
        lines = [f"ChaosPlan seed={self.seed} key={self.plan_key()[:12]}"]
        for event in self.events:
            lines.append(f"  {_event_blob(event)}")
        return "\n".join(lines)


class SessionChaosInjector:
    """Applies one :class:`ChaosPlan` to one serving session.

    The mutable half of the chaos layer: it owns the fired-set that
    gives events their one-shot semantics, and it is carried **by
    reference** onto checkpoint-restored replacement sessions
    (:meth:`repro.serving.CheckpointStore.restore_session`), so a
    restore never re-fires the crash it is recovering from.
    """

    def __init__(self, plan):
        if not isinstance(plan, ChaosPlan):
            raise ConfigurationError(
                f"expected a ChaosPlan, got {type(plan).__name__}")
        self.plan = plan
        self._fired = set()
        self.crashes = 0
        self.stalls = 0

    def before_block(self, session):
        """Consult the plan for ``session``'s upcoming block.

        Raises :class:`~repro.errors.InjectedCrashError` if an unfired
        :class:`CrashAt` is scheduled here; otherwise returns the
        injected stall latency (seconds, ``0.0`` if none) for the
        session's deadline breaker to observe.
        """
        block = session.block_index
        stall_s = 0.0
        for index, event in enumerate(self.plan.events):
            if isinstance(event, CrashAt) and event.block == block:
                key = (index, event.block)
                if key not in self._fired:
                    self._fired.add(key)
                    self.crashes += 1
                    raise InjectedCrashError(
                        f"injected crash: session {session.session_id} "
                        f"({session.workload.name!r}) at block {block} "
                        f"[plan {self.plan.plan_key()[:12]}]"
                    )
            elif isinstance(event, StallAt) and event.covers(block):
                key = (index, block)
                if key not in self._fired:
                    self._fired.add(key)
                    self.stalls += 1
                    stall_s += event.stall_s
        return stall_s

    def stats(self):
        """Fired-event counters (for soak reports)."""
        return {"crashes": self.crashes, "stalls": self.stalls,
                "plan_key": self.plan.plan_key()}


def soak_plans(sessions, n_blocks, crash_prob=0.5, stall_prob=0.5,
               max_crashes=2, stall_s=0.05, stall_blocks=4, seed=0):
    """Per-session :class:`ChaosPlan` mix for a soak run.

    Session ``i`` draws from ``default_rng([seed, i])`` — adding a
    session never perturbs the chaos of the others (the same
    convention as :class:`~repro.faults.FaultPlan` event seeding).

    Parameters
    ----------
    sessions : int
        Number of sessions in the soak.
    n_blocks : int
        Blocks each session will process (events land in ``[1,
        n_blocks - 1]``, past admission so checkpoints exist).
    crash_prob / stall_prob : float
        Per-session probability of carrying crash / stall events.
    max_crashes : int
        Crashes per crashing session are drawn from ``[1, max_crashes]``
        (exceeding the supervisor's ``max_restarts`` exercises the
        escalate-to-shed path).
    stall_s / stall_blocks :
        Stall geometry (see :class:`StallAt`).
    seed : int
        Root seed.

    Returns
    -------
    tuple of ChaosPlan
        One plan per session; sessions the dice spare get the empty
        (identity) plan.
    """
    if sessions < 1:
        raise ConfigurationError("sessions must be >= 1")
    if n_blocks < 2:
        raise ConfigurationError("n_blocks must be >= 2")
    if not 0.0 <= crash_prob <= 1.0 or not 0.0 <= stall_prob <= 1.0:
        raise ConfigurationError("probabilities must be in [0, 1]")
    if max_crashes < 1:
        raise ConfigurationError("max_crashes must be >= 1")
    plans = []
    for i in range(int(sessions)):
        rng = np.random.default_rng([int(seed), i])
        events = []
        if rng.random() < crash_prob:
            n_crashes = int(rng.integers(1, max_crashes + 1))
            blocks = rng.choice(
                np.arange(1, n_blocks),
                size=min(n_crashes, n_blocks - 1), replace=False)
            events.extend(CrashAt(int(b)) for b in blocks)
        if rng.random() < stall_prob:
            start = int(rng.integers(1, n_blocks))
            events.append(StallAt(start, stall_s=float(stall_s),
                                  blocks=int(stall_blocks)))
        plans.append(ChaosPlan(events=tuple(events), seed=int(seed) + i))
    return tuple(plans)
