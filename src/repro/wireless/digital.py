"""A digital packet relay — the design the paper deliberately avoided.

Paper §1/§4.1: "the wireless relay needs to be custom-made so that
forwarding can be executed in real-time (to maximize lookahead), and
without storing any sound samples (to ensure privacy) ... MUTE embraces
an analog design to bypass delays from digitization and processing."

To show *why*, this module implements the conventional alternative: a
digital relay that samples the microphone, accumulates a frame, encodes
it into a packet, transmits, and plays it out at the receiver.  Its
latency is structural::

    latency = frame duration          (fill the buffer)
            + codec/processing delay
            + radio/stack delay
            + jitter-buffer depth     (to survive retransmissions)

Every one of those milliseconds is subtracted from the acoustic
lookahead (see :class:`repro.core.LookaheadBudget`), which is exactly
the resource LANC spends on anti-causal taps.  A Bluetooth-class 10 ms
frame erases the entire lead of a room-scale relay.

The privacy contrast is also explicit: :attr:`stores_samples` is true —
a digital relay necessarily holds audio in buffers, the thing §4.4's
analog design never does.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..hardware.converters import quantize
from ..utils.validation import (
    check_non_negative,
    check_positive,
    check_waveform,
)

__all__ = ["DigitalRelay", "bluetooth_like_relay", "low_latency_digital_relay"]


class DigitalRelay:
    """Frame-based digital forwarding with structural latency.

    Parameters
    ----------
    audio_rate:
        Sampling rate (Hz).
    frame_s:
        Packet frame duration; samples wait up to this long before they
        can even be transmitted (we charge the full frame: the *last*
        sample of a frame is what the canceler will be missing).
    codec_delay_s / radio_delay_s / jitter_buffer_s:
        The remaining pipeline terms.
    bits:
        Codec resolution; ``None`` disables quantization.
    packet_loss:
        Fraction of frames lost; lost frames play out as silence
        (concealment is left to the canceler, which sees a reference
        dropout).
    seed:
        Seed for the loss process.
    """

    #: Digital relays buffer audio — the paper's privacy concern.
    stores_samples = True

    def __init__(self, audio_rate=8000.0, frame_s=10e-3, codec_delay_s=2e-3,
                 radio_delay_s=1e-3, jitter_buffer_s=0.0, bits=16,
                 packet_loss=0.0, seed=0):
        self.audio_rate = check_positive("audio_rate", audio_rate)
        self.frame_s = check_positive("frame_s", frame_s)
        self.codec_delay_s = check_non_negative("codec_delay_s",
                                                codec_delay_s)
        self.radio_delay_s = check_non_negative("radio_delay_s",
                                                radio_delay_s)
        self.jitter_buffer_s = check_non_negative("jitter_buffer_s",
                                                  jitter_buffer_s)
        self.bits = bits
        if not 0.0 <= packet_loss < 1.0:
            raise ConfigurationError("packet_loss must be in [0, 1)")
        self.packet_loss = float(packet_loss)
        self.seed = seed
        self.frame_samples = max(int(round(self.frame_s * self.audio_rate)),
                                 1)

    @property
    def latency_s(self):
        """Total structural forwarding delay in seconds."""
        return (self.frame_s + self.codec_delay_s + self.radio_delay_s
                + self.jitter_buffer_s)

    @property
    def latency_samples(self):
        """Total delay in whole samples (the lookahead-budget input)."""
        return int(round(self.latency_s * self.audio_rate))

    def forward(self, audio):
        """Forward audio through the framed digital chain.

        The output is the input delayed by :attr:`latency_samples`,
        quantized, with lost frames zeroed — the stream a receiver
        actually plays out.
        """
        audio = check_waveform("audio", audio)
        processed = audio.copy()
        if self.bits is not None:
            peak = max(float(np.max(np.abs(processed))), 1e-9)
            processed = quantize(processed, self.bits,
                                 full_scale=peak * 1.25)
        if self.packet_loss > 0.0:
            rng = np.random.default_rng(self.seed)
            n_frames = int(np.ceil(processed.size / self.frame_samples))
            lost = rng.uniform(size=n_frames) < self.packet_loss
            for i in np.flatnonzero(lost):
                start = i * self.frame_samples
                processed[start: start + self.frame_samples] = 0.0
        out = np.zeros_like(processed)
        d = self.latency_samples
        if d < processed.size:
            out[d:] = processed[: processed.size - d]
        return out


def bluetooth_like_relay(audio_rate=8000.0):
    """A BLE-audio-class link: 10 ms frames + stack delays (~14 ms)."""
    return DigitalRelay(audio_rate=audio_rate, frame_s=10e-3,
                        codec_delay_s=2.5e-3, radio_delay_s=1.5e-3)


def low_latency_digital_relay(audio_rate=8000.0):
    """An aggressive custom digital link: 2 ms frames (~3.5 ms total)."""
    return DigitalRelay(audio_rate=audio_rate, frame_s=2e-3,
                        codec_delay_s=1e-3, radio_delay_s=0.5e-3)
