"""RF channel impairments at complex baseband.

MUTE uses a narrow (≈ Carson-bandwidth) FM signal in the 900 MHz ISM
band; the paper notes that the wireless channel ``h_w`` is flat over so
narrow a band and reduces to a single complex tap.  The impairments that
*do* matter — and that motivated the analog FM design — are modeled
here:

* additive white Gaussian noise at a configurable SNR,
* carrier frequency offset between the relay's PLL and the receiver,
* power-amplifier nonlinearity (tanh soft saturation),
* a flat complex gain (path loss + phase rotation).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..errors import ConfigurationError
from ..utils.units import db_to_amplitude
from ..utils.validation import check_waveform

__all__ = ["RfChannelConfig", "RfChannel", "pa_nonlinearity"]


def pa_nonlinearity(baseband, backoff_db=3.0):
    """Soft-saturating power amplifier: tanh applied to the envelope.

    ``backoff_db`` sets how far the signal's RMS sits below the
    amplifier's saturation point; smaller backoff → harder clipping.
    AM rides on the envelope and is distorted; constant-envelope FM is
    immune (the comparison the FM-vs-AM ablation measures).
    """
    baseband = check_waveform("baseband", baseband, allow_complex=True,
                              min_length=1)
    rms = np.sqrt(np.mean(np.abs(baseband) ** 2))
    if rms == 0.0:
        return baseband.copy()
    saturation = rms * db_to_amplitude(backoff_db)
    envelope = np.abs(baseband)
    with np.errstate(invalid="ignore", divide="ignore"):
        scale = np.where(
            envelope > 0,
            saturation * np.tanh(envelope / saturation) / envelope,
            1.0,
        )
    return baseband * scale


@dataclasses.dataclass(frozen=True)
class RfChannelConfig:
    """Impairment settings for one RF link."""

    snr_db: float = 40.0            # post-path-loss SNR at the receiver
    cfo_hz: float = 0.0             # carrier frequency offset
    gain_db: float = 0.0            # flat path gain (negative = loss)
    phase_rad: float = 0.0          # flat phase rotation
    pa_backoff_db: float | None = None  # None disables PA nonlinearity
    seed: int = 0

    def __post_init__(self):
        if self.pa_backoff_db is not None and self.pa_backoff_db <= 0:
            raise ConfigurationError("pa_backoff_db must be > 0 or None")
        # +inf means a noiseless link; NaN is always a bug.
        if np.isnan(self.snr_db):
            raise ConfigurationError("snr_db must not be NaN")


class RfChannel:
    """Apply configured impairments to a complex-baseband signal."""

    def __init__(self, config=None, rf_rate=96000.0):
        self.config = config or RfChannelConfig()
        if rf_rate <= 0:
            raise ConfigurationError("rf_rate must be > 0")
        self.rf_rate = float(rf_rate)

    def apply(self, baseband):
        """Pass a complex-baseband block through the channel."""
        baseband = check_waveform("baseband", baseband, allow_complex=True,
                                  min_length=1)
        cfg = self.config
        out = baseband.astype(np.complex128, copy=True)

        if cfg.pa_backoff_db is not None:
            out = pa_nonlinearity(out, cfg.pa_backoff_db)

        flat = db_to_amplitude(cfg.gain_db) * np.exp(1j * cfg.phase_rad)
        out = out * flat

        if cfg.cfo_hz != 0.0:
            t = np.arange(out.size) / self.rf_rate
            out = out * np.exp(2j * np.pi * cfg.cfo_hz * t)

        signal_power = np.mean(np.abs(out) ** 2)
        if np.isfinite(cfg.snr_db) and signal_power > 0:
            noise_power = signal_power / (10.0 ** (cfg.snr_db / 10.0))
            rng = np.random.default_rng(cfg.seed)
            noise = (
                rng.standard_normal(out.size)
                + 1j * rng.standard_normal(out.size)
            ) * np.sqrt(noise_power / 2.0)
            out = out + noise
        return out
