"""Privacy controls for the forwarded sound (paper §4.4).

The paper's second privacy question: "Will the wirelessly-forwarded
sound reach certain areas where it wouldn't have been audible
otherwise? ... with power control, beamforming, and sound scrambling,
the problem can be alleviated."

Two of those mitigations are implementable with this library's physics:

* **Power control** — transmit only as hot as the intended client
  needs; :func:`minimum_tx_power_dbm` computes that power and
  :func:`leakage_radius_m` the distance at which an eavesdropper's
  receiver falls below a usable SNR.
* **Sound scrambling** — add a pseudo-random masking signal to the audio
  before modulation; the intended receiver knows the seed and subtracts
  it, an eavesdropper demodulates audio buried under the mask.
  :class:`ScramblingCodec` implements the seeded mask.

(The tabletop variant's observation — a short-range link leaks almost
nothing — falls out of the same arithmetic.)
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ConfigurationError
from ..utils.units import rms as _rms
from ..utils.validation import check_positive, check_waveform
from .link_budget import free_space_path_loss_db, thermal_noise_dbm

__all__ = [
    "minimum_tx_power_dbm",
    "received_audio_snr_db",
    "leakage_radius_m",
    "ScramblingCodec",
]


def minimum_tx_power_dbm(client_distance_m, required_snr_db=30.0,
                         bandwidth_hz=32000.0, frequency_hz=915e6,
                         noise_figure_db=6.0, margin_db=6.0):
    """Smallest TX power that still serves the intended client.

    ``margin_db`` covers fading/body blocking; everything else is the
    Friis/thermal arithmetic of :mod:`repro.wireless.link_budget`.
    """
    client_distance_m = check_positive("client_distance_m",
                                       client_distance_m)
    noise_floor = thermal_noise_dbm(bandwidth_hz,
                                    noise_figure_db=noise_figure_db)
    path_loss = free_space_path_loss_db(client_distance_m, frequency_hz)
    return noise_floor + required_snr_db + margin_db + path_loss


def received_audio_snr_db(tx_power_dbm, distance_m, bandwidth_hz=32000.0,
                          frequency_hz=915e6, noise_figure_db=6.0):
    """RF SNR at an arbitrary receiver distance (client or eavesdropper)."""
    distance_m = check_positive("distance_m", distance_m)
    noise_floor = thermal_noise_dbm(bandwidth_hz,
                                    noise_figure_db=noise_figure_db)
    return (tx_power_dbm
            - free_space_path_loss_db(distance_m, frequency_hz)
            - noise_floor)


def leakage_radius_m(tx_power_dbm, usable_snr_db=10.0,
                     bandwidth_hz=32000.0, frequency_hz=915e6,
                     noise_figure_db=6.0):
    """Distance beyond which an eavesdropper cannot recover the audio.

    Solves the Friis equation for the range where the received SNR drops
    to ``usable_snr_db`` (≈10 dB is marginal FM audio).
    """
    noise_floor = thermal_noise_dbm(bandwidth_hz,
                                    noise_figure_db=noise_figure_db)
    allowed_path_loss = tx_power_dbm - noise_floor - usable_snr_db
    wavelength = 299_792_458.0 / frequency_hz
    # FSPL(d) = 20 log10(4 pi d / lambda)  =>  d = lambda/(4 pi) 10^(L/20)
    return wavelength / (4.0 * math.pi) * 10.0 ** (allowed_path_loss / 20.0)


class ScramblingCodec:
    """Seeded additive audio mask shared by relay and client.

    The mask is wide-band noise at ``mask_to_signal`` times the audio
    RMS.  ``scramble`` adds it (at the relay, before FM);
    ``descramble`` subtracts it (at the client).  An eavesdropper who
    demodulates without the seed hears audio at ≈
    ``−20·log10(mask_to_signal)`` dB SNR.
    """

    def __init__(self, seed, mask_to_signal=10.0):
        self.seed = int(seed)
        self.mask_to_signal = check_positive("mask_to_signal",
                                             mask_to_signal)

    def _mask(self, n_samples, level):
        rng = np.random.default_rng(self.seed)
        return level * rng.standard_normal(n_samples)

    def scramble(self, audio):
        """Relay side: bury the audio under the shared mask."""
        audio = check_waveform("audio", audio, min_length=1)
        level = self.mask_to_signal * max(_rms(audio), 1e-12)
        return audio + self._mask(audio.size, level), level

    def descramble(self, scrambled, mask_level):
        """Client side: remove the mask (requires the seed and level)."""
        scrambled = check_waveform("scrambled", scrambled, min_length=1)
        if mask_level < 0:
            raise ConfigurationError("mask_level must be >= 0")
        return scrambled - self._mask(scrambled.size, mask_level)

    def eavesdropper_snr_db(self):
        """Audio SNR of a receiver without the seed (mask = noise)."""
        return -20.0 * math.log10(self.mask_to_signal)
