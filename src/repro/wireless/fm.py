"""Frequency modulation at complex baseband.

The relay transmits the microphone waveform with analog FM at 900 MHz
(paper Eq. 9)::

    x(t) = Ap * cos(2π fc t + 2π Af ∫ m(τ) dτ)

Simulating the 900 MHz carrier directly would need GHz sampling; the
standard equivalent is *complex baseband*: drop the carrier and keep the
phase term, ``x_bb(t) = Ap * exp(j 2π Af ∫ m)``.  Carrier frequency
offset (CFO) between transmitter and receiver then appears as a rotating
phasor ``exp(j 2π Δf t)`` — and, after the FM discriminator, as the
constant DC offset the paper says FM renders harmless.

Audio at ``audio_rate`` is upsampled to ``rf_rate`` for modulation and
decimated back after demodulation.
"""

from __future__ import annotations

import numpy as np
from scipy import signal as sps

from ..errors import ConfigurationError
from ..utils.validation import check_positive, check_waveform

__all__ = ["FmModulator", "FmDemodulator", "resample"]


def resample(signal, rate_in, rate_out):
    """Polyphase resampling between integer-ratio rates."""
    rate_in = check_positive("rate_in", rate_in)
    rate_out = check_positive("rate_out", rate_out)
    if rate_in == rate_out:
        return np.asarray(signal, dtype=np.float64).copy()
    from math import gcd

    ri, ro = int(round(rate_in)), int(round(rate_out))
    if abs(rate_in - ri) > 1e-6 or abs(rate_out - ro) > 1e-6:
        raise ConfigurationError("resample requires near-integer rates")
    g = gcd(ri, ro)
    return sps.resample_poly(signal, ro // g, ri // g)


class FmModulator:
    """Analog FM modulator: audio in, complex-baseband RF out.

    Parameters
    ----------
    audio_rate:
        Input audio sampling rate (Hz).
    rf_rate:
        Simulation rate of the complex baseband (Hz); must comfortably
        exceed twice the peak deviation plus audio bandwidth (Carson).
    deviation_hz:
        Peak frequency deviation ``Af`` for a unit-amplitude input.
    amplitude:
        Transmit amplitude ``Ap``.
    """

    def __init__(self, audio_rate=8000.0, rf_rate=96000.0,
                 deviation_hz=12000.0, amplitude=1.0):
        self.audio_rate = check_positive("audio_rate", audio_rate)
        self.rf_rate = check_positive("rf_rate", rf_rate)
        self.deviation_hz = check_positive("deviation_hz", deviation_hz)
        self.amplitude = check_positive("amplitude", amplitude)
        carson = 2.0 * (self.deviation_hz + self.audio_rate / 2.0)
        if self.rf_rate < carson:
            raise ConfigurationError(
                f"rf_rate {rf_rate} Hz below Carson bandwidth {carson} Hz"
            )

    @property
    def occupied_bandwidth_hz(self):
        """Carson-rule occupied bandwidth for unit-RMS audio."""
        return 2.0 * (self.deviation_hz + self.audio_rate / 2.0)

    def modulate(self, audio):
        """Modulate an audio waveform to complex baseband."""
        audio = check_waveform("audio", audio)
        rf_audio = resample(audio, self.audio_rate, self.rf_rate)
        phase = (
            2.0 * np.pi * self.deviation_hz
            * np.cumsum(rf_audio) / self.rf_rate
        )
        return self.amplitude * np.exp(1j * phase)


class FmDemodulator:
    """FM discriminator: complex baseband in, audio out.

    The phase-difference discriminator recovers the instantaneous
    frequency; a low-pass filter removes out-of-band noise; decimation
    returns to the audio rate; and mean removal cancels the DC offset a
    CFO leaves behind (the paper's "averaged out" step).
    """

    def __init__(self, audio_rate=8000.0, rf_rate=96000.0,
                 deviation_hz=12000.0, remove_dc=True):
        self.audio_rate = check_positive("audio_rate", audio_rate)
        self.rf_rate = check_positive("rf_rate", rf_rate)
        self.deviation_hz = check_positive("deviation_hz", deviation_hz)
        self.remove_dc = bool(remove_dc)
        cutoff = min(self.audio_rate / 2.0, self.rf_rate / 2.0 * 0.9)
        self._sos = sps.butter(
            6, cutoff / (self.rf_rate / 2.0), btype="lowpass", output="sos"
        )

    def demodulate(self, baseband):
        """Recover the audio waveform from complex baseband."""
        baseband = check_waveform("baseband", baseband, min_length=2,
                                  allow_complex=True)
        # Phase difference between consecutive samples → instantaneous freq.
        product = baseband[1:] * np.conj(baseband[:-1])
        inst_freq = np.angle(product) * self.rf_rate / (2.0 * np.pi)
        inst_freq = np.concatenate([[inst_freq[0]], inst_freq])
        audio_rf = inst_freq / self.deviation_hz
        # Zero-phase filtering: the analog chain's fixed group delay
        # (~0.15 ms) is accounted in the relay's latency budget, so the
        # simulation removes it here rather than re-aligning downstream.
        audio_rf = sps.sosfiltfilt(self._sos, audio_rf)
        audio = resample(audio_rf, self.rf_rate, self.audio_rate)
        if self.remove_dc:
            audio = audio - np.mean(audio)
        return audio
