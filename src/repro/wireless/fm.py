"""Frequency modulation at complex baseband.

The relay transmits the microphone waveform with analog FM at 900 MHz
(paper Eq. 9)::

    x(t) = Ap * cos(2π fc t + 2π Af ∫ m(τ) dτ)

Simulating the 900 MHz carrier directly would need GHz sampling; the
standard equivalent is *complex baseband*: drop the carrier and keep the
phase term, ``x_bb(t) = Ap * exp(j 2π Af ∫ m)``.  Carrier frequency
offset (CFO) between transmitter and receiver then appears as a rotating
phasor ``exp(j 2π Δf t)`` — and, after the FM discriminator, as the
constant DC offset the paper says FM renders harmless.

Audio at ``audio_rate`` is upsampled to ``rf_rate`` for modulation and
decimated back after demodulation.

Perf note: :func:`resample` is the relay chain's hot edge — the 12x
oversampled mod/demod path crosses it four times per relay hop.  The
fast path caches the polyphase (Kaiser) design per reduced ``(up,
down)`` pair, reproducing scipy's default design **bit-identically**,
and the rate pair itself is reduced with :class:`fractions.Fraction`,
so exact rational (including non-integer) rate pairs work.  The
modulator/demodulator avoid full-rate intermediate copies by running
their arithmetic in place on buffers they own.  All of it is gated on
:mod:`repro.utils.fastpath`.
"""

from __future__ import annotations

import math
from fractions import Fraction

import numpy as np
from scipy import signal as sps

from ..errors import ConfigurationError
from ..utils import fastpath
from ..utils.validation import check_positive, check_waveform

__all__ = ["FmModulator", "FmDemodulator", "resample", "rational_ratio"]

#: Largest denominator accepted when snapping a rate ratio to an exact
#: rational — generous for audio/RF pairs, small enough to reject
#: genuinely irrational ratios.
MAX_RATIO_DENOMINATOR = 1 << 20

#: Cached polyphase designs, keyed by the reduced ``(up, down)`` pair.
_design_cache = {}


def rational_ratio(rate_in, rate_out):
    """Reduce ``rate_out / rate_in`` to an exact ``(up, down)`` pair.

    Both rates are taken as exact binary floats; their ratio is snapped
    to the nearest rational with denominator ≤
    :data:`MAX_RATIO_DENOMINATOR` and verified to reproduce ``rate_out``
    from ``rate_in`` exactly (to 1 part in 1e12).  Integer pairs reduce
    by their gcd — ``(44100, 8000) → (80, 441)`` — and exact non-integer
    pairs like ``(4000.5, 8001)`` work too.
    """
    ratio = Fraction(float(rate_out)) / Fraction(float(rate_in))
    ratio = ratio.limit_denominator(MAX_RATIO_DENOMINATOR)
    if not math.isclose(float(ratio) * rate_in, rate_out, rel_tol=1e-12):
        raise ConfigurationError(
            f"resample needs an exact rational rate ratio; "
            f"{rate_out}/{rate_in} is not one (within denominator "
            f"{MAX_RATIO_DENOMINATOR})"
        )
    return ratio.numerator, ratio.denominator


def _polyphase_design(up, down):
    """scipy's default ``resample_poly`` Kaiser window for ``(up, down)``.

    Reproduces the design ``resample_poly`` would build internally —
    passing it back via ``window=`` is bit-identical to the default
    path (scipy copies and scales it by ``up`` itself) — but built
    once and cached, instead of redesigned on every call.
    """
    key = (up, down)
    window = _design_cache.get(key)
    if window is None:
        max_rate = max(up, down)
        half_len = 10 * max_rate
        window = sps.firwin(2 * half_len + 1, 1.0 / max_rate,
                            window=("kaiser", 5.0))
        _design_cache[key] = window
    return window


def resample(signal, rate_in, rate_out):
    """Polyphase resampling between exact-rational-ratio rates."""
    rate_in = check_positive("rate_in", rate_in)
    rate_out = check_positive("rate_out", rate_out)
    if rate_in == rate_out:
        return np.asarray(signal, dtype=np.float64).copy()
    up, down = rational_ratio(rate_in, rate_out)
    if not fastpath.enabled():
        return sps.resample_poly(signal, up, down)
    return sps.resample_poly(signal, up, down,
                             window=_polyphase_design(up, down))


class FmModulator:
    """Analog FM modulator: audio in, complex-baseband RF out.

    Parameters
    ----------
    audio_rate:
        Input audio sampling rate (Hz).
    rf_rate:
        Simulation rate of the complex baseband (Hz); must comfortably
        exceed twice the peak deviation plus audio bandwidth (Carson).
    deviation_hz:
        Peak frequency deviation ``Af`` for a unit-amplitude input.
    amplitude:
        Transmit amplitude ``Ap``.
    """

    def __init__(self, audio_rate=8000.0, rf_rate=96000.0,
                 deviation_hz=12000.0, amplitude=1.0):
        self.audio_rate = check_positive("audio_rate", audio_rate)
        self.rf_rate = check_positive("rf_rate", rf_rate)
        self.deviation_hz = check_positive("deviation_hz", deviation_hz)
        self.amplitude = check_positive("amplitude", amplitude)
        carson = 2.0 * (self.deviation_hz + self.audio_rate / 2.0)
        if self.rf_rate < carson:
            raise ConfigurationError(
                f"rf_rate {rf_rate} Hz below Carson bandwidth {carson} Hz"
            )

    @property
    def occupied_bandwidth_hz(self):
        """Carson-rule occupied bandwidth for unit-RMS audio."""
        return 2.0 * (self.deviation_hz + self.audio_rate / 2.0)

    def modulate(self, audio):
        """Modulate an audio waveform to complex baseband."""
        audio = check_waveform("audio", audio)
        rf_audio = resample(audio, self.audio_rate, self.rf_rate)
        if not fastpath.enabled():
            phase = (
                2.0 * np.pi * self.deviation_hz
                * np.cumsum(rf_audio) / self.rf_rate
            )
            return self.amplitude * np.exp(1j * phase)
        # In place on the full-rate buffer we own: cumsum → phase →
        # cos/sin straight into the complex output's views.
        np.cumsum(rf_audio, out=rf_audio)
        rf_audio *= 2.0 * np.pi * self.deviation_hz / self.rf_rate
        out = np.empty(rf_audio.size, dtype=np.complex128)
        np.cos(rf_audio, out=out.real)
        np.sin(rf_audio, out=out.imag)
        if self.amplitude != 1.0:
            out *= self.amplitude
        return out


class FmDemodulator:
    """FM discriminator: complex baseband in, audio out.

    The phase-difference discriminator recovers the instantaneous
    frequency; a low-pass filter removes out-of-band noise; decimation
    returns to the audio rate; and mean removal cancels the DC offset a
    CFO leaves behind (the paper's "averaged out" step).
    """

    def __init__(self, audio_rate=8000.0, rf_rate=96000.0,
                 deviation_hz=12000.0, remove_dc=True):
        self.audio_rate = check_positive("audio_rate", audio_rate)
        self.rf_rate = check_positive("rf_rate", rf_rate)
        self.deviation_hz = check_positive("deviation_hz", deviation_hz)
        self.remove_dc = bool(remove_dc)
        cutoff = min(self.audio_rate / 2.0, self.rf_rate / 2.0 * 0.9)
        self._sos = sps.butter(
            6, cutoff / (self.rf_rate / 2.0), btype="lowpass", output="sos"
        )

    def demodulate(self, baseband):
        """Recover the audio waveform from complex baseband."""
        baseband = check_waveform("baseband", baseband, min_length=2,
                                  allow_complex=True)
        if not fastpath.enabled():
            product = baseband[1:] * np.conj(baseband[:-1])
            inst_freq = np.angle(product) * self.rf_rate / (2.0 * np.pi)
            inst_freq = np.concatenate([[inst_freq[0]], inst_freq])
            audio_rf = inst_freq / self.deviation_hz
            audio_rf = sps.sosfiltfilt(self._sos, audio_rf)
            audio = resample(audio_rf, self.rf_rate, self.audio_rate)
            if self.remove_dc:
                audio = audio - np.mean(audio)
            return audio
        # Phase difference between consecutive samples → instantaneous
        # frequency, with one owned complex scratch instead of the
        # conj/product/angle/concatenate temporary chain.
        product = np.conjugate(baseband[:-1])
        product *= baseband[1:]
        audio_rf = np.empty(baseband.size)
        np.arctan2(product.imag, product.real, out=audio_rf[1:])
        audio_rf[0] = audio_rf[1]
        audio_rf *= self.rf_rate / (2.0 * np.pi * self.deviation_hz)
        # Zero-phase filtering: the analog chain's fixed group delay
        # (~0.15 ms) is accounted in the relay's latency budget, so the
        # simulation removes it here rather than re-aligning downstream.
        audio_rf = sps.sosfiltfilt(self._sos, audio_rf)
        audio = resample(audio_rf, self.rf_rate, self.audio_rate)
        if self.remove_dc:
            audio -= np.mean(audio)
        return audio
