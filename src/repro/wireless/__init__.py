"""Wireless substrate: FM/AM modulation, RF channel, the IoT relay."""

from .am import AmDemodulator, AmModulator
from .coexistence import CarrierSenseModel, allocate_channels, max_colocated_relays
from .privacy import (
    ScramblingCodec,
    leakage_radius_m,
    minimum_tx_power_dbm,
    received_audio_snr_db,
)
from .fm import FmDemodulator, FmModulator, resample
from .link_budget import (
    ISM_900_BANDWIDTH_HZ,
    band_occupancy_fraction,
    free_space_path_loss_db,
    received_snr_db,
    thermal_noise_dbm,
)
from .relay import AnalogRelay, IdealRelay
from .rf_channel import RfChannel, RfChannelConfig, pa_nonlinearity

__all__ = [
    "AmDemodulator",
    "CarrierSenseModel",
    "allocate_channels",
    "max_colocated_relays",
    "ScramblingCodec",
    "leakage_radius_m",
    "minimum_tx_power_dbm",
    "received_audio_snr_db",
    "AmModulator",
    "FmDemodulator",
    "FmModulator",
    "resample",
    "ISM_900_BANDWIDTH_HZ",
    "band_occupancy_fraction",
    "free_space_path_loss_db",
    "received_snr_db",
    "thermal_noise_dbm",
    "AnalogRelay",
    "IdealRelay",
    "RfChannel",
    "RfChannelConfig",
    "pa_nonlinearity",
]
