"""RF coexistence: channel allocation and contention (paper §6).

Paper §6 ("RF Interference and Channel Contention"): one relay occupies
a narrow FM channel in the 26 MHz ISM band, a few relays cover a room,
and "even with multiple co-located users, channel contention can be
addressed by carrier-sensing and channel allocation."

This module provides both mechanisms:

* :func:`allocate_channels` — frequency-division: pack ``n`` FM carriers
  with guard bands into the ISM band (the planned-deployment path);
* :class:`CarrierSenseModel` — for unplanned relays sharing one
  channel: the classic slotted carrier-sense analysis giving collision
  probability and effective duty cycle versus the number of contenders.
"""

from __future__ import annotations


from ..errors import ConfigurationError
from ..utils.validation import (
    check_non_negative,
    check_positive,
    check_positive_int,
    check_probability,
)
from .link_budget import ISM_900_BANDWIDTH_HZ

__all__ = ["allocate_channels", "max_colocated_relays", "CarrierSenseModel"]


def allocate_channels(n_relays, channel_bandwidth_hz, guard_hz=5000.0,
                      band_start_hz=902e6, band_hz=ISM_900_BANDWIDTH_HZ):
    """Center frequencies for ``n_relays`` FM channels with guards.

    Raises
    ------
    ConfigurationError
        If the band cannot hold that many channels — the caller should
        fall back to carrier sensing on shared channels.
    """
    n_relays = check_positive_int("n_relays", n_relays)
    channel_bandwidth_hz = check_positive("channel_bandwidth_hz",
                                          channel_bandwidth_hz)
    guard_hz = check_non_negative("guard_hz", guard_hz)
    pitch = channel_bandwidth_hz + guard_hz
    needed = n_relays * pitch
    if needed > band_hz:
        raise ConfigurationError(
            f"{n_relays} channels of {channel_bandwidth_hz / 1e3:.0f} kHz "
            f"(+{guard_hz / 1e3:.0f} kHz guard) need "
            f"{needed / 1e6:.2f} MHz, band has {band_hz / 1e6:.0f} MHz"
        )
    first_center = band_start_hz + pitch / 2.0
    return [first_center + i * pitch for i in range(n_relays)]


def max_colocated_relays(channel_bandwidth_hz, guard_hz=5000.0,
                         band_hz=ISM_900_BANDWIDTH_HZ):
    """How many frequency-division relays the band supports.

    The paper's point made concrete: hundreds of ~30 kHz FM relays fit
    into 26 MHz.
    """
    channel_bandwidth_hz = check_positive("channel_bandwidth_hz",
                                          channel_bandwidth_hz)
    guard_hz = check_non_negative("guard_hz", guard_hz)
    return int(band_hz // (channel_bandwidth_hz + guard_hz))


class CarrierSenseModel:
    """Slotted carrier-sense contention among relays on one channel.

    Each of ``n`` contenders wants the channel for a fraction
    ``activity`` of slots and defers when it senses another
    transmission.  Standard results:

    * probability some transmission happens in a slot:
      ``1 − (1 − a)^n``;
    * probability a slot carries a *collision* (two senders chose the
    same idle slot despite sensing — the vulnerable-period residual
    ``vulnerability``): ``1 − (1 − a)^n − n·a·(1 − a)^(n−1)`` scaled by
    the vulnerability window;
    * per-relay goodput: fair share of the collision-free air time.
    """

    def __init__(self, n_relays, activity=0.5, vulnerability=0.05):
        self.n_relays = check_positive_int("n_relays", n_relays)
        self.activity = check_probability("activity", activity)
        self.vulnerability = check_probability("vulnerability",
                                               vulnerability)

    @property
    def idle_probability(self):
        """No relay transmits in a slot."""
        return (1.0 - self.activity) ** self.n_relays

    @property
    def single_tx_probability(self):
        """Exactly one relay transmits (a clean slot)."""
        return (self.n_relays * self.activity
                * (1.0 - self.activity) ** (self.n_relays - 1))

    @property
    def collision_probability(self):
        """Two-plus senders in the vulnerability window of a slot."""
        multi = 1.0 - self.idle_probability - self.single_tx_probability
        return multi * self.vulnerability

    @property
    def goodput_per_relay(self):
        """Collision-free air time each relay gets (fraction of slots)."""
        clean = self.single_tx_probability + (
            (1.0 - self.idle_probability - self.single_tx_probability)
            * (1.0 - self.vulnerability)
        )
        return clean / self.n_relays

    def supports_streaming(self, required_duty=0.95):
        """Can every relay stream quasi-continuously?

        A MUTE relay needs the channel almost always when its noise
        source is active; with frequency division this is trivially true,
        under contention it only holds for small ``n``/``activity``.
        """
        check_probability("required_duty", required_duty)
        return self.goodput_per_relay * self.n_relays >= required_duty \
            and self.collision_probability < 0.01

    def summary(self):
        """One-line description for reports."""
        return (
            f"{self.n_relays} relays @ {self.activity:.0%} activity: "
            f"idle {self.idle_probability:.2f}, clean "
            f"{self.single_tx_probability:.2f}, collisions "
            f"{self.collision_probability:.3f}, per-relay goodput "
            f"{self.goodput_per_relay:.2f}"
        )
