"""The analog IoT relay: microphone → FM transmitter → receiver → audio.

Figure 9 of the paper: microphone, low-pass filter, amplifier, matching
network, VCO (FM), PLL up-conversion to 900 MHz, PA, antenna.  The
receiver reverses the chain and hands digital samples to the DSP.

The design constraint the paper emphasizes — *no sample is ever stored*
on the relay (privacy §4.4) — maps here to a stateless, purely
functional ``forward()``: audio in, audio out, with the only latency
being fixed analog/filter group delay.  That group delay is measured
once at construction with a calibration chirp and exposed as
``latency_samples`` so the ear-device can account for it in its
lookahead budget (it is microseconds–milliseconds, far below the
acoustic lookahead).
"""

from __future__ import annotations

import time

import numpy as np
from scipy import signal as sps

from .. import obs
from ..errors import ConfigurationError
from ..utils.validation import check_non_negative, check_positive, check_waveform
from .fm import FmDemodulator, FmModulator
from .rf_channel import RfChannel, RfChannelConfig

__all__ = ["AnalogRelay", "IdealRelay"]


def _advance(signal, lag):
    """Shift a waveform earlier by ``lag`` (possibly fractional) samples.

    Implemented as an FFT-domain linear phase ramp; block edges see a
    sub-sample of wrap-around, negligible for the multi-second blocks the
    relay forwards.
    """
    if lag == 0.0:
        return signal.copy()
    n = signal.size
    freqs = np.fft.rfftfreq(n)
    spectrum = np.fft.rfft(signal)
    spectrum *= np.exp(2j * np.pi * freqs * lag)
    return np.fft.irfft(spectrum, n)


class IdealRelay:
    """A perfect relay: forwards audio unchanged with optional mic noise.

    Used when an experiment should isolate the ANC algorithm from RF
    effects, and as the reference in relay-quality tests.
    """

    def __init__(self, mic_noise_rms=0.0, seed=0):
        self.mic_noise_rms = check_non_negative("mic_noise_rms", mic_noise_rms)
        self.seed = seed
        self.latency_samples = 0

    def forward(self, audio):
        """Return the forwarded audio (plus microphone self-noise)."""
        audio = check_waveform("audio", audio)
        if obs.enabled():
            obs.get_registry().counter("relay.forwarded_samples",
                                       relay="ideal").inc(audio.size)
        if self.mic_noise_rms == 0.0:
            return audio.copy()
        rng = np.random.default_rng(self.seed)
        return audio + self.mic_noise_rms * rng.standard_normal(audio.size)


class AnalogRelay:
    """End-to-end analog FM relay with RF impairments.

    Parameters
    ----------
    audio_rate:
        Audio sampling rate at the DSP (Hz).
    rf_rate:
        Complex-baseband simulation rate (Hz).
    deviation_hz:
        FM peak deviation.
    channel_config:
        :class:`RfChannelConfig` impairments; default is a clean indoor
        link with 40 dB SNR.
    mic_noise_rms:
        Self-noise of the cheap MEMS microphone, at the audio level.
    lpf_cutoff_hz:
        Anti-alias low-pass in the analog front end.
    """

    def __init__(self, audio_rate=8000.0, rf_rate=96000.0,
                 deviation_hz=12000.0, channel_config=None,
                 mic_noise_rms=1e-3, lpf_cutoff_hz=None, seed=0):
        self.audio_rate = check_positive("audio_rate", audio_rate)
        self.rf_rate = check_positive("rf_rate", rf_rate)
        self.mic_noise_rms = check_non_negative("mic_noise_rms", mic_noise_rms)
        self.seed = seed
        cutoff = lpf_cutoff_hz or self.audio_rate / 2.0 * 0.95
        if not 0 < cutoff <= self.audio_rate / 2.0:
            raise ConfigurationError(
                f"lpf_cutoff_hz must be in (0, {self.audio_rate / 2}], "
                f"got {cutoff}"
            )
        self._front_sos = sps.butter(
            4, cutoff / (self.audio_rate / 2.0), btype="lowpass", output="sos"
        )
        self.modulator = FmModulator(
            audio_rate=self.audio_rate, rf_rate=self.rf_rate,
            deviation_hz=deviation_hz,
        )
        self.demodulator = FmDemodulator(
            audio_rate=self.audio_rate, rf_rate=self.rf_rate,
            deviation_hz=deviation_hz,
        )
        self.channel = RfChannel(
            channel_config or RfChannelConfig(snr_db=40.0, seed=seed),
            rf_rate=self.rf_rate,
        )
        self.latency_samples = self._calibrate_latency()

    def _chain(self, audio):
        """Mic front-end → FM → RF channel → demodulator.

        With observability enabled, demodulator time lands in the
        ``relay.demod_s{relay=analog}`` histogram — the dominant
        receive-side cost of the chain.
        """
        shaped = sps.sosfilt(self._front_sos, audio)
        if self.mic_noise_rms > 0.0:
            rng = np.random.default_rng(self.seed + 1)
            shaped = shaped + self.mic_noise_rms * rng.standard_normal(
                shaped.size
            )
        baseband = self.modulator.modulate(shaped)
        impaired = self.channel.apply(baseband)
        if obs.enabled():
            t_start = time.perf_counter()
            demodulated = self.demodulator.demodulate(impaired)
            obs.get_registry().histogram("relay.demod_s",
                                         relay="analog").observe(
                time.perf_counter() - t_start)
            return demodulated
        return self.demodulator.demodulate(impaired)

    def _calibrate_latency(self):
        """Measure the fixed chain group delay with a chirp probe.

        Returns a *fractional* sample count: the correlation peak is
        refined with parabolic interpolation, because the discriminator
        and resamplers leave a sub-sample offset that would otherwise
        read as high-frequency error.
        """
        n = int(self.audio_rate * 0.25)
        t = np.arange(n) / self.audio_rate
        probe = sps.chirp(t, f0=100.0, f1=self.audio_rate * 0.4, t1=t[-1])
        out = self._chain(probe)
        m = min(probe.size, out.size)
        corr = sps.correlate(out[:m], probe[:m], mode="full")
        peak = int(np.argmax(np.abs(corr)))
        lag = float(peak - (m - 1))
        if 0 < peak < corr.size - 1:
            y0, y1, y2 = np.abs(corr[peak - 1: peak + 2])
            denom = y0 - 2.0 * y1 + y2
            if abs(denom) > 1e-12:
                lag += 0.5 * (y0 - y2) / denom
        return max(lag, 0.0)

    def forward(self, audio):
        """Forward an audio block through the full relay chain.

        The output is aligned to the input (the calibrated group delay,
        including its fractional part, is removed) and trimmed/padded to
        the input length, so downstream code can treat RF forwarding as
        effectively instantaneous — the paper's premise, with the chain's
        distortions intact.
        """
        audio = check_waveform("audio", audio)
        with obs.span("relay.forward", relay="analog", samples=audio.size):
            out = self._chain(audio)
            aligned = _advance(out, self.latency_samples)
            if aligned.size < audio.size:
                aligned = np.concatenate(
                    [aligned, np.zeros(audio.size - aligned.size)]
                )
            if obs.enabled():
                obs.get_registry().counter("relay.forwarded_samples",
                                           relay="analog").inc(audio.size)
            return aligned[: audio.size]

    def audio_snr_db(self, audio):
        """End-to-end *coherent* audio SNR through the relay.

        The chain applies a deterministic linear response (front-end LPF,
        resampler roll-off); an adaptive canceler absorbs that into its
        channel estimate, so it is not "noise" in the ANC sense.  What
        degrades cancellation is the incoherent residual — RF noise, mic
        self-noise, FM click noise.  Magnitude-squared coherence separates
        the two: per frequency, ``SNR(f) = C(f) / (1 - C(f))``; the
        returned figure is the output-power-weighted aggregate in dB.
        """
        audio = check_waveform("audio", audio, min_length=256)
        forwarded = self.forward(audio)
        nperseg = min(1024, audio.size // 4)
        freqs, coherence = sps.coherence(audio, forwarded,
                                         fs=self.audio_rate, nperseg=nperseg)
        __, pyy = sps.welch(forwarded, fs=self.audio_rate, nperseg=nperseg)
        coherence = np.clip(coherence, 0.0, 1.0 - 1e-9)
        coherent_power = float(np.sum(pyy * coherence))
        incoherent_power = float(np.sum(pyy * (1.0 - coherence)))
        if incoherent_power <= 0.0:
            return float("inf")
        snr = 10.0 * np.log10(coherent_power / incoherent_power)
        if obs.enabled():
            obs.get_registry().gauge("relay.audio_snr_db",
                                     relay="analog").set(snr)
        return snr
