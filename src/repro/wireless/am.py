"""Amplitude modulation baseline.

The paper justifies FM over AM (§4.1): RF noise and power-amplifier
nonlinearity corrupt *amplitude* directly, while FM hides the audio in
the phase.  This AM implementation exists to make that comparison
quantitative (the ``bench_ablation_fm_vs_am`` benchmark).
"""

from __future__ import annotations

import numpy as np
from scipy import signal as sps

from ..errors import ConfigurationError
from ..utils import fastpath
from ..utils.validation import check_in_range, check_positive, check_waveform
from .fm import resample

__all__ = ["AmModulator", "AmDemodulator"]


class AmModulator:
    """Conventional (DSB full-carrier) AM at complex baseband.

    ``x(t) = Ap * (1 + mu * m(t)) `` with ``|m| <= 1`` assumed; inputs are
    normalized by their peak so the modulation index is honored.
    """

    def __init__(self, audio_rate=8000.0, rf_rate=96000.0,
                 modulation_index=0.8, amplitude=1.0):
        self.audio_rate = check_positive("audio_rate", audio_rate)
        self.rf_rate = check_positive("rf_rate", rf_rate)
        self.modulation_index = check_in_range(
            "modulation_index", modulation_index, 0.0, 1.0, inclusive=True
        )
        if self.modulation_index == 0.0:
            raise ConfigurationError("modulation_index must be > 0")
        self.amplitude = check_positive("amplitude", amplitude)

    def modulate(self, audio):
        """Modulate audio onto a complex-baseband AM envelope."""
        audio = check_waveform("audio", audio)
        peak = np.max(np.abs(audio))
        normalized = audio / peak if peak > 0 else audio
        rf_audio = resample(normalized, self.audio_rate, self.rf_rate)
        if not fastpath.enabled():
            rf_audio = np.clip(rf_audio, -1.0, 1.0)
            envelope = 1.0 + self.modulation_index * rf_audio
            return (self.amplitude * envelope).astype(np.complex128)
        # Envelope built in place on the full-rate buffer we own; the
        # complex cast is the only remaining full-rate copy (the output
        # itself).
        np.clip(rf_audio, -1.0, 1.0, out=rf_audio)
        rf_audio *= self.modulation_index
        rf_audio += 1.0
        rf_audio *= self.amplitude
        out = np.zeros(rf_audio.size, dtype=np.complex128)
        out.real = rf_audio
        return out


class AmDemodulator:
    """Envelope detector: magnitude, DC removal, low-pass, decimate."""

    def __init__(self, audio_rate=8000.0, rf_rate=96000.0,
                 modulation_index=0.8):
        self.audio_rate = check_positive("audio_rate", audio_rate)
        self.rf_rate = check_positive("rf_rate", rf_rate)
        self.modulation_index = check_positive(
            "modulation_index", modulation_index
        )
        cutoff = min(self.audio_rate / 2.0, self.rf_rate / 2.0 * 0.9)
        self._sos = sps.butter(
            6, cutoff / (self.rf_rate / 2.0), btype="lowpass", output="sos"
        )

    def demodulate(self, baseband):
        """Recover audio from the AM envelope."""
        baseband = check_waveform("baseband", baseband, min_length=2,
                                  allow_complex=True)
        envelope = np.abs(baseband)
        if not fastpath.enabled():
            envelope = envelope - np.mean(envelope)
            envelope = sps.sosfiltfilt(self._sos, envelope)
            audio = resample(envelope, self.rf_rate, self.audio_rate)
            return audio / self.modulation_index
        envelope -= np.mean(envelope)
        envelope = sps.sosfiltfilt(self._sos, envelope)
        audio = resample(envelope, self.rf_rate, self.audio_rate)
        audio /= self.modulation_index
        return audio
