"""Link-budget arithmetic for the 900 MHz relay.

Converts scenario geometry into the receiver SNR that
:class:`repro.wireless.rf_channel.RfChannel` applies, and quantifies the
paper's §6 claim that one relay occupies only a sliver of the 26 MHz ISM
band.
"""

from __future__ import annotations

import math

from ..errors import ConfigurationError
from ..utils.validation import check_positive

__all__ = [
    "ISM_900_BANDWIDTH_HZ",
    "BOLTZMANN",
    "free_space_path_loss_db",
    "thermal_noise_dbm",
    "received_snr_db",
    "band_occupancy_fraction",
]

#: Usable width of the 902–928 MHz ISM band.
ISM_900_BANDWIDTH_HZ = 26e6

#: Boltzmann constant (J/K).
BOLTZMANN = 1.380649e-23


def free_space_path_loss_db(distance_m, frequency_hz=915e6):
    """Friis free-space path loss in dB."""
    distance_m = check_positive("distance_m", distance_m)
    frequency_hz = check_positive("frequency_hz", frequency_hz)
    wavelength = 299_792_458.0 / frequency_hz
    return 20.0 * math.log10(4.0 * math.pi * distance_m / wavelength)


def thermal_noise_dbm(bandwidth_hz, temperature_k=290.0, noise_figure_db=6.0):
    """Receiver thermal noise floor in dBm over ``bandwidth_hz``."""
    bandwidth_hz = check_positive("bandwidth_hz", bandwidth_hz)
    temperature_k = check_positive("temperature_k", temperature_k)
    noise_w = BOLTZMANN * temperature_k * bandwidth_hz
    return 10.0 * math.log10(noise_w * 1e3) + noise_figure_db


def received_snr_db(tx_power_dbm, distance_m, bandwidth_hz,
                    frequency_hz=915e6, antenna_gain_db=0.0,
                    noise_figure_db=6.0):
    """Receiver SNR for a line-of-sight 900 MHz link.

    Indoor distances of a few meters at ISM power limits give very high
    SNR — which is why the paper's audio-over-FM link is clean.
    """
    if not math.isfinite(tx_power_dbm):
        raise ConfigurationError("tx_power_dbm must be finite")
    rx_power = (
        tx_power_dbm
        + antenna_gain_db
        - free_space_path_loss_db(distance_m, frequency_hz)
    )
    return rx_power - thermal_noise_dbm(bandwidth_hz,
                                        noise_figure_db=noise_figure_db)


def band_occupancy_fraction(occupied_bandwidth_hz, n_relays=1,
                            band_hz=ISM_900_BANDWIDTH_HZ):
    """Fraction of the ISM band consumed by ``n_relays`` relays.

    The paper argues a handful of ~30 kHz FM channels is a negligible
    slice of 26 MHz; this function is the arithmetic behind that claim.
    """
    occupied_bandwidth_hz = check_positive(
        "occupied_bandwidth_hz", occupied_bandwidth_hz
    )
    if n_relays < 1:
        raise ConfigurationError("n_relays must be >= 1")
    band_hz = check_positive("band_hz", band_hz)
    return occupied_bandwidth_hz * n_relays / band_hz
