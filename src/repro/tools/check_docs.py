"""Documentation lint: dead links and undocumented experiments.

The docs cross-reference each other, the source tree, and the experiment
catalog — all of which drift as the library grows.  This checker keeps
them honest:

* every relative markdown link (``[text](OTHER.md)``) in ``README.md``
  and ``docs/*.md`` must resolve to an existing file;
* every backticked path reference (`` `docs/RUNTIME.md` ``,
  `` `src/repro/cli.py` ``) must exist, resolved against the referencing
  file's directory, the repo root, and ``src/repro``;
* every experiment registered in :mod:`repro.eval.experiments` must be
  mentioned by name in at least one checked document.

Run it directly::

    PYTHONPATH=src python -m repro.tools.check_docs
    python -m repro.tools.check_docs --root /path/to/checkout

Exit code 0 = clean, 1 = problems (each printed on its own line).  The
test suite runs the same checks behind the opt-in ``docs_lint`` marker
(``pytest --docs-lint`` or ``REPRO_DOCS_LINT=1``).
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

__all__ = ["collect_problems", "main"]

#: Relative markdown links: [text](target) with no scheme/anchor-only.
_LINK_RE = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")

#: Backticked path-looking references ending in .md or .py.
_BACKTICK_RE = re.compile(r"`([^`\s]+\.(?:md|py))`")


def _repo_root():
    """The checkout root, assuming the ``src/repro/tools`` layout."""
    return pathlib.Path(__file__).resolve().parents[3]


def _documents(root):
    """The markdown files under lint, in deterministic order."""
    docs = [root / "README.md"]
    docs_dir = root / "docs"
    if docs_dir.is_dir():
        docs.extend(sorted(docs_dir.glob("*.md")))
    return [d for d in docs if d.is_file()]


def _is_external(target):
    return target.startswith(("http://", "https://", "mailto:", "#"))


def _resolves(target, doc_path, root):
    """Can ``target`` be found anywhere sensible?"""
    if any(ch in target for ch in "*?<>{}"):
        return True  # glob/placeholder, not a literal path
    candidates = (
        doc_path.parent / target,
        root / target,
        root / "src" / "repro" / target,
        root / "examples" / target,
        root / "benchmarks" / target,
    )
    return any(c.exists() for c in candidates)


def check_links(root, problems):
    """Validate relative links and backticked path references."""
    for doc in _documents(root):
        text = doc.read_text(encoding="utf-8")
        rel = doc.relative_to(root)
        for match in _LINK_RE.finditer(text):
            target = match.group(1).split("#", 1)[0]
            if not target or _is_external(match.group(1)):
                continue
            if "." not in target and "/" not in target:
                continue  # math notation or intra-page anchor, not a path
            if not _resolves(target, doc, root):
                problems.append(f"{rel}: dead link -> {target}")
        for match in _BACKTICK_RE.finditer(text):
            target = match.group(1)
            if not _resolves(target, doc, root):
                problems.append(f"{rel}: missing path reference "
                                f"-> {target}")


def check_experiments_documented(root, problems):
    """Every registered experiment must appear in the checked docs."""
    from ..eval import experiments

    corpus = "\n".join(doc.read_text(encoding="utf-8")
                       for doc in _documents(root))
    for name in experiments.experiment_names():
        if name not in corpus:
            problems.append(
                f"experiment {name!r} is registered but never mentioned "
                "in README.md or docs/"
            )


def collect_problems(root=None):
    """Run every check; returns a list of problem strings (empty = clean)."""
    root = pathlib.Path(root) if root is not None else _repo_root()
    problems = []
    if not _documents(root):
        return [f"no markdown documents found under {root}"]
    check_links(root, problems)
    check_experiments_documented(root, problems)
    return problems


def main(argv=None):
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.check_docs",
        description="lint intra-repo documentation links and coverage",
    )
    parser.add_argument("--root", default=None,
                        help="checkout root (default: inferred from the "
                             "installed package location)")
    args = parser.parse_args(argv)
    problems = collect_problems(args.root)
    for problem in problems:
        print(problem)
    if problems:
        print(f"check_docs: {len(problems)} problem(s)")
        return 1
    print("check_docs: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
