"""repro.tools — repository maintenance utilities.

Not part of the simulation library proper: these are small checkers a
contributor (or CI) runs against the working tree.  Currently:

* :mod:`repro.tools.check_docs` — documentation lint
  (``python -m repro.tools.check_docs``): validates intra-repo links in
  the markdown docs and checks that every registered experiment is
  mentioned somewhere in them.  Wired into the test suite as the opt-in
  ``docs_lint`` pytest marker (``pytest --docs-lint``).
"""

from __future__ import annotations

__all__ = []
