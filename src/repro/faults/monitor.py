"""Reference-health watchdog and the graceful-degradation controller.

When the relay path fails, an adaptive feedforward canceler has three
choices, in order of preference (Xiao & Doclo's delay study: degradation
is graded, not binary):

1. **mute** — the reference is healthy: full LANC, adapting, anti-noise
   on (the normal MUTE operating point);
2. **feedback** — the reference is degraded (fade, bursts, heavy
   loss): keep cancelling with the last converged taps but *freeze
   adaptation*, so a corrupt reference cannot walk the filter away from
   its solution (the device behaves like a fixed feedback canceler on
   cached state);
3. **passive** — the reference is lost: stop driving the anti-noise
   speaker entirely and let the earcup's passive attenuation carry the
   ear (driving a converged filter with silence just outputs silence
   *plus* adaptation noise; muting is strictly better and is what a
   production device must do).

:class:`ReferenceHealthMonitor` is the watchdog: a per-block
energy/spike detector with hysteresis, so one noisy block cannot flap
the mode.  :class:`DegradationController` maps health to modes, owns the
tap snapshot/restore that makes **recovery** fast (on re-entering
``mute`` it restores the pre-fault taps and resumes adapting — the
filter re-converges from its old solution rather than from zero), and
emits a :mod:`repro.obs` span plus counters for every transition.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .. import obs
from ..errors import ConfigurationError
from ..utils.validation import check_positive, check_positive_int

__all__ = [
    "HEALTHY",
    "DEGRADED",
    "LOST",
    "MODE_MUTE",
    "MODE_FEEDBACK",
    "MODE_PASSIVE",
    "ReferenceHealthMonitor",
    "ModeTransition",
    "DegradationController",
]

#: Reference-health states, in increasing severity.
HEALTHY = "healthy"
DEGRADED = "degraded"
LOST = "lost"

_SEVERITY = {HEALTHY: 0, DEGRADED: 1, LOST: 2}

#: Degradation modes, in decreasing capability.
MODE_MUTE = "mute"
MODE_FEEDBACK = "feedback"
MODE_PASSIVE = "passive"

_MODE_FOR_STATE = {HEALTHY: MODE_MUTE, DEGRADED: MODE_FEEDBACK,
                   LOST: MODE_PASSIVE}

#: Numeric encoding for the ``resilience.mode`` gauge.
MODE_LEVEL = {MODE_MUTE: 2, MODE_FEEDBACK: 1, MODE_PASSIVE: 0}


class ReferenceHealthMonitor:
    """Block-wise energy/SNR watchdog over the relay reference.

    The monitor learns a baseline reference level (an EMA over healthy
    blocks) and classifies each new block against it:

    * RMS below ``lost_ratio``  × baseline → :data:`LOST`
      (outage/handoff: the stream went silent);
    * RMS below ``degraded_ratio`` × baseline **or** above
      ``spike_ratio`` × baseline → :data:`DEGRADED` (a fade or burst
      interference floods the stream with energy that is not signal —
      the SNR side of the watchdog);
    * otherwise → :data:`HEALTHY`.

    Parameters
    ----------
    lost_ratio : float
        RMS ratio under which the reference counts as gone.
    degraded_ratio : float
        RMS ratio under which it counts as degraded.
        Must satisfy ``lost_ratio < degraded_ratio < 1``.
    spike_ratio : float
        RMS ratio above which excess energy counts as interference.
    recovery_blocks : int
        Hysteresis: the reported state only *improves* after this many
        consecutive better-than-current assessments.  Worsening is
        immediate — failing fast is safe, flapping is not.
    baseline_alpha : float
        EMA coefficient for the baseline level (updated on healthy
        blocks only, so an outage cannot drag the baseline down).
    floor_rms : float
        Absolute silence floor used before a baseline exists.

    Notes
    -----
    The monitor is pure state-machine — no randomness, no wall clock —
    so resilient runs stay bit-reproducible.
    """

    def __init__(self, lost_ratio=0.1, degraded_ratio=0.5, spike_ratio=4.0,
                 recovery_blocks=2, baseline_alpha=0.25, floor_rms=1e-8):
        if not 0.0 < lost_ratio < degraded_ratio < 1.0:
            raise ConfigurationError(
                "need 0 < lost_ratio < degraded_ratio < 1, got "
                f"({lost_ratio}, {degraded_ratio})"
            )
        if spike_ratio <= 1.0:
            raise ConfigurationError("spike_ratio must be > 1")
        if not 0.0 < baseline_alpha <= 1.0:
            raise ConfigurationError("baseline_alpha must be in (0, 1]")
        self.lost_ratio = float(lost_ratio)
        self.degraded_ratio = float(degraded_ratio)
        self.spike_ratio = float(spike_ratio)
        self.recovery_blocks = check_positive_int("recovery_blocks",
                                                  recovery_blocks)
        self.baseline_alpha = float(baseline_alpha)
        self.floor_rms = check_positive("floor_rms", floor_rms)
        self.baseline_rms = None
        self.state = HEALTHY
        self._better_streak = 0

    def _raw_state(self, rms):
        """Classification of one block, hysteresis not yet applied."""
        if self.baseline_rms is None:
            return LOST if rms < self.floor_rms else HEALTHY
        ratio = rms / max(self.baseline_rms, self.floor_rms)
        if ratio < self.lost_ratio:
            return LOST
        if ratio < self.degraded_ratio or ratio > self.spike_ratio:
            return DEGRADED
        return HEALTHY

    def assess(self, reference_block):
        """Classify one reference block; returns the (hysteretic) state.

        Parameters
        ----------
        reference_block : array_like
            The aligned reference samples about to be consumed.

        Returns
        -------
        str
            :data:`HEALTHY`, :data:`DEGRADED`, or :data:`LOST`.
        """
        block = np.asarray(reference_block, dtype=np.float64)
        rms = float(np.sqrt(np.mean(np.square(block)))) if block.size \
            else 0.0
        raw = self._raw_state(rms)
        if _SEVERITY[raw] > _SEVERITY[self.state]:
            # Worsening is immediate.
            self.state = raw
            self._better_streak = 0
        elif _SEVERITY[raw] < _SEVERITY[self.state]:
            self._better_streak += 1
            if self._better_streak >= self.recovery_blocks:
                self.state = raw
                self._better_streak = 0
        else:
            self._better_streak = 0
        if self.state == HEALTHY:
            if self.baseline_rms is None:
                self.baseline_rms = rms
            else:
                a = self.baseline_alpha
                self.baseline_rms = (1.0 - a) * self.baseline_rms + a * rms
        return self.state


@dataclasses.dataclass(frozen=True)
class ModeTransition:
    """One mode change of the degradation controller."""

    block_index: int      #: which observe() call triggered it
    sample_index: int     #: first sample of that block
    time_s: float         #: sample_index / sample_rate
    from_mode: str
    to_mode: str
    state: str            #: the monitor state that triggered the change


class DegradationController:
    """Maps reference health to filter gating; owns recovery.

    Parameters
    ----------
    lanc_filter : LancFilter
        The adaptive filter being protected.  The controller snapshots
        its taps when leaving :data:`MODE_MUTE` and restores them when
        re-entering it, so recovery resumes from the pre-fault solution.
    monitor : ReferenceHealthMonitor, optional
        The watchdog; a default-configured one if omitted.
    sample_rate : float
        Used only to timestamp transitions.

    Notes
    -----
    Every transition appends a :class:`ModeTransition`, emits a
    ``resilience.transition`` span (attributes ``from``/``to``/
    ``state``/``t_s``) into the active trace, ticks the
    ``resilience.transitions{from,to}`` counter, and sets the
    ``resilience.mode`` gauge (2 = mute, 1 = feedback, 0 = passive) —
    so a mid-run outage is visible in ``repro obs-report`` output.
    """

    def __init__(self, lanc_filter, monitor=None, sample_rate=8000.0):
        if not hasattr(lanc_filter, "get_taps") \
                or not hasattr(lanc_filter, "set_taps"):
            raise ConfigurationError(
                "lanc_filter must expose get_taps()/set_taps()"
            )
        self.filter = lanc_filter
        self.monitor = monitor or ReferenceHealthMonitor()
        self.sample_rate = check_positive("sample_rate", sample_rate)
        self.mode = MODE_MUTE
        self.transitions = []
        self.modes = []          #: mode chosen for each observed block
        self._snapshot = None
        self._blocks = 0

    def observe(self, reference_block, sample_index):
        """Assess one block and return the mode to run it under.

        Parameters
        ----------
        reference_block : array_like
            Aligned reference for the upcoming block.
        sample_index : int
            Absolute start sample of the block (for transition records).

        Returns
        -------
        str
            :data:`MODE_MUTE`, :data:`MODE_FEEDBACK`, or
            :data:`MODE_PASSIVE`.
        """
        state = self.monitor.assess(reference_block)
        target = _MODE_FOR_STATE[state]
        if target != self.mode:
            self._transition(target, state, sample_index)
        self.modes.append(self.mode)
        self._blocks += 1
        return self.mode

    def _transition(self, target, state, sample_index):
        if self.mode == MODE_MUTE:
            # Leaving healthy operation: preserve the converged taps
            # before a corrupt reference can touch them.
            self._snapshot = self.filter.get_taps()
        if target == MODE_MUTE and self._snapshot is not None:
            # Recovery: resume adapting from the pre-fault solution.
            self.filter.set_taps(self._snapshot)
        transition = ModeTransition(
            block_index=self._blocks,
            sample_index=int(sample_index),
            time_s=float(sample_index) / self.sample_rate,
            from_mode=self.mode,
            to_mode=target,
            state=state,
        )
        self.transitions.append(transition)
        if obs.enabled():
            with obs.span("resilience.transition",
                          **{"from": transition.from_mode,
                             "to": transition.to_mode,
                             "state": state,
                             "t_s": round(transition.time_s, 6)}):
                pass
            registry = obs.get_registry()
            registry.counter("resilience.transitions",
                             **{"from": transition.from_mode,
                                "to": transition.to_mode}).inc()
            registry.gauge("resilience.mode").set(MODE_LEVEL[target])
        self.mode = target

    @staticmethod
    def gates(mode):
        """``(adapt, active)`` filter gating for a mode.

        ``adapt`` — whether the LANC taps may update this block;
        ``active`` — whether the anti-noise speaker is driven at all.
        """
        if mode == MODE_MUTE:
            return True, True
        if mode == MODE_FEEDBACK:
            return False, True
        if mode == MODE_PASSIVE:
            return False, False
        raise ConfigurationError(f"unknown mode {mode!r}")

    @property
    def recovered(self):
        """True when the controller is back in full MUTE operation."""
        return self.mode == MODE_MUTE

    def mode_fractions(self):
        """``{mode: fraction of observed blocks}`` (for reports)."""
        if not self.modes:
            return {}
        n = len(self.modes)
        return {mode: self.modes.count(mode) / n
                for mode in (MODE_MUTE, MODE_FEEDBACK, MODE_PASSIVE)
                if mode in self.modes}
