"""Relay supervision: retry/backoff bookkeeping and health-aware routing.

A multi-relay deployment (paper Figure 19) should *route around* a relay
whose link has failed instead of repeatedly selecting it on stale
GCC-PHAT measurements.  This module supplies the missing operational
layer:

* :class:`RetryPolicy` — deterministic exponential backoff with a cap
  and a probation score;
* :class:`RelaySupervisor` — per-relay failure bookkeeping that turns
  the policy into the ``health`` score dict
  :meth:`repro.core.relay_selection.RelaySelector.select` consumes.

Everything is driven by an explicit simulation clock (``at_s``
arguments) — no wall-clock reads — so supervised runs remain
bit-reproducible and serial == parallel.
"""

from __future__ import annotations

import dataclasses

from .. import obs
from ..errors import ConfigurationError

__all__ = ["RetryPolicy", "RelayLinkState", "RelaySupervisor"]


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Backoff schedule applied to a failing relay link.

    Parameters
    ----------
    base_backoff_s : float
        Quarantine after the first consecutive failure.
    backoff_factor : float
        Multiplier per further consecutive failure (exponential).
    max_backoff_s : float
        Backoff ceiling.
    probation_health : float
        Health score of a relay whose backoff has expired but which has
        not yet proven itself with a success — above a selector's
        ``min_health`` it is eligible again, but a healthy relay with
        comparable lookahead still wins.
    """

    base_backoff_s: float = 0.5
    backoff_factor: float = 2.0
    max_backoff_s: float = 8.0
    probation_health: float = 0.6

    def __post_init__(self):
        if self.base_backoff_s <= 0 or self.max_backoff_s <= 0:
            raise ConfigurationError("backoff durations must be > 0")
        if self.backoff_factor < 1.0:
            raise ConfigurationError("backoff_factor must be >= 1")
        if not 0.0 < self.probation_health <= 1.0:
            raise ConfigurationError("probation_health must be in (0, 1]")

    def backoff_s(self, consecutive_failures):
        """Quarantine length after ``consecutive_failures`` failures."""
        if consecutive_failures <= 0:
            return 0.0
        backoff = self.base_backoff_s * (
            self.backoff_factor ** (consecutive_failures - 1)
        )
        return min(backoff, self.max_backoff_s)


@dataclasses.dataclass
class RelayLinkState:
    """Mutable supervision record for one relay."""

    failures: int = 0             #: consecutive failures
    total_failures: int = 0
    last_failure_s: float | None = None  #: time of the latest failure
    retry_at_s: float = 0.0       #: earliest re-selection time


class RelaySupervisor:
    """Tracks relay-link failures and scores relay health for selection.

    Parameters
    ----------
    policy : RetryPolicy, optional
        Backoff schedule; defaults are sensible for room-scale runs.

    Examples
    --------
    >>> supervisor = RelaySupervisor()
    >>> supervisor.record_failure(0, at_s=1.0)       # relay 0 timed out
    >>> selector = RelaySelector(sample_rate=8000.0)
    >>> best, measurements = supervisor.select(
    ...     selector, forwarded, ear, at_s=1.2)      # routes around 0

    Notes
    -----
    A relay in backoff scores ``0.0`` (never selected); once its backoff
    expires it scores ``policy.probation_health`` until
    :meth:`record_success` restores ``1.0``.  Repeated failures grow the
    backoff exponentially up to ``max_backoff_s``, so a dead relay costs
    one probe per backoff period instead of one per selection round.
    """

    def __init__(self, policy=None):
        policy = policy or RetryPolicy()
        if not isinstance(policy, RetryPolicy):
            raise ConfigurationError("policy must be a RetryPolicy")
        self.policy = policy
        self._links = {}

    def _link(self, relay_id):
        return self._links.setdefault(relay_id, RelayLinkState())

    def record_failure(self, relay_id, at_s):
        """Note a link failure (timeout, lost carrier, failed probe).

        Returns the time before which the relay will not be selected.
        """
        link = self._link(relay_id)
        link.failures += 1
        link.total_failures += 1
        link.last_failure_s = float(at_s)
        link.retry_at_s = float(at_s) + self.policy.backoff_s(link.failures)
        if obs.enabled():
            obs.get_registry().counter(
                "resilience.relay_failures", relay=str(relay_id)).inc()
        return link.retry_at_s

    def record_success(self, relay_id, at_s):
        """Note a healthy interaction; clears backoff and probation."""
        link = self._link(relay_id)
        link.failures = 0
        link.retry_at_s = float(at_s)

    def health(self, relay_ids, at_s):
        """Health scores in ``[0, 1]`` for the given relays at ``at_s``.

        Parameters
        ----------
        relay_ids : iterable
            The relays being considered (unknown ids score 1.0).
        at_s : float
            Current simulation time.

        Returns
        -------
        dict
            ``{relay_id: score}`` — ``0.0`` in backoff,
            ``probation_health`` after backoff but before a success,
            ``1.0`` otherwise.
        """
        scores = {}
        for relay_id in relay_ids:
            link = self._links.get(relay_id)
            if link is None or link.failures == 0:
                scores[relay_id] = 1.0
            elif at_s < link.retry_at_s:
                scores[relay_id] = 0.0
            else:
                scores[relay_id] = self.policy.probation_health
        return scores

    def select(self, selector, forwarded_by_relay, ear_signal, at_s,
               max_lag_s=0.05):
        """Health-aware relay selection through a ``RelaySelector``.

        Thin glue: computes :meth:`health` for the offered relays and
        passes it to ``selector.select``; returns its
        ``(best_id_or_None, measurements)`` unchanged.
        """
        scores = self.health(forwarded_by_relay.keys(), at_s)
        return selector.select(forwarded_by_relay, ear_signal,
                               max_lag_s=max_lag_s, health=scores)
