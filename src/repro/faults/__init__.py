"""repro.faults — fault injection and graceful degradation for the relay path.

MUTE hangs on a wireless relay delivering the noise reference *ahead of
time*; this package is the robustness axis: what happens when that
relay path fails, and how the system degrades gracefully instead of
diverging.  Full guide: ``docs/FAULTS.md``.

Three layers:

* :mod:`~repro.faults.events` — the deterministic fault model:
  :class:`FaultEvent` subtypes (outage, SNR fade, burst interference,
  packet loss/reorder, clock drift, handoff blackout) composed into a
  content-addressed :class:`FaultPlan`;
* :mod:`~repro.faults.injector` — :class:`FaultyRelay` /
  :class:`FaultyRfChannel` wrappers that apply a plan around an
  unmodified relay ``forward()`` or ``RfChannel.apply``;
* :mod:`~repro.faults.monitor` — the
  :class:`ReferenceHealthMonitor` watchdog and the
  :class:`DegradationController` that walks
  ``mute → feedback → passive`` and back, snapshotting/restoring taps
  for fast re-convergence;
* :mod:`~repro.faults.supervision` — :class:`RelaySupervisor`
  retry/backoff bookkeeping feeding health-aware
  :class:`~repro.core.relay_selection.RelaySelector` routing.

Minimal session::

    from repro import faults

    plan = faults.outage_plan(duration_s=8.0, fraction=0.25)
    result = system.run_resilient(noise, fault_plan=plan)
    result.transitions          # degrade -> recover mode changes
    result.mean_cancellation_db()

The ``resilience`` experiment (``python -m repro run resilience``)
sweeps outage fraction and packet-loss rate into cancellation curves.
"""

from __future__ import annotations

from .events import (
    BurstInterference,
    ClockDrift,
    FaultEvent,
    FaultPlan,
    PacketLoss,
    PacketReorder,
    RelayHandoff,
    RelayOutage,
    SnrFade,
    outage_plan,
    packet_loss_plan,
)
from .injector import FaultyRelay, FaultyRfChannel, wrap_relay
from .monitor import (
    DEGRADED,
    HEALTHY,
    LOST,
    MODE_FEEDBACK,
    MODE_MUTE,
    MODE_PASSIVE,
    DegradationController,
    ModeTransition,
    ReferenceHealthMonitor,
)
from .supervision import RelayLinkState, RelaySupervisor, RetryPolicy

__all__ = [
    # events
    "FaultEvent",
    "RelayOutage",
    "SnrFade",
    "BurstInterference",
    "PacketLoss",
    "PacketReorder",
    "ClockDrift",
    "RelayHandoff",
    "FaultPlan",
    "outage_plan",
    "packet_loss_plan",
    # injector
    "FaultyRelay",
    "FaultyRfChannel",
    "wrap_relay",
    # monitor
    "HEALTHY",
    "DEGRADED",
    "LOST",
    "MODE_MUTE",
    "MODE_FEEDBACK",
    "MODE_PASSIVE",
    "ReferenceHealthMonitor",
    "ModeTransition",
    "DegradationController",
    # supervision
    "RetryPolicy",
    "RelayLinkState",
    "RelaySupervisor",
]
