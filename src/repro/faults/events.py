"""Fault events and plans: the deterministic fault model of the relay path.

MUTE's premise is a wireless relay that delivers the noise reference
*ahead of time* (paper §4, Figure 9).  Everything in this module exists
to take that premise away — on a schedule, reproducibly:

* a :class:`FaultEvent` is one timed impairment of the relay path
  (outage window, RF SNR fade, burst interference, digital packet
  loss/reorder, clock drift, relay handoff blackout);
* a :class:`FaultPlan` is an ordered collection of events plus a seed —
  the complete, content-addressed description of "what goes wrong when"
  for one simulated run.

Plans are *data*, never behavior: applying one is the job of
:mod:`repro.faults.injector`, which wraps a relay's ``forward()`` (or an
``RfChannel.apply``) without touching the wrapped object.  Because a
plan is a frozen value with a deterministic :meth:`FaultPlan.plan_key`,
two processes given equal plans inject bit-identical faults — which is
what keeps :mod:`repro.runtime`'s parallel executor and channel cache
honest (the cache never sees faults at all: plans perturb *signals*,
not room geometry).

Time convention
---------------
Event times are **seconds from the start of the forwarded waveform**.
The injector treats each ``forward()`` call as ``t = 0``; MUTE
experiments forward one waveform per run, so plan time equals
simulation time.
"""

from __future__ import annotations

import dataclasses
import hashlib

from ..errors import ConfigurationError

__all__ = [
    "FaultEvent",
    "RelayOutage",
    "SnrFade",
    "BurstInterference",
    "PacketLoss",
    "PacketReorder",
    "ClockDrift",
    "RelayHandoff",
    "FaultPlan",
    "outage_plan",
    "packet_loss_plan",
]


@dataclasses.dataclass(frozen=True)
class FaultEvent:
    """One timed impairment window on the relay path.

    Parameters
    ----------
    start_s : float
        Window start, seconds from the beginning of the forwarded
        waveform (inclusive).
    stop_s : float
        Window end, seconds (exclusive).  Must be ``> start_s``.

    Notes
    -----
    Subclasses add the impairment-specific knobs; this base class only
    owns the window arithmetic shared by all of them.
    """

    start_s: float
    stop_s: float

    def __post_init__(self):
        if self.start_s < 0.0:
            raise ConfigurationError(
                f"{type(self).__name__}: start_s must be >= 0, "
                f"got {self.start_s}"
            )
        if self.stop_s <= self.start_s:
            raise ConfigurationError(
                f"{type(self).__name__}: stop_s ({self.stop_s}) must be "
                f"> start_s ({self.start_s})"
            )

    @property
    def duration_s(self):
        """Window length in seconds."""
        return self.stop_s - self.start_s

    def window(self, sample_rate, n_samples):
        """The event's sample window clipped to a waveform.

        Parameters
        ----------
        sample_rate : float
            Rate of the waveform the event is applied to (Hz).
        n_samples : int
            Length of that waveform.

        Returns
        -------
        (int, int)
            ``(lo, hi)`` slice bounds with ``0 <= lo <= hi <= n_samples``;
            an empty window (``lo == hi``) means the event falls entirely
            outside the waveform.
        """
        lo = int(round(self.start_s * sample_rate))
        hi = int(round(self.stop_s * sample_rate))
        lo = min(max(lo, 0), int(n_samples))
        hi = min(max(hi, lo), int(n_samples))
        return lo, hi


@dataclasses.dataclass(frozen=True)
class RelayOutage(FaultEvent):
    """Total loss of the relay link — the forwarded stream goes silent.

    Models an RF fade below the demodulator threshold, a powered-off
    relay, or a user walking out of range.  The severest fault: the
    ear-device keeps running but its reference is gone, which is the
    case Friot's non-causality analysis says cancellation cannot
    survive — the degradation controller's job is to fail to passive
    instead of diverging.
    """


@dataclasses.dataclass(frozen=True)
class SnrFade(FaultEvent):
    """A graded RF fade: the link stays up but its SNR collapses.

    Parameters
    ----------
    snr_db : float
        Received SNR during the fade, dB.  Applied as additive white
        noise scaled against the in-window signal power (audio domain)
        or the in-window baseband power (RF domain).
    """

    snr_db: float = 10.0


@dataclasses.dataclass(frozen=True)
class BurstInterference(FaultEvent):
    """Impulsive co-channel interference riding on the forwarded audio.

    Parameters
    ----------
    level_rms : float
        RMS of the additive interference during the window, at the
        audio signal level.
    """

    level_rms: float = 0.05

    def __post_init__(self):
        super().__post_init__()
        if self.level_rms < 0:
            raise ConfigurationError("level_rms must be >= 0")


@dataclasses.dataclass(frozen=True)
class PacketLoss(FaultEvent):
    """Frame-wise erasure of a digital relay stream inside the window.

    Parameters
    ----------
    loss_rate : float
        Per-frame loss probability in ``[0, 1)``.
    frame_s : float
        Frame duration; lost frames play out as silence, exactly the
        concealment-free behavior of
        :class:`repro.wireless.digital.DigitalRelay`.
    """

    loss_rate: float = 0.1
    frame_s: float = 10e-3

    def __post_init__(self):
        super().__post_init__()
        if not 0.0 <= self.loss_rate < 1.0:
            raise ConfigurationError("loss_rate must be in [0, 1)")
        if self.frame_s <= 0:
            raise ConfigurationError("frame_s must be > 0")


@dataclasses.dataclass(frozen=True)
class PacketReorder(FaultEvent):
    """Adjacent-frame swaps inside the window (late-arriving packets).

    Parameters
    ----------
    swap_rate : float
        Probability that a frame pair inside the window is swapped.
    frame_s : float
        Frame duration.
    """

    swap_rate: float = 0.1
    frame_s: float = 10e-3

    def __post_init__(self):
        super().__post_init__()
        if not 0.0 <= self.swap_rate <= 1.0:
            raise ConfigurationError("swap_rate must be in [0, 1]")
        if self.frame_s <= 0:
            raise ConfigurationError("frame_s must be > 0")


@dataclasses.dataclass(frozen=True)
class ClockDrift(FaultEvent):
    """A drifting relay clock: the forwarded stream slowly de-aligns.

    Parameters
    ----------
    ppm : float
        Drift rate, parts-per-million.  During the window the forwarded
        samples slip by ``ppm * 1e-6 * (t - start_s)`` seconds — a ramp,
        resynchronized at ``stop_s`` (the online device re-measures
        alignment with GCC-PHAT; the window models the span between
        re-measurements).
    """

    ppm: float = 200.0


@dataclasses.dataclass(frozen=True)
class RelayHandoff(FaultEvent):
    """The blackout while the client re-associates to another relay.

    Constructed from an instant plus a blackout length (a handoff is an
    event, not a window the user picks end-points for)::

        RelayHandoff.at(3.0, blackout_s=0.08)

    During the blackout the forwarded stream is silent, like a short
    :class:`RelayOutage`; keeping it a distinct type lets reports count
    handoffs separately from RF outages.
    """

    @classmethod
    def at(cls, at_s, blackout_s=0.05):
        """Build a handoff blackout starting at ``at_s`` seconds."""
        if blackout_s <= 0:
            raise ConfigurationError("blackout_s must be > 0")
        return cls(start_s=at_s, stop_s=at_s + blackout_s)


#: Stable ordering of event types inside a plan key.
_EVENT_TYPES = (
    RelayOutage, SnrFade, BurstInterference, PacketLoss, PacketReorder,
    ClockDrift, RelayHandoff,
)


def _event_blob(event):
    """``Type(field=value,...)`` with exact float reprs — key material."""
    fields = ",".join(
        f"{f.name}={getattr(event, f.name)!r}"
        for f in dataclasses.fields(event)
    )
    return f"{type(event).__name__}({fields})"


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """A deterministic, content-addressed schedule of fault events.

    Parameters
    ----------
    events : tuple of FaultEvent
        The impairments, in any order (stored sorted by ``start_s`` so
        two plans with the same events in different order are the same
        plan — same key, same injection).
    seed : int
        Root seed for every stochastic event.  Event ``i`` draws from
        ``default_rng([seed, i])``, so adding an event never perturbs
        the noise of the others.

    Notes
    -----
    The plan is pure data: frozen, picklable, and hashable by content
    via :meth:`plan_key`.  A plan with no events is the **identity**:
    the injector forwards the wrapped object's output bit-identically
    (``tests/test_failure_injection.py`` holds this as a property test).
    """

    events: tuple = ()
    seed: int = 0

    def __post_init__(self):
        events = tuple(self.events)
        for event in events:
            if not isinstance(event, FaultEvent):
                raise ConfigurationError(
                    f"plan events must be FaultEvent instances, "
                    f"got {type(event).__name__}"
                )
        ordered = tuple(sorted(
            events, key=lambda e: (e.start_s, e.stop_s, type(e).__name__)
        ))
        object.__setattr__(self, "events", ordered)

    def __len__(self):
        return len(self.events)

    @property
    def empty(self):
        """True when the plan injects nothing (the identity plan)."""
        return not self.events

    def plan_key(self):
        """Deterministic SHA-256 content key for this plan.

        Mirrors :func:`repro.runtime.cache.scenario_cache_key`: field
        values are serialized via ``repr`` (floats round-trip exactly),
        no ``hash()`` is involved, so the key is stable across processes
        and ``PYTHONHASHSEED`` values.  Experiment envelopes and obs
        spans carry it so a result can always be traced back to the
        exact fault schedule that produced it.
        """
        parts = ["repro.faults/v1", f"seed:{self.seed!r}"]
        parts.extend(_event_blob(event) for event in self.events)
        return hashlib.sha256("|".join(parts).encode("utf-8")).hexdigest()

    def events_of(self, *types):
        """The plan's events that are instances of the given types."""
        return tuple(e for e in self.events if isinstance(e, types))

    def outage_fraction(self, duration_s):
        """Fraction of ``[0, duration_s]`` covered by silence events.

        Counts :class:`RelayOutage` and :class:`RelayHandoff` windows
        (merged, clipped); the x-axis of the ``resilience`` experiment.
        """
        if duration_s <= 0:
            raise ConfigurationError("duration_s must be > 0")
        windows = sorted(
            (max(e.start_s, 0.0), min(e.stop_s, duration_s))
            for e in self.events_of(RelayOutage, RelayHandoff)
        )
        covered, cursor = 0.0, 0.0
        for lo, hi in windows:
            lo = max(lo, cursor)
            if hi > lo:
                covered += hi - lo
                cursor = hi
        return covered / duration_s

    def describe(self):
        """One line per event — for reports and logs."""
        if self.empty:
            return "FaultPlan: (no events)"
        lines = [f"FaultPlan seed={self.seed} key={self.plan_key()[:12]}"]
        for event in self.events:
            lines.append(f"  {_event_blob(event)}")
        return "\n".join(lines)


def outage_plan(duration_s, fraction, center=0.5, seed=0):
    """One mid-run relay outage covering ``fraction`` of the run.

    Parameters
    ----------
    duration_s : float
        Total run length the plan is designed for.
    fraction : float
        Outage length as a fraction of ``duration_s`` in ``[0, 1)``;
        ``0`` returns the empty (identity) plan.
    center : float
        Where the outage is centered, as a fraction of the run.
    seed : int
        Plan seed (unused by the outage itself — kept so derived plans
        stay content-distinct when callers vary it).

    Returns
    -------
    FaultPlan
    """
    if duration_s <= 0:
        raise ConfigurationError("duration_s must be > 0")
    if not 0.0 <= fraction < 1.0:
        raise ConfigurationError("fraction must be in [0, 1)")
    if fraction == 0.0:
        return FaultPlan(seed=seed)
    half = 0.5 * fraction * duration_s
    mid = center * duration_s
    start = max(mid - half, 0.0)
    stop = min(mid + half, duration_s)
    return FaultPlan(events=(RelayOutage(start, stop),), seed=seed)


def packet_loss_plan(duration_s, loss_rate, frame_s=10e-3, seed=0):
    """Uniform frame loss over the whole run (the Xiao & Doclo axis).

    ``loss_rate == 0`` returns the empty (identity) plan.
    """
    if duration_s <= 0:
        raise ConfigurationError("duration_s must be > 0")
    if loss_rate == 0.0:
        return FaultPlan(seed=seed)
    return FaultPlan(
        events=(PacketLoss(0.0, duration_s, loss_rate=loss_rate,
                           frame_s=frame_s),),
        seed=seed,
    )
