"""Fault injection wrappers: apply a :class:`FaultPlan` to the relay path.

Two wrappers, both *decorators around an unmodified object*:

* :class:`FaultyRelay` wraps anything with a ``forward(audio)`` method
  (:class:`~repro.wireless.relay.IdealRelay`,
  :class:`~repro.wireless.relay.AnalogRelay`,
  :class:`~repro.wireless.digital.DigitalRelay`) and applies the plan's
  events to the *forwarded audio*;
* :class:`FaultyRfChannel` wraps an
  :class:`~repro.wireless.rf_channel.RfChannel` and applies the subset
  of events meaningful at complex baseband (outages, SNR fades, burst
  interference) to the *RF waveform*, for experiments that study where
  in the chain a fade bites.

The wrapped objects' hot paths are untouched — no flags, no branches
added to :mod:`repro.wireless`; the wrapper owns every fault branch.
Attribute access falls through to the wrapped object, so
``latency_samples``, ``audio_snr_db`` and friends keep working.

Determinism contract
--------------------
* An **empty plan is the identity**: ``FaultyRelay(relay, FaultPlan())``
  returns exactly what ``relay.forward`` returned — the same array
  object, bit-identical, no copy.
* Stochastic events draw from ``default_rng([plan.seed, event_index])``,
  so results are reproducible across processes and independent of
  injection order or other events in the plan.
* Each ``forward()``/``apply()`` call is treated as ``t = 0`` (plans
  describe one run; MUTE experiments forward one waveform per run).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..utils.validation import check_positive
from .events import (
    BurstInterference,
    ClockDrift,
    FaultPlan,
    PacketLoss,
    PacketReorder,
    RelayHandoff,
    RelayOutage,
    SnrFade,
)

__all__ = ["FaultyRelay", "FaultyRfChannel", "wrap_relay"]


def _event_rng(plan, index):
    """The rng owned by event ``index`` of ``plan`` (order-independent)."""
    return np.random.default_rng([int(plan.seed) & 0xFFFFFFFF, index])


def _apply_silence(out, lo, hi):
    out[lo:hi] = 0.0


def _apply_snr_fade(out, lo, hi, event, rng, complex_valued):
    """Additive white noise scaled to the in-window signal power."""
    if not np.isfinite(event.snr_db):
        return
    power = float(np.mean(np.abs(out[lo:hi]) ** 2))
    if power <= 0.0:
        return
    noise_power = power / (10.0 ** (event.snr_db / 10.0))
    if complex_valued:
        noise = (rng.standard_normal(hi - lo)
                 + 1j * rng.standard_normal(hi - lo)) \
            * np.sqrt(noise_power / 2.0)
    else:
        noise = np.sqrt(noise_power) * rng.standard_normal(hi - lo)
    out[lo:hi] += noise


def _apply_burst(out, lo, hi, event, rng, complex_valued):
    if event.level_rms == 0.0:
        return
    if complex_valued:
        burst = (rng.standard_normal(hi - lo)
                 + 1j * rng.standard_normal(hi - lo)) \
            * (event.level_rms / np.sqrt(2.0))
    else:
        burst = event.level_rms * rng.standard_normal(hi - lo)
    out[lo:hi] += burst


def _frame_bounds(lo, hi, frame_samples):
    """Frame start indices covering ``[lo, hi)``."""
    return list(range(lo, hi, frame_samples))


def _apply_packet_loss(out, lo, hi, event, rng, sample_rate):
    frame = max(int(round(event.frame_s * sample_rate)), 1)
    starts = _frame_bounds(lo, hi, frame)
    lost = rng.uniform(size=len(starts)) < event.loss_rate
    for i in np.flatnonzero(lost):
        start = starts[int(i)]
        out[start: min(start + frame, hi)] = 0.0


def _apply_packet_reorder(out, lo, hi, event, rng, sample_rate):
    frame = max(int(round(event.frame_s * sample_rate)), 1)
    starts = _frame_bounds(lo, hi, frame)
    # Swap disjoint adjacent pairs: (0,1), (2,3), ... — a late packet
    # arriving after its successor.
    for pair in range(0, len(starts) - 1, 2):
        if rng.uniform() >= event.swap_rate:
            continue
        a, b = starts[pair], starts[pair + 1]
        b_end = min(b + frame, hi)
        if b_end - b != frame or b - a != frame:
            continue  # ragged tail frame: leave it in place
        block_a = out[a: a + frame].copy()
        out[a: a + frame] = out[b: b_end]
        out[b: b_end] = block_a


def _apply_clock_drift(out, lo, hi, event, sample_rate):
    """Resample the window along a linear drift ramp.

    Sample ``i`` inside the window reads the stream at
    ``i - ppm·1e-6·(i - lo)`` — the forwarded audio slips progressively
    later (positive ppm) until the window closes (resync).
    """
    if event.ppm == 0.0 or hi - lo < 2:
        return
    idx = np.arange(lo, hi, dtype=np.float64)
    drift = event.ppm * 1e-6 * (idx - lo)
    source = np.clip(idx - drift, 0.0, out.size - 1.0)
    out[lo:hi] = np.interp(source, np.arange(out.size), out)


class FaultyRelay:
    """A relay wrapped with a :class:`FaultPlan` on its forwarded audio.

    Parameters
    ----------
    relay : object
        Anything exposing ``forward(audio) -> ndarray`` —
        ``IdealRelay``, ``AnalogRelay``, ``DigitalRelay``, or another
        wrapper.
    plan : FaultPlan
        The fault schedule.  ``None`` is treated as the empty plan.
    sample_rate : float
        Audio rate of the forwarded waveform (Hz) — converts event
        windows to sample indices.

    Notes
    -----
    Attribute access (``latency_samples``, ``audio_snr_db``,
    ``stores_samples``, …) falls through to the wrapped relay, so a
    ``FaultyRelay`` drops into every ``MuteConfig.relay`` slot
    unchanged.  :class:`~repro.core.system.MuteSystem.run_resilient`
    builds one automatically from ``fault_plan=``.
    """

    def __init__(self, relay, plan, sample_rate=8000.0):
        if not hasattr(relay, "forward"):
            raise ConfigurationError(
                "relay must expose forward(audio)"
            )
        plan = plan if plan is not None else FaultPlan()
        if not isinstance(plan, FaultPlan):
            raise ConfigurationError("plan must be a FaultPlan")
        self.relay = relay
        self.plan = plan
        self.sample_rate = check_positive("sample_rate", sample_rate)

    def __getattr__(self, name):
        # Only reached for names not found on the wrapper itself.
        return getattr(self.relay, name)

    def forward(self, audio):
        """Forward through the wrapped relay, then inject the plan.

        Returns
        -------
        numpy.ndarray
            The impaired forwarded waveform.  With an empty plan this
            is *exactly* the wrapped relay's return value (same array,
            bit-identical).
        """
        out = self.relay.forward(audio)
        if self.plan.empty:
            return out
        return self._inject(np.array(out, dtype=np.float64, copy=True))

    def _inject(self, out):
        fs = self.sample_rate
        n = out.size
        for index, event in enumerate(self.plan.events):
            lo, hi = event.window(fs, n)
            if hi <= lo:
                continue
            if isinstance(event, (RelayOutage, RelayHandoff)):
                _apply_silence(out, lo, hi)
            elif isinstance(event, SnrFade):
                _apply_snr_fade(out, lo, hi, event,
                                _event_rng(self.plan, index), False)
            elif isinstance(event, BurstInterference):
                _apply_burst(out, lo, hi, event,
                             _event_rng(self.plan, index), False)
            elif isinstance(event, PacketLoss):
                _apply_packet_loss(out, lo, hi, event,
                                   _event_rng(self.plan, index), fs)
            elif isinstance(event, PacketReorder):
                _apply_packet_reorder(out, lo, hi, event,
                                      _event_rng(self.plan, index), fs)
            elif isinstance(event, ClockDrift):
                _apply_clock_drift(out, lo, hi, event, fs)
            else:  # pragma: no cover - new event types must be wired here
                raise ConfigurationError(
                    f"FaultyRelay cannot inject {type(event).__name__}"
                )
        return out


#: Event types meaningful at complex baseband.
_RF_EVENTS = (RelayOutage, RelayHandoff, SnrFade, BurstInterference)


class FaultyRfChannel:
    """An :class:`RfChannel` wrapped with the RF-meaningful plan subset.

    Applies outage/handoff silencing, SNR fades, and burst interference
    to the complex-baseband waveform *after* the wrapped channel's own
    impairments.  Events of other types (packet loss, reorder, drift)
    are ignored — they describe the digital/audio domain.

    Parameters
    ----------
    channel : RfChannel
        The channel to wrap (left unmodified).
    plan : FaultPlan
        Fault schedule; windows are interpreted at ``channel.rf_rate``.
    """

    def __init__(self, channel, plan):
        if not hasattr(channel, "apply") or not hasattr(channel, "rf_rate"):
            raise ConfigurationError(
                "channel must expose apply(baseband) and rf_rate"
            )
        plan = plan if plan is not None else FaultPlan()
        if not isinstance(plan, FaultPlan):
            raise ConfigurationError("plan must be a FaultPlan")
        self.channel = channel
        self.plan = plan

    def __getattr__(self, name):
        return getattr(self.channel, name)

    def apply(self, baseband):
        """Apply the wrapped channel, then the plan's RF events."""
        out = self.channel.apply(baseband)
        if self.plan.empty:
            return out
        out = np.array(out, dtype=np.complex128, copy=True)
        rate = float(self.channel.rf_rate)
        for index, event in enumerate(self.plan.events):
            if not isinstance(event, _RF_EVENTS):
                continue
            lo, hi = event.window(rate, out.size)
            if hi <= lo:
                continue
            if isinstance(event, (RelayOutage, RelayHandoff)):
                _apply_silence(out, lo, hi)
            elif isinstance(event, SnrFade):
                _apply_snr_fade(out, lo, hi, event,
                                _event_rng(self.plan, index), True)
            elif isinstance(event, BurstInterference):
                _apply_burst(out, lo, hi, event,
                             _event_rng(self.plan, index), True)
        return out


def wrap_relay(relay, plan, sample_rate):
    """Wrap ``relay`` with ``plan`` — or return it untouched.

    The convenience entry point :meth:`MuteSystem.run_resilient` uses:
    ``plan=None`` (no injection requested) returns the relay itself, so
    the unfaulted path never gains a wrapper object.
    """
    if plan is None:
        return relay
    return FaultyRelay(relay, plan, sample_rate=sample_rate)
