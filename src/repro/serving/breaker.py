"""Deadline circuit breakers: block-latency budgets from the paper's Eq. 3.

MUTE's timing analysis (paper §3.1, Eq. 3) is what makes serving
possible at all: the RF reference reaches the server ``n_future``
samples ahead of the acoustic wavefront, so a block of anti-noise is
*on time* as long as it is produced within that lookahead window —
``n_future / sample_rate`` seconds.  A session whose blocks repeatedly
miss that budget is not cancelling, it is playing stale anti-noise
*into* the ear; the right response is the same graded ladder the
fault layer already walks (``mute → feedback → passive``), driven by
latency instead of reference health.

:class:`DeadlineCircuitBreaker` is a classic three-state breaker over
that ladder:

``closed``
    Full MUTE operation.  ``miss_threshold`` *consecutive* deadline
    misses trip it open.
``open``
    The session is clamped to a degradation floor — ``feedback``
    (taps frozen, last converged solution keeps playing) on the first
    trip, ``passive`` once ``escalate_trips`` trips accumulate — for a
    cooldown that doubles on every re-trip.
``half-open``
    Cooldown expired: the next block runs at full capability as a
    **recovery probe**.  Meeting the deadline closes the breaker
    (adaptation resumes from the frozen taps — warm, no cold-start
    transient); missing re-opens it with an escalated cooldown.

Determinism: by default the breaker observes only *simulated* latency
(chaos-injected stalls), so zero-chaos serving output is bit-identical
with breakers enabled — wall-clock jitter on a loaded machine cannot
flip a run's bits.  Set ``measure_wall=True`` to feed it real kernel
wall times (a production setting, not a reproduction one).
"""

from __future__ import annotations

import dataclasses

from .. import obs
from ..errors import ConfigurationError
from ..faults.monitor import MODE_FEEDBACK, MODE_MUTE, MODE_PASSIVE

__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_OPEN",
    "BREAKER_HALF_OPEN",
    "DeadlineConfig",
    "DeadlineCircuitBreaker",
]

#: Breaker states.
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"


@dataclasses.dataclass(frozen=True)
class DeadlineConfig:
    """Per-session block-latency budget and breaker thresholds.

    Parameters
    ----------
    budget_s:
        Block deadline in seconds, or ``None`` to derive it from the
        session geometry as the paper's Eq. 3 lookahead window:
        ``budget_factor * n_future / sample_rate`` (the RF lead the
        relay buys — a block computed inside it plays on time).
    budget_factor:
        Safety factor on the derived budget (ignored when ``budget_s``
        is explicit).
    miss_threshold:
        Consecutive misses that trip a closed breaker.
    cooldown_blocks:
        Blocks a freshly tripped breaker stays open before probing;
        doubles (``cooldown_factor``) per re-trip up to
        ``max_cooldown_blocks``.
    escalate_trips:
        Trip count at which the open-state floor worsens from
        ``feedback`` to ``passive``.
    measure_wall:
        Feed real kernel wall time into the breaker in addition to
        injected stalls.  Off by default — see the module docstring's
        determinism note.
    """

    budget_s: float | None = None
    budget_factor: float = 1.0
    miss_threshold: int = 3
    cooldown_blocks: int = 8
    cooldown_factor: float = 2.0
    max_cooldown_blocks: int = 64
    escalate_trips: int = 2
    measure_wall: bool = False

    def __post_init__(self):
        if self.budget_s is not None and self.budget_s <= 0:
            raise ConfigurationError("budget_s must be > 0 (or None)")
        if self.budget_factor <= 0:
            raise ConfigurationError("budget_factor must be > 0")
        if self.miss_threshold < 1:
            raise ConfigurationError("miss_threshold must be >= 1")
        if self.cooldown_blocks < 1 or self.max_cooldown_blocks < 1:
            raise ConfigurationError("cooldown windows must be >= 1")
        if self.cooldown_factor < 1.0:
            raise ConfigurationError("cooldown_factor must be >= 1")
        if self.escalate_trips < 1:
            raise ConfigurationError("escalate_trips must be >= 1")

    def resolved_budget_s(self, session_config):
        """The budget for one session geometry (Eq. 3 when implicit)."""
        if self.budget_s is not None:
            return float(self.budget_s)
        return (self.budget_factor * session_config.n_future
                / session_config.sample_rate)


class DeadlineCircuitBreaker:
    """One session's latency breaker (state machine in the module docs).

    The server calls :meth:`observe` once per processed block with that
    block's latency; :meth:`mode_floor` is consulted *before* the next
    block and combined (worst-wins) with the
    :class:`~repro.faults.DegradationController`'s health-driven mode
    in :meth:`DeviceSession.gates`.
    """

    def __init__(self, deadline_s, config=None):
        if deadline_s <= 0:
            raise ConfigurationError(
                f"deadline_s must be > 0, got {deadline_s}")
        self.deadline_s = float(deadline_s)
        self.config = config or DeadlineConfig()
        self.state = BREAKER_CLOSED
        self.consecutive_misses = 0
        self.cooldown_remaining = 0
        self.trips = 0
        self.misses_total = 0
        self.probes = 0
        self.recoveries = 0

    def mode_floor(self):
        """The degradation floor the *next* block must respect.

        ``mute`` (no clamp) when closed or probing half-open;
        ``feedback`` when open; ``passive`` when open after
        ``escalate_trips`` trips.
        """
        if self.state != BREAKER_OPEN:
            return MODE_MUTE
        if self.trips >= self.config.escalate_trips:
            return MODE_PASSIVE
        return MODE_FEEDBACK

    def observe(self, latency_s):
        """Record one block's latency; advance the state machine.

        Returns the state after the observation.
        """
        missed = latency_s > self.deadline_s
        if missed:
            self.misses_total += 1
        if self.state == BREAKER_CLOSED:
            if missed:
                self.consecutive_misses += 1
                if self.consecutive_misses >= self.config.miss_threshold:
                    self._trip()
            else:
                self.consecutive_misses = 0
        elif self.state == BREAKER_OPEN:
            self.cooldown_remaining -= 1
            if self.cooldown_remaining <= 0:
                self.state = BREAKER_HALF_OPEN
        elif self.state == BREAKER_HALF_OPEN:
            # This observation *is* the recovery probe.
            self.probes += 1
            if obs.enabled():
                obs.get_registry().counter("serving.breaker.probes").inc()
            if missed:
                self._trip()
            else:
                self.state = BREAKER_CLOSED
                self.consecutive_misses = 0
                self.recoveries += 1
                if obs.enabled():
                    obs.get_registry().counter(
                        "serving.breaker.recoveries").inc()
        return self.state

    def _trip(self):
        self.trips += 1
        self.consecutive_misses = 0
        cooldown = self.config.cooldown_blocks * (
            self.config.cooldown_factor ** (self.trips - 1))
        self.cooldown_remaining = int(min(cooldown,
                                          self.config.max_cooldown_blocks))
        self.state = BREAKER_OPEN
        if obs.enabled():
            obs.get_registry().counter("serving.breaker.trips").inc()

    def summary(self):
        """JSON-able breaker bookkeeping (rides on ``SessionResult``)."""
        return {
            "state": self.state,
            "deadline_s": self.deadline_s,
            "trips": self.trips,
            "misses": self.misses_total,
            "probes": self.probes,
            "recoveries": self.recoveries,
        }
