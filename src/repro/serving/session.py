"""Device sessions: the per-user unit the serving runtime advances.

One :class:`DeviceSession` is one MUTE ear-device being served: its
workload (the aligned reference the relay delivers and the disturbance
at the error mic), its adaptive state (a :class:`LancFilter` plus a
streaming :class:`KernelState`), and its own
:class:`~repro.faults.DegradationController` watching the reference it
actually received — faults are injected per session through a
:class:`~repro.faults.FaultyRelay`, so one user behind a failing relay
degrades (mute → feedback → passive) without the server treating the
whole batch as sick.

Sessions are deliberately *passive* here: all scheduling (admission,
lock-step blocks, batching) lives in
:class:`~repro.serving.server.SessionServer`.  What a session owns is
exactly the state that must survive between blocks.
"""

from __future__ import annotations

import dataclasses
import hashlib

import numpy as np

from ..core.adaptive import kernels
from ..core.adaptive.lanc import LancFilter
from ..errors import CheckpointError, ConfigurationError
from ..faults import DegradationController, FaultyRelay
from ..faults.monitor import MODE_LEVEL, ModeTransition
from ..signals import WhiteNoise
from ..utils.validation import check_positive, check_positive_int, \
    check_waveform

__all__ = [
    "PENDING",
    "ACTIVE",
    "DONE",
    "FAILED",
    "SHED",
    "SessionConfig",
    "SessionWorkload",
    "SessionResult",
    "DeviceSession",
]

#: Session lifecycle states.
PENDING = "pending"    #: submitted, waiting for admission
ACTIVE = "active"      #: admitted, advancing block by block
DONE = "done"          #: workload fully processed
FAILED = "failed"      #: isolated after kernel divergence
SHED = "shed"          #: deliberately evicted — admission overload, or
#: escalation after exhausting the supervisor's crash-restart budget


def _default_secondary_path():
    """A short speaker→error-mic impulse response (2-sample bulk delay)."""
    s = np.zeros(8)
    s[2] = 1.0
    s[3] = 0.25
    return s


@dataclasses.dataclass(frozen=True)
class SessionConfig:
    """Adaptive-filter geometry shared by the sessions of one server.

    The batched kernel requires homogeneous geometry
    (``n_future``/``n_past``/secondary-path length) across a batch;
    ``mu``/``normalized``/``leak`` ride along per session.
    """

    n_future: int = 32
    n_past: int = 192
    mu: float = 0.3
    normalized: bool = True
    leak: float = 0.0
    secondary_path: tuple = tuple(_default_secondary_path())
    sample_rate: float = 8000.0

    def secondary(self):
        """The secondary path as an ndarray."""
        return np.asarray(self.secondary_path, dtype=np.float64)

    def geometry_key(self):
        """Hashable batch-compatibility key (what must match to stack)."""
        return (self.n_future, self.n_past, len(self.secondary_path),
                bool(self.normalized), float(self.leak))


@dataclasses.dataclass
class SessionWorkload:
    """One user's signals: the relay reference and the ear disturbance.

    ``reference`` must be aligned to the error-mic time base (the usual
    LANC contract); the server truncates both waveforms to a whole
    number of blocks — lock-step batches never process ragged tails.
    """

    name: str
    reference: np.ndarray
    disturbance: np.ndarray
    fault_plan: object | None = None
    chaos: object | None = None    #: per-session chaos events (repro.chaos)

    def __post_init__(self):
        self.reference = check_waveform("reference", self.reference)
        self.disturbance = check_waveform("disturbance", self.disturbance)
        if self.reference.size != self.disturbance.size:
            raise ConfigurationError(
                "reference and disturbance must have equal length; got "
                f"{self.reference.size} vs {self.disturbance.size}"
            )

    @classmethod
    def synthetic(cls, name, duration_s=1.0, seed=0, sample_rate=8000.0,
                  level_rms=0.2, fault_plan=None, chaos=None):
        """A deterministic per-user workload for benchmarks and tests.

        White noise through a small primary path — each session gets an
        independent stream (seeded by ``seed``), so a batch is N
        *different* users, not N copies of one.
        """
        check_positive("duration_s", duration_s)
        x = WhiteNoise(sample_rate=sample_rate, seed=seed,
                       level_rms=level_rms).generate(duration_s)
        primary = np.array([0.0] * 12 + [0.5])
        d = np.convolve(x, primary)[:x.size]
        return cls(name=name, reference=x, disturbance=d,
                   fault_plan=fault_plan, chaos=chaos)


@dataclasses.dataclass
class SessionResult:
    """What one finished (or isolated) session produced."""

    session_id: int
    name: str
    status: str
    blocks: int                    #: blocks actually processed
    residual: np.ndarray           #: error-mic samples, processed blocks
    disturbance: np.ndarray        #: matching disturbance samples
    mode_fractions: dict           #: degradation-mode occupancy
    transitions: int               #: degradation mode changes
    error: str | None = None      #: isolation reason for FAILED sessions
    breaker: dict | None = None   #: deadline-breaker summary, if attached

    def digest(self):
        """SHA-256 of the residual bytes — the bit-identity fingerprint."""
        return hashlib.sha256(
            np.ascontiguousarray(self.residual, dtype=np.float64).tobytes()
        ).hexdigest()

    def cancellation_db(self):
        """Mean cancellation over the processed samples (dB, >0 = good)."""
        if self.residual.size == 0:
            return 0.0
        p_res = float(np.mean(np.square(self.residual)))
        p_dist = float(np.mean(np.square(self.disturbance)))
        if p_res <= 0.0 or p_dist <= 0.0:
            return 0.0
        return 10.0 * float(np.log10(p_dist / p_res))


class _PassthroughRelay:
    """Identity relay — lets :class:`FaultyRelay` own every fault branch."""

    def forward(self, audio):
        return audio


class DeviceSession:
    """One admitted MUTE device: adaptive state + health watchdog.

    Parameters
    ----------
    session_id:
        Server-assigned ordinal (stable across serial/batched runs).
    workload:
        The user's :class:`SessionWorkload`; its ``fault_plan`` (if
        any) is applied to the *reference* on construction — the
        reference the session adapts on is what the faulty relay
        delivered, exactly like a real degraded link.
    config:
        The server's :class:`SessionConfig`.
    block_size:
        The server's lock-step block length (workload truncated to a
        whole number of blocks).
    """

    def __init__(self, session_id, workload, config, block_size):
        self.session_id = int(session_id)
        self.workload = workload
        self.config = config
        self.block_size = check_positive_int("block_size", block_size)
        self.status = PENDING
        self.error = None

        reference = workload.reference
        if workload.fault_plan is not None \
                and not workload.fault_plan.empty:
            relay = FaultyRelay(_PassthroughRelay(), workload.fault_plan,
                                sample_rate=config.sample_rate)
            reference = relay.forward(reference)
        self.n_blocks = reference.size // self.block_size
        span = self.n_blocks * self.block_size
        self.reference = reference[:span]
        self.disturbance = workload.disturbance[:span]

        self.filter = LancFilter(
            n_future=config.n_future, n_past=config.n_past,
            secondary_path=config.secondary(), mu=config.mu,
            normalized=config.normalized, leak=config.leak,
        )
        self.controller = DegradationController(
            self.filter, sample_rate=config.sample_rate)
        # The kernel state is fed the delivered reference up front plus
        # the trailing lookahead zeros the final block's windows read.
        self.state = kernels.KernelState.streaming(
            config.n_future, config.n_past, config.secondary())
        self.state.extend(np.concatenate(
            [self.reference, np.zeros(config.n_future)]))
        self.block_index = 0
        # Residual bank, preallocated to the whole workload span: blocks
        # are written in place (no per-tick list append + copy), and the
        # batched kernel may hand `record_block` views into a reused
        # scratch arena, so the bank must own its bytes.
        self._residual = np.zeros(span)
        # Resilience attachments, wired by the server at admission:
        # a chaos injector (repro.chaos) carrying this session's
        # scheduled crash/stall events, and a deadline circuit breaker
        # (repro.serving.breaker).  Both survive a supervised restart
        # by reference — CheckpointStore.restore_session carries them
        # onto the replacement, so one-shot crash schedules fire once.
        self.chaos = workload.chaos
        self.breaker = None

    @property
    def done(self):
        """No more whole blocks to process?"""
        return self.block_index >= self.n_blocks

    def next_block(self):
        """``(reference_block, disturbance_block)`` for the next block."""
        lo = self.block_index * self.block_size
        hi = lo + self.block_size
        return self.reference[lo:hi], self.disturbance[lo:hi]

    def gates(self):
        """Observe the upcoming reference block; return ``(adapt, active)``.

        This is the fault-isolation hook: the controller sees what the
        (possibly faulty) relay delivered for *this* session and gates
        only this session's row of the batch.  When a deadline circuit
        breaker is attached, its :meth:`mode_floor` is combined
        worst-wins with the health-driven mode — a session can be
        clamped to ``feedback`` by latency even while its reference is
        perfectly healthy, and vice versa.
        """
        ref_block, __ = self.next_block()
        mode = self.controller.observe(
            ref_block, self.block_index * self.block_size)
        if self.breaker is not None:
            floor = self.breaker.mode_floor()
            if MODE_LEVEL[floor] < MODE_LEVEL[mode]:
                mode = floor
        return self.controller.gates(mode)

    def record_block(self, errors):
        """Bank one processed block of residual and advance the cursor.

        ``errors`` may be a borrowed view into the server's kernel
        arena; the slice assignment copies it into the session-owned
        bank before the arena is reused next tick.
        """
        lo = self.block_index * self.block_size
        self._residual[lo: lo + self.block_size] = errors
        self.block_index += 1
        if self.done and self.status == ACTIVE:
            self.status = DONE

    def banked_residual(self):
        """View of the residual banked so far (read-only by convention)."""
        return self._residual[: self.block_index * self.block_size]

    def fail(self, reason):
        """Isolate the session after divergence; the batch moves on."""
        self.status = FAILED
        self.error = str(reason)

    def result(self):
        """The session's :class:`SessionResult` (any status)."""
        residual = self.banked_residual().copy()
        return SessionResult(
            session_id=self.session_id,
            name=self.workload.name,
            status=self.status,
            blocks=self.block_index,
            residual=residual,
            disturbance=self.disturbance[:residual.size],
            mode_fractions=self.controller.mode_fractions(),
            transitions=len(self.controller.transitions),
            error=self.error,
            breaker=(self.breaker.summary() if self.breaker is not None
                     else None),
        )

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------
    def apply_checkpoint(self, payload):
        """Overwrite this session's mutable state from a checkpoint payload.

        The payload must come from
        :func:`repro.serving.checkpoint.checkpoint_payload` on a session
        with the same identity and geometry; anything else raises
        :class:`~repro.errors.CheckpointError`.  After application the
        session resumes at the checkpointed block cursor and replays the
        remaining blocks bit-identically to a run that never crashed.
        """
        meta = payload["meta"]
        arrays = payload["arrays"]
        if meta["session_id"] != self.session_id:
            raise CheckpointError(
                f"checkpoint belongs to session {meta['session_id']}, "
                f"not {self.session_id}")
        if meta["name"] != self.workload.name:
            raise CheckpointError(
                f"checkpoint is for workload {meta['name']!r}, "
                f"not {self.workload.name!r}")
        if meta["block_size"] != self.block_size:
            raise CheckpointError(
                f"checkpoint block_size {meta['block_size']} != "
                f"{self.block_size}")
        taps = np.asarray(arrays["taps"], dtype=np.float64)
        if taps.shape != self.filter.taps.shape:
            raise CheckpointError(
                f"checkpoint taps have shape {taps.shape}; this session "
                f"expects {self.filter.taps.shape} (geometry mismatch)")

        self.state.restore({
            "x": arrays["x"],
            "xf": arrays["xf"],
            "time": meta["kernel_time"],
            "y_recent": arrays["y_recent"],
            "zi": arrays["zi"],
        })
        self.filter.set_taps(taps)

        ctrl_meta = meta["controller"]
        controller = self.controller
        controller.mode = ctrl_meta["mode"]
        controller.modes = list(ctrl_meta["modes"])
        controller._blocks = int(ctrl_meta["blocks"])
        controller.transitions = [
            ModeTransition(**t) for t in ctrl_meta["transitions"]
        ]
        controller._snapshot = (
            np.asarray(arrays["snapshot_taps"], dtype=np.float64).copy()
            if meta["has_snapshot_taps"] else None)
        mon_meta = meta["monitor"]
        monitor = controller.monitor
        monitor.baseline_rms = mon_meta["baseline_rms"]
        monitor.state = mon_meta["state"]
        monitor._better_streak = int(mon_meta["better_streak"])

        self.block_index = int(meta["block_index"])
        self.status = meta["status"]
        self.error = meta["error"]
        residuals = np.asarray(arrays["residuals"], dtype=np.float64)
        self._residual[: residuals.size] = residuals
        self._residual[residuals.size:] = 0.0
