"""The session server: lock-step blocks over a batched cross-session kernel.

:class:`SessionServer` advances every active session one block per
``tick``.  In **batched** mode the per-session tap vectors and
reference histories are stacked on a leading session axis and one
:func:`repro.core.adaptive.kernels.fxlms_block_batch` call services
the whole batch; in **serial** mode the *same kernel* is called once
per session with a singleton batch.  Because that kernel is built from
row-wise operations, the two schedules are **bit-identical** — the
serving analogue of the loop-vs-vector contract in ``docs/KERNELS.md``
(property-tested in ``tests/test_serving.py``).

Why batching is legitimate at all is the paper's point: the RF
reference arrives ``n_future`` samples *ahead* of the acoustic
wavefront (MUTE §3.1), so a server has a whole lookahead window — not
one sample period — to produce each block of anti-noise.  That budget
is what the ``serving.block_latency_s`` histogram is measured against.

Fault isolation: each session's
:class:`~repro.faults.DegradationController` gates only its own batch
row (freeze adaptation, mute output), and a diverged row is marked
``failed`` and dropped from the batch — one bad session never stalls
or corrupts its neighbors.

Crash safety is opt-in via two :class:`ServerConfig` fields:
``supervision`` (a :class:`~repro.serving.supervisor.SupervisionConfig`)
turns on checkpointing and supervised restart of sessions that raise
mid-tick, and ``deadline`` (a
:class:`~repro.serving.breaker.DeadlineConfig`) attaches a
:class:`~repro.serving.breaker.DeadlineCircuitBreaker` to every
admitted session.  Both default to ``None``, and with them off — or on
but with no chaos injected — the server's output is bit-identical to
the unsupervised baseline (property-tested in ``tests/test_chaos.py``).
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from .. import obs
from ..core.adaptive import kernels
from .breaker import DeadlineCircuitBreaker
from .manager import SessionManager
from .session import ACTIVE, DONE, FAILED, SessionConfig
from .supervisor import SessionSupervisor

__all__ = ["ServerConfig", "ServingReport", "SessionServer"]

#: ``kind`` discriminator of :meth:`ServingReport.to_dict` within the
#: ``repro.runtime.report/v2`` schema family.
SERVING_KIND = "serving"
_REPORT_SCHEMA = "repro.runtime.report/v2"


@dataclasses.dataclass(frozen=True)
class ServerConfig:
    """Knobs of one :class:`SessionServer`."""

    block_size: int = 256
    batched: bool = True            #: one stacked kernel call per tick?
    max_sessions: int = 64
    queue_depth: int = 256
    shed_policy: str = "reject"
    session: SessionConfig = dataclasses.field(default_factory=SessionConfig)
    #: Checkpoint/restart supervision (SupervisionConfig), or None.
    supervision: object | None = None
    #: Per-session deadline breakers (DeadlineConfig), or None.
    deadline: object | None = None


@dataclasses.dataclass
class ServingReport:
    """Everything one drained server produced."""

    results: list                 #: SessionResult per finished session
    shed: int                     #: sessions evicted under overload
    ticks: int
    session_blocks: int           #: session×block units processed
    block_size: int
    batched: bool
    sample_rate: float
    wall_s: float
    latencies_s: list             #: wall time of every kernel call
    recovery: dict | None = None  #: supervisor stats, when supervised

    def digests(self):
        """``session name -> residual SHA-256`` (bit-identity probe)."""
        return {r.name: r.digest() for r in self.results}

    def statuses(self):
        """``status -> count`` over the finished sessions."""
        counts = {}
        for r in self.results:
            counts[r.status] = counts.get(r.status, 0) + 1
        return counts

    def throughput_blocks_per_s(self):
        """Processed session-blocks per wall second."""
        return self.session_blocks / self.wall_s if self.wall_s > 0 else 0.0

    def audio_seconds_per_s(self):
        """Simulated audio seconds served per wall second (the RT factor)."""
        audio_s = self.session_blocks * self.block_size / self.sample_rate
        return audio_s / self.wall_s if self.wall_s > 0 else 0.0

    def latency_percentiles(self):
        """``{p50, p99}`` of per-kernel-call wall time (seconds)."""
        if not self.latencies_s:
            return {"p50": 0.0, "p99": 0.0}
        arr = np.asarray(self.latencies_s)
        return {"p50": float(np.percentile(arr, 50)),
                "p99": float(np.percentile(arr, 99))}

    def to_dict(self):
        """JSON-able ``report/v2`` serving document (``kind: serving``)."""
        pct = self.latency_percentiles()
        return {
            "schema": _REPORT_SCHEMA,
            "kind": SERVING_KIND,
            "batched": self.batched,
            "block_size": self.block_size,
            "sample_rate": self.sample_rate,
            "ticks": self.ticks,
            "session_blocks": self.session_blocks,
            "shed": self.shed,
            "wall_s": self.wall_s,
            "blocks_per_s": self.throughput_blocks_per_s(),
            "audio_seconds_per_s": self.audio_seconds_per_s(),
            "block_latency_s": pct,
            "recovery": self.recovery,
            "sessions": [{
                "id": r.session_id,
                "name": r.name,
                "status": r.status,
                "blocks": r.blocks,
                "digest": r.digest(),
                "cancellation_db": r.cancellation_db(),
                "transitions": r.transitions,
                "mode_fractions": r.mode_fractions,
                "error": r.error,
                "breaker": r.breaker,
            } for r in self.results],
        }

    def report(self):
        """Terminal summary."""
        pct = self.latency_percentiles()
        mode = "batched" if self.batched else "serial"
        lines = [
            f"== serving: {len(self.results)} session(s), {mode}, "
            f"block={self.block_size}, {self.ticks} tick(s) ==",
            f"  throughput  {self.throughput_blocks_per_s():9.0f} "
            f"session-blocks/s ({self.audio_seconds_per_s():.1f}x "
            f"real time)",
            f"  latency     p50 {pct['p50'] * 1e3:.3f} ms   "
            f"p99 {pct['p99'] * 1e3:.3f} ms per kernel call",
            f"  shed        {self.shed}",
        ]
        if self.recovery is not None:
            lines.append(
                f"  recovery    {self.recovery['restores']} warm restore(s), "
                f"{self.recovery['cold_starts']} cold, "
                f"{self.recovery['escalations']} escalation(s)"
            )
        for r in self.results:
            modes = ", ".join(f"{m}={f:.2f}"
                              for m, f in sorted(r.mode_fractions.items()))
            lines.append(
                f"  {r.name:<12} {r.status:<7} {r.blocks:4d} blk  "
                f"{r.cancellation_db():6.1f} dB  [{modes}]"
            )
        return "\n".join(lines)


class SessionServer:
    """Admit, batch, and drain MUTE device sessions.

    Parameters
    ----------
    config:
        A :class:`ServerConfig`; defaults throughout if omitted.
    """

    def __init__(self, config=None):
        self.config = config or ServerConfig()
        self.manager = SessionManager(
            max_sessions=self.config.max_sessions,
            queue_depth=self.config.queue_depth,
            shed_policy=self.config.shed_policy,
            session_config=self.config.session,
            block_size=self.config.block_size,
        )
        self.active = []
        self.finished = []
        self.ticks = 0
        self.session_blocks = 0
        self.latencies_s = []
        self.supervisor = (
            SessionSupervisor(self.config.supervision)
            if self.config.supervision is not None else None)
        # Preallocated kernel scratch arena: every per-tick stack
        # (taps, disturbance, segments, intermediates) is written in
        # place instead of freshly allocated, so the steady-state block
        # loop performs zero per-tick array-data allocations (asserted
        # via tracemalloc in tests/test_serving.py).  Serial mode runs
        # singleton batches through the same arena.
        sess = self.config.session
        self._workspace = kernels.BatchWorkspace(
            self.config.max_sessions, self.config.block_size,
            sess.n_future, sess.n_past, len(sess.secondary_path))
        self._budget_s = (
            self.config.deadline.resolved_budget_s(self.config.session)
            if self.config.deadline is not None else None)

    def submit(self, workload, request=None):
        """Queue one workload (see :meth:`SessionManager.submit`)."""
        return self.manager.submit(workload, request=request)

    def _admit(self):
        for session in self.manager.admit(len(self.active)):
            session.status = ACTIVE
            if self.config.deadline is not None:
                session.breaker = DeadlineCircuitBreaker(
                    self._budget_s, self.config.deadline)
            if session.done:
                # Sub-block workload: nothing to schedule.
                session.status = DONE
                self.finished.append(session)
            else:
                if self.supervisor is not None:
                    self.supervisor.on_admit(session)
                self.active.append(session)

    def _crash(self, session, exc):
        """Route one caught per-session exception through the supervisor.

        Unsupervised servers re-raise: swallowing a crash without a
        restore path would silently lose a session.  Supervised ones
        swap the crashed session for its checkpoint-restored
        replacement in place (same batch slot next tick), or retire it
        as shed once the restart budget is exhausted.
        """
        if self.supervisor is None:
            raise exc
        replacement = self.supervisor.on_crash(session, exc, self.ticks)
        idx = self.active.index(session)
        if replacement is None:
            self.finished.append(self.active.pop(idx))
        else:
            self.active[idx] = replacement

    def _advance(self, batch):
        """One lock-step block over ``batch`` (list of sessions)."""
        S = len(batch)
        # Per-session prep: chaos injection (may raise a scheduled
        # crash) and degradation gating.  A crashing session drops out
        # of this block; its neighbours' rows are unaffected.
        prepped = []
        stalls = []
        for session in batch:
            try:
                stall_s = 0.0
                if session.chaos is not None:
                    stall_s = session.chaos.before_block(session)
                gate = session.gates()
            except Exception as exc:  # noqa: BLE001 — supervisor triages
                self._crash(session, exc)
                continue
            prepped.append((session, gate))
            stalls.append(stall_s)
        if not prepped:
            return
        batch = [p[0] for p in prepped]
        S = len(batch)
        adapt = [g[0] for __, g in prepped]
        act = [g[1] for __, g in prepped]
        states = [session.state for session in batch]
        st0 = states[0]
        ws = self._workspace
        if not ws.fits(S, self.config.block_size, st0.n_future, st0.n_past,
                       st0.secondary_true.size):   # pragma: no cover
            ws = None                              # heterogeneous override
        if ws is not None:
            taps = ws.taps_io[:S]
            d = ws.d[:S]
            mu = ws.mu[:S]
            for i, session in enumerate(batch):
                taps[i] = session.filter.taps
                d[i] = session.next_block()[1]
                mu[i] = session.filter.mu
        else:   # pragma: no cover - only reachable with a foreign config
            taps = np.stack([session.filter.taps for session in batch])
            d = np.stack([session.next_block()[1] for session in batch])
            mu = np.array([session.filter.mu for session in batch])

        started = time.perf_counter()
        errors, diverged = kernels.fxlms_block_batch(
            states, taps, d, mu,
            normalized=self.config.session.normalized,
            leak=self.config.session.leak,
            adapt=adapt, active=act,
            workspace=ws,
        )
        elapsed = time.perf_counter() - started
        self.latencies_s.append(elapsed)
        if obs.enabled():
            registry = obs.get_registry()
            registry.histogram("serving.block_latency_s").observe(elapsed)
            registry.counter("serving.blocks_total").inc(S)

        measure_wall = (self.config.deadline is not None
                        and self.config.deadline.measure_wall)
        for i, session in enumerate(batch):
            session.filter.taps[:] = taps[i]
            if diverged[i]:
                session.fail(
                    f"kernel divergence at block {session.block_index}")
            else:
                session.record_block(errors[i])
                if self.supervisor is not None:
                    self.supervisor.after_block(session)
            if session.breaker is not None:
                # The breaker sees injected stalls always; real kernel
                # wall time only when measure_wall opts in (see the
                # determinism note in repro.serving.breaker).
                latency_s = stalls[i] + (elapsed if measure_wall else 0.0)
                session.breaker.observe(latency_s)
        self.session_blocks += S

    def tick(self):
        """Admit, advance every active session one block; True if work ran.

        Batched mode stacks the whole active set into one kernel call;
        serial mode runs the same kernel per session.  Both schedules
        visit sessions in admission order, so their outputs are
        bit-identical.  Sessions inside a post-crash backoff window sit
        the tick out (the tick still counts, so their window expires);
        a tick with every session in backoff reports work done rather
        than draining the server with sessions still outstanding.
        """
        self._admit()
        if self.supervisor is not None:
            batch = [s for s in self.active
                     if self.supervisor.ready(s, self.ticks)]
        else:
            batch = list(self.active)
        waiting = len(self.active) - len(batch)
        if not batch and not waiting:
            return False
        if self.config.batched:
            if batch:
                self._advance(batch)
        else:
            for session in batch:
                self._advance([session])
        still_active = []
        for session in self.active:
            if session.status in (DONE, FAILED):
                self.finished.append(session)
            else:
                still_active.append(session)
        self.active = still_active
        self.ticks += 1
        if obs.enabled():
            obs.get_registry().gauge("serving.sessions_active").set(
                len(self.active))
        return True

    def run_until_drained(self, max_ticks=None):
        """Tick until queue and batch are empty; returns a report."""
        started = time.perf_counter()
        while self.manager.pending or self.active:
            if max_ticks is not None and self.ticks >= max_ticks:
                break
            if not self.tick():
                break
        wall_s = time.perf_counter() - started
        ordered = sorted(self.finished, key=lambda s: s.session_id)
        return ServingReport(
            results=[s.result() for s in ordered],
            shed=self.manager.shed_count,
            ticks=self.ticks,
            session_blocks=self.session_blocks,
            block_size=self.config.block_size,
            batched=self.config.batched,
            sample_rate=self.config.session.sample_rate,
            wall_s=wall_s,
            latencies_s=list(self.latencies_s),
            recovery=(self.supervisor.stats()
                      if self.supervisor is not None else None),
        )
