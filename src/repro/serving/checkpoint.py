"""Session checkpointing: content-addressed snapshots with warm restore.

Adaptive-filter state is expensive to re-converge (Friot's stability
analyses and the DeepANC line both make this point): a LANC session
that crashes and restarts *cold* re-pays the whole convergence
transient, audibly.  This module makes serving crashes cheap instead:

* :func:`checkpoint_payload` captures everything mutable about a
  :class:`~repro.serving.session.DeviceSession` mid-run — the filter
  taps, the streaming :class:`~repro.core.adaptive.kernels.KernelState`
  (via its ``snapshot()``), the
  :class:`~repro.faults.DegradationController` mode machine, the
  workload cursor, and the residual produced so far;
* :class:`CheckpointStore` persists those payloads — in memory, or on
  disk as **atomically written** (temp file + ``os.replace``),
  **content-addressed** ``.npz`` snapshots whose SHA-256 digest is both
  the integrity check and part of the file name;
* :meth:`CheckpointStore.restore_session` rebuilds a live session from
  the newest intact snapshot, so a supervised restart resumes
  convergence from the pre-crash taps — **bit-identically**: replaying
  the blocks after the checkpoint reproduces exactly the residual an
  uncrashed run would have produced (property-tested in
  ``tests/test_checkpoint.py``).

A corrupt or truncated snapshot is never fatal on the read path: its
digest fails verification, it is skipped, and the next-newest intact
snapshot (or a cold rebuild) is used instead — a checkpoint store can
lose history, never corrupt a restore.  Format details in
``docs/RESILIENCE.md``.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import tempfile
from pathlib import Path

import numpy as np

from .. import obs
from ..errors import CheckpointError
from ..faults.monitor import ModeTransition

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CheckpointStore",
    "checkpoint_payload",
    "payload_digest",
]

#: Schema identifier carried in every checkpoint's metadata.
CHECKPOINT_SCHEMA = "repro.serving.checkpoint/v1"

#: Array fields of a payload, in canonical (digest) order.
_ARRAY_FIELDS = ("taps", "snapshot_taps", "residuals", "x", "xf",
                 "y_recent", "zi")

_FILE_RE = re.compile(
    r"^session-(?P<sid>\d+)-block-(?P<block>\d+)-(?P<digest>[0-9a-f]{12})"
    r"\.npz$"
)


def checkpoint_payload(session):
    """Snapshot one live session into a plain ``{"meta", "arrays"}`` dict.

    ``meta`` is JSON-able bookkeeping (cursor, lifecycle, degradation
    state machine); ``arrays`` holds the float state (taps, kernel
    snapshot, banked residual).  Every array is a private copy — the
    session keeps running, the payload stays frozen.
    """
    state = session.state.snapshot()
    controller = session.controller
    monitor = controller.monitor
    snapshot_taps = controller._snapshot
    residuals = session.banked_residual().copy()
    meta = {
        "schema": CHECKPOINT_SCHEMA,
        "session_id": int(session.session_id),
        "name": session.workload.name,
        "block_index": int(session.block_index),
        "block_size": int(session.block_size),
        "status": session.status,
        "error": session.error,
        "kernel_time": int(state["time"]),
        "has_snapshot_taps": snapshot_taps is not None,
        "controller": {
            "mode": controller.mode,
            "blocks": int(controller._blocks),
            "modes": list(controller.modes),
            "transitions": [{
                "block_index": t.block_index,
                "sample_index": t.sample_index,
                "time_s": t.time_s,
                "from_mode": t.from_mode,
                "to_mode": t.to_mode,
                "state": t.state,
            } for t in controller.transitions],
        },
        "monitor": {
            "baseline_rms": monitor.baseline_rms,
            "state": monitor.state,
            "better_streak": int(monitor._better_streak),
        },
    }
    arrays = {
        "taps": session.filter.taps.copy(),
        "snapshot_taps": (snapshot_taps.copy() if snapshot_taps is not None
                          else np.zeros(0)),
        "residuals": residuals,
        "x": state["x"],
        "xf": state["xf"],
        "y_recent": state["y_recent"],
        "zi": state["zi"],
    }
    return {"meta": meta, "arrays": arrays}


def payload_digest(payload):
    """Deterministic SHA-256 content key of one payload.

    Computed over the canonical JSON of ``meta`` plus the raw bytes of
    every array in fixed order — never over the ``.npz`` container,
    whose zip framing is not byte-stable.  The digest is the content
    address *and* the integrity check the load path verifies.
    """
    hasher = hashlib.sha256()
    hasher.update(json.dumps(payload["meta"], sort_keys=True,
                             separators=(",", ":")).encode("utf-8"))
    for field in _ARRAY_FIELDS:
        arr = np.ascontiguousarray(payload["arrays"][field],
                                   dtype=np.float64)
        hasher.update(b"|" + field.encode("ascii") + b":")
        hasher.update(arr.tobytes())
    return hasher.hexdigest()


def _copy_payload(payload):
    return {
        "meta": json.loads(json.dumps(payload["meta"])),
        "arrays": {k: np.array(v, copy=True)
                   for k, v in payload["arrays"].items()},
    }


class CheckpointStore:
    """Content-addressed snapshot store, in memory or on disk.

    Parameters
    ----------
    directory:
        Where to persist snapshots, or ``None`` for a memory-only
        store (the supervisor's default — crash *injection* does not
        kill the process, so in-process payloads survive; a real
        deployment points this at durable storage).
    keep:
        Snapshots retained per session; older ones are pruned so a
        long soak cannot fill the disk.

    Notes
    -----
    Disk snapshots are written atomically (full temp file +
    ``os.replace``) and named
    ``session-<id>-block-<block>-<digest12>.npz``; the full digest is
    stored inside and re-verified against the recomputed content hash
    on load, so truncation, bit rot, and partial writes are all caught.
    """

    def __init__(self, directory=None, keep=4):
        if keep < 1:
            raise CheckpointError(f"keep must be >= 1, got {keep}")
        self.directory = Path(directory) if directory else None
        self.keep = int(keep)
        self._memory = {}       #: session_id -> [(block, digest, payload)]
        self.saved = 0
        self.corrupt_skipped = 0

    # ------------------------------------------------------------------
    # Save
    # ------------------------------------------------------------------
    def save(self, session):
        """Snapshot ``session`` now; returns the payload's digest."""
        payload = checkpoint_payload(session)
        digest = payload_digest(payload)
        sid = payload["meta"]["session_id"]
        block = payload["meta"]["block_index"]
        if self.directory is None:
            entries = self._memory.setdefault(sid, [])
            entries[:] = [e for e in entries if e[0] != block]
            entries.append((block, digest, _copy_payload(payload)))
            entries.sort(key=lambda e: e[0])
            del entries[:-self.keep]
        else:
            self._disk_store(sid, block, digest, payload)
            self._prune_disk(sid)
        self.saved += 1
        if obs.enabled():
            obs.get_registry().counter(
                "serving.recovery.checkpoints").inc()
        return digest

    # ------------------------------------------------------------------
    # Load
    # ------------------------------------------------------------------
    def latest(self, session_id):
        """The newest intact payload for ``session_id``, or ``None``.

        Snapshots are tried newest-first; any that fail digest
        verification are skipped (and counted in
        :attr:`corrupt_skipped` plus the
        ``serving.recovery.corrupt_checkpoints`` obs counter) so one
        damaged file degrades recovery to an older snapshot, never to
        an exception.
        """
        if self.directory is None:
            entries = self._memory.get(int(session_id), [])
            for __, digest, payload in reversed(entries):
                if payload_digest(payload) == digest:
                    return _copy_payload(payload)
                self._count_corrupt()
            return None
        for path, digest in self._disk_candidates(int(session_id)):
            payload = self._disk_load(path, digest)
            if payload is not None:
                return payload
        return None

    def restore_session(self, session, config=None, block_size=None):
        """A fresh :class:`DeviceSession` resumed from the newest snapshot.

        Parameters
        ----------
        session:
            The crashed session (source of the workload, config, block
            size, and identity).  It is not touched.
        config / block_size:
            Optional overrides; defaults to the crashed session's own.

        Returns
        -------
        (DeviceSession, bool)
            The replacement session and whether it was warm-restored
            (``True``) or cold-rebuilt because no intact snapshot
            existed (``False``).  Either way the replacement carries
            the original's chaos injector and circuit breaker by
            reference, so one-shot crash schedules and breaker state
            survive the restart.
        """
        from .session import DeviceSession

        replacement = DeviceSession(
            session.session_id, session.workload,
            config or session.config,
            block_size or session.block_size,
        )
        replacement.chaos = session.chaos
        replacement.breaker = session.breaker
        payload = self.latest(session.session_id)
        if payload is None:
            return replacement, False
        replacement.apply_checkpoint(payload)
        return replacement, True

    def stats(self):
        """Save/verify counters as a plain dict (for soak reports)."""
        return {"saved": self.saved,
                "corrupt_skipped": self.corrupt_skipped}

    # ------------------------------------------------------------------
    # Disk internals
    # ------------------------------------------------------------------
    def _count_corrupt(self):
        self.corrupt_skipped += 1
        if obs.enabled():
            obs.get_registry().counter(
                "serving.recovery.corrupt_checkpoints").inc()

    def _path(self, sid, block, digest):
        return self.directory / (
            f"session-{sid:05d}-block-{block:07d}-{digest[:12]}.npz"
        )

    def _disk_store(self, sid, block, digest, payload):
        self.directory.mkdir(parents=True, exist_ok=True)
        blob = {
            "meta": np.frombuffer(
                json.dumps(payload["meta"], sort_keys=True).encode("utf-8"),
                dtype=np.uint8).copy(),
            "digest": np.frombuffer(digest.encode("ascii"),
                                    dtype=np.uint8).copy(),
        }
        for field in _ARRAY_FIELDS:
            blob[field] = np.ascontiguousarray(payload["arrays"][field],
                                               dtype=np.float64)
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".npz.tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez(fh, **blob)
            os.replace(tmp, self._path(sid, block, digest))
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)

    def _disk_candidates(self, sid):
        """``(path, digest)`` for ``sid``, newest block first."""
        if not self.directory or not self.directory.is_dir():
            return []
        found = []
        for path in self.directory.glob(f"session-{sid:05d}-block-*.npz"):
            match = _FILE_RE.match(path.name)
            if match and int(match.group("sid")) == sid:
                found.append((int(match.group("block")),
                              match.group("digest"), path))
        found.sort(reverse=True)
        return [(path, digest) for __, digest, path in found]

    def _disk_load(self, path, name_digest):
        try:
            with np.load(path, allow_pickle=False) as data:
                meta = json.loads(bytes(data["meta"]).decode("utf-8"))
                stored = bytes(data["digest"]).decode("ascii")
                arrays = {field: np.array(data[field])
                          for field in _ARRAY_FIELDS}
            payload = {"meta": meta, "arrays": arrays}
            if meta.get("schema") != CHECKPOINT_SCHEMA:
                raise ValueError(f"schema {meta.get('schema')!r}")
            if payload_digest(payload) != stored \
                    or not stored.startswith(name_digest):
                raise ValueError("digest mismatch")
            return payload
        except Exception:
            # Corrupt, truncated, or stale snapshot: skip it; recovery
            # falls back to the next-newest intact one.
            self._count_corrupt()
            return None

    def _prune_disk(self, sid):
        candidates = self._disk_candidates(sid)
        for path, __ in candidates[self.keep:]:
            try:
                path.unlink()
            except OSError:
                pass
