"""Supervised recovery: catch per-session crashes, restore, escalate.

The serving analogue of :class:`repro.faults.RelaySupervisor`: where
that module routes around a failing *relay*, this one keeps a failing
*session* alive.  A :class:`SessionSupervisor` sits inside
:class:`~repro.serving.server.SessionServer` (enabled via
``ServerConfig.supervision``) and owns the crash path:

1. a per-session exception during a tick (an injected
   :class:`~repro.errors.InjectedCrashError` from the chaos harness,
   or any real bug) is caught instead of sinking the whole batch;
2. the session is **restored from its latest checkpoint**
   (:mod:`repro.serving.checkpoint`) — filter taps, degradation mode,
   and workload cursor intact, so cancellation resumes converged
   instead of re-paying the cold-start transient — or cold-rebuilt if
   no intact snapshot exists;
3. the replacement sits out an **escalating backoff** (ticks, doubling
   per consecutive crash) before rejoining the batch, so a
   crash-looping session cannot monopolize the server;
4. after ``max_restarts`` crashes the session is **escalated to
   shedding**: marked :data:`~repro.serving.session.SHED` with the
   crash reason, deliberately — never silently dropped.

Everything is counted under the ``serving.recovery.*`` obs metrics
(crashes, restores, cold starts, checkpoints, escalations) and every
restore emits a ``serving.recovery.restore`` span, so a chaos soak's
recovery activity is visible in ``repro obs-report`` output.
Determinism: backoff is measured in server ticks (no wall clock, no
randomness), so supervised runs remain reproducible.
"""

from __future__ import annotations

import dataclasses

from .. import obs
from ..errors import ConfigurationError
from .checkpoint import CheckpointStore
from .session import SHED

__all__ = ["SupervisionConfig", "SessionSupervisor"]


@dataclasses.dataclass(frozen=True)
class SupervisionConfig:
    """Checkpoint cadence and restart budget of one supervisor.

    Parameters
    ----------
    checkpoint_every_blocks:
        Snapshot a session every N processed blocks (plus once at
        admission, so even a block-0 crash has a defined restore
        point).
    max_restarts:
        Crashes tolerated per session before escalating to shed.
    backoff_ticks:
        Ticks a restored session sits out after its first crash;
        doubles (``backoff_factor``) per consecutive crash up to
        ``max_backoff_ticks``.
    checkpoint_dir:
        Directory for on-disk snapshots, or ``None`` (default) for the
        in-memory store — injected crashes do not kill the process, so
        in-process payloads are exactly as durable as the test needs;
        point this at real storage to survive process death.
    keep_checkpoints:
        Snapshots retained per session (see :class:`CheckpointStore`).
    """

    checkpoint_every_blocks: int = 8
    max_restarts: int = 3
    backoff_ticks: int = 1
    backoff_factor: float = 2.0
    max_backoff_ticks: int = 16
    checkpoint_dir: str | None = None
    keep_checkpoints: int = 4

    def __post_init__(self):
        if self.checkpoint_every_blocks < 1:
            raise ConfigurationError(
                "checkpoint_every_blocks must be >= 1")
        if self.max_restarts < 0:
            raise ConfigurationError("max_restarts must be >= 0")
        if self.backoff_ticks < 0 or self.max_backoff_ticks < 0:
            raise ConfigurationError("backoff windows must be >= 0")
        if self.backoff_factor < 1.0:
            raise ConfigurationError("backoff_factor must be >= 1")


class SessionSupervisor:
    """Per-session crash bookkeeping + checkpoint/restore orchestration.

    Owned by a :class:`~repro.serving.server.SessionServer`; all entry
    points are driven by the server's tick loop, so the supervisor
    needs no clock of its own.
    """

    def __init__(self, config=None, store=None):
        self.config = config or SupervisionConfig()
        self.store = store or CheckpointStore(
            self.config.checkpoint_dir, keep=self.config.keep_checkpoints)
        self.failures = {}          #: session_id -> crash count
        self._not_before = {}       #: session_id -> earliest rejoin tick
        self.restores = 0
        self.cold_starts = 0
        self.escalations = 0

    # ------------------------------------------------------------------
    # Checkpoint cadence
    # ------------------------------------------------------------------
    def on_admit(self, session):
        """Admission hook: take the block-0 snapshot."""
        self.store.save(session)

    def after_block(self, session):
        """Post-block hook: snapshot at the configured cadence."""
        if session.block_index % self.config.checkpoint_every_blocks == 0:
            self.store.save(session)

    # ------------------------------------------------------------------
    # Crash handling
    # ------------------------------------------------------------------
    def ready(self, session, tick):
        """Is the session past its post-crash backoff window?"""
        return tick >= self._not_before.get(session.session_id, 0)

    def on_crash(self, session, exc, tick):
        """Handle one caught per-session exception.

        Returns the replacement :class:`DeviceSession` (restored warm
        from the newest intact checkpoint, or cold-rebuilt), or
        ``None`` after the restart budget is exhausted — in which case
        the crashed session has been marked
        :data:`~repro.serving.session.SHED` with the crash reason and
        the server should retire it.
        """
        sid = session.session_id
        count = self.failures.get(sid, 0) + 1
        self.failures[sid] = count
        if obs.enabled():
            obs.get_registry().counter(
                "serving.recovery.crashes",
                kind=type(exc).__name__).inc()

        if count > self.config.max_restarts:
            session.status = SHED
            session.error = (
                f"escalated to shed after {count} crash(es); "
                f"last: {type(exc).__name__}: {exc}"
            )
            self.escalations += 1
            if obs.enabled():
                obs.get_registry().counter(
                    "serving.recovery.escalations").inc()
            return None

        replacement, warm = self.store.restore_session(session)
        replacement.status = session.status  # rejoin where it left off
        if warm:
            self.restores += 1
        else:
            self.cold_starts += 1
        backoff = self.config.backoff_ticks * (
            self.config.backoff_factor ** (count - 1))
        backoff = int(min(backoff, self.config.max_backoff_ticks))
        self._not_before[sid] = tick + 1 + backoff
        if obs.enabled():
            registry = obs.get_registry()
            registry.counter("serving.recovery.restores",
                             warm=str(warm).lower()).inc()
            with obs.span("serving.recovery.restore",
                          session=sid,
                          block=replacement.block_index,
                          warm=warm,
                          failures=count,
                          backoff_ticks=backoff,
                          reason=type(exc).__name__):
                pass
        return replacement

    def stats(self):
        """Recovery counters (for soak reports)."""
        return {
            "restores": self.restores,
            "cold_starts": self.cold_starts,
            "escalations": self.escalations,
            "crashed_sessions": len(self.failures),
            "checkpoints": self.store.stats(),
        }
