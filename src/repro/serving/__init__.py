"""repro.serving — multi-session serving runtime with batched kernels.

The ROADMAP's production north-star is a service "serving heavy traffic
from millions of users"; this package is the first rung of that
ladder: many concurrent MUTE device sessions advanced in lock-step
blocks through one **batched cross-session kernel**
(:func:`repro.core.adaptive.kernels.fxlms_block_batch`), instead of
one ear-device at a time.  Full guide: ``docs/SERVING.md``.

Three layers:

* :mod:`~repro.serving.session` — :class:`DeviceSession`: one user's
  workload, adaptive state, and per-session
  :class:`~repro.faults.DegradationController` (faults injected
  through :class:`~repro.faults.FaultyRelay`, isolated to that row of
  the batch);
* :mod:`~repro.serving.manager` — :class:`SessionManager`: admission
  control and backpressure (``max_sessions``, ``queue_depth``, and a
  ``reject`` / ``shed-oldest`` overload policy raising
  :class:`~repro.errors.ServingOverloadError`);
* :mod:`~repro.serving.server` — :class:`SessionServer`: the
  lock-step scheduler.  ``batched=True`` stacks every session into
  one kernel call per block; ``batched=False`` runs the same kernel
  per session — **bit-identical** outputs either way (the serving
  analogue of the loop-vs-vector backend contract).

Crash safety (``docs/RESILIENCE.md``) adds three more:

* :mod:`~repro.serving.checkpoint` — :class:`CheckpointStore`:
  content-addressed, atomically persisted session snapshots with warm
  bit-identical restore;
* :mod:`~repro.serving.supervisor` — :class:`SessionSupervisor`:
  catches per-session crashes, restarts from the latest checkpoint
  with escalating backoff, escalates to shedding after
  ``max_restarts`` (enable via ``ServerConfig.supervision``);
* :mod:`~repro.serving.breaker` — :class:`DeadlineCircuitBreaker`:
  per-session block-latency budgets from the paper's Eq. 3 lookahead
  window, tripping ``mute → feedback → passive`` with half-open
  recovery probes (enable via ``ServerConfig.deadline``).

Minimal session::

    from repro import serving

    server = serving.SessionServer()
    for i in range(8):
        server.submit(serving.SessionWorkload.synthetic(f"user{i}",
                                                        seed=i))
    report = server.run_until_drained()
    report.digests()                 # per-session residual fingerprints
    print(report.report())

``python -m repro serve-bench`` drives the same loop from the CLI;
``benchmarks/bench_serving.py`` sweeps sessions vs throughput into
``BENCH_serving.json``.
"""

from __future__ import annotations

from .breaker import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    DeadlineCircuitBreaker,
    DeadlineConfig,
)
from .checkpoint import (
    CHECKPOINT_SCHEMA,
    CheckpointStore,
    checkpoint_payload,
    payload_digest,
)
from .manager import SHED_POLICIES, SessionManager
from .server import ServerConfig, ServingReport, SessionServer
from .supervisor import SessionSupervisor, SupervisionConfig
from .session import (
    ACTIVE,
    DONE,
    FAILED,
    PENDING,
    SHED,
    DeviceSession,
    SessionConfig,
    SessionResult,
    SessionWorkload,
)

__all__ = [
    # session
    "PENDING",
    "ACTIVE",
    "DONE",
    "FAILED",
    "SHED",
    "SessionConfig",
    "SessionWorkload",
    "SessionResult",
    "DeviceSession",
    # manager
    "SHED_POLICIES",
    "SessionManager",
    # server
    "ServerConfig",
    "ServingReport",
    "SessionServer",
    # checkpoint
    "CHECKPOINT_SCHEMA",
    "CheckpointStore",
    "checkpoint_payload",
    "payload_digest",
    # supervisor
    "SupervisionConfig",
    "SessionSupervisor",
    # breaker
    "BREAKER_CLOSED",
    "BREAKER_OPEN",
    "BREAKER_HALF_OPEN",
    "DeadlineConfig",
    "DeadlineCircuitBreaker",
]
