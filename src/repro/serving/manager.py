"""Session admission, backpressure, and shedding.

The :class:`SessionManager` is the front door of the serving runtime:
:meth:`~SessionManager.submit` turns a workload (plus an optional
:class:`~repro.runtime.RunRequest` context) into a pending
:class:`~repro.serving.session.DeviceSession`, bounded by two knobs —
``max_sessions`` (the concurrent-batch ceiling) and ``queue_depth``
(how many submissions may wait).  When both are full the configured
shed policy decides who loses:

``"reject"``
    Refuse the new submission with
    :class:`~repro.errors.ServingOverloadError` — explicit
    backpressure the caller can retry against (the default; it never
    throws away accepted work).
``"shed-oldest"``
    Admit the newcomer by evicting the oldest *pending* session
    (marked :data:`~repro.serving.session.SHED`) — freshest-first
    service for load-test scenarios where stale queued work has lost
    its value.

Admission is deterministic — FIFO by submission order, no clocks, no
randomness — so a serial and a batched server drain identical
schedules (part of the serial == batched contract).
"""

from __future__ import annotations

import collections

from .. import obs
from ..errors import ConfigurationError, ServingOverloadError
from ..utils.validation import check_positive_int
from .session import SHED, DeviceSession, SessionConfig, SessionWorkload

__all__ = ["SHED_POLICIES", "SessionManager"]

#: Recognized overload policies.
SHED_POLICIES = ("reject", "shed-oldest")


class SessionManager:
    """Admission control for a session server.

    Parameters
    ----------
    max_sessions:
        Ceiling on concurrently *active* sessions (the batch width the
        server may reach).
    queue_depth:
        Ceiling on *pending* (admitted-but-waiting) sessions.
    shed_policy:
        Overload behavior once the queue is full — see module docs.
    session_config:
        The :class:`~repro.serving.session.SessionConfig` every session
        is built with (batch homogeneity).
    block_size:
        Lock-step block length handed to each session.
    """

    def __init__(self, max_sessions=64, queue_depth=256,
                 shed_policy="reject", session_config=None,
                 block_size=256):
        self.max_sessions = check_positive_int("max_sessions", max_sessions)
        self.queue_depth = check_positive_int("queue_depth", queue_depth)
        if shed_policy not in SHED_POLICIES:
            raise ConfigurationError(
                f"unknown shed policy {shed_policy!r}; "
                f"available: {', '.join(SHED_POLICIES)}"
            )
        self.shed_policy = shed_policy
        self.session_config = session_config or SessionConfig()
        self.block_size = check_positive_int("block_size", block_size)
        self.pending = collections.deque()
        self.shed = []              #: sessions evicted under overload
        self.submitted = 0
        self._next_id = 0

    def submit(self, workload, request=None):
        """Queue one workload; returns its :class:`DeviceSession`.

        Parameters
        ----------
        workload:
            A :class:`~repro.serving.session.SessionWorkload`.
        request:
            Optional :class:`~repro.runtime.RunRequest`.  Its
            ``fault_plan`` is applied to this session when the
            workload does not already carry one — the same context
            object the experiment executor accepts, doing the same
            job here.

        Raises
        ------
        ServingOverloadError
            Under the ``"reject"`` policy with a full queue.
        """
        if request is not None and request.fault_plan is not None \
                and workload.fault_plan is None:
            workload = SessionWorkload(
                name=workload.name,
                reference=workload.reference,
                disturbance=workload.disturbance,
                fault_plan=request.fault_plan,
                chaos=workload.chaos,
            )
        if len(self.pending) >= self.queue_depth:
            if self.shed_policy == "reject":
                raise ServingOverloadError(
                    f"session queue full ({self.queue_depth} pending, "
                    f"max_sessions={self.max_sessions}); rejecting "
                    f"{workload.name!r}"
                )
            victim = self.pending.popleft()
            victim.status = SHED
            self.shed.append(victim)
            if obs.enabled():
                obs.get_registry().counter(
                    "serving.shed", policy=self.shed_policy).inc()
        session = DeviceSession(self._next_id, workload,
                                self.session_config, self.block_size)
        self._next_id += 1
        self.submitted += 1
        self.pending.append(session)
        if obs.enabled():
            obs.get_registry().counter("serving.submitted").inc()
            obs.get_registry().gauge("serving.queue_depth").set(
                len(self.pending))
        return session

    def admit(self, active_count):
        """Pop pending sessions up to the ``max_sessions`` ceiling.

        Called by the server at every tick; FIFO, deterministic.
        """
        admitted = []
        while self.pending and \
                active_count + len(admitted) < self.max_sessions:
            admitted.append(self.pending.popleft())
        if admitted and obs.enabled():
            obs.get_registry().gauge("serving.queue_depth").set(
                len(self.pending))
        return admitted

    @property
    def shed_count(self):
        """How many sessions were evicted under overload."""
        return len(self.shed)
