"""Command-line interface: regenerate paper figures, trace the pipeline.

Subcommands
-----------
``list``
    Print every available experiment with a one-line description::

        python -m repro list

``run``
    Regenerate one paper figure / extension experiment (or ``all``).
    Each experiment prints the same rows/series its paper figure plots
    (via the experiment's ``report()``)::

        python -m repro run fig12
        python -m repro run fig17 --duration 20 --seed 3
        python -m repro run all

``obs-report``
    Run the headline office scenario with observability
    (:mod:`repro.obs`) enabled and print the span tree, the metrics
    table, and the timing-budget report — or the bundled
    ``repro.obs.report/v1`` JSON document (schemas in
    ``docs/OBSERVABILITY.md``)::

        python -m repro obs-report
        python -m repro obs-report --duration 5 --block 128
        python -m repro obs-report --json --out trace.json

The installed console entry point ``repro`` is equivalent to
``python -m repro``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from . import obs
from .eval import experiments as exp

#: name -> (runner, description, accepts duration/seed kwargs)
EXPERIMENTS = {
    "fig6": (exp.run_fig6, "profile spectra (speech vs background)", True),
    "fig12": (exp.run_fig12, "overall cancellation, 4 schemes", True),
    "fig13": (exp.run_fig13, "speaker+mic frequency response", False),
    "fig14": (exp.run_fig14, "four real-world sound types", True),
    "fig15": (exp.run_fig15, "simulated listener ratings", True),
    "fig16": (exp.run_fig16, "cancellation vs lookahead", True),
    "fig17": (exp.run_fig17, "predictive profile switching", True),
    "fig18": (exp.run_fig18, "GCC-PHAT lookahead sign", True),
    "fig19": (exp.run_fig19, "relay association map", True),
    "headline": (exp.run_headline, "the paper's headline numbers", True),
    "timing": (exp.run_timing, "Eq. 3/4 timing analysis", False),
    "convergence": (exp.run_convergence, "Figures 7-8 timelines", True),
    "multisource": (exp.run_multisource,
                    "extension: two simultaneous sources", True),
    "mobility": (exp.run_mobility, "extension: head mobility", True),
    "ear": (exp.run_ear_model, "extension: cancellation at the eardrum",
            True),
    "edge": (exp.run_edge, "extension: multi-user edge service", True),
    "wideband": (exp.run_wideband,
                 "extension: beyond the 4 kHz cap (fast DSP)", True),
}


def build_parser():
    """The argparse tree (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MUTE (SIGCOMM 2018) reproduction experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment",
                     choices=sorted(EXPERIMENTS) + ["all"])
    run.add_argument("--duration", type=float, default=None,
                     help="simulated seconds (experiment default if unset)")
    run.add_argument("--seed", type=int, default=None,
                     help="random seed (experiment default if unset)")

    obs_report = sub.add_parser(
        "obs-report",
        help="trace a MuteSystem run; print span tree, metrics, "
             "timing budget",
    )
    obs_report.add_argument("--duration", type=float, default=2.0,
                            help="simulated seconds (default 2.0)")
    obs_report.add_argument("--seed", type=int, default=0,
                            help="noise seed (default 0)")
    obs_report.add_argument("--block", type=int, default=64,
                            help="block size for the deadline ledger "
                                 "(default 64)")
    obs_report.add_argument("--json", action="store_true",
                            help="emit the repro.obs.report/v1 JSON "
                                 "document instead of text")
    obs_report.add_argument("--out", default=None, metavar="PATH",
                            help="also write the JSON document to PATH")
    return parser


def _run_one(name, duration, seed, out):
    """Run one named experiment and print its report to ``out``."""
    runner, description, takes_kwargs = EXPERIMENTS[name]
    kwargs = {}
    if takes_kwargs:
        if duration is not None:
            kwargs["duration_s"] = duration
        if seed is not None:
            kwargs["seed"] = seed
    print(f"== {name}: {description} ==", file=out)
    started = time.time()
    result = runner(**kwargs)
    print(result.report(), file=out)
    print(f"[{name} done in {time.time() - started:.1f}s]\n", file=out)
    return result


def _run_obs_report(args, out):
    """The ``obs-report`` subcommand: one traced headline-scenario run.

    Builds the paper's office scenario, enables :mod:`repro.obs` for a
    single ``MuteSystem.run``, then renders the recorded trace, metrics,
    and per-stage timing budget.  The previous enable/disable state and
    any previously recorded spans/metrics are cleared so the report
    covers exactly this run.
    """
    # Imported here: the CLI composes the library top-down, and plain
    # `repro list` should not pay for building a scenario.
    from .core.scenario import office_scenario
    from .core.system import MuteSystem
    from .signals import WhiteNoise

    if args.duration <= 0:
        print("obs-report: --duration must be > 0", file=out)
        return 2
    if args.block <= 0:
        print("obs-report: --block must be > 0", file=out)
        return 2

    scenario = office_scenario()
    noise = WhiteNoise(level_rms=0.1, seed=args.seed).generate(args.duration)

    obs.reset()
    with obs.enabled_scope():
        system = MuteSystem(scenario)
        result = system.run(noise)

    tracer = obs.get_tracer()
    registry = obs.get_registry()
    budget_report = obs.timing_budget_report(
        tracer, system.lookahead_budget, system.sample_rate,
        n_samples=noise.size, block_size=args.block,
    )

    document = None
    if args.json or args.out:
        document = obs.obs_report_dict(tracer, registry, budget_report)
    if args.out:
        try:
            with open(args.out, "w", encoding="utf-8") as fh:
                json.dump(document, fh, indent=2, default=str)
        except OSError as exc:
            print(f"obs-report: cannot write {args.out}: {exc}", file=out)
            return 2
    if args.json:
        print(json.dumps(document, indent=2, default=str), file=out)
        return 0

    print("== obs-report: traced MuteSystem.run on the office scenario ==",
          file=out)
    print(system.summary(), file=out)
    print(f"mean cancellation {result.mean_cancellation_db():.1f} dB over "
          f"{args.duration:.1f} s\n", file=out)
    print("--- span tree ---", file=out)
    print(tracer.render(), file=out)
    print("\n--- metrics ---", file=out)
    print(registry.render(), file=out)
    print("\n--- timing budget ---", file=out)
    print(budget_report.report(), file=out)
    if args.out:
        print(f"\n[JSON report written to {args.out}]", file=out)
    return 0


def main(argv=None, out=None):
    """Entry point; returns a process exit code.

    Parameters
    ----------
    argv:
        Argument list (defaults to ``sys.argv[1:]``).
    out:
        Output stream (defaults to stdout) — injectable for tests.
    """
    out = out or sys.stdout
    args = build_parser().parse_args(argv)

    if args.command == "list":
        width = max(len(name) for name in EXPERIMENTS)
        for name, (__, description, ___) in sorted(EXPERIMENTS.items()):
            print(f"{name.ljust(width)}  {description}", file=out)
        return 0

    if args.command == "obs-report":
        return _run_obs_report(args, out)

    names = sorted(EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]
    try:
        for name in names:
            _run_one(name, args.duration, args.seed, out)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe — normal CLI etiquette.
        return 0
    return 0
