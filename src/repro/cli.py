"""Command-line interface: regenerate paper figures, trace the pipeline.

Subcommands
-----------
``list``
    Print every registered experiment with a one-line description::

        python -m repro list

``run``
    Regenerate one paper figure / extension experiment (or ``all``).
    Each experiment prints the same rows/series its paper figure plots
    (via the experiment's ``report()``)::

        python -m repro run fig12
        python -m repro run fig17 --duration 20 --seed 3
        python -m repro run all

``run-all``
    Run several experiments (default: all of them) through the
    :mod:`repro.runtime` executor, optionally across worker processes,
    and print one merged report — per-run wall times plus the combined
    :mod:`repro.obs` metrics of every worker::

        python -m repro run-all --jobs 4
        python -m repro run-all --jobs 2 timing fig13
        python -m repro run-all --jobs 4 --out suite.json

``serve-bench``
    Drive the multi-session serving runtime (:mod:`repro.serving`):
    admit N concurrent device sessions and drain them through the
    batched cross-session kernel, printing throughput and block-latency
    percentiles — with ``--check``, also run the serial schedule and
    verify the two are bit-identical (the CI smoke)::

        python -m repro serve-bench --sessions 8 --duration 0.3 --check
        python -m repro serve-bench --sessions 64 --out serving.json

``chaos-soak``
    Soak the crash-safe serving layer (:mod:`repro.chaos`): serve a
    fleet under injected crashes and deadline stalls, verify every
    session ends warm-restored bit-identically or deliberately shed,
    and print (or write) the ``repro.chaos.soak/v1`` report — exit 1
    if any invariant broke (the CI chaos smoke)::

        python -m repro chaos-soak --sessions 6 --duration 0.3
        python -m repro chaos-soak --json --out soak.json

``perf-profile``
    Time the pipeline stage by stage (synthesis / channel / relay /
    kernel / ear, plus end-to-end ``MuteSystem.run``) on the Figure 12
    workload and print a stage table — or the ``repro.perf/v1`` JSON
    document CI uploads (see ``docs/PERFORMANCE.md``)::

        python -m repro perf-profile
        python -m repro --kernel-backend vector perf-profile --json
        python -m repro perf-profile --no-fastpath --out slow.json

``obs-report``
    Run the headline office scenario with observability
    (:mod:`repro.obs`) enabled and print the span tree, the metrics
    table, and the timing-budget report — or the bundled
    ``repro.obs.report/v1`` JSON document (schemas in
    ``docs/OBSERVABILITY.md``)::

        python -m repro obs-report
        python -m repro obs-report --duration 5 --block 128
        python -m repro obs-report --json --out trace.json

The experiment catalog itself lives in the registry
(:mod:`repro.eval.experiments`) — the CLI is a thin dispatcher over
``experiments.all_experiments()``.  The installed console entry point
``repro`` is equivalent to ``python -m repro``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from . import obs
from .core.adaptive import kernels
from .eval import experiments


def build_parser():
    """The argparse tree (exposed for tests)."""
    names = experiments.experiment_names()
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MUTE (SIGCOMM 2018) reproduction experiments",
    )
    parser.add_argument(
        "--kernel-backend", choices=kernels.available_backends(),
        default=None, metavar="BACKEND",
        help="adaptive-kernel backend for every engine "
             f"({'/'.join(kernels.available_backends())}; default: "
             f"$REPRO_KERNEL_BACKEND or '{kernels.DEFAULT_BACKEND}')",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", choices=names + ["all"])
    run.add_argument("--duration", type=float, default=None,
                     help="simulated seconds (experiment default if unset)")
    run.add_argument("--seed", type=int, default=None,
                     help="random seed (experiment default if unset)")

    run_all = sub.add_parser(
        "run-all",
        help="run many experiments through the parallel runtime",
    )
    run_all.add_argument("experiments", nargs="*", metavar="EXPERIMENT",
                         help="experiments to run (default: all)")
    run_all.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="worker processes (default 1 = serial)")
    run_all.add_argument("--duration", type=float, default=None,
                         help="simulated seconds for every run "
                              "(experiment defaults if unset)")
    run_all.add_argument("--seed", type=int, default=None,
                         help="random seed for every run "
                              "(experiment defaults if unset)")
    run_all.add_argument("--no-obs", action="store_true",
                         help="skip per-run obs tracing/metrics")
    run_all.add_argument("--out", default=None, metavar="PATH",
                         help="write the repro.runtime.report/v2 JSON "
                              "suite document to PATH")

    serve = sub.add_parser(
        "serve-bench",
        help="drain N concurrent sessions through the serving runtime",
    )
    serve.add_argument("--sessions", type=int, default=8, metavar="N",
                       help="concurrent device sessions (default 8)")
    serve.add_argument("--duration", type=float, default=0.5,
                       help="simulated seconds per session (default 0.5)")
    serve.add_argument("--block", type=int, default=256,
                       help="lock-step block size in samples (default 256)")
    serve.add_argument("--seed", type=int, default=0,
                       help="base workload seed (default 0)")
    serve.add_argument("--serial", action="store_true",
                       help="serial scheduling instead of batched")
    serve.add_argument("--check", action="store_true",
                       help="run BOTH schedules and verify bit-identity "
                            "(exit 1 on mismatch)")
    serve.add_argument("--out", default=None, metavar="PATH",
                       help="write the repro.runtime.report/v2 serving "
                            "JSON document to PATH")

    soak = sub.add_parser(
        "chaos-soak",
        help="crash a serving fleet on purpose and verify recovery",
    )
    soak.add_argument("--sessions", type=int, default=6, metavar="N",
                      help="concurrent device sessions (default 6)")
    soak.add_argument("--duration", type=float, default=0.3,
                      help="simulated seconds per session (default 0.3)")
    soak.add_argument("--block", type=int, default=128,
                      help="lock-step block size in samples (default 128)")
    soak.add_argument("--seed", type=int, default=0,
                      help="root seed for workloads and chaos (default 0)")
    soak.add_argument("--serial", action="store_true",
                      help="serial scheduling instead of batched")
    soak.add_argument("--crash-prob", type=float, default=0.5,
                      help="per-session crash probability (default 0.5)")
    soak.add_argument("--stall-prob", type=float, default=0.5,
                      help="per-session stall probability (default 0.5)")
    soak.add_argument("--json", action="store_true",
                      help="emit the repro.chaos.soak/v1 JSON document "
                           "instead of text")
    soak.add_argument("--out", default=None, metavar="PATH",
                      help="also write the JSON document to PATH")

    perf = sub.add_parser(
        "perf-profile",
        help="profile the pipeline per stage; emit repro.perf/v1 JSON",
    )
    perf.add_argument("--duration", type=float, default=2.0,
                      help="simulated seconds of workload (default 2.0)")
    perf.add_argument("--repeats", type=int, default=3,
                      help="timed repeats per stage, median reported "
                           "(default 3)")
    perf.add_argument("--warmup", type=int, default=1,
                      help="untimed warmup calls per stage (default 1 — "
                           "measures the cache-warm steady state)")
    perf.add_argument("--seed", type=int, default=7,
                      help="workload seed (default 7, the fig12 seed)")
    perf.add_argument("--no-fastpath", action="store_true",
                      help="profile with repro.utils.fastpath disabled "
                           "(the slow-path baseline)")
    perf.add_argument("--json", action="store_true",
                      help="emit the repro.perf/v1 JSON document instead "
                           "of text")
    perf.add_argument("--out", default=None, metavar="PATH",
                      help="also write the JSON document to PATH")

    obs_report = sub.add_parser(
        "obs-report",
        help="trace a MuteSystem run; print span tree, metrics, "
             "timing budget",
    )
    obs_report.add_argument("--duration", type=float, default=2.0,
                            help="simulated seconds (default 2.0)")
    obs_report.add_argument("--seed", type=int, default=0,
                            help="noise seed (default 0)")
    obs_report.add_argument("--block", type=int, default=64,
                            help="block size for the deadline ledger "
                                 "(default 64)")
    obs_report.add_argument("--json", action="store_true",
                            help="emit the repro.obs.report/v1 JSON "
                                 "document instead of text")
    obs_report.add_argument("--out", default=None, metavar="PATH",
                            help="also write the JSON document to PATH")
    return parser


def _run_one(name, request, out):
    """Run one named experiment and print its report to ``out``."""
    entry = experiments.get(name)
    print(f"== {name}: {entry.description} ==", file=out)
    started = time.time()
    result = entry.run(request=request)
    print(result.report(), file=out)
    print(f"[{name} done in {time.time() - started:.1f}s]\n", file=out)
    return result


def _run_suite(args, out):
    """The ``run-all`` subcommand: fan runs out, print one merged report."""
    from . import runtime

    if args.jobs < 1:
        print("run-all: --jobs must be >= 1", file=out)
        return 2
    names = args.experiments or experiments.experiment_names()
    unknown = [n for n in names if n not in experiments.experiment_names()]
    if unknown:
        print(f"run-all: unknown experiment(s): {', '.join(unknown)} "
              f"(see `repro list`)", file=out)
        return 2

    suite = runtime.run_experiments(
        names,
        request=runtime.RunRequest(
            seed=args.seed,
            duration_s=args.duration,
            kernel_backend=args.kernel_backend,
            with_obs=not args.no_obs,
            jobs=args.jobs,
        ),
    )

    for outcome in suite.outcomes:
        if outcome.ok:
            entry = experiments.get(outcome.name)
            print(f"== {outcome.name}: {entry.description} ==", file=out)
            print(outcome.result.report(), file=out)
            print(f"[{outcome.name} done in {outcome.wall_s:.1f}s]\n",
                  file=out)
        else:
            print(f"== {outcome.name}: FAILED ==", file=out)
            print(outcome.error, file=out)

    print(suite.report(), file=out)

    if args.out:
        try:
            with open(args.out, "w", encoding="utf-8") as fh:
                fh.write(suite.to_json(indent=2))
        except OSError as exc:
            print(f"run-all: cannot write {args.out}: {exc}", file=out)
            return 2
        print(f"\n[JSON suite report written to {args.out}]", file=out)

    return 0 if not suite.failures() else 1


def _run_serve_bench(args, out):
    """The ``serve-bench`` subcommand: drain a session fleet, report.

    With ``--check``, both schedules run and their per-session residual
    digests must match bit for bit — the CI smoke for the serial ==
    batched serving contract.
    """
    from . import serving

    if args.sessions < 1:
        print("serve-bench: --sessions must be >= 1", file=out)
        return 2
    if args.duration <= 0:
        print("serve-bench: --duration must be > 0", file=out)
        return 2
    if args.block < 1:
        print("serve-bench: --block must be >= 1", file=out)
        return 2

    def drain(batched):
        config = serving.ServerConfig(
            batched=batched, block_size=args.block,
            max_sessions=max(args.sessions, 1),
        )
        server = serving.SessionServer(config)
        for i in range(args.sessions):
            server.submit(serving.SessionWorkload.synthetic(
                f"user{i}", duration_s=args.duration, seed=args.seed + i,
                sample_rate=config.session.sample_rate))
        return server.run_until_drained()

    report = drain(batched=not args.serial)
    print(report.report(), file=out)

    code = 0
    if args.check:
        other = drain(batched=args.serial)
        matched = report.digests() == other.digests()
        print(f"\nserial == batched digests: "
              f"{'OK' if matched else 'MISMATCH'}", file=out)
        if not matched:
            code = 1

    if args.out:
        try:
            with open(args.out, "w", encoding="utf-8") as fh:
                json.dump(report.to_dict(), fh, indent=2, default=str)
        except OSError as exc:
            print(f"serve-bench: cannot write {args.out}: {exc}", file=out)
            return 2
        print(f"[JSON serving report written to {args.out}]", file=out)
    return code


def _run_chaos_soak(args, out):
    """The ``chaos-soak`` subcommand: injected crashes, verified recovery.

    Runs :func:`repro.chaos.run_soak` with obs enabled (so the
    ``serving.recovery.*`` counters are exercised) and exits non-zero
    when any crash-safety invariant — accounted sessions, bit-identical
    warm restores, clean statuses — fails to hold.
    """
    from . import chaos

    if args.sessions < 1:
        print("chaos-soak: --sessions must be >= 1", file=out)
        return 2
    if args.duration <= 0:
        print("chaos-soak: --duration must be > 0", file=out)
        return 2
    if args.block < 1:
        print("chaos-soak: --block must be >= 1", file=out)
        return 2
    if not 0.0 <= args.crash_prob <= 1.0 \
            or not 0.0 <= args.stall_prob <= 1.0:
        print("chaos-soak: probabilities must be in [0, 1]", file=out)
        return 2

    obs.reset()
    with obs.enabled_scope():
        report = chaos.run_soak(
            sessions=args.sessions, duration_s=args.duration,
            block_size=args.block, seed=args.seed,
            batched=not args.serial, crash_prob=args.crash_prob,
            stall_prob=args.stall_prob,
        )

    document = report.to_dict() if (args.json or args.out) else None
    if args.out:
        try:
            with open(args.out, "w", encoding="utf-8") as fh:
                json.dump(document, fh, indent=2, default=str)
        except OSError as exc:
            print(f"chaos-soak: cannot write {args.out}: {exc}", file=out)
            return 2
    if args.json:
        print(json.dumps(document, indent=2, default=str), file=out)
    else:
        print(report.report(), file=out)
        if args.out:
            print(f"[JSON soak report written to {args.out}]", file=out)
    return 0 if report.ok() else 1


def _run_perf_profile(args, out):
    """The ``perf-profile`` subcommand: stage-level pipeline timings.

    Runs :func:`repro.perf.profile_pipeline` on the fig12 workload and
    renders (or writes) the ``repro.perf/v1`` document — the artifact
    the CI perf-smoke job uploads and ``docs/PERFORMANCE.md`` reads
    from.
    """
    from .perf import profile_pipeline
    from .perf.harness import render_profile

    if args.duration <= 0:
        print("perf-profile: --duration must be > 0", file=out)
        return 2
    if args.repeats < 1:
        print("perf-profile: --repeats must be >= 1", file=out)
        return 2
    if args.warmup < 0:
        print("perf-profile: --warmup must be >= 0", file=out)
        return 2

    doc = profile_pipeline(
        duration_s=args.duration, repeats=args.repeats, warmup=args.warmup,
        seed=args.seed, kernel_backend=args.kernel_backend,
        use_fastpath=False if args.no_fastpath else None,
    )
    if args.out:
        try:
            with open(args.out, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, indent=2, default=str)
        except OSError as exc:
            print(f"perf-profile: cannot write {args.out}: {exc}", file=out)
            return 2
    if args.json:
        print(json.dumps(doc, indent=2, default=str), file=out)
        return 0
    print(render_profile(doc), file=out)
    if args.out:
        print(f"[JSON perf profile written to {args.out}]", file=out)
    return 0


def _run_obs_report(args, out):
    """The ``obs-report`` subcommand: one traced headline-scenario run.

    Builds the paper's office scenario, enables :mod:`repro.obs` for a
    single ``MuteSystem.run``, then renders the recorded trace, metrics,
    and per-stage timing budget.  The previous enable/disable state and
    any previously recorded spans/metrics are cleared so the report
    covers exactly this run.
    """
    # Imported here: the CLI composes the library top-down, and plain
    # `repro list` should not pay for building a scenario.
    from .core.scenario import office_scenario
    from .core.system import MuteSystem
    from .signals import WhiteNoise

    if args.duration <= 0:
        print("obs-report: --duration must be > 0", file=out)
        return 2
    if args.block <= 0:
        print("obs-report: --block must be > 0", file=out)
        return 2

    scenario = office_scenario()
    noise = WhiteNoise(level_rms=0.1, seed=args.seed).generate(args.duration)

    obs.reset()
    with obs.enabled_scope():
        system = MuteSystem(scenario)
        result = system.run(noise)

    tracer = obs.get_tracer()
    registry = obs.get_registry()
    budget_report = obs.timing_budget_report(
        tracer, system.lookahead_budget, system.sample_rate,
        n_samples=noise.size, block_size=args.block,
    )

    document = None
    if args.json or args.out:
        document = obs.obs_report_dict(tracer, registry, budget_report)
    if args.out:
        try:
            with open(args.out, "w", encoding="utf-8") as fh:
                json.dump(document, fh, indent=2, default=str)
        except OSError as exc:
            print(f"obs-report: cannot write {args.out}: {exc}", file=out)
            return 2
    if args.json:
        print(json.dumps(document, indent=2, default=str), file=out)
        return 0

    print("== obs-report: traced MuteSystem.run on the office scenario ==",
          file=out)
    print(system.summary(), file=out)
    print(f"mean cancellation {result.mean_cancellation_db():.1f} dB over "
          f"{args.duration:.1f} s\n", file=out)
    print("--- span tree ---", file=out)
    print(tracer.render(), file=out)
    print("\n--- metrics ---", file=out)
    print(registry.render(), file=out)
    print("\n--- timing budget ---", file=out)
    print(budget_report.report(), file=out)
    if args.out:
        print(f"\n[JSON report written to {args.out}]", file=out)
    return 0


def main(argv=None, out=None):
    """Entry point; returns a process exit code.

    Parameters
    ----------
    argv:
        Argument list (defaults to ``sys.argv[1:]``).
    out:
        Output stream (defaults to stdout) — injectable for tests.
    """
    from .runtime import RunRequest

    out = out or sys.stdout
    args = build_parser().parse_args(argv)

    # The kernel backend rides on a RunRequest (scoped around each
    # command) rather than a permanent environment write.
    backend_request = RunRequest(kernel_backend=args.kernel_backend)

    if args.command == "list":
        catalog = experiments.all_experiments()
        width = max(len(entry.name) for entry in catalog)
        for entry in sorted(catalog, key=lambda e: e.name):
            print(f"{entry.name.ljust(width)}  {entry.description}", file=out)
        return 0

    if args.command == "obs-report":
        with backend_request.kernel_backend_scope():
            return _run_obs_report(args, out)

    if args.command == "perf-profile":
        with backend_request.kernel_backend_scope():
            return _run_perf_profile(args, out)

    if args.command == "serve-bench":
        with backend_request.kernel_backend_scope():
            return _run_serve_bench(args, out)

    if args.command == "chaos-soak":
        with backend_request.kernel_backend_scope():
            return _run_chaos_soak(args, out)

    if args.command == "run-all":
        try:
            return _run_suite(args, out)
        except BrokenPipeError:
            return 0

    names = experiments.experiment_names() if args.experiment == "all" \
        else [args.experiment]
    request = RunRequest(seed=args.seed, duration_s=args.duration,
                         kernel_backend=args.kernel_backend)
    try:
        for name in names:
            _run_one(name, request, out)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe — normal CLI etiquette.
        return 0
    return 0
