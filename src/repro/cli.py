"""Command-line interface: regenerate any paper figure from the shell.

::

    python -m repro list
    python -m repro run fig12
    python -m repro run fig17 --duration 20 --seed 3
    python -m repro run all

Each experiment prints the same rows/series its paper figure plots (via
the experiment's ``report()``).
"""

from __future__ import annotations

import argparse
import sys
import time

from .eval import experiments as exp

#: name -> (runner, description, accepts duration/seed kwargs)
EXPERIMENTS = {
    "fig6": (exp.run_fig6, "profile spectra (speech vs background)", True),
    "fig12": (exp.run_fig12, "overall cancellation, 4 schemes", True),
    "fig13": (exp.run_fig13, "speaker+mic frequency response", False),
    "fig14": (exp.run_fig14, "four real-world sound types", True),
    "fig15": (exp.run_fig15, "simulated listener ratings", True),
    "fig16": (exp.run_fig16, "cancellation vs lookahead", True),
    "fig17": (exp.run_fig17, "predictive profile switching", True),
    "fig18": (exp.run_fig18, "GCC-PHAT lookahead sign", True),
    "fig19": (exp.run_fig19, "relay association map", True),
    "headline": (exp.run_headline, "the paper's headline numbers", True),
    "timing": (exp.run_timing, "Eq. 3/4 timing analysis", False),
    "convergence": (exp.run_convergence, "Figures 7-8 timelines", True),
    "multisource": (exp.run_multisource,
                    "extension: two simultaneous sources", True),
    "mobility": (exp.run_mobility, "extension: head mobility", True),
    "ear": (exp.run_ear_model, "extension: cancellation at the eardrum",
            True),
    "edge": (exp.run_edge, "extension: multi-user edge service", True),
    "wideband": (exp.run_wideband,
                 "extension: beyond the 4 kHz cap (fast DSP)", True),
}


def build_parser():
    """The argparse tree (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MUTE (SIGCOMM 2018) reproduction experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment",
                     choices=sorted(EXPERIMENTS) + ["all"])
    run.add_argument("--duration", type=float, default=None,
                     help="simulated seconds (experiment default if unset)")
    run.add_argument("--seed", type=int, default=None,
                     help="random seed (experiment default if unset)")
    return parser


def _run_one(name, duration, seed, out):
    runner, description, takes_kwargs = EXPERIMENTS[name]
    kwargs = {}
    if takes_kwargs:
        if duration is not None:
            kwargs["duration_s"] = duration
        if seed is not None:
            kwargs["seed"] = seed
    print(f"== {name}: {description} ==", file=out)
    started = time.time()
    result = runner(**kwargs)
    print(result.report(), file=out)
    print(f"[{name} done in {time.time() - started:.1f}s]\n", file=out)
    return result


def main(argv=None, out=None):
    """Entry point; returns a process exit code."""
    out = out or sys.stdout
    args = build_parser().parse_args(argv)

    if args.command == "list":
        width = max(len(name) for name in EXPERIMENTS)
        for name, (__, description, ___) in sorted(EXPERIMENTS.items()):
            print(f"{name.ljust(width)}  {description}", file=out)
        return 0

    names = sorted(EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]
    try:
        for name in names:
            _run_one(name, args.duration, args.seed, out)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe — normal CLI etiquette.
        return 0
    return 0
