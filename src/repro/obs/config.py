"""The observability on/off switch — one module-level flag.

Every hook in the hot paths (``MuteSystem`` stages, the adaptive
engines, the relay, the profile switcher) guards itself with
:func:`enabled`.  The guard is a single attribute read + truth test, and
hooks are placed per *run* or per *block*, never per sample, so the
disabled cost is unmeasurable (see ``benchmarks/bench_obs_overhead.py``)
and the default-off state leaves every numeric result bit-identical —
instrumentation never touches signals, seeds, or control flow.

Typical use::

    from repro import obs

    obs.enable()
    try:
        result = system.run(noise)
    finally:
        obs.disable()
    print(obs.get_tracer().render())

or, scoped::

    with obs.enabled_scope():
        result = system.run(noise)
"""

from __future__ import annotations

import contextlib

__all__ = ["enabled", "enable", "disable", "enabled_scope"]

#: Global switch.  Default off: the library behaves exactly as if the
#: obs package did not exist.
_ENABLED = False


def enabled():
    """Is observability (tracing + metrics) currently on?"""
    return _ENABLED


def enable():
    """Turn tracing and metrics collection on (global)."""
    global _ENABLED
    _ENABLED = True


def disable():
    """Turn tracing and metrics collection off (global, the default)."""
    global _ENABLED
    _ENABLED = False


@contextlib.contextmanager
def enabled_scope():
    """Enable observability for the duration of a ``with`` block.

    Restores the previous state on exit (exception-safe), so scopes
    nest correctly.
    """
    global _ENABLED
    previous = _ENABLED
    _ENABLED = True
    try:
        yield
    finally:
        _ENABLED = previous
