"""Span-based tracing for the MUTE pipeline.

A **span** is one timed region of the pipeline — ``mute.prepare``,
``mute.adapt``, ``relay.forward`` — with wall-clock *and* CPU time,
free-form attributes, and children for regions it encloses.  The
:class:`Tracer` collects spans into a forest (one root per top-level
operation) and exports it two ways:

* :meth:`Tracer.to_dict` / :meth:`Tracer.to_json` — the
  ``repro.obs.trace/v1`` JSON schema (documented in
  ``docs/OBSERVABILITY.md``), consumed by ``repro obs-report`` and the
  timing-budget profiler;
* :meth:`Tracer.render` — an indented text tree for terminals.

Spans nest by runtime containment: a span opened while another is open
becomes its child, which is how one ``mute.run`` trace decomposes into
the prepare / adapt / collect stages the budget report prices.

The module-level :func:`span` is the hook the instrumented code calls::

    from repro import obs

    with obs.span("mute.prepare", samples=noise.size):
        ...

When observability is disabled (the default) it returns a shared no-op
context manager — one function call and no allocation, which is what
keeps the disabled overhead at zero.
"""

from __future__ import annotations

import json
import time

from ..errors import ConfigurationError
from . import config

__all__ = ["Span", "Tracer", "span", "get_tracer", "TRACE_SCHEMA"]

#: Schema identifier stamped into every exported trace.
TRACE_SCHEMA = "repro.obs.trace/v1"


class Span:
    """One timed region: name, wall/CPU interval, attributes, children.

    Created by :meth:`Tracer.span` — not directly.  While open, extra
    attributes can be attached::

        with tracer.span("mute.prepare") as sp:
            sp.set_attribute("n_future", n_future)
    """

    __slots__ = ("name", "attributes", "children", "t_start_s",
                 "_wall0", "_cpu0", "wall_s", "cpu_s")

    def __init__(self, name, attributes):
        self.name = str(name)
        self.attributes = dict(attributes)
        self.children = []
        self.t_start_s = None   # relative to the tracer epoch
        self._wall0 = None
        self._cpu0 = None
        self.wall_s = None
        self.cpu_s = None

    def set_attribute(self, key, value):
        """Attach one attribute (stringifiable key, JSON-able value)."""
        self.attributes[str(key)] = value

    @property
    def finished(self):
        """Has the span been closed (timings final)?"""
        return self.wall_s is not None

    def self_wall_s(self):
        """Wall time not covered by child spans (>= 0)."""
        if not self.finished:
            raise ConfigurationError(f"span {self.name!r} still open")
        covered = sum(c.wall_s for c in self.children if c.finished)
        return max(self.wall_s - covered, 0.0)

    def to_dict(self):
        """This span and its subtree as plain dicts (JSON-ready)."""
        if not self.finished:
            raise ConfigurationError(f"span {self.name!r} still open")
        return {
            "name": self.name,
            "t_start_s": self.t_start_s,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "attributes": dict(self.attributes),
            "children": [c.to_dict() for c in self.children],
        }


class _OpenSpan:
    """Context manager that times one span on a tracer's stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer, sp):
        self._tracer = tracer
        self._span = sp

    def __enter__(self):
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb):
        self._tracer._pop(self._span)
        return False


class _NoopSpan:
    """Shared do-nothing span/context-manager for the disabled path."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def set_attribute(self, key, value):
        pass


_NOOP = _NoopSpan()


class Tracer:
    """Collects spans into a forest and exports it.

    All span timestamps are relative to the tracer's *epoch* (its
    construction or last :meth:`reset`), so traces are self-contained
    and diffable.
    """

    def __init__(self):
        self._epoch = time.perf_counter()
        self._stack = []
        self.roots = []

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def span(self, name, **attributes):
        """Open a span; use as a context manager.

        Nested calls attach the inner span as a child of the currently
        open one.
        """
        return _OpenSpan(self, Span(name, attributes))

    def _push(self, sp):
        sp.t_start_s = time.perf_counter() - self._epoch
        if self._stack:
            self._stack[-1].children.append(sp)
        else:
            self.roots.append(sp)
        self._stack.append(sp)
        sp._wall0 = time.perf_counter()
        sp._cpu0 = time.process_time()

    def _pop(self, sp):
        sp.wall_s = time.perf_counter() - sp._wall0
        sp.cpu_s = time.process_time() - sp._cpu0
        if not self._stack or self._stack[-1] is not sp:
            raise ConfigurationError(
                f"span {sp.name!r} closed out of order"
            )
        self._stack.pop()

    def reset(self):
        """Drop all recorded spans and restart the epoch."""
        if self._stack:
            raise ConfigurationError(
                f"cannot reset with open span {self._stack[-1].name!r}"
            )
        self._epoch = time.perf_counter()
        self.roots = []

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def walk(self):
        """Yield ``(depth, span)`` over the forest, pre-order."""
        def _walk(sp, depth):
            yield depth, sp
            for child in sp.children:
                yield from _walk(child, depth + 1)

        for root in self.roots:
            yield from _walk(root, 0)

    def find(self, name):
        """First finished span with ``name`` (depth-first), or ``None``."""
        for __, sp in self.walk():
            if sp.name == name and sp.finished:
                return sp
        return None

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_dict(self):
        """The whole trace in the ``repro.obs.trace/v1`` schema."""
        return {
            "schema": TRACE_SCHEMA,
            "spans": [r.to_dict() for r in self.roots],
        }

    def to_json(self, indent=None):
        """:meth:`to_dict` serialized (attributes must be JSON-able)."""
        return json.dumps(self.to_dict(), indent=indent, default=str)

    def render(self):
        """Indented text tree — wall/CPU per span, attrs inline."""
        lines = []
        for depth, sp in self.walk():
            if not sp.finished:
                continue
            attrs = ""
            if sp.attributes:
                pairs = ", ".join(f"{k}={v}" for k, v in
                                  sorted(sp.attributes.items()))
                attrs = f"  [{pairs}]"
            lines.append(
                f"{'  ' * depth}{sp.name}  "
                f"wall {sp.wall_s * 1e3:.3f} ms  "
                f"cpu {sp.cpu_s * 1e3:.3f} ms{attrs}"
            )
        return "\n".join(lines) if lines else "(no spans recorded)"


#: Process-global tracer used by the module-level :func:`span`.
_GLOBAL = Tracer()


def get_tracer():
    """The process-global :class:`Tracer` the pipeline hooks write to."""
    return _GLOBAL


def span(name, **attributes):
    """Open a span on the global tracer — or a no-op when disabled.

    This is the only tracing entry point the instrumented pipeline
    uses; its disabled cost is one flag check.
    """
    if not config.enabled():
        return _NOOP
    return _GLOBAL.span(name, **attributes)
