"""repro.obs — observability for the MUTE pipeline.

Tracing, metrics, and profiling hooks threaded through
:class:`repro.core.system.MuteSystem`, the adaptive engines, the
wireless relay, and the profile switcher.  Everything is **off by
default** and gated behind one global flag, so the un-instrumented
library is bit-identical to this one; see ``docs/OBSERVABILITY.md`` for
the full guide and JSON schemas.

Three layers:

* :mod:`~repro.obs.config` — the global enable/disable switch
  (:func:`enable`, :func:`disable`, :func:`enabled`,
  :func:`enabled_scope`);
* :mod:`~repro.obs.trace` — span tracer (:func:`span`,
  :func:`get_tracer`, JSON + text-tree export);
* :mod:`~repro.obs.metrics` — labeled counters/gauges/histograms
  (:func:`get_registry`);
* :mod:`~repro.obs.profile` — maps a recorded trace onto the paper's
  lookahead budget (:func:`timing_budget_report`), and bundles the
  ``repro obs-report`` document (:func:`obs_report_dict`).

Minimal session::

    from repro import obs

    with obs.enabled_scope():
        result = system.run(noise)

    print(obs.get_tracer().render())        # span tree
    print(obs.get_registry().render())      # metrics table
    report = obs.timing_budget_report(
        obs.get_tracer(), system.lookahead_budget,
        system.sample_rate, n_samples=noise.size)
    print(report.report())

Call :func:`reset` between experiments to drop recorded data.
"""

from __future__ import annotations

from .config import disable, enable, enabled, enabled_scope
from .metrics import (
    METRICS_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from .profile import (
    REPORT_SCHEMA,
    StageBudget,
    TimingBudgetReport,
    obs_report_dict,
    obs_report_json,
    timing_budget_report,
)
from .trace import TRACE_SCHEMA, Span, Tracer, get_tracer, span

__all__ = [
    # config
    "enabled", "enable", "disable", "enabled_scope", "reset",
    # trace
    "Span", "Tracer", "span", "get_tracer", "TRACE_SCHEMA",
    # metrics
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "get_registry",
    "METRICS_SCHEMA",
    # profile
    "StageBudget", "TimingBudgetReport", "timing_budget_report",
    "obs_report_dict", "obs_report_json", "REPORT_SCHEMA",
]


def reset():
    """Clear the global tracer and metrics registry (state, not the flag)."""
    get_tracer().reset()
    get_registry().reset()
