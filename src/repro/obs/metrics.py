"""Metrics registry: counters, gauges, fixed-bucket histograms.

Prometheus-flavored but dependency-free.  A metric is identified by a
``name`` plus a set of string **labels** (``engine="lanc"``,
``stage="prepare"``, ``profile="speech"``); the registry hands out the
same instrument object for the same (name, labels) pair, so hot paths
can fetch an instrument once and observe repeatedly::

    from repro import obs

    hist = obs.get_registry().histogram("adaptive.block_update_s",
                                        engine="block-lanc")
    for block in blocks:
        t0 = time.perf_counter()
        ...
        hist.observe(time.perf_counter() - t0)

Instrument kinds
----------------
:class:`Counter`
    Monotone accumulator (``inc``) — runs, samples, switches, hits.
:class:`Gauge`
    Last-written value (``set``) plus the number of writes — levels
    like misadjustment or relay SNR.
:class:`Histogram`
    Fixed-bucket distribution (``observe``) with quantile *summaries*
    estimated by linear interpolation inside the matching bucket.  The
    default buckets are exponential from 1 µs to 10 s, sized for
    latencies; pass explicit ``buckets`` for other units.

Export: :meth:`MetricsRegistry.to_dict` emits the
``repro.obs.metrics/v1`` schema shared by ``repro obs-report`` and the
benchmark suite (see ``benchmarks/README.md``);
:meth:`MetricsRegistry.render` prints a terminal table.
"""

from __future__ import annotations

import bisect
import json

from ..errors import ConfigurationError

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "get_registry", "METRICS_SCHEMA", "DEFAULT_LATENCY_BUCKETS",
]

#: Schema identifier stamped into every exported metrics payload.
METRICS_SCHEMA = "repro.obs.metrics/v1"

#: Exponential bucket upper bounds (seconds) for latency histograms:
#: 1 µs … 10 s, three buckets per decade, plus the +inf overflow.
DEFAULT_LATENCY_BUCKETS = tuple(
    round(mantissa * 10.0 ** exponent, 12)
    for exponent in range(-6, 1)
    for mantissa in (1.0, 2.0, 5.0)
) + (10.0,)


def _check_labels(labels):
    out = {}
    for key, value in labels.items():
        out[str(key)] = str(value)
    return out


class Counter:
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self, name, labels):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount=1.0):
        """Add ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        self.value += amount

    def to_dict(self):
        return {"value": self.value}


class Gauge:
    """Last-set value, with a write count so rates can be derived."""

    kind = "gauge"

    def __init__(self, name, labels):
        self.name = name
        self.labels = labels
        self.value = None
        self.writes = 0

    def set(self, value):
        """Record the current level."""
        self.value = float(value)
        self.writes += 1

    def to_dict(self):
        return {"value": self.value, "writes": self.writes}


class Histogram:
    """Fixed-bucket histogram with interpolated quantile summaries.

    ``buckets`` are the upper bounds of each bin, strictly increasing;
    an implicit +inf bucket catches overflow.  Quantiles are therefore
    *estimates* whose resolution is the bucket width — exact enough for
    latency reporting, constant-memory regardless of sample count.
    """

    kind = "histogram"

    def __init__(self, name, labels, buckets=None):
        self.name = name
        self.labels = labels
        bounds = tuple(float(b) for b in
                       (buckets or DEFAULT_LATENCY_BUCKETS))
        if len(bounds) < 1 or any(b2 <= b1 for b1, b2 in
                                  zip(bounds, bounds[1:])):
            raise ConfigurationError(
                f"histogram {name!r} buckets must be strictly increasing"
            )
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # last = overflow
        self.count = 0
        self.sum = 0.0
        self.min = None
        self.max = None

    def observe(self, value):
        """Record one observation."""
        value = float(value)
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self):
        """Exact mean of all observations (``None`` when empty)."""
        return self.sum / self.count if self.count else None

    def quantile(self, q):
        """Estimated ``q``-quantile (0 <= q <= 1), ``None`` when empty.

        Linear interpolation inside the bucket containing the target
        rank; the overflow bucket reports the observed maximum.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile q must be in [0, 1], got {q}")
        if self.count == 0:
            return None
        target = q * self.count
        cumulative = 0
        for i, n in enumerate(self.counts):
            if n == 0:
                continue
            if cumulative + n >= target:
                if i == len(self.bounds):       # overflow bucket
                    return self.max
                lo = self.bounds[i - 1] if i > 0 else min(self.min or 0.0, 0.0)
                hi = self.bounds[i]
                fraction = (target - cumulative) / n
                return lo + fraction * (hi - lo)
            cumulative += n
        return self.max

    def summary(self):
        """count / sum / mean / min / max / p50 / p90 / p99."""
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }

    def to_dict(self):
        d = self.summary()
        d["buckets"] = [
            {"le": bound, "count": n}
            for bound, n in zip(self.bounds, self.counts)
        ]
        d["overflow"] = self.counts[-1]
        return d


class MetricsRegistry:
    """Get-or-create home for every instrument, keyed by name + labels."""

    def __init__(self):
        self._instruments = {}

    def _get(self, factory, kind, name, labels, **kwargs):
        labels = _check_labels(labels)
        key = (kind, str(name), tuple(sorted(labels.items())))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = factory(str(name), labels, **kwargs)
            self._instruments[key] = instrument
        return instrument

    def counter(self, name, **labels):
        """The :class:`Counter` for (name, labels), created on first use."""
        return self._get(Counter, "counter", name, labels)

    def gauge(self, name, **labels):
        """The :class:`Gauge` for (name, labels), created on first use."""
        return self._get(Gauge, "gauge", name, labels)

    def histogram(self, name, buckets=None, **labels):
        """The :class:`Histogram` for (name, labels), created on first use.

        ``buckets`` only applies at creation; later calls with different
        buckets return the existing instrument unchanged.
        """
        return self._get(Histogram, "histogram", name, labels,
                         buckets=buckets)

    def __len__(self):
        return len(self._instruments)

    def instruments(self):
        """All instruments, sorted by (name, labels)."""
        return [self._instruments[k] for k in sorted(self._instruments,
                                                     key=lambda k: k[1:])]

    def reset(self):
        """Forget every instrument."""
        self._instruments = {}

    def to_dict(self):
        """Everything recorded, in the ``repro.obs.metrics/v1`` schema."""
        return {
            "schema": METRICS_SCHEMA,
            "metrics": [
                {
                    "name": inst.name,
                    "kind": inst.kind,
                    "labels": dict(inst.labels),
                    **inst.to_dict(),
                }
                for inst in self.instruments()
            ],
        }

    def to_json(self, indent=None):
        """:meth:`to_dict` serialized."""
        return json.dumps(self.to_dict(), indent=indent)

    def render(self):
        """Terminal table: one row per instrument."""
        rows = []
        for inst in self.instruments():
            labels = ",".join(f"{k}={v}" for k, v in
                              sorted(inst.labels.items()))
            if inst.kind == "histogram":
                s = inst.summary()
                detail = (f"n={s['count']} mean={s['mean']:.3e} "
                          f"p50={s['p50']:.3e} p99={s['p99']:.3e}"
                          if s["count"] else "n=0")
            elif inst.kind == "gauge":
                detail = (f"{inst.value:.6g} (writes={inst.writes})"
                          if inst.writes else "unset")
            else:
                detail = f"{inst.value:g}"
            rows.append(f"{inst.name:<28} {inst.kind:<9} "
                        f"{labels:<24} {detail}")
        if not rows:
            return "(no metrics recorded)"
        header = f"{'name':<28} {'kind':<9} {'labels':<24} value"
        return "\n".join([header, "-" * len(header)] + rows)


#: Process-global registry the pipeline hooks write to.
_GLOBAL = MetricsRegistry()


def get_registry():
    """The process-global :class:`MetricsRegistry`."""
    return _GLOBAL
