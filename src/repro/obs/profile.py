"""Profiling harness: price measured stage latencies against lookahead.

The paper's central constraint is a timing budget: a conventional ANC
headphone must produce each anti-noise sample within ~30 µs, while MUTE
can spend up to the *usable lookahead* (acoustic lead minus pipeline and
relay latency — ``LookaheadBudget``, Eqs. 3/4).  This module turns a
recorded trace of one ``MuteSystem.run`` into that ledger:

1. take the ``mute.run`` root span and its direct children (the
   prepare / adapt / collect stages);
2. amortize each stage's wall time over the samples processed to get a
   per-sample cost, then a per-block cost at a chosen block size;
3. compare the per-block cost against the **real-time deadline** for
   that block — the block's own duration (processing may lag playback by
   at most one block) *plus* the usable lookahead the relay bought —
   and flag stages that would blow it.

Stages flagged ``OVER`` could not run in real time on this host at that
block size; the simulation still completes (it is offline), which is
exactly why the report exists — it localizes *where* the budget goes.

Entry points: :func:`timing_budget_report` builds a
:class:`TimingBudgetReport` from a tracer + budget;
:func:`obs_report_dict` bundles trace + metrics + budget into the
``repro.obs.report/v1`` JSON document that ``repro obs-report`` emits.
"""

from __future__ import annotations

import dataclasses
import json

from ..errors import ConfigurationError
from . import metrics as _metrics
from . import trace as _trace

__all__ = [
    "StageBudget", "TimingBudgetReport", "timing_budget_report",
    "obs_report_dict", "REPORT_SCHEMA",
]

#: Schema identifier of the bundled obs-report document.
REPORT_SCHEMA = "repro.obs.report/v1"


@dataclasses.dataclass
class StageBudget:
    """One pipeline stage priced against the real-time deadline.

    Attributes
    ----------
    stage:
        Span name (e.g. ``"mute.adapt"``).
    wall_s / cpu_s:
        Measured totals for the stage.
    per_sample_us:
        Wall time amortized per audio sample.
    per_block_ms:
        Wall time for one block of ``block_size`` samples.
    deadline_ms:
        Block duration + usable lookahead — the latest the block's
        anti-noise may be ready without missing playback.
    ok:
        ``per_block_ms <= deadline_ms``.
    """

    stage: str
    wall_s: float
    cpu_s: float
    per_sample_us: float
    per_block_ms: float
    deadline_ms: float
    ok: bool

    def to_dict(self):
        return dataclasses.asdict(self)


@dataclasses.dataclass
class TimingBudgetReport:
    """Per-stage latencies mapped onto the paper's lookahead budget."""

    stages: list
    total_wall_s: float
    coverage: float       # sum of stage wall / end-to-end wall
    n_samples: int
    sample_rate: float
    block_size: int
    usable_lookahead_s: float

    def over_budget(self):
        """Names of stages that would miss the real-time deadline."""
        return [s.stage for s in self.stages if not s.ok]

    def to_dict(self):
        return {
            "stages": [s.to_dict() for s in self.stages],
            "total_wall_s": self.total_wall_s,
            "coverage": self.coverage,
            "n_samples": self.n_samples,
            "sample_rate": self.sample_rate,
            "block_size": self.block_size,
            "usable_lookahead_s": self.usable_lookahead_s,
            "over_budget": self.over_budget(),
        }

    def report(self):
        """Terminal table, one row per stage."""
        header = (f"{'stage':<16} {'wall ms':>9} {'cpu ms':>9} "
                  f"{'us/sample':>10} {'ms/block':>9} "
                  f"{'deadline ms':>12}  verdict")
        lines = [
            "Timing budget — measured stage cost vs real-time deadline",
            f"({self.n_samples} samples at {self.sample_rate:.0f} Hz, "
            f"block {self.block_size}, usable lookahead "
            f"{self.usable_lookahead_s * 1e3:.2f} ms, "
            f"stage coverage {self.coverage * 100.0:.1f}% of "
            f"{self.total_wall_s * 1e3:.1f} ms end-to-end)",
            header,
            "-" * len(header),
        ]
        for s in self.stages:
            lines.append(
                f"{s.stage:<16} {s.wall_s * 1e3:>9.3f} "
                f"{s.cpu_s * 1e3:>9.3f} {s.per_sample_us:>10.3f} "
                f"{s.per_block_ms:>9.4f} {s.deadline_ms:>12.4f}  "
                f"{'ok' if s.ok else 'OVER'}"
            )
        return "\n".join(lines)


def timing_budget_report(tracer, budget, sample_rate, n_samples,
                         block_size=64, root_name="mute.run"):
    """Build a :class:`TimingBudgetReport` from a recorded trace.

    Parameters
    ----------
    tracer:
        A :class:`repro.obs.trace.Tracer` holding at least one finished
        ``root_name`` span (record one by running a ``MuteSystem`` with
        observability enabled).
    budget:
        The run's :class:`repro.core.lookahead.LookaheadBudget` (only
        ``usable_lookahead_s`` is read, so any duck-type works).
    sample_rate / n_samples:
        Audio rate and length of the traced run, for amortization.
    block_size:
        Samples per processing block when pricing the deadline.
    root_name:
        Name of the end-to-end span whose direct children are the
        stages.
    """
    if sample_rate <= 0:
        raise ConfigurationError(f"sample_rate must be > 0, got {sample_rate}")
    if n_samples <= 0:
        raise ConfigurationError(f"n_samples must be > 0, got {n_samples}")
    if block_size <= 0:
        raise ConfigurationError(f"block_size must be > 0, got {block_size}")
    root = tracer.find(root_name)
    if root is None:
        raise ConfigurationError(
            f"no finished {root_name!r} span recorded — run the system "
            "with observability enabled first"
        )
    usable = float(budget.usable_lookahead_s)
    deadline_s = block_size / sample_rate + max(usable, 0.0)
    stages = []
    for child in root.children:
        if not child.finished:
            continue
        per_sample = child.wall_s / n_samples
        per_block = per_sample * block_size
        stages.append(StageBudget(
            stage=child.name,
            wall_s=child.wall_s,
            cpu_s=child.cpu_s,
            per_sample_us=per_sample * 1e6,
            per_block_ms=per_block * 1e3,
            deadline_ms=deadline_s * 1e3,
            ok=per_block <= deadline_s,
        ))
    covered = sum(s.wall_s for s in stages)
    return TimingBudgetReport(
        stages=stages,
        total_wall_s=root.wall_s,
        coverage=covered / root.wall_s if root.wall_s > 0 else 0.0,
        n_samples=int(n_samples),
        sample_rate=float(sample_rate),
        block_size=int(block_size),
        usable_lookahead_s=usable,
    )


def obs_report_dict(tracer, registry, budget_report):
    """Bundle trace + metrics + budget into ``repro.obs.report/v1``."""
    return {
        "schema": REPORT_SCHEMA,
        "trace": tracer.to_dict(),
        "metrics": registry.to_dict(),
        "budget": budget_report.to_dict(),
    }


def obs_report_json(tracer, registry, budget_report, indent=2):
    """:func:`obs_report_dict` serialized for files/pipes."""
    return json.dumps(obs_report_dict(tracer, registry, budget_report),
                      indent=indent, default=str)


# Re-exported for introspection convenience alongside REPORT_SCHEMA.
TRACE_SCHEMA = _trace.TRACE_SCHEMA
METRICS_SCHEMA = _metrics.METRICS_SCHEMA
