"""Noise-source signal generators (white noise, speech, music, ...)."""

from .base import SignalSource, Silence, duration_to_samples, normalize_rms
from .construction import ConstructionNoise
from .mixtures import IntermittentSource, mix, segments_from_mask
from .music import PENTATONIC_A_MINOR, SyntheticMusic
from .noise import BandlimitedNoise, PinkNoise, WhiteNoise
from .speech import (
    VOWEL_FORMANTS,
    FemaleVoice,
    MaleVoice,
    SyntheticSpeech,
)
from .tones import HarmonicStack, MachineHum, MultiTone, Tone, ToneSweep

__all__ = [
    "SignalSource",
    "Silence",
    "duration_to_samples",
    "normalize_rms",
    "ConstructionNoise",
    "IntermittentSource",
    "mix",
    "segments_from_mask",
    "PENTATONIC_A_MINOR",
    "SyntheticMusic",
    "BandlimitedNoise",
    "PinkNoise",
    "WhiteNoise",
    "VOWEL_FORMANTS",
    "FemaleVoice",
    "MaleVoice",
    "SyntheticSpeech",
    "HarmonicStack",
    "MachineHum",
    "MultiTone",
    "Tone",
    "ToneSweep",
]
