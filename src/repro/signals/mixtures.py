"""Source mixing and intermittency scheduling.

The profiling experiment (Figure 17) plays wide-band background noise
continuously from one speaker while intermittent speech plays from
another.  :class:`IntermittentSource` gates any source with an on/off
schedule, and :func:`mix` sums per-source waveforms sample-aligned.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError, SignalError
from .base import SignalSource, duration_to_samples, normalize_rms

__all__ = ["IntermittentSource", "mix", "segments_from_mask"]


class IntermittentSource(SignalSource):
    """Gate an inner source with alternating on/off intervals.

    Parameters
    ----------
    source:
        The :class:`SignalSource` to gate.
    on_s / off_s:
        Mean lengths (seconds) of active and silent intervals; actual
        lengths vary ±40% (seeded).
    ramp_s:
        Raised-cosine ramp applied at each transition so the gating does
        not itself inject clicks.
    """

    name = "intermittent"

    def __init__(self, source, on_s=2.0, off_s=1.5, ramp_s=0.01, seed=1):
        if not isinstance(source, SignalSource):
            raise ConfigurationError("source must be a SignalSource")
        super().__init__(sample_rate=source.sample_rate,
                         level_rms=source.level_rms, seed=seed)
        if on_s <= 0 or off_s < 0:
            raise ConfigurationError("need on_s > 0 and off_s >= 0")
        self.source = source
        self.on_s = float(on_s)
        self.off_s = float(off_s)
        self.ramp_s = float(max(ramp_s, 0.0))
        self.name = f"intermittent {source.name}"

    def activity_mask(self, n_samples, rng=None):
        """Boolean mask of active samples for ``n_samples`` samples."""
        rng = rng if rng is not None else self._rng()
        mask = np.zeros(n_samples, dtype=bool)
        pos = 0
        active = True
        while pos < n_samples:
            mean = self.on_s if active else self.off_s
            if mean <= 0:
                seg = 0
            else:
                seg = max(int(rng.uniform(0.6, 1.4) * mean * self.sample_rate), 1)
            if active:
                mask[pos:pos + seg] = True
            pos += max(seg, 1)
            active = not active
        return mask

    def _gate(self, mask):
        """Convert the boolean mask to a ramped gain envelope."""
        gate = mask.astype(np.float64)
        ramp = int(self.ramp_s * self.sample_rate)
        if ramp > 1:
            kernel = np.hanning(2 * ramp + 1)
            kernel /= kernel.sum()
            gate = np.convolve(gate, kernel, mode="same")
        return gate

    def _raw(self, n_samples, rng):
        inner = self.source.generate_samples(n_samples)
        mask = self.activity_mask(n_samples, rng)
        return inner * self._gate(mask)

    def generate_with_activity(self, duration):
        """Return ``(waveform, activity_mask)``.

        The mask is the experiment's ground truth for when the gated
        source is audible.
        """
        n = duration_to_samples(duration, self.sample_rate)
        rng = self._rng()
        inner = self.source.generate_samples(n)
        mask = self.activity_mask(n, rng)
        waveform = inner * self._gate(mask)
        return normalize_rms(waveform, self.level_rms) if waveform.any() \
            else waveform, mask


def mix(*waveforms, gains=None):
    """Sum equal-length waveforms with optional per-source gains."""
    if not waveforms:
        raise SignalError("mix requires at least one waveform")
    length = len(waveforms[0])
    for w in waveforms:
        if len(w) != length:
            raise SignalError("all waveforms must have equal length")
    if gains is None:
        gains = [1.0] * len(waveforms)
    if len(gains) != len(waveforms):
        raise SignalError("gains must match waveforms in length")
    out = np.zeros(length, dtype=np.float64)
    for g, w in zip(gains, waveforms):
        out += g * np.asarray(w, dtype=np.float64)
    return out


def segments_from_mask(mask):
    """Decompose a boolean mask into ``(start, end, active)`` runs.

    ``end`` is exclusive.  Useful for reporting profile-transition
    timelines in the Figure 17 experiment.
    """
    mask = np.asarray(mask, dtype=bool)
    if mask.size == 0:
        return []
    change = np.flatnonzero(np.diff(mask)) + 1
    starts = np.concatenate([[0], change])
    ends = np.concatenate([change, [mask.size]])
    return [(int(s), int(e), bool(mask[s])) for s, e in zip(starts, ends)]
