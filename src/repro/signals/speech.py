"""Synthetic speech sources.

The paper evaluates cancellation of male and female voices and relies on
speech *intermittency* (pauses between sentences) to motivate predictive
sound profiling.  Real recordings are unavailable offline, so this module
synthesizes speech with the classic source–filter model:

* a glottal pulse train at the speaker's pitch (male ≈ 120 Hz, female
  ≈ 210 Hz) with jitter,
* formant resonators (second-order IIR sections) whose center
  frequencies hop per-syllable through a vowel table,
* unvoiced fricative segments made of high-pass noise,
* syllable amplitude envelopes, word gaps, and sentence pauses.

The result has the spectral tilt, harmonic structure, formant peaks and
on/off temporal envelope that drive the paper's experiments, and every
sample is reproducible from the seed.
"""

from __future__ import annotations

import numpy as np
from scipy import signal as sps

from ..errors import ConfigurationError
from .base import SignalSource, normalize_rms

__all__ = ["SyntheticSpeech", "MaleVoice", "FemaleVoice", "VOWEL_FORMANTS"]

#: Approximate first/second formant center frequencies (Hz) for common
#: vowels (average adult values, Peterson & Barney).
VOWEL_FORMANTS = {
    "i": (270.0, 2290.0),
    "e": (530.0, 1840.0),
    "a": (730.0, 1090.0),
    "o": (570.0, 840.0),
    "u": (300.0, 870.0),
}


def _resonator_sos(center_hz, bandwidth_hz, sample_rate):
    """Second-order resonator section for one formant."""
    nyquist = sample_rate / 2.0
    center_hz = min(center_hz, nyquist * 0.95)
    r = np.exp(-np.pi * bandwidth_hz / sample_rate)
    theta = 2.0 * np.pi * center_hz / sample_rate
    # Difference equation poles at r * e^{±j theta}; unit numerator gain.
    a = [1.0, -2.0 * r * np.cos(theta), r * r]
    b = [1.0 - r, 0.0, 0.0]
    return np.hstack([b, a])


class SyntheticSpeech(SignalSource):
    """Formant-synthesized speech with sentence pauses.

    Parameters
    ----------
    pitch_hz:
        Mean fundamental frequency of the voice.
    speech_fraction:
        Long-run fraction of time spent talking (the rest is sentence
        pauses).  1.0 removes pauses entirely — useful when intermittency
        would confound an experiment.
    syllable_rate:
        Syllables per second while talking.
    sentence_length_s:
        Mean talk-burst length before a pause.
    pause_length_s:
        Mean pause length (exponential-ish, clipped).
    """

    name = "speech"

    def __init__(self, pitch_hz=120.0, speech_fraction=0.65,
                 syllable_rate=4.0, sentence_length_s=2.5, pause_length_s=1.2,
                 sample_rate=8000.0, level_rms=1.0, seed=0):
        super().__init__(sample_rate=sample_rate, level_rms=level_rms, seed=seed)
        if not 50.0 <= pitch_hz <= 400.0:
            raise ConfigurationError(
                f"pitch_hz should be a human pitch (50-400 Hz), got {pitch_hz}"
            )
        if not 0.0 < speech_fraction <= 1.0:
            raise ConfigurationError("speech_fraction must be in (0, 1]")
        self.pitch_hz = float(pitch_hz)
        self.speech_fraction = float(speech_fraction)
        self.syllable_rate = float(max(syllable_rate, 0.5))
        self.sentence_length_s = float(max(sentence_length_s, 0.2))
        self.pause_length_s = float(max(pause_length_s, 0.05))

    # ------------------------------------------------------------------
    # Building blocks
    # ------------------------------------------------------------------
    def _glottal_pulses(self, n, rng):
        """Impulse train at pitch with 3% jitter, pre-emphasized."""
        out = np.zeros(n)
        period = self.sample_rate / self.pitch_hz
        pos = 0.0
        while pos < n:
            out[int(pos)] = 1.0
            pos += period * (1.0 + 0.03 * rng.standard_normal())
        # A touch of spectral tilt: integrate the impulses slightly.
        b, a = [1.0], [1.0, -0.94]
        return sps.lfilter(b, a, out)

    def _voiced_syllable(self, n, rng):
        vowel = rng.choice(list(VOWEL_FORMANTS))
        f1, f2 = VOWEL_FORMANTS[vowel]
        src = self._glottal_pulses(n, rng)
        sos = np.vstack([
            _resonator_sos(f1 * rng.uniform(0.92, 1.08), 90.0, self.sample_rate),
            _resonator_sos(f2 * rng.uniform(0.92, 1.08), 140.0, self.sample_rate),
        ])
        return sps.sosfilt(sos, src)

    def _fricative_syllable(self, n, rng):
        noise = rng.standard_normal(n)
        sos = sps.butter(2, 1800.0 / (self.sample_rate / 2.0),
                         btype="highpass", output="sos")
        # Fricatives carry far less power than voiced segments in real
        # speech; keep them audible but clearly secondary.
        return sps.sosfilt(sos, noise) * 0.12

    def _syllable_envelope(self, n):
        """Raised-cosine attack/decay over the syllable."""
        t = np.linspace(0.0, np.pi, n)
        return np.sin(t) ** 0.75

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------
    def _talk_schedule(self, n, rng):
        """Boolean activity mask alternating sentences and pauses."""
        if self.speech_fraction >= 1.0:
            return np.ones(n, dtype=bool)
        mask = np.zeros(n, dtype=bool)
        # Scale pause lengths so the long-run duty cycle matches.
        duty = self.speech_fraction
        mean_talk = self.sentence_length_s
        mean_pause = mean_talk * (1.0 - duty) / duty
        pos = 0
        talking = True
        while pos < n:
            if talking:
                seg = rng.uniform(0.6, 1.4) * mean_talk
            else:
                seg = rng.uniform(0.6, 1.4) * mean_pause
            length = max(int(seg * self.sample_rate), 1)
            if talking:
                mask[pos:pos + length] = True
            pos += length
            talking = not talking
        return mask

    def _raw_with_mask(self, n_samples, rng):
        mask = self._talk_schedule(n_samples, rng)
        out = np.zeros(n_samples)
        syllable_len = max(int(self.sample_rate / self.syllable_rate), 16)
        pos = 0
        while pos < n_samples:
            n = min(syllable_len, n_samples - pos)
            if mask[pos]:
                if rng.uniform() < 0.2:
                    syl = self._fricative_syllable(n, rng)
                else:
                    syl = self._voiced_syllable(n, rng)
                out[pos:pos + n] = syl * self._syllable_envelope(n)
            pos += n
        # Syllables that straddle a sentence boundary would otherwise
        # bleed into the pause; gate the waveform with the schedule
        # (short raised-cosine ramps avoid clicks).
        gate = mask.astype(np.float64)
        ramp = int(0.008 * self.sample_rate)
        if ramp > 1:
            kernel = np.hanning(2 * ramp + 1)
            gate = np.convolve(gate, kernel / kernel.sum(), mode="same")
        return out * gate, mask

    def _raw(self, n_samples, rng):
        waveform, _ = self._raw_with_mask(n_samples, rng)
        return waveform

    def generate_with_activity(self, duration):
        """Return ``(waveform, activity_mask)`` for profiling experiments.

        The mask marks samples where the talker is active; the Figure 17
        experiment uses it as ground truth for profile transitions.
        """
        n = int(round(duration * self.sample_rate))
        if n <= 0:
            raise ConfigurationError("duration too short")
        waveform, mask = self._raw_with_mask(n, self._rng())
        return normalize_rms(waveform, self.level_rms), mask


class MaleVoice(SyntheticSpeech):
    """Male-voice preset: ~120 Hz pitch."""

    name = "male voice"

    def __init__(self, sample_rate=8000.0, level_rms=1.0, seed=0, **kwargs):
        kwargs.setdefault("pitch_hz", 120.0)
        super().__init__(sample_rate=sample_rate, level_rms=level_rms,
                         seed=seed, **kwargs)


class FemaleVoice(SyntheticSpeech):
    """Female-voice preset: ~210 Hz pitch, slightly faster syllables."""

    name = "female voice"

    def __init__(self, sample_rate=8000.0, level_rms=1.0, seed=0, **kwargs):
        kwargs.setdefault("pitch_hz", 210.0)
        kwargs.setdefault("syllable_rate", 4.5)
        super().__init__(sample_rate=sample_rate, level_rms=level_rms,
                         seed=seed, **kwargs)
