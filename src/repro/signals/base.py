"""Base classes for noise-source signal generators.

Every experiment in the paper plays a *noise source* (white noise, speech,
music, construction sound, machine hum) from an ambient speaker.  A
:class:`SignalSource` produces such a waveform deterministically from a
seed, so experiments are exactly reproducible.

All sources share three conventions:

* mono float64 waveforms at the source's ``sample_rate``;
* ``generate(duration)`` returns a freshly generated waveform scaled to
  the source's ``level_rms``;
* randomness comes only from the ``seed`` given at construction.
"""

from __future__ import annotations

import abc

import numpy as np

from ..errors import ConfigurationError
from ..utils.units import rms as _rms
from ..utils.validation import check_positive

__all__ = ["SignalSource", "Silence", "normalize_rms", "duration_to_samples"]


def duration_to_samples(duration, sample_rate):
    """Convert a duration in seconds to a (positive) sample count."""
    duration = check_positive("duration", duration)
    sample_rate = check_positive("sample_rate", sample_rate)
    n = int(round(duration * sample_rate))
    if n <= 0:
        raise ConfigurationError(
            f"duration {duration}s at {sample_rate} Hz yields no samples"
        )
    return n


def normalize_rms(signal, target_rms):
    """Scale ``signal`` to the requested RMS; silence passes through."""
    signal = np.asarray(signal, dtype=np.float64)
    current = float(np.sqrt(np.mean(np.square(signal)))) if signal.size else 0.0
    if current <= 0.0:
        return signal.copy()
    return signal * (target_rms / current)


class SignalSource(abc.ABC):
    """A reproducible mono sound source.

    Parameters
    ----------
    sample_rate:
        Sampling rate in Hz.  Experiments follow the paper's DSP and use
        8000 Hz (cancellation band [0, 4] kHz).
    level_rms:
        RMS amplitude of the generated waveform.  Use
        :func:`repro.utils.units.amplitude_for_spl` to express this as a
        sound pressure level (the paper calibrates 67 dB SPL).
    seed:
        Seed for the internal random generator; equal seeds give equal
        waveforms.
    """

    #: Human-readable name used in reports; subclasses override.
    name = "source"

    def __init__(self, sample_rate=8000.0, level_rms=1.0, seed=0):
        self.sample_rate = check_positive("sample_rate", sample_rate)
        self.level_rms = check_positive("level_rms", level_rms)
        self.seed = seed

    def _rng(self):
        """A fresh deterministic generator (same waveform per call)."""
        return np.random.default_rng(self.seed)

    @abc.abstractmethod
    def _raw(self, n_samples, rng):
        """Produce ``n_samples`` of unscaled waveform."""

    def generate(self, duration):
        """Generate ``duration`` seconds of signal at ``level_rms``."""
        n = duration_to_samples(duration, self.sample_rate)
        return self.generate_samples(n)

    def generate_samples(self, n_samples):
        """Generate exactly ``n_samples`` samples at ``level_rms``."""
        if n_samples <= 0:
            raise ConfigurationError(f"n_samples must be > 0, got {n_samples}")
        raw = self._raw(int(n_samples), self._rng())
        raw = np.asarray(raw, dtype=np.float64)
        if raw.shape != (int(n_samples),):
            raise ConfigurationError(
                f"{type(self).__name__}._raw returned shape {raw.shape}, "
                f"expected ({n_samples},)"
            )
        return normalize_rms(raw, self.level_rms)

    def measured_rms(self, duration=1.0):
        """RMS of a generated excerpt (sanity hook for tests)."""
        return _rms(self.generate(duration))

    def __repr__(self):
        return (
            f"{type(self).__name__}(sample_rate={self.sample_rate}, "
            f"level_rms={self.level_rms}, seed={self.seed})"
        )


class Silence(SignalSource):
    """All-zero source (useful for schedules with quiet gaps)."""

    name = "silence"

    def _raw(self, n_samples, rng):
        return np.zeros(n_samples)

    def generate_samples(self, n_samples):
        if n_samples <= 0:
            raise ConfigurationError(f"n_samples must be > 0, got {n_samples}")
        return np.zeros(int(n_samples))
