"""Synthetic music source.

A note-based generator: a seeded random walk over a pentatonic scale,
each note a harmonic tone with an ADSR-ish envelope, plus an occasional
sustained chord — enough melodic/harmonic structure to exercise the
"music" workload of Figures 14 and 15 without shipping audio files.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from .base import SignalSource

__all__ = ["SyntheticMusic", "PENTATONIC_A_MINOR"]

#: A-minor pentatonic scale frequencies across two octaves (Hz).
PENTATONIC_A_MINOR = [
    220.0, 261.63, 293.66, 329.63, 392.0,
    440.0, 523.25, 587.33, 659.25, 784.0,
]


class SyntheticMusic(SignalSource):
    """Melody-plus-chords generator.

    Parameters
    ----------
    tempo_bpm:
        Beats per minute; one melody note per beat.
    scale:
        Note frequencies available to the melody random walk.
    chord_probability:
        Chance per beat of adding a sustained triad under the melody.
    """

    name = "music"

    def __init__(self, tempo_bpm=100.0, scale=None, chord_probability=0.3,
                 sample_rate=8000.0, level_rms=1.0, seed=0):
        super().__init__(sample_rate=sample_rate, level_rms=level_rms, seed=seed)
        if tempo_bpm <= 0:
            raise ConfigurationError("tempo_bpm must be > 0")
        self.tempo_bpm = float(tempo_bpm)
        self.scale = list(scale) if scale is not None else list(PENTATONIC_A_MINOR)
        if not self.scale:
            raise ConfigurationError("scale must be non-empty")
        if not 0.0 <= chord_probability <= 1.0:
            raise ConfigurationError("chord_probability must be in [0, 1]")
        self.chord_probability = float(chord_probability)

    def _note(self, freq, n, rng):
        """One note: 3 decaying harmonics under an attack/decay envelope."""
        t = np.arange(n) / self.sample_rate
        nyquist = self.sample_rate / 2.0
        tone = np.zeros(n)
        for k, gain in ((1, 1.0), (2, 0.4), (3, 0.2)):
            if freq * k < nyquist:
                tone += gain * np.sin(2.0 * np.pi * freq * k * t
                                      + rng.uniform(0, 2 * np.pi))
        attack = min(int(0.01 * self.sample_rate), max(n // 8, 1))
        env = np.ones(n)
        env[:attack] = np.linspace(0.0, 1.0, attack)
        env *= np.exp(-t * 3.0)
        return tone * env

    def _raw(self, n_samples, rng):
        beat_len = max(int(self.sample_rate * 60.0 / self.tempo_bpm), 32)
        out = np.zeros(n_samples)
        idx = rng.integers(0, len(self.scale))
        pos = 0
        while pos < n_samples:
            n = min(beat_len, n_samples - pos)
            # Melody: random walk constrained to the scale.
            step = int(rng.integers(-2, 3))
            idx = int(np.clip(idx + step, 0, len(self.scale) - 1))
            out[pos:pos + n] += self._note(self.scale[idx], n, rng)
            if rng.uniform() < self.chord_probability:
                root = self.scale[int(rng.integers(0, len(self.scale)))]
                for ratio in (1.0, 1.25, 1.5):  # major triad ratios
                    out[pos:pos + n] += 0.3 * self._note(root * ratio, n, rng)
            pos += n
        return out
