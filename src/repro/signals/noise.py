"""Stochastic wide-band noise sources.

White noise is the paper's headline workload ("most unpredictable of all
noises", Figure 12); pink and band-limited variants model background hums
and machinery broadband components.
"""

from __future__ import annotations

import numpy as np
from scipy import signal as sps

from ..errors import ConfigurationError
from .base import SignalSource

__all__ = ["WhiteNoise", "PinkNoise", "BandlimitedNoise"]


class WhiteNoise(SignalSource):
    """Gaussian white noise: flat spectrum across [0, Nyquist]."""

    name = "white noise"

    def _raw(self, n_samples, rng):
        return rng.standard_normal(n_samples)


class PinkNoise(SignalSource):
    """1/f (pink) noise via the Voss–McCartney inspired FIR shaping.

    Implemented by filtering white noise with the standard 3-pole/3-zero
    pinking filter (Paul Kellet's economy coefficients), accurate to
    ±0.5 dB across the audio band — good enough for profiling workloads.
    """

    name = "pink noise"

    #: Pinking filter numerator/denominator (Kellet).
    _B = np.array([0.049922035, -0.095993537, 0.050612699, -0.004408786])
    _A = np.array([1.0, -2.494956002, 2.017265875, -0.522189400])

    def _raw(self, n_samples, rng):
        white = rng.standard_normal(n_samples + 2048)
        pink = sps.lfilter(self._B, self._A, white)
        return pink[2048:]  # drop the filter warm-up transient


class BandlimitedNoise(SignalSource):
    """Gaussian noise restricted to ``[f_low, f_high]`` Hz.

    Used for background-noise profiles and for probing specific bands.
    A 4th-order Butterworth band-pass (or low/high-pass at the edges)
    shapes white noise.
    """

    name = "bandlimited noise"

    def __init__(self, f_low, f_high, sample_rate=8000.0, level_rms=1.0, seed=0):
        super().__init__(sample_rate=sample_rate, level_rms=level_rms, seed=seed)
        nyquist = self.sample_rate / 2.0
        if not 0.0 <= f_low < f_high:
            raise ConfigurationError(
                f"need 0 <= f_low < f_high, got ({f_low}, {f_high})"
            )
        if f_high > nyquist:
            raise ConfigurationError(
                f"f_high {f_high} Hz exceeds Nyquist {nyquist} Hz"
            )
        self.f_low = float(f_low)
        self.f_high = float(f_high)
        self._sos = self._design(nyquist)

    def _design(self, nyquist):
        low = self.f_low / nyquist
        high = self.f_high / nyquist
        if low <= 0.0 and high >= 1.0:
            return None  # full band: no filtering needed
        if low <= 0.0:
            return sps.butter(4, high, btype="lowpass", output="sos")
        if high >= 1.0:
            return sps.butter(4, low, btype="highpass", output="sos")
        return sps.butter(4, [low, high], btype="bandpass", output="sos")

    def _raw(self, n_samples, rng):
        white = rng.standard_normal(n_samples + 1024)
        if self._sos is None:
            return white[1024:]
        shaped = sps.sosfilt(self._sos, white)
        return shaped[1024:]
