"""Construction-site noise source.

Figure 14 evaluates a "construction sound" workload.  Real construction
noise combines broadband machinery (compressors, saws) with impulsive
impacts (hammering).  This generator layers:

* low-frequency machinery rumble (band-limited noise, 30–400 Hz),
* mid-band tool whine (narrow-band noise around a random center),
* Poisson-arriving hammer impacts (exponentially decaying clicks).
"""

from __future__ import annotations

import numpy as np
from scipy import signal as sps

from ..errors import ConfigurationError
from .base import SignalSource

__all__ = ["ConstructionNoise"]


class ConstructionNoise(SignalSource):
    """Machinery rumble + tool whine + hammer impacts."""

    name = "construction sound"

    def __init__(self, impact_rate_hz=2.0, whine_center_hz=1400.0,
                 sample_rate=8000.0, level_rms=1.0, seed=0):
        super().__init__(sample_rate=sample_rate, level_rms=level_rms, seed=seed)
        if impact_rate_hz < 0:
            raise ConfigurationError("impact_rate_hz must be >= 0")
        nyquist = self.sample_rate / 2.0
        if not 0.0 < whine_center_hz < nyquist * 0.9:
            raise ConfigurationError(
                f"whine_center_hz must be in (0, {nyquist * 0.9}), "
                f"got {whine_center_hz}"
            )
        self.impact_rate_hz = float(impact_rate_hz)
        self.whine_center_hz = float(whine_center_hz)

    def _rumble(self, n, rng):
        white = rng.standard_normal(n + 512)
        sos = sps.butter(4, 400.0 / (self.sample_rate / 2.0),
                         btype="lowpass", output="sos")
        return sps.sosfilt(sos, white)[512:]

    def _whine(self, n, rng):
        nyquist = self.sample_rate / 2.0
        low = max(self.whine_center_hz - 150.0, 10.0) / nyquist
        high = min(self.whine_center_hz + 150.0, nyquist * 0.98) / nyquist
        sos = sps.butter(2, [low, high], btype="bandpass", output="sos")
        white = rng.standard_normal(n + 512)
        return sps.sosfilt(sos, white)[512:]

    def _impacts(self, n, rng):
        out = np.zeros(n)
        if self.impact_rate_hz == 0.0:
            return out
        expected = self.impact_rate_hz * n / self.sample_rate
        n_hits = rng.poisson(max(expected, 0.0))
        decay_len = int(0.05 * self.sample_rate)
        kernel = np.exp(-np.arange(decay_len) / (0.008 * self.sample_rate))
        kernel *= np.sin(2.0 * np.pi * 900.0 * np.arange(decay_len)
                         / self.sample_rate)
        for __ in range(n_hits):
            start = int(rng.integers(0, max(n - decay_len, 1)))
            out[start:start + decay_len] += kernel[:min(decay_len, n - start)]
        return out

    def _raw(self, n_samples, rng):
        return (
            1.0 * self._rumble(n_samples, rng)
            + 0.5 * self._whine(n_samples, rng)
            + 2.5 * self._impacts(n_samples, rng)
        )
