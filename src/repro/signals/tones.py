"""Deterministic tonal sources: pure tones, harmonic stacks, sweeps.

Machine hum — the periodic, predictable noise that conventional ANC
handles well — is modeled as a harmonic stack with slight amplitude
wobble.  Tone sweeps probe frequency responses (Figure 13).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from .base import SignalSource

__all__ = ["Tone", "HarmonicStack", "MachineHum", "ToneSweep", "MultiTone"]


class Tone(SignalSource):
    """A single sinusoid at ``frequency`` Hz with optional phase."""

    name = "tone"

    def __init__(self, frequency, sample_rate=8000.0, level_rms=1.0, seed=0,
                 phase=0.0):
        super().__init__(sample_rate=sample_rate, level_rms=level_rms, seed=seed)
        if not 0.0 < frequency < self.sample_rate / 2.0:
            raise ConfigurationError(
                f"frequency must be in (0, Nyquist), got {frequency}"
            )
        self.frequency = float(frequency)
        self.phase = float(phase)

    def _raw(self, n_samples, rng):
        t = np.arange(n_samples) / self.sample_rate
        return np.sin(2.0 * np.pi * self.frequency * t + self.phase)


class MultiTone(SignalSource):
    """Sum of sinusoids with given frequencies and relative amplitudes."""

    name = "multitone"

    def __init__(self, frequencies, amplitudes=None, sample_rate=8000.0,
                 level_rms=1.0, seed=0):
        super().__init__(sample_rate=sample_rate, level_rms=level_rms, seed=seed)
        self.frequencies = [float(f) for f in frequencies]
        if not self.frequencies:
            raise ConfigurationError("frequencies must be non-empty")
        nyquist = self.sample_rate / 2.0
        for f in self.frequencies:
            if not 0.0 < f < nyquist:
                raise ConfigurationError(
                    f"frequency {f} Hz outside (0, {nyquist}) Hz"
                )
        if amplitudes is None:
            amplitudes = [1.0] * len(self.frequencies)
        self.amplitudes = [float(a) for a in amplitudes]
        if len(self.amplitudes) != len(self.frequencies):
            raise ConfigurationError(
                "amplitudes must match frequencies in length"
            )

    def _raw(self, n_samples, rng):
        t = np.arange(n_samples) / self.sample_rate
        out = np.zeros(n_samples)
        # Random (but seeded) phases avoid a synthetic-looking pulse at t=0.
        phases = rng.uniform(0.0, 2.0 * np.pi, size=len(self.frequencies))
        for f, a, p in zip(self.frequencies, self.amplitudes, phases):
            out += a * np.sin(2.0 * np.pi * f * t + p)
        return out


class HarmonicStack(SignalSource):
    """Fundamental plus decaying harmonics — the skeleton of machine hum."""

    name = "harmonic stack"

    def __init__(self, fundamental, n_harmonics=6, decay=0.6,
                 sample_rate=8000.0, level_rms=1.0, seed=0):
        super().__init__(sample_rate=sample_rate, level_rms=level_rms, seed=seed)
        if fundamental <= 0:
            raise ConfigurationError("fundamental must be > 0")
        self.fundamental = float(fundamental)
        if n_harmonics < 1:
            raise ConfigurationError("n_harmonics must be >= 1")
        self.n_harmonics = int(n_harmonics)
        if not 0.0 < decay <= 1.0:
            raise ConfigurationError("decay must be in (0, 1]")
        self.decay = float(decay)

    def _raw(self, n_samples, rng):
        t = np.arange(n_samples) / self.sample_rate
        nyquist = self.sample_rate / 2.0
        out = np.zeros(n_samples)
        phases = rng.uniform(0.0, 2.0 * np.pi, size=self.n_harmonics)
        for k in range(1, self.n_harmonics + 1):
            f = self.fundamental * k
            if f >= nyquist:
                break
            out += (self.decay ** (k - 1)) * np.sin(
                2.0 * np.pi * f * t + phases[k - 1]
            )
        return out


class MachineHum(HarmonicStack):
    """AC-machinery hum: harmonic stack with slow amplitude wobble.

    Defaults model a 120 Hz fan/compressor hum — the "persistent noise"
    of the paper's Figure 8(a) that a converged filter cancels smoothly.
    """

    name = "machine hum"

    def __init__(self, fundamental=120.0, n_harmonics=8, decay=0.7,
                 wobble_rate=0.7, wobble_depth=0.1,
                 sample_rate=8000.0, level_rms=1.0, seed=0):
        super().__init__(fundamental=fundamental, n_harmonics=n_harmonics,
                         decay=decay, sample_rate=sample_rate,
                         level_rms=level_rms, seed=seed)
        if not 0.0 <= wobble_depth < 1.0:
            raise ConfigurationError("wobble_depth must be in [0, 1)")
        self.wobble_rate = float(wobble_rate)
        self.wobble_depth = float(wobble_depth)

    def _raw(self, n_samples, rng):
        base = super()._raw(n_samples, rng)
        t = np.arange(n_samples) / self.sample_rate
        wobble = 1.0 + self.wobble_depth * np.sin(
            2.0 * np.pi * self.wobble_rate * t
        )
        return base * wobble


class ToneSweep(SignalSource):
    """Linear chirp from ``f_start`` to ``f_end`` Hz over the duration.

    Used to probe transducer frequency response (the Figure 13
    measurement).
    """

    name = "tone sweep"

    def __init__(self, f_start=50.0, f_end=3900.0, sample_rate=8000.0,
                 level_rms=1.0, seed=0):
        super().__init__(sample_rate=sample_rate, level_rms=level_rms, seed=seed)
        nyquist = self.sample_rate / 2.0
        if not 0.0 < f_start < nyquist or not 0.0 < f_end < nyquist:
            raise ConfigurationError(
                f"sweep endpoints must lie in (0, {nyquist}) Hz"
            )
        self.f_start = float(f_start)
        self.f_end = float(f_end)

    def _raw(self, n_samples, rng):
        t = np.arange(n_samples) / self.sample_rate
        duration = n_samples / self.sample_rate
        rate = (self.f_end - self.f_start) / duration
        phase = 2.0 * np.pi * (self.f_start * t + 0.5 * rate * t ** 2)
        return np.sin(phase)
