"""Hardware models: converters, DSP latency budgets, transducers, earcups."""

from .converters import Adc, Dac, quantize
from .ear import EarCanalCoupling
from .dsp_board import (
    HEADPHONE_ACOUSTIC_BUDGET_S,
    DspBoard,
    fast_dsp,
    headphone_dsp,
    tms320c6713,
)
from .headphone import PassiveEarcup, bose_qc35_earcup, no_earcup
from .transducers import TransducerResponse, cheap_transducer, flat_transducer

__all__ = [
    "Adc",
    "EarCanalCoupling",
    "Dac",
    "quantize",
    "HEADPHONE_ACOUSTIC_BUDGET_S",
    "DspBoard",
    "fast_dsp",
    "headphone_dsp",
    "tms320c6713",
    "PassiveEarcup",
    "bose_qc35_earcup",
    "no_earcup",
    "TransducerResponse",
    "cheap_transducer",
    "flat_transducer",
]
