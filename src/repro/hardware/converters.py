"""ADC/DAC models: latency and quantization.

The paper's timing analysis (§3.1, Eq. 3) charges the ANC pipeline for
ADC, DSP, DAC and speaker delays; these converters make those delays
concrete and add the quantization floor of a real codec (the paper's
board carries a TLV320AIC23 codec; we default to 16-bit resolution).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..utils.validation import (
    check_non_negative,
    check_positive,
    check_positive_int,
    check_waveform,
)

__all__ = ["quantize", "Adc", "Dac"]


def quantize(signal, bits, full_scale=1.0):
    """Uniform mid-tread quantization to ``bits`` bits over ±``full_scale``.

    Values beyond full scale clip, as a real codec would.
    """
    signal = check_waveform("signal", signal)
    bits = check_positive_int("bits", bits)
    if bits > 32:
        raise ConfigurationError("bits must be <= 32")
    full_scale = check_positive("full_scale", full_scale)
    levels = 2 ** (bits - 1)
    step = full_scale / levels
    clipped = np.clip(signal, -full_scale, full_scale - step)
    return np.round(clipped / step) * step


class Adc:
    """Analog-to-digital converter: group delay + quantization.

    Parameters
    ----------
    sample_rate:
        Converter rate in Hz.
    latency_s:
        Conversion/group delay in seconds (sigma-delta codecs are
        typically a dozen samples).
    bits:
        Resolution; ``None`` disables quantization.
    """

    def __init__(self, sample_rate=8000.0, latency_s=12 / 8000.0, bits=16,
                 full_scale=4.0):
        self.sample_rate = check_positive("sample_rate", sample_rate)
        self.latency_s = check_non_negative("latency_s", latency_s)
        self.bits = None if bits is None else check_positive_int("bits", bits)
        self.full_scale = check_positive("full_scale", full_scale)

    @property
    def latency_samples(self):
        """Latency in whole samples at the converter rate."""
        return int(round(self.latency_s * self.sample_rate))

    def convert(self, signal):
        """Digitize a waveform: delay then quantize."""
        signal = check_waveform("signal", signal)
        delayed = np.zeros_like(signal)
        d = self.latency_samples
        if d < signal.size:
            delayed[d:] = signal[: signal.size - d]
        if self.bits is None:
            return delayed
        return quantize(delayed, self.bits, self.full_scale)


class Dac(Adc):
    """Digital-to-analog converter — same latency/quantization model.

    Kept as a distinct type so latency budgets read naturally
    (``adc.latency_s + dsp.processing_delay_s + dac.latency_s``).
    """
