"""Ear-canal coupling — cancellation at the eardrum vs. at the error mic.

Paper §6: "We have aimed at achieving noise cancellation at the
measurement microphone, under the assumption that the ear-drum is also
located close to the error microphone.  Bose, Sony ... utilize
anatomical ear models (e.g., KEMAR head) and design for cancellation at
the human ear-drum."

The physics: the eardrum sits ~25 mm down the canal from where an
open-ear device's error microphone can be.  Ambient noise and the
anti-noise speaker's output do **not** couple into the canal
identically — they arrive from different directions and distances, so
their canal transfer functions differ by a small delay and spectral
tilt.  Perfect cancellation at the error mic therefore leaves a residual
at the drum that grows with frequency (phase error ∝ f·Δτ), exactly the
kind of mismatch KEMAR-based design calibrates out.

:class:`EarCanalCoupling` models the two paths:

* noise → drum: canal resonance only;
* speaker → drum: canal resonance *plus* a mismatch delay and tilt.

``drum_pressure()`` composes what the eardrum hears given the ambient
and anti-noise components measured at the error-mic reference point, and
``calibrated()`` returns the coupling with the mismatch dialed out (the
KEMAR-fit ideal).
"""

from __future__ import annotations

import numpy as np
from scipy import signal as sps

from ..acoustics.propagation import fractional_delay_filter
from ..errors import ConfigurationError
from ..utils import fastconv
from ..utils.validation import check_non_negative, check_positive, check_waveform

__all__ = ["EarCanalCoupling"]


class EarCanalCoupling:
    """Error-mic-to-eardrum coupling with a speaker-path mismatch.

    Parameters
    ----------
    sample_rate:
        Audio rate (Hz).
    canal_resonance_hz / resonance_gain_db:
        First quarter-wave resonance of the open canal (~2.7 kHz, up to
        ~+10 dB at the drum).
    mismatch_delay_s:
        Extra propagation delay of the *speaker's* sound into the canal
        relative to the ambient field (tens of microseconds).
    mismatch_tilt_db:
        Gentle high-frequency gain difference of the speaker path
        (positive = speaker couples hotter at high frequency).
    """

    def __init__(self, sample_rate=8000.0, canal_resonance_hz=2700.0,
                 resonance_gain_db=8.0, mismatch_delay_s=35e-6,
                 mismatch_tilt_db=1.5):
        self.sample_rate = check_positive("sample_rate", sample_rate)
        nyquist = self.sample_rate / 2.0
        if not 0.0 < canal_resonance_hz < nyquist:
            raise ConfigurationError(
                f"canal_resonance_hz must be in (0, {nyquist})"
            )
        self.canal_resonance_hz = float(canal_resonance_hz)
        self.resonance_gain_db = check_non_negative(
            "resonance_gain_db", resonance_gain_db
        )
        self.mismatch_delay_s = check_non_negative(
            "mismatch_delay_s", mismatch_delay_s
        )
        self.mismatch_tilt_db = float(mismatch_tilt_db)
        self._canal_fir = self._design_canal()
        self._mismatch_fir = self._design_mismatch()

    # ------------------------------------------------------------------
    # Filter design
    # ------------------------------------------------------------------
    def _design_canal(self, n_taps=65):
        grid = np.linspace(0.0, self.sample_rate / 2.0, 256)
        gain = 1.0 + (10.0 ** (self.resonance_gain_db / 20.0) - 1.0) \
            * np.exp(-((grid - self.canal_resonance_hz)
                       / (0.35 * self.canal_resonance_hz)) ** 2)
        return sps.firwin2(n_taps, grid, gain, fs=self.sample_rate)

    def _design_mismatch(self, n_taps=33):
        grid = np.linspace(0.0, self.sample_rate / 2.0, 128)
        tilt = 10.0 ** (self.mismatch_tilt_db / 20.0
                        * (grid / (self.sample_rate / 2.0)))
        tilt_fir = sps.firwin2(n_taps, grid, tilt, fs=self.sample_rate)
        delay = self.mismatch_delay_s * self.sample_rate
        delay_fir = fractional_delay_filter(delay + n_taps // 2,
                                            n_taps=n_taps)
        combined = np.convolve(tilt_fir, delay_fir)
        # Remove the two linear-phase centering delays so only the
        # physical mismatch delay remains.
        center = (n_taps - 1) // 2 + n_taps // 2
        return combined[center:]

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------
    def ambient_to_drum(self, ambient):
        """Ambient pressure at the error-mic point → at the drum."""
        ambient = check_waveform("ambient", ambient)
        out = fastconv.fir_apply(ambient, self._canal_fir, mode="full")
        d = (self._canal_fir.size - 1) // 2
        return out[d: d + ambient.size]

    def speaker_to_drum(self, anti_noise):
        """Anti-noise at the error-mic point → at the drum (mismatched)."""
        anti_noise = check_waveform("anti_noise", anti_noise)
        through_mismatch = fastconv.fir_apply(anti_noise, self._mismatch_fir,
                                              mode="same")
        return self.ambient_to_drum(through_mismatch)

    def drum_pressure(self, ambient, anti_noise):
        """Total eardrum signal from the two components at the mic point.

        ``ambient + anti_noise`` is what the error microphone reads (and
        what LANC drives to zero); the drum hears each through its own
        path, so it keeps a mismatch residual.
        """
        ambient, anti_noise = (check_waveform("ambient", ambient),
                               check_waveform("anti_noise", anti_noise))
        if ambient.size != anti_noise.size:
            raise ConfigurationError(
                "ambient and anti_noise must share a length"
            )
        return self.ambient_to_drum(ambient) + self.speaker_to_drum(
            anti_noise)

    def calibrated(self):
        """The KEMAR-fit ideal: no speaker-path mismatch."""
        return EarCanalCoupling(
            sample_rate=self.sample_rate,
            canal_resonance_hz=self.canal_resonance_hz,
            resonance_gain_db=self.resonance_gain_db,
            mismatch_delay_s=0.0,
            mismatch_tilt_db=0.0,
        )

    def mismatch_residual_db(self, freqs):
        """Closed-form residual at the drum for perfect mic cancellation.

        If the mic reads zero (anti-noise = −ambient there), the drum
        hears ``H_canal·(1 − H_mismatch)·ambient``; this returns
        ``20·log10 |1 − H_mismatch|`` — the per-frequency floor the
        mismatch imposes.
        """
        freqs = np.asarray(freqs, dtype=float)
        w = 2.0 * np.pi * freqs / self.sample_rate
        __, h = sps.freqz(self._mismatch_fir, worN=w)
        return 20.0 * np.log10(np.maximum(np.abs(1.0 - h), 1e-9))
