"""Passive earcup attenuation — the "sound-absorbing materials" model.

Bose_Overall in the paper is Bose's active stage *plus* its carefully
engineered passive earcup; MUTE+Passive borrows the same earcup.  The
passive insertion loss of a circumaural ANC headphone is small at low
frequency (the cup is acoustically transparent to long wavelengths) and
grows to ~30+ dB by 4 kHz.  :class:`PassiveEarcup` models that curve and
can filter waveforms through it.
"""

from __future__ import annotations

import numpy as np
from scipy import signal as sps

from ..errors import ConfigurationError
from ..utils import fastconv
from ..utils.validation import check_positive, check_waveform

__all__ = ["PassiveEarcup", "bose_qc35_earcup", "no_earcup"]


class PassiveEarcup:
    """Frequency-dependent passive insertion loss.

    The insertion-loss curve is parameterized as::

        IL(f) = il_low + (il_high - il_low) * s(f)

    with ``s`` a smooth (log-frequency sigmoid) transition centered at
    ``transition_hz``.  Defaults are calibrated so that the composed
    Bose_Overall average lands near the paper's −15 dB (Figure 12):
    a few dB of loss at 100 Hz rising to ~22 dB by 4 kHz.
    """

    def __init__(self, il_low_db=3.0, il_high_db=18.0, transition_hz=1000.0,
                 sharpness=1.6, sample_rate=8000.0, n_taps=129):
        if il_low_db < 0 or il_high_db < il_low_db:
            raise ConfigurationError(
                "need 0 <= il_low_db <= il_high_db, got "
                f"({il_low_db}, {il_high_db})"
            )
        self.il_low_db = float(il_low_db)
        self.il_high_db = float(il_high_db)
        self.transition_hz = check_positive("transition_hz", transition_hz)
        self.sharpness = check_positive("sharpness", sharpness)
        self.sample_rate = check_positive("sample_rate", sample_rate)
        if n_taps < 9 or n_taps % 2 == 0:
            raise ConfigurationError("n_taps must be odd and >= 9")
        self.n_taps = int(n_taps)
        self._fir = self._design_fir()

    def insertion_loss_db(self, freqs):
        """Insertion loss (positive dB) at ``freqs`` Hz."""
        f = np.maximum(np.asarray(freqs, dtype=float), 1e-3)
        x = self.sharpness * np.log10(f / self.transition_hz)
        s = 1.0 / (1.0 + np.exp(-2.5 * x))
        return self.il_low_db + (self.il_high_db - self.il_low_db) * s

    def transmission_gain(self, freqs):
        """Linear amplitude gain through the cup (≤ 1)."""
        return 10.0 ** (-self.insertion_loss_db(freqs) / 20.0)

    def _design_fir(self):
        grid = np.linspace(0.0, self.sample_rate / 2.0, 256)
        gains = self.transmission_gain(grid)
        return sps.firwin2(self.n_taps, grid, gains, fs=self.sample_rate)

    def apply(self, signal):
        """Attenuate a waveform as heard under the earcup (time-aligned)."""
        signal = check_waveform("signal", signal)
        filtered = fastconv.fir_apply(signal, self._fir, mode="full")
        d = (self.n_taps - 1) // 2
        return filtered[d: d + signal.size]

    def mean_insertion_loss_db(self, f_low=0.0, f_high=None, n_points=128):
        """Average insertion loss across a band (for summary tables)."""
        f_high = f_high or self.sample_rate / 2.0
        freqs = np.linspace(max(f_low, 1.0), f_high, n_points)
        return float(np.mean(self.insertion_loss_db(freqs)))


def bose_qc35_earcup(sample_rate=8000.0):
    """The QC35's passive stage (defaults of :class:`PassiveEarcup`)."""
    return PassiveEarcup(sample_rate=sample_rate)


def no_earcup(sample_rate=8000.0):
    """An open ear: 0 dB insertion loss everywhere (MUTE_Hollow's case)."""
    return PassiveEarcup(il_low_db=0.0, il_high_db=0.0,
                         sample_rate=sample_rate)
