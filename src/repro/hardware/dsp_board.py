"""DSP board latency model — the Eq. 3 timing budget.

The paper's necessary condition for beating the timing bottleneck::

    Lookahead >= Delay at {ADC + DSP + DAC + Speaker}     (Eq. 3)

A conventional headphone has ≈30 µs of acoustic budget (reference mic to
speaker, <1 cm); the sum of converter and processing delays is "easily
3×" that, so today's headphones miss the deadline and play the
anti-noise late.  MUTE's milliseconds of lookahead subsume all of it.

:class:`DspBoard` gathers the delay terms, answers deadline questions,
and provides the paper's TMS320C6713 preset (8 kHz sampling cap → 4 kHz
cancellation cap).
"""

from __future__ import annotations

import dataclasses

from ..acoustics.constants import CONVENTIONAL_ANC_BUDGET_S
from ..errors import ConfigurationError

__all__ = [
    "DspBoard",
    "tms320c6713",
    "headphone_dsp",
    "fast_dsp",
    "HEADPHONE_ACOUSTIC_BUDGET_S",
]


@dataclasses.dataclass(frozen=True)
class DspBoard:
    """Latency budget of the ear-device electronics.

    All delays in seconds.  ``max_sample_rate`` caps the usable audio
    band: the paper's board can only finish the per-sample LANC update
    within one sampling interval at 8 kHz.
    """

    adc_delay_s: float = 12 / 8000.0
    processing_delay_s: float = 1 / 8000.0
    dac_delay_s: float = 12 / 8000.0
    speaker_delay_s: float = 50e-6
    max_sample_rate: float = 8000.0
    name: str = "generic"

    def __post_init__(self):
        for field in ("adc_delay_s", "processing_delay_s", "dac_delay_s",
                      "speaker_delay_s"):
            value = getattr(self, field)
            if value < 0:
                raise ConfigurationError(f"{field} must be >= 0")
        if self.max_sample_rate <= 0:
            raise ConfigurationError("max_sample_rate must be > 0")

    @property
    def total_latency_s(self):
        """The right-hand side of Eq. 3."""
        return (self.adc_delay_s + self.processing_delay_s
                + self.dac_delay_s + self.speaker_delay_s)

    def total_latency_samples(self, sample_rate):
        """Total latency in whole samples at ``sample_rate``."""
        if sample_rate <= 0:
            raise ConfigurationError("sample_rate must be > 0")
        if sample_rate > self.max_sample_rate:
            raise ConfigurationError(
                f"{self.name} cannot sample at {sample_rate} Hz "
                f"(max {self.max_sample_rate} Hz)"
            )
        return int(round(self.total_latency_s * sample_rate))

    def meets_deadline(self, lookahead_s):
        """Eq. 3: is the available lookahead enough to hide all latency?"""
        if lookahead_s < 0:
            return False
        return lookahead_s >= self.total_latency_s

    def deadline_margin_s(self, lookahead_s):
        """Slack (positive) or deficit (negative) against the Eq. 3 budget."""
        return lookahead_s - self.total_latency_s

    def effective_playback_lag_s(self, lookahead_s):
        """How late the anti-noise is played, given the lookahead.

        Zero when the deadline is met (MUTE's case, Figure 5b); otherwise
        the unhidden remainder of the pipeline latency (the red dashed
        line of Figure 5a).
        """
        return max(self.total_latency_s - max(lookahead_s, 0.0), 0.0)

    @property
    def usable_bandwidth_hz(self):
        """Nyquist band at the board's maximum sampling rate."""
        return self.max_sample_rate / 2.0


def tms320c6713(processing_headroom=1.0):
    """The paper's TI TMS320C6713 DSP starter kit.

    ``processing_headroom`` scales the per-sample processing time (>1
    models a heavier filter, <1 a lighter one).
    """
    if processing_headroom <= 0:
        raise ConfigurationError("processing_headroom must be > 0")
    return DspBoard(
        adc_delay_s=12 / 8000.0,
        processing_delay_s=processing_headroom / 8000.0,
        dac_delay_s=12 / 8000.0,
        speaker_delay_s=50e-6,
        max_sample_rate=8000.0,
        name="TMS320C6713",
    )


def headphone_dsp():
    """A conventional ANC headphone's pipeline.

    Fast specialized silicon, but the acoustic budget is only ~30 µs
    (``CONVENTIONAL_ANC_BUDGET_S``), and the pipeline sums to ~3× that —
    the paper's "easily 3x more than this time budget".
    """
    return DspBoard(
        adc_delay_s=40e-6,
        processing_delay_s=10e-6,
        dac_delay_s=30e-6,
        speaker_delay_s=10e-6,
        max_sample_rate=48000.0,
        name="headphone-asic",
    )


def fast_dsp():
    """A modern DSP able to run LANC at 48 kHz (the paper's "faster DSP
    will ease the problem" remark)."""
    return DspBoard(
        adc_delay_s=8 / 48000.0,
        processing_delay_s=1 / 48000.0,
        dac_delay_s=8 / 48000.0,
        speaker_delay_s=30e-6,
        max_sample_rate=48000.0,
        name="fast-dsp",
    )


#: Convenience: the conventional headphone's acoustic time budget.
HEADPHONE_ACOUSTIC_BUDGET_S = CONVENTIONAL_ANC_BUDGET_S
