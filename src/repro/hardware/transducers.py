"""Transducer (microphone + anti-noise speaker) frequency response.

Figure 13 of the paper plots the *combined* response of the cheap MEMS
microphone and the AmazonBasics speaker: nearly zero below ~100 Hz,
rising through the low hundreds of Hz, broad and flat-ish through the
mid band, mild roll-off toward 4 kHz.  That weak low-frequency response
is why MUTE's cancellation dips below 100 Hz in Figure 12 — the speaker
simply cannot produce the anti-noise there.

:class:`TransducerResponse` provides the parametric curve, an FIR
realization to run signals through, and presets for the paper's cheap
hardware versus an idealized flat transducer.
"""

from __future__ import annotations

import numpy as np
from scipy import signal as sps

from ..errors import ConfigurationError
from ..utils import fastconv
from ..utils.validation import check_positive, check_waveform

__all__ = ["TransducerResponse", "cheap_transducer", "flat_transducer"]


class TransducerResponse:
    """Parametric magnitude response realized as a linear-phase FIR.

    The magnitude model is a second-order high-pass knee at
    ``lowcut_hz`` (speaker excursion limit), a first-order roll-off
    starting at ``highcut_hz``, and a gentle presence peak around
    ``peak_hz``::

        |H(f)| = gain * hp2(f) * lp1(f) * peak(f)

    Parameters
    ----------
    sample_rate:
        Audio rate (Hz).
    lowcut_hz:
        Low-frequency knee; response falls ~12 dB/octave below it.
    highcut_hz:
        Upper roll-off corner.
    peak_hz, peak_gain:
        Center and linear gain of the mid-band presence bump.
    gain:
        Overall linear gain (the paper's combined response tops out
        around 0.2).
    n_taps:
        FIR length used by :meth:`apply`.
    """

    def __init__(self, sample_rate=8000.0, lowcut_hz=120.0, highcut_hz=3400.0,
                 peak_hz=1200.0, peak_gain=1.35, gain=0.2, n_taps=129):
        self.sample_rate = check_positive("sample_rate", sample_rate)
        nyquist = self.sample_rate / 2.0
        if not 0.0 < lowcut_hz < highcut_hz <= nyquist:
            raise ConfigurationError(
                f"need 0 < lowcut < highcut <= Nyquist, got "
                f"({lowcut_hz}, {highcut_hz})"
            )
        self.lowcut_hz = float(lowcut_hz)
        self.highcut_hz = float(highcut_hz)
        self.peak_hz = check_positive("peak_hz", peak_hz)
        self.peak_gain = check_positive("peak_gain", peak_gain)
        self.gain = check_positive("gain", gain)
        if n_taps < 9 or n_taps % 2 == 0:
            raise ConfigurationError("n_taps must be odd and >= 9")
        self.n_taps = int(n_taps)
        self._fir = self._design_fir()

    def magnitude(self, freqs):
        """Linear magnitude response at ``freqs`` Hz (vectorized)."""
        f = np.asarray(freqs, dtype=float)
        ratio_low = np.divide(f, self.lowcut_hz)
        hp2 = ratio_low ** 2 / np.sqrt(1.0 + ratio_low ** 4)
        lp1 = 1.0 / np.sqrt(1.0 + (f / self.highcut_hz) ** 2)
        bump = 1.0 + (self.peak_gain - 1.0) * np.exp(
            -((np.log(np.maximum(f, 1e-3) / self.peak_hz)) ** 2) / 0.8
        )
        return self.gain * hp2 * lp1 * bump

    def magnitude_db(self, freqs):
        """Magnitude response in dB."""
        return 20.0 * np.log10(np.maximum(self.magnitude(freqs), 1e-12))

    def _design_fir(self):
        grid = np.linspace(0.0, self.sample_rate / 2.0, 256)
        mags = self.magnitude(grid)
        mags[0] = 0.0
        return sps.firwin2(self.n_taps, grid, mags, fs=self.sample_rate)

    @property
    def impulse_response(self):
        """The FIR realization (linear phase, ``n_taps`` long)."""
        return self._fir.copy()

    @property
    def group_delay_samples(self):
        """Group delay of the linear-phase FIR."""
        return (self.n_taps - 1) // 2

    def apply(self, signal):
        """Filter a waveform through the transducer response.

        The linear-phase FIR's bulk delay is removed so the output is
        time-aligned with the input (a real transducer's latency is
        charged to the speaker-delay term of the Eq. 3 budget instead).
        """
        signal = check_waveform("signal", signal)
        filtered = fastconv.fir_apply(signal, self._fir, mode="full")
        d = self.group_delay_samples
        return filtered[d: d + signal.size]

    def response_table(self, n_points=64, f_max=None):
        """(freqs, linear magnitude) pairs — the Figure 13 curve."""
        f_max = f_max or self.sample_rate / 2.0
        freqs = np.linspace(0.0, f_max, n_points)
        return freqs, self.magnitude(freqs)


def cheap_transducer(sample_rate=8000.0):
    """The paper's $9 MEMS mic + $19 speaker combination (Figure 13)."""
    return TransducerResponse(sample_rate=sample_rate)


def flat_transducer(sample_rate=8000.0):
    """An idealized studio-grade transducer: flat from 20 Hz up."""
    return TransducerResponse(
        sample_rate=sample_rate, lowcut_hz=20.0,
        highcut_hz=sample_rate / 2.0 * 0.98, peak_hz=1000.0,
        peak_gain=1.0, gain=1.0,
    )
