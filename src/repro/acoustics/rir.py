"""Room impulse responses via the image-source method.

The channels the paper must estimate — noise→error-mic ``h_ne``,
noise→reference-mic ``h_nr``, speaker→error-mic ``h_se`` — are room
impulse responses.  Their *non-minimum-phase* character (Neely & Allen)
is exactly why the inverse filter is non-causal and why lookahead helps,
so the simulation must produce realistic multipath, not just a delayed
impulse.

The classic Allen–Berkley image-source method mirrors the source across
the room walls up to ``max_order`` reflections; each image contributes a
fractionally delayed, distance-attenuated, wall-absorbed impulse.
"""

from __future__ import annotations

import dataclasses
import itertools

import numpy as np

from ..errors import ConfigurationError
from ..utils.validation import check_non_negative_int, check_positive
from .constants import SPEED_OF_SOUND
from .geometry import Point, Room
from .propagation import fractional_delay_filter, spreading_gain

__all__ = ["RirSettings", "image_sources", "room_impulse_response", "direct_path_ir"]


@dataclasses.dataclass(frozen=True)
class RirSettings:
    """Tuning knobs for the image-source simulation."""

    max_order: int = 3          # reflections per axis direction
    sinc_taps: int = 31         # fractional-delay filter quality
    speed_of_sound: float = SPEED_OF_SOUND

    def __post_init__(self):
        check_non_negative_int("max_order", self.max_order)
        if self.sinc_taps < 3:
            raise ConfigurationError("sinc_taps must be >= 3")
        check_positive("speed_of_sound", self.speed_of_sound)


def image_sources(room, source, max_order):
    """Yield ``(image_position, n_reflections)`` pairs up to ``max_order``.

    Standard mirror construction: for image indices ``(nx, ny, nz)`` and
    parities ``(px, py, pz)``, the image coordinate along x is
    ``2 * nx * Lx + (source.x if px == 0 else -source.x)`` (likewise y, z),
    and the number of wall bounces is ``|2nx - px| + |2ny - py| + |2nz - pz|``.
    """
    if not isinstance(room, Room):
        raise ConfigurationError("room must be a Room")
    room.require_inside("source", source)
    max_order = check_non_negative_int("max_order", max_order)
    dims = (room.length, room.width, room.height)
    src = source.as_tuple()
    index_range = range(-max_order, max_order + 1)
    for nx, ny, nz in itertools.product(index_range, repeat=3):
        for px, py, pz in itertools.product((0, 1), repeat=3):
            coords = []
            bounces = 0
            for n, p, L, s in zip((nx, ny, nz), (px, py, pz), dims, src):
                coords.append(2.0 * n * L + (s if p == 0 else -s))
                bounces += abs(2 * n - p)
            if bounces > max_order:
                continue
            yield Point(*coords), bounces


def room_impulse_response(room, source, microphone, sample_rate,
                          settings=None, normalize=False):
    """Impulse response from ``source`` to ``microphone`` inside ``room``.

    Parameters
    ----------
    room, source, microphone:
        Scene geometry; both points must lie inside the room.
    sample_rate:
        Sampling rate of the returned FIR, in Hz.
    settings:
        Optional :class:`RirSettings`.
    normalize:
        If true, scale so the direct-path tap has unit amplitude —
        convenient when only the *shape* of the multipath matters.

    Returns
    -------
    numpy.ndarray
        FIR coefficients; index 0 corresponds to zero delay, so the
        direct-path arrival appears at ``round(distance / v * fs)``.
    """
    settings = settings or RirSettings()
    sample_rate = check_positive("sample_rate", sample_rate)
    room.require_inside("microphone", microphone)
    reflection = room.reflection_coefficient

    arrivals = []   # (delay_samples, amplitude)
    max_delay = 0.0
    for image, bounces in image_sources(room, source, settings.max_order):
        dist = image.distance_to(microphone)
        delay = dist / settings.speed_of_sound * sample_rate
        amp = spreading_gain(dist) * (reflection ** bounces)
        arrivals.append((delay, amp))
        max_delay = max(max_delay, delay)

    center = settings.sinc_taps // 2
    length = int(np.ceil(max_delay)) + settings.sinc_taps + 1
    ir = np.zeros(length)
    for delay, amp in arrivals:
        base = int(np.floor(delay))
        frac = delay - base
        # Use a *centered* fractional-delay kernel (group delay
        # center+frac) and start it `center` samples early, so each
        # arrival lands at its exact delay without truncation bias.
        taps = fractional_delay_filter(frac + center,
                                       n_taps=settings.sinc_taps)
        start = base - center
        if start < 0:
            taps = taps[-start:]
            start = 0
        end = min(start + taps.size, length)
        ir[start:end] += amp * taps[: end - start]

    if normalize:
        peak = np.max(np.abs(ir))
        if peak > 0:
            ir = ir / peak
    return ir


def direct_path_ir(distance_m, sample_rate, speed=SPEED_OF_SOUND,
                   sinc_taps=31, gain=None):
    """Anechoic (single-path) impulse response over ``distance_m`` meters.

    Used for free-field experiments and unit tests where multipath would
    obscure the property being checked.
    """
    sample_rate = check_positive("sample_rate", sample_rate)
    distance_m = check_positive("distance_m", distance_m)
    delay = distance_m / speed * sample_rate
    base = int(np.floor(delay))
    frac = delay - base
    center = sinc_taps // 2
    taps = fractional_delay_filter(frac + center, n_taps=sinc_taps)
    start = base - center
    if start < 0:
        taps = taps[-start:]
        start = 0
    ir = np.zeros(start + taps.size)
    amplitude = spreading_gain(distance_m) if gain is None else gain
    ir[start:] = amplitude * taps
    return ir
