"""Acoustic substrate: geometry, propagation, room impulse responses."""

from .channels import AcousticChannel, cascade, channel_delay_samples
from .constants import (
    CONVENTIONAL_ANC_BUDGET_S,
    DEFAULT_SAMPLE_RATE,
    RF_TO_SOUND_SPEED_RATIO,
    SPEED_OF_LIGHT,
    SPEED_OF_SOUND,
)
from .geometry import Point, Room, distance, propagation_time
from .inverse import (
    delayed_inverse,
    inversion_residual,
    is_minimum_phase,
    noncausal_inverse_taps,
    truncation_error,
)
from .propagation import (
    apply_delay,
    delay_samples,
    delay_seconds,
    fractional_delay_filter,
    spreading_gain,
)
from .rir import RirSettings, direct_path_ir, image_sources, room_impulse_response
from .timevarying import TimeVaryingChannel, moving_client_channel

__all__ = [
    "AcousticChannel",
    "cascade",
    "channel_delay_samples",
    "CONVENTIONAL_ANC_BUDGET_S",
    "DEFAULT_SAMPLE_RATE",
    "RF_TO_SOUND_SPEED_RATIO",
    "SPEED_OF_LIGHT",
    "SPEED_OF_SOUND",
    "Point",
    "Room",
    "distance",
    "propagation_time",
    "delayed_inverse",
    "inversion_residual",
    "is_minimum_phase",
    "noncausal_inverse_taps",
    "truncation_error",
    "apply_delay",
    "delay_samples",
    "delay_seconds",
    "fractional_delay_filter",
    "spreading_gain",
    "RirSettings",
    "direct_path_ir",
    "image_sources",
    "room_impulse_response",
    "TimeVaryingChannel",
    "moving_client_channel",
]
