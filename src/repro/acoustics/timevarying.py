"""Time-varying acoustic channels — the head-mobility substrate.

Paper §6: "head mobility will cause faster channel fluctuations, slowing
down convergence.  While this affects all ANC realizations ... the issue
has been alleviated by bringing enhanced filtering methods known to
converge faster."

A moving listener means the noise→ear channel ``h_ne`` changes over
time.  :class:`TimeVaryingChannel` models that with snapshot impulse
responses at waypoints along the motion and cross-fades between
consecutive snapshots — the standard way to synthesize motion from
static RIRs without re-running the image model per sample.
"""

from __future__ import annotations

import numpy as np

from ..errors import ChannelError, ConfigurationError
from ..utils import fastconv
from ..utils.validation import check_impulse_response, check_waveform
from .rir import room_impulse_response

__all__ = ["TimeVaryingChannel", "moving_client_channel"]


class TimeVaryingChannel:
    """Piecewise-interpolated LTV channel from snapshot IRs.

    The input signal is split into equal segments, one per *transition*;
    within segment ``i`` the output cross-fades linearly from
    ``snapshot[i]``'s output to ``snapshot[i+1]``'s.  With a single
    snapshot the channel is just LTI.

    Parameters
    ----------
    snapshots:
        Impulse responses at the motion waypoints (equal treatment, so
        waypoints should be equally spaced in time).
    """

    def __init__(self, snapshots):
        if not snapshots:
            raise ConfigurationError("need at least one snapshot IR")
        self.snapshots = [check_impulse_response(f"snapshots[{i}]", ir)
                          for i, ir in enumerate(snapshots)]

    @property
    def n_snapshots(self):
        return len(self.snapshots)

    def apply(self, signal):
        """Propagate a waveform through the moving channel."""
        signal = check_waveform("signal", signal)
        if self.n_snapshots == 1:
            return fastconv.fir_apply(signal, self.snapshots[0], mode="same")

        T = signal.size
        n_transitions = self.n_snapshots - 1
        # Convolve once per snapshot, then blend with per-sample weights.
        outputs = [fastconv.fir_apply(signal, ir, mode="same")
                   for ir in self.snapshots]
        result = np.zeros(T)
        bounds = np.linspace(0, T, n_transitions + 1).astype(int)
        for i in range(n_transitions):
            start, stop = bounds[i], bounds[i + 1]
            if stop <= start:
                continue
            fade = np.linspace(0.0, 1.0, stop - start, endpoint=False)
            result[start:stop] = ((1.0 - fade) * outputs[i][start:stop]
                                  + fade * outputs[i + 1][start:stop])
        return result

    def snapshot_at(self, fraction):
        """The interpolated IR at ``fraction ∈ [0, 1]`` of the motion."""
        if not 0.0 <= fraction <= 1.0:
            raise ChannelError("fraction must be in [0, 1]")
        if self.n_snapshots == 1:
            return self.snapshots[0].copy()
        position = fraction * (self.n_snapshots - 1)
        low = int(np.floor(position))
        high = min(low + 1, self.n_snapshots - 1)
        blend = position - low
        a, b = self.snapshots[low], self.snapshots[high]
        length = max(a.size, b.size)
        out = np.zeros(length)
        out[: a.size] += (1.0 - blend) * a
        out[: b.size] += blend * b
        return out


def moving_client_channel(room, source, path_points, sample_rate,
                          settings=None):
    """Noise→ear channel for a client moving along ``path_points``.

    Builds one image-source RIR per waypoint and wraps them in a
    :class:`TimeVaryingChannel`.  All IRs are zero-padded to a common
    length so cross-fading is well defined.
    """
    if not path_points:
        raise ConfigurationError("path_points must be non-empty")
    snapshots = [
        room_impulse_response(room, source, point, sample_rate,
                              settings=settings)
        for point in path_points
    ]
    length = max(ir.size for ir in snapshots)
    padded = [np.pad(ir, (0, length - ir.size)) for ir in snapshots]
    return TimeVaryingChannel(padded)
