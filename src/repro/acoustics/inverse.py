"""Channel inversion: the theory behind the lookahead advantage.

Section 3.2 of the paper argues that the optimal ANC filter contains the
*inverse* of the noise→reference channel, ``h_nr^{-1}``; room responses
are non-minimum-phase (Neely & Allen), so that inverse is non-causal and
a causal system can only realize a truncated — hence suboptimal —
version.  This module makes those statements computable:

* :func:`is_minimum_phase` tests the zero locations of an FIR channel;
* :func:`delayed_inverse` designs the least-squares inverse with a given
  modeling delay (the classic way to "buy" causality with latency);
* :func:`noncausal_inverse_taps` designs a two-sided inverse and
  :func:`truncation_error` measures how much error is left when only
  ``n_future`` of its anti-causal taps are kept — the quantitative form
  of the paper's claim that more lookahead → better inverse filtering.
"""

from __future__ import annotations

import numpy as np
from scipy import linalg

from ..errors import ChannelError
from ..utils.validation import (
    check_impulse_response,
    check_non_negative_int,
    check_positive_int,
)

__all__ = [
    "is_minimum_phase",
    "delayed_inverse",
    "inversion_residual",
    "noncausal_inverse_taps",
    "truncation_error",
]


def is_minimum_phase(ir, tolerance=1e-8):
    """Whether all zeros of the FIR channel lie inside the unit circle.

    Minimum-phase channels have stable causal inverses; room impulse
    responses almost never do.
    """
    ir = check_impulse_response("ir", ir)
    trimmed = np.trim_zeros(ir, "f")
    if trimmed.size <= 1:
        return True
    roots = np.roots(trimmed)
    return bool(np.all(np.abs(roots) < 1.0 + tolerance))


def _convolution_matrix(ir, n_taps):
    """Tall Toeplitz matrix ``C`` with ``C @ g = ir * g`` for len-n_taps g."""
    n_out = ir.size + n_taps - 1
    col = np.zeros(n_out)
    col[: ir.size] = ir
    row = np.zeros(n_taps)
    row[0] = ir[0]
    return linalg.toeplitz(col, row)


def delayed_inverse(ir, n_taps, delay, regularization=1e-8):
    """Least-squares causal inverse with modeling delay.

    Solves ``min_g || ir * g - delta(delay) ||^2`` over causal ``g`` of
    length ``n_taps``.  Larger ``delay`` yields a dramatically better
    inverse for non-minimum-phase channels — this is exactly the resource
    that lookahead provides to LANC.

    Returns
    -------
    numpy.ndarray
        The inverse filter ``g``.
    """
    ir = check_impulse_response("ir", ir)
    n_taps = check_positive_int("n_taps", n_taps)
    delay = check_non_negative_int("delay", delay)
    C = _convolution_matrix(ir, n_taps)
    if delay >= C.shape[0]:
        raise ChannelError(
            f"delay {delay} exceeds achievable output length {C.shape[0]}"
        )
    target = np.zeros(C.shape[0])
    target[delay] = 1.0
    gram = C.T @ C + regularization * np.eye(n_taps)
    g = linalg.solve(gram, C.T @ target, assume_a="pos")
    return g


def inversion_residual(ir, inverse, delay):
    """Normalized residual ``|| ir * g - delta(delay) || / || delta ||``.

    0 means perfect inversion; 1 means no better than doing nothing.
    """
    ir = check_impulse_response("ir", ir)
    inverse = check_impulse_response("inverse", inverse)
    delay = check_non_negative_int("delay", delay)
    achieved = np.convolve(ir, inverse)
    target = np.zeros_like(achieved)
    if delay >= target.size:
        raise ChannelError("delay beyond the convolved length")
    target[delay] = 1.0
    return float(np.linalg.norm(achieved - target))


def noncausal_inverse_taps(ir, n_future, n_past, regularization=1e-8):
    """Two-sided least-squares inverse with ``n_future`` anti-causal taps.

    Equivalent to designing a causal inverse of length
    ``n_future + n_past`` with modeling delay ``n_future`` and then
    re-indexing taps to ``k ∈ [-n_future, n_past)``; returned oldest
    (most anti-causal) tap first.
    """
    n_future = check_non_negative_int("n_future", n_future)
    n_past = check_positive_int("n_past", n_past)
    return delayed_inverse(ir, n_future + n_past, n_future,
                           regularization=regularization)


def truncation_error(ir, n_future_list, n_past, regularization=1e-8):
    """Residual inversion error as a function of available future taps.

    For each ``n_future`` in ``n_future_list``, design the best two-sided
    inverse and report the residual.  Monotonically non-increasing in
    ``n_future`` for non-minimum-phase channels — the curve behind the
    paper's Figure 16 trend.

    Returns
    -------
    list of (n_future, residual) tuples.
    """
    out = []
    for n_future in n_future_list:
        g = noncausal_inverse_taps(ir, n_future, n_past,
                                   regularization=regularization)
        out.append((int(n_future), inversion_residual(ir, g, int(n_future))))
    return out
