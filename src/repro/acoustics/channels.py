"""FIR acoustic channels: block and streaming application.

An :class:`AcousticChannel` wraps an impulse response and applies it to
waveforms.  The streaming interface (``step`` / ``process_block``) keeps
filter state across calls, which the sample-loop ANC simulator relies on.

Convolution routes through the shared cached-FFT engine
(:mod:`repro.utils.fastconv`): the spectrum of each impulse response is
transformed once and reused across every ``apply`` call — the hot-path
fix the ``repro perf-profile`` channel stage motivated.  With
:mod:`repro.utils.fastpath` disabled, the historical
``fftconvolve``/``lfilter`` arithmetic runs instead.
"""

from __future__ import annotations

import numpy as np
from scipy import signal as sps

from ..errors import ChannelError
from ..utils import fastconv
from ..utils.validation import check_impulse_response, check_waveform

__all__ = ["AcousticChannel", "cascade", "channel_delay_samples"]


def channel_delay_samples(ir, threshold=0.5):
    """Direct-arrival delay: first tap whose magnitude reaches
    ``threshold`` × the peak magnitude.

    The direct path is the strongest arrival in free field and in all but
    pathological rooms, so this lands on (or within the sinc-interpolation
    ripple of) the true propagation delay.
    """
    ir = check_impulse_response("ir", ir)
    magnitudes = np.abs(ir)
    peak = magnitudes.max()
    if peak <= 0:
        raise ChannelError("impulse response has no energy")
    return int(np.argmax(magnitudes >= threshold * peak))


class AcousticChannel:
    """A linear time-invariant acoustic path.

    Parameters
    ----------
    impulse_response:
        FIR coefficients; index 0 is zero delay.
    name:
        Label used in diagnostics (e.g. ``"h_ne"``).
    """

    def __init__(self, impulse_response, name="channel"):
        self.ir = check_impulse_response("impulse_response", impulse_response)
        self.name = str(name)
        self._state = np.zeros(max(self.ir.size - 1, 1))
        # Shares the carry buffer with step(), so block and per-sample
        # streaming can interleave on one channel.
        self._stream = fastconv.StreamingFir(self.ir, state=self._state)

    def __len__(self):
        return self.ir.size

    def __repr__(self):
        return f"AcousticChannel(name={self.name!r}, taps={self.ir.size})"

    @property
    def delay_samples(self):
        """Delay of the dominant (direct) arrival in samples."""
        return channel_delay_samples(self.ir)

    def apply(self, signal):
        """Convolve a whole waveform (stateless; output length = input)."""
        signal = check_waveform("signal", signal)
        return fastconv.fir_apply(signal, self.ir, mode="same")

    def apply_full(self, signal):
        """Full convolution including the reverberant tail."""
        signal = check_waveform("signal", signal)
        return fastconv.fir_apply(signal, self.ir, mode="full")

    def step(self, sample):
        """Push one input sample through the channel (stateful)."""
        if self.ir.size == 1:
            return float(self.ir[0] * sample)
        out = self.ir[0] * sample + self._state[0]
        self._state[:-1] = self._state[1:]
        self._state[-1] = 0.0
        self._state[: self.ir.size - 1] += self.ir[1:] * sample
        return float(out)

    def process_block(self, block):
        """Streaming block convolution (stateful across calls)."""
        block = check_waveform("block", block)
        return self._stream.process(block)

    def reset(self):
        """Clear streaming state."""
        self._state[:] = 0.0

    def frequency_response(self, sample_rate, n_points=512):
        """Return ``(freqs_hz, complex_response)`` on a linear grid."""
        w, h = sps.freqz(self.ir, worN=n_points, fs=sample_rate)
        return w, h


def cascade(*channels, name=None):
    """Compose channels in series into a single equivalent channel."""
    if not channels:
        raise ChannelError("cascade requires at least one channel")
    ir = np.array([1.0])
    for ch in channels:
        ir = fastconv.fir_apply(ir, ch.ir, mode="full")
    label = name or "*".join(ch.name for ch in channels)
    return AcousticChannel(ir, name=label)
