"""Free-field propagation: delays, spreading loss, fractional delay filters.

Sound from a point source reaches a microphone after ``d / v`` seconds
with amplitude falling as ``1/d`` (spherical spreading).  Because delays
rarely land on integer sample boundaries, a windowed-sinc fractional
delay filter is used wherever sub-sample accuracy matters (image-source
reflections, the conventional-ANC phase-lag model).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..utils import fastconv
from ..utils.validation import check_non_negative, check_positive, check_waveform
from .constants import SPEED_OF_SOUND

__all__ = [
    "delay_seconds",
    "delay_samples",
    "spreading_gain",
    "fractional_delay_filter",
    "apply_delay",
]


def delay_seconds(distance_m, speed=SPEED_OF_SOUND):
    """Propagation delay over ``distance_m`` meters, in seconds."""
    distance_m = check_non_negative("distance_m", distance_m)
    speed = check_positive("speed", speed)
    return distance_m / speed


def delay_samples(distance_m, sample_rate, speed=SPEED_OF_SOUND):
    """Propagation delay in (fractional) samples."""
    sample_rate = check_positive("sample_rate", sample_rate)
    return delay_seconds(distance_m, speed) * sample_rate


def spreading_gain(distance_m, reference_m=1.0):
    """Spherical spreading amplitude gain relative to ``reference_m``.

    Clamped below ``reference_m / 4`` distance so a microphone virtually
    touching the source does not produce unbounded gain.
    """
    distance_m = check_non_negative("distance_m", distance_m)
    reference_m = check_positive("reference_m", reference_m)
    return reference_m / max(distance_m, reference_m / 4.0)


def fractional_delay_filter(delay, n_taps=31):
    """Windowed-sinc FIR approximating a ``delay``-sample delay.

    Parameters
    ----------
    delay:
        Non-negative delay in samples; may be fractional.  The filter
        length grows automatically if the delay exceeds the tap span.
    n_taps:
        Nominal filter length (odd recommended).

    Returns
    -------
    numpy.ndarray
        FIR coefficients ``h`` such that ``(h * x)[t] ≈ x[t - delay]``.
    """
    delay = check_non_negative("delay", delay)
    if n_taps < 3:
        raise ConfigurationError(f"n_taps must be >= 3, got {n_taps}")
    n_taps = int(n_taps)
    if n_taps % 2 == 0:
        n_taps += 1
    center = n_taps // 2
    int_part = int(np.floor(delay))
    frac = delay - int_part

    # Symmetric windowed-sinc kernel realizing a delay of (center + frac):
    # centering the window on the sinc peak keeps the group delay exact.
    offset = np.arange(n_taps) - (center + frac)
    half_width = center + 1.0
    window = np.where(
        np.abs(offset) <= half_width,
        0.5 * (1.0 + np.cos(np.pi * offset / half_width)),
        0.0,
    )
    kernel = np.sinc(offset) * window
    kernel /= kernel.sum()   # unit DC gain

    shift = int_part - center
    if shift >= 0:
        return np.concatenate([np.zeros(shift), kernel])
    # Small delays: the causal constraint forces truncating the kernel's
    # left tail; accuracy degrades gracefully as delay -> 0.
    taps = kernel[-shift:]
    total = taps.sum()
    if abs(total) > 1e-9:
        taps = taps / total
    return taps


def apply_delay(signal, delay, sample_rate=None):
    """Delay a waveform by ``delay`` samples (fractional allowed).

    Integer delays shift exactly (zero-padded at the front); fractional
    delays use :func:`fractional_delay_filter`.  Output length equals the
    input length.
    """
    signal = check_waveform("signal", signal)
    delay = check_non_negative("delay", delay)
    n = signal.size
    int_delay = int(round(delay))
    if abs(delay - int_delay) < 1e-9:
        if int_delay == 0:
            return signal.copy()
        if int_delay >= n:
            return np.zeros(n)
        out = np.zeros(n)
        out[int_delay:] = signal[: n - int_delay]
        return out
    # The worst standalone convolution offender before the perf
    # overhaul: a fresh full-length np.convolve per fractional delay.
    # The shared engine caches the kernel's spectrum across calls.
    taps = fractional_delay_filter(delay)
    return fastconv.fir_apply(signal, taps, mode="same")
