"""Physical constants for acoustic and RF propagation.

The entire MUTE idea rests on one ratio: RF travels ~10^6 times faster
than sound, so a relay 1 m closer to the noise source buys ≈3 ms of
lookahead (paper Eq. 4).
"""

from __future__ import annotations

__all__ = [
    "SPEED_OF_SOUND",
    "SPEED_OF_LIGHT",
    "RF_TO_SOUND_SPEED_RATIO",
    "DEFAULT_SAMPLE_RATE",
    "CONVENTIONAL_ANC_BUDGET_S",
]

#: Speed of sound in air at ~20 °C (m/s); the paper uses ≈340 m/s.
SPEED_OF_SOUND = 340.0

#: Speed of light in vacuum (m/s); RF in air is within 0.03% of this.
SPEED_OF_LIGHT = 299_792_458.0

#: How much faster RF is than sound — the "velocity gap" MUTE exploits.
RF_TO_SOUND_SPEED_RATIO = SPEED_OF_LIGHT / SPEED_OF_SOUND

#: Sample rate used throughout the experiments; the paper's TMS320C6713
#: caps at 8 kHz, which caps cancellation at 4 kHz.
DEFAULT_SAMPLE_RATE = 8000.0

#: Time budget of a conventional headphone: sound covers the <1 cm gap
#: between reference microphone and anti-noise speaker in ≈30 µs
#: (paper §1 and §3.1).
CONVENTIONAL_ANC_BUDGET_S = 30e-6
