"""3-D geometry primitives: points, distances, shoebox rooms.

Experiment scenarios (Figures 1, 19) are laid out in a rectangular
("shoebox") room with a noise source, one or more IoT relays, and the
MUTE client.  All positions are in meters.
"""

from __future__ import annotations

import dataclasses
import math

from ..errors import ConfigurationError
from .constants import SPEED_OF_SOUND

__all__ = ["Point", "Room", "distance", "propagation_time"]


@dataclasses.dataclass(frozen=True)
class Point:
    """A 3-D position in meters."""

    x: float
    y: float
    z: float = 0.0

    def __post_init__(self):
        for axis in ("x", "y", "z"):
            value = getattr(self, axis)
            if not math.isfinite(value):
                raise ConfigurationError(f"Point.{axis} must be finite")

    def distance_to(self, other):
        """Euclidean distance to another point, in meters."""
        return math.dist((self.x, self.y, self.z), (other.x, other.y, other.z))

    def as_tuple(self):
        """The point as a plain ``(x, y, z)`` tuple."""
        return (self.x, self.y, self.z)


def distance(a, b):
    """Euclidean distance between two points (meters)."""
    return a.distance_to(b)


def propagation_time(a, b, speed=SPEED_OF_SOUND):
    """Travel time of a wave from ``a`` to ``b`` at ``speed`` m/s."""
    if speed <= 0:
        raise ConfigurationError(f"speed must be > 0, got {speed}")
    return distance(a, b) / speed


@dataclasses.dataclass(frozen=True)
class Room:
    """A shoebox room with frequency-flat wall absorption.

    Parameters
    ----------
    length, width, height:
        Interior dimensions in meters.
    absorption:
        Energy absorption coefficient of the walls in [0, 1); the wall
        amplitude reflection coefficient is ``sqrt(1 - absorption)``.
        Typical offices are ~0.3–0.5.
    """

    length: float
    width: float
    height: float = 3.0
    absorption: float = 0.4

    def __post_init__(self):
        for axis in ("length", "width", "height"):
            value = getattr(self, axis)
            if not math.isfinite(value) or value <= 0:
                raise ConfigurationError(f"Room.{axis} must be > 0")
        if not 0.0 <= self.absorption < 1.0:
            raise ConfigurationError(
                f"absorption must be in [0, 1), got {self.absorption}"
            )

    @property
    def reflection_coefficient(self):
        """Amplitude reflection coefficient of each wall."""
        return math.sqrt(1.0 - self.absorption)

    def contains(self, point, margin=0.0):
        """Whether ``point`` lies inside the room (with optional margin)."""
        return (
            margin <= point.x <= self.length - margin
            and margin <= point.y <= self.width - margin
            and margin <= point.z <= self.height - margin
        )

    def require_inside(self, name, point):
        """Raise :class:`ConfigurationError` if the point is outside."""
        if not self.contains(point):
            raise ConfigurationError(
                f"{name} at {point.as_tuple()} is outside the "
                f"{self.length}x{self.width}x{self.height} m room"
            )
        return point
