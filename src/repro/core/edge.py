"""Noise cancellation as an edge service (paper §4.3, Figure 10b).

"Another organization is to move the DSP to a backend server, and
connect multiple IoT relays to it, enabling a MUTE public service ...
The DSP processor can compute the anti-noise for each user and send it
over RF.  If computation becomes the bottleneck with multiple users,
perhaps the server could be upgraded with multiple-DSP cores."

The interesting systems question is the bottleneck sentence: a server
that can afford ``capacity`` full-rate adaptive-filter updates must
*time-share* adaptation once more clients connect.  Anti-noise
*playback* is cheap (one convolution per client); it is the gradient
update that costs, so the scheduler keeps every client's filter running
but only adapts a rotating subset — and per-client convergence slows
in proportion.

:class:`EdgeAncService` implements that round-robin scheduler on top of
per-client LANC filters and reports per-client cancellation, so the
capacity/user-count trade-off is measurable.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..errors import ConfigurationError
from ..utils.units import cancellation_db
from ..utils.validation import check_positive, check_positive_int
from .adaptive.lanc import LancFilter

__all__ = ["EdgeClient", "EdgeServiceResult", "EdgeAncService"]


@dataclasses.dataclass
class EdgeClient:
    """One subscriber's prepared signals (aligned per its own relay)."""

    name: str
    reference: np.ndarray
    disturbance: np.ndarray
    secondary_true: np.ndarray
    secondary_estimate: np.ndarray
    n_future: int


@dataclasses.dataclass
class EdgeServiceResult:
    """Per-client outcomes of one service run."""

    cancellation_db: dict       # client name -> broadband dB
    adaptation_duty: float      # fraction of samples each client adapted
    n_clients: int

    def mean_cancellation_db(self):
        return float(np.mean(list(self.cancellation_db.values())))


class EdgeAncService:
    """Round-robin adaptation across clients under a compute budget.

    Parameters
    ----------
    capacity:
        How many clients' *adaptation* the server can run concurrently
        at full sample rate (playback is assumed affordable for all).
        With ``n_clients <= capacity`` everyone adapts every sample;
        beyond that, client *i* adapts on interleaved sample slots with
        duty ``capacity / n_clients``.
    n_past / mu:
        Filter sizing shared by all clients.
    """

    def __init__(self, capacity=2, n_past=384, mu=0.15):
        self.capacity = check_positive_int("capacity", capacity)
        self.n_past = check_positive_int("n_past", n_past)
        self.mu = check_positive("mu", mu)

    def _adaptation_mask(self, n_samples, client_index, n_clients):
        """Interleaved round-robin slots for one client.

        At sample ``s`` the server adapts clients
        ``(s·capacity + j) mod n_clients`` for ``j < capacity``; client
        ``i`` is therefore active when
        ``(i − s·capacity) mod n_clients < capacity``, which spreads each
        client's slots evenly through time with duty
        ``≈ capacity / n_clients``.
        """
        if n_clients <= self.capacity:
            return None     # full-rate adaptation
        s = np.arange(n_samples)
        return ((client_index - s * self.capacity) % n_clients
                < self.capacity)

    def serve(self, clients, settle_fraction=0.5):
        """Run the service for a set of clients over their signals.

        Returns an :class:`EdgeServiceResult` with per-client broadband
        cancellation measured after ``settle_fraction`` of the run.
        """
        if not clients:
            raise ConfigurationError("no clients to serve")
        names = [c.name for c in clients]
        if len(set(names)) != len(names):
            raise ConfigurationError("client names must be unique")

        n_clients = len(clients)
        duty = min(self.capacity / n_clients, 1.0)
        results = {}
        for index, client in enumerate(clients):
            lanc = LancFilter(
                n_future=client.n_future, n_past=self.n_past,
                secondary_path=client.secondary_estimate, mu=self.mu)
            mask = self._adaptation_mask(client.disturbance.size, index,
                                         n_clients)
            run = lanc.run(client.reference, client.disturbance,
                           secondary_path_true=client.secondary_true,
                           adapt_mask=mask)
            tail = slice(int(client.disturbance.size * settle_fraction),
                         None)
            results[client.name] = cancellation_db(
                client.disturbance[tail], run.error[tail])
        return EdgeServiceResult(
            cancellation_db=results,
            adaptation_duty=duty,
            n_clients=n_clients,
        )
