"""The full MUTE system simulator.

:class:`MuteSystem` wires every substrate together the way Figure 2's
bench does:

    noise source ──h_nr──► relay mic ──FM/RF──► ear-device DSP
        │                                         │ (aligned reference,
        └────────h_ne──► error mic ◄──h_se── anti-noise speaker
                              │                   │
                              └── error feedback ─┘ (LANC)

``run()`` produces the residual at the measurement microphone — the
quantity behind Figures 12, 14, 16 and 17 — along with the no-ANC
baseline, so cancellation spectra come straight off the result object.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .. import obs
from ..errors import ConfigurationError, LookaheadError
from ..hardware.dsp_board import DspBoard, tms320c6713
from ..hardware.transducers import TransducerResponse, cheap_transducer
from ..utils import fastconv
from ..utils.spectral import cancellation_spectrum_db
from ..utils.validation import check_waveform
from ..wireless.relay import IdealRelay
from .adaptive import kernels
from .adaptive.lanc import LancFilter
from .lookahead import LookaheadBudget
from .scenario import Scenario
from .secondary_path import estimate_secondary_path

__all__ = ["MuteConfig", "PreparedSignals", "MuteRunResult",
           "ResilientRunResult", "MuteSystem"]


@dataclasses.dataclass
class MuteConfig:
    """Tuning of the ear-device and its periphery.

    Parameters
    ----------
    n_future / n_past:
        Requested LANC tap counts; ``n_future`` is clipped to what the
        lookahead budget allows.
    mu / leak:
        Adaptation step (normalized) and leak.
    relay:
        Relay model (``IdealRelay`` or ``AnalogRelay``); default ideal
        with light mic noise.
    dsp:
        Ear-device latency budget; default the paper's TMS320C6713.
    transducer:
        Anti-noise speaker (+mic) response in the cancellation path;
        ``None`` for ideal transducers.  Default: the paper's cheap
        hardware (Figure 13).
    earcup:
        Passive attenuation over the ear (``None`` = open ear —
        MUTE_Hollow; a :class:`PassiveEarcup` = MUTE+Passive).
    injected_delay_s:
        Figure 16's artificial reference delay.
    probe_secondary:
        Estimate ``h_se`` with a noisy probe (realistic); if false the
        filter receives the exact secondary path.
    probe_noise_rms:
        Ambient noise level during the secondary-path probe.
    seed:
        Randomness seed (probe noise etc.).
    kernel_backend:
        Adaptive-kernel backend for the LANC filter (``"loop"`` /
        ``"vector"``); ``None`` defers to the ``REPRO_KERNEL_BACKEND``
        environment variable, then the default ``loop`` — see
        :mod:`repro.core.adaptive.kernels` and ``docs/KERNELS.md``.
    """

    n_future: int = 64
    n_past: int = 192
    mu: float = 0.5
    leak: float = 0.0
    relay: object = None
    dsp: DspBoard = dataclasses.field(default_factory=tms320c6713)
    transducer: TransducerResponse = dataclasses.field(
        default_factory=cheap_transducer
    )
    earcup: object = None
    injected_delay_s: float = 0.0
    probe_secondary: bool = True
    probe_noise_rms: float = 0.01
    seed: int = 0
    kernel_backend: str | None = None

    def __post_init__(self):
        if self.relay is None:
            self.relay = IdealRelay(mic_noise_rms=1e-3, seed=self.seed)
        if self.kernel_backend is not None:
            kernels.resolve_backend_name(self.kernel_backend)
        if self.n_future < 0 or self.n_past <= 0:
            raise ConfigurationError(
                "need n_future >= 0 and n_past > 0, got "
                f"({self.n_future}, {self.n_past})"
            )
        if self.injected_delay_s < 0:
            raise ConfigurationError("injected_delay_s must be >= 0")


@dataclasses.dataclass
class PreparedSignals:
    """Signals and parameters ready for a LANC run (or a custom loop)."""

    reference: np.ndarray        # aligned reference at the DSP
    disturbance_open: np.ndarray  # noise at the ear, no device at all
    disturbance_at_ear: np.ndarray  # after the earcup (if any)
    secondary_path_true: np.ndarray
    secondary_path_estimate: np.ndarray
    n_future: int
    budget: LookaheadBudget
    sample_rate: float


@dataclasses.dataclass
class MuteRunResult:
    """Outcome of one MUTE simulation run."""

    residual: np.ndarray          # at the measurement mic, ANC on
    disturbance_open: np.ndarray  # no device (the "off" reference)
    disturbance_at_ear: np.ndarray
    antinoise: np.ndarray
    budget: LookaheadBudget
    n_future_used: int
    sample_rate: float

    def _settled(self, signal, settle_fraction):
        start = int(signal.size * settle_fraction)
        return signal[start:]

    def cancellation_spectrum(self, nperseg=512, settle_fraction=0.3):
        """(freqs, dB) — residual PSD over open-ear PSD (Figure 12 axes).

        The first ``settle_fraction`` of the run (adaptive-filter
        convergence) is excluded, as a bench measurement would.
        """
        before = self._settled(self.disturbance_open, settle_fraction)
        after = self._settled(self.residual, settle_fraction)
        return cancellation_spectrum_db(before, after, self.sample_rate,
                                        nperseg=nperseg)

    def mean_cancellation_db(self, f_low=0.0, f_high=None, nperseg=512,
                             settle_fraction=0.3):
        """Average cancellation over a band (negative = cancelling)."""
        freqs, spec = self.cancellation_spectrum(nperseg, settle_fraction)
        f_high = f_high if f_high is not None else self.sample_rate / 2.0
        mask = (freqs >= f_low) & (freqs <= f_high)
        if not np.any(mask):
            raise ConfigurationError(
                f"band [{f_low}, {f_high}] Hz contains no PSD bins"
            )
        return float(np.mean(spec[mask]))


@dataclasses.dataclass
class ResilientRunResult(MuteRunResult):
    """Outcome of a fault-injected :meth:`MuteSystem.run_resilient` run.

    Extends :class:`MuteRunResult` with the degradation history.  Note
    ``antinoise`` here is the anti-noise *as heard at the error mic*
    (``residual − disturbance_at_ear``): the streaming loop does not
    retain the raw speaker drive.

    Attributes
    ----------
    transitions : list of ModeTransition
        Every mode change the degradation controller performed.
    modes : list of str
        The mode each block ran under, in block order.
    mode_fractions : dict
        ``{mode: fraction of blocks}`` summary.
    block_size : int
        Samples per degradation-control block.
    plan_key : str or None
        Content address of the injected :class:`repro.faults.FaultPlan`
        (``None`` for an unfaulted run).
    """

    transitions: list = dataclasses.field(default_factory=list)
    modes: list = dataclasses.field(default_factory=list)
    mode_fractions: dict = dataclasses.field(default_factory=dict)
    block_size: int = 256
    plan_key: str | None = None

    @property
    def recovered(self):
        """True when the run ended back in full MUTE operation."""
        return not self.modes or self.modes[-1] == "mute"

    def window_cancellation_db(self, start_s, stop_s):
        """Broadband cancellation (dB, negative = cancelling) over a window.

        Time-domain RMS ratio of residual to open-ear disturbance over
        ``[start_s, stop_s)`` — the right tool for *localizing* fault
        impact (e.g. comparing cancellation inside and outside an outage
        window), where the settled-PSD view of
        :meth:`cancellation_spectrum` would smear the event.
        """
        lo = max(0, int(start_s * self.sample_rate))
        hi = min(self.residual.size, int(stop_s * self.sample_rate))
        if hi <= lo:
            raise ConfigurationError(
                f"window [{start_s}, {stop_s}] s selects no samples"
            )
        rms_after = float(np.sqrt(np.mean(self.residual[lo:hi] ** 2)))
        rms_before = float(np.sqrt(
            np.mean(self.disturbance_open[lo:hi] ** 2)))
        return 20.0 * np.log10(max(rms_after, 1e-12)
                               / max(rms_before, 1e-12))


class MuteSystem:
    """End-to-end MUTE simulation over a :class:`Scenario`.

    Parameters
    ----------
    scenario:
        Physical layout; channels are built once at construction.
    config:
        :class:`MuteConfig`; defaults give the paper's bench.
    relay_index:
        Which of the scenario's relays the client uses (relay
        *selection* is exercised separately via
        :mod:`repro.core.relay_selection`).
    """

    def __init__(self, scenario, config=None, relay_index=0):
        if not isinstance(scenario, Scenario):
            raise ConfigurationError("scenario must be a Scenario")
        self.scenario = scenario
        self.config = config or MuteConfig()
        self.channels = scenario.build_channels()
        if not 0 <= relay_index < len(self.channels.h_nr):
            raise ConfigurationError(
                f"relay_index {relay_index} out of range"
            )
        self.relay_index = relay_index
        self.sample_rate = scenario.sample_rate
        self._secondary_true = self._build_secondary_true()
        with obs.span("mute.estimate_secondary",
                      probe=self.config.probe_secondary):
            self._secondary_estimate = self._estimate_secondary()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _build_secondary_true(self):
        """Physical speaker→error-mic path including the transducer."""
        ir = self.channels.h_se.ir
        transducer = self.config.transducer
        if transducer is None:
            return ir.copy()
        combined = fastconv.fir_apply(ir, transducer.impulse_response,
                                      mode="full")
        # The transducer FIR is linear-phase; its bulk delay is an
        # artifact of the FIR realization, not physics — remove it.
        d = transducer.group_delay_samples
        return combined[d:]

    def _estimate_secondary(self):
        cfg = self.config
        n_taps = min(self._secondary_true.size, 128)
        if not cfg.probe_secondary:
            return self._secondary_true.copy()
        estimate = estimate_secondary_path(
            self._secondary_true, n_taps=n_taps,
            probe_duration_s=max(1.0, n_taps * 8 / self.sample_rate),
            sample_rate=self.sample_rate,
            ambient_noise_rms=cfg.probe_noise_rms,
            seed=cfg.seed,
        )
        return estimate.impulse_response

    @property
    def lookahead_budget(self):
        """The Eq. 3 / Eq. 4 ledger for the selected relay."""
        lead_s = (self.channels.acoustic_lead_samples[self.relay_index]
                  / self.sample_rate)
        relay_latency = getattr(self.config.relay, "latency_samples", 0)
        return LookaheadBudget(
            acoustic_lead_s=lead_s,
            pipeline_latency_s=self.config.dsp.total_latency_s,
            relay_latency_s=float(relay_latency) / self.sample_rate,
            injected_delay_s=self.config.injected_delay_s,
        )

    # ------------------------------------------------------------------
    # Signal preparation and the main run
    # ------------------------------------------------------------------
    def prepare(self, noise, relay=None):
        """Propagate noise through the scene; align the reference.

        Parameters
        ----------
        noise : array_like
            Source noise waveform.
        relay : object, optional
            Override for the forwarding relay — used by
            :meth:`run_resilient` to substitute a fault-injecting
            wrapper (:class:`repro.faults.FaultyRelay`) without touching
            the configured relay.  Defaults to ``config.relay``, so
            existing callers are bit-identical.

        Raises
        ------
        LookaheadError
            If the configured relay offers negative usable lookahead
            (relay selection would have rejected it).
        """
        noise = check_waveform("noise", noise, min_length=64)
        cfg = self.config
        forward_relay = relay if relay is not None else cfg.relay
        with obs.span("mute.prepare", samples=noise.size) as sp:
            budget = self.lookahead_budget
            if not budget.meets_deadline:
                raise LookaheadError(
                    f"usable lookahead {budget.usable_lookahead_s * 1e3:.2f} "
                    "ms is negative — reposition the relay (or let relay "
                    "selection reject it)"
                )
            n_future = min(cfg.n_future,
                           budget.usable_future_taps(self.sample_rate))

            with obs.span("mute.prepare.propagate"):
                d_open = self.channels.h_ne.apply(noise)
                x_capture = self.channels.h_nr[self.relay_index].apply(noise)
            with obs.span("mute.prepare.relay"):
                forwarded = forward_relay.forward(x_capture)

            with obs.span("mute.prepare.align"):
                lead = self.channels.acoustic_lead_samples[self.relay_index]
                reference = np.zeros_like(forwarded)
                if lead < forwarded.size:
                    reference[lead:] = forwarded[: forwarded.size - lead]

                d_ear = (cfg.earcup.apply(d_open)
                         if cfg.earcup is not None else d_open)

            sp.set_attribute("n_future", n_future)
            if obs.enabled():
                registry = obs.get_registry()
                registry.counter("mute.prepares").inc()
                registry.gauge("mute.n_future").set(n_future)

        return PreparedSignals(
            reference=reference,
            disturbance_open=d_open,
            disturbance_at_ear=d_ear,
            secondary_path_true=self._secondary_true,
            secondary_path_estimate=self._secondary_estimate,
            n_future=n_future,
            budget=budget,
            sample_rate=self.sample_rate,
        )

    def make_filter(self, n_future=None):
        """A LANC filter wired with this system's secondary-path estimate."""
        cfg = self.config
        return LancFilter(
            n_future=cfg.n_future if n_future is None else n_future,
            n_past=cfg.n_past,
            secondary_path=self._secondary_estimate,
            mu=cfg.mu,
            leak=cfg.leak,
            kernel_backend=cfg.kernel_backend,
        )

    def run(self, noise):
        """Simulate the complete system over a noise waveform.

        When observability is enabled (``repro.obs``), the run is traced
        as a ``mute.run`` span with ``mute.prepare`` / ``mute.adapt`` /
        ``mute.collect`` children — the stages the timing-budget report
        prices.  Instrumentation never touches signals or seeds, so the
        returned waveforms are bit-identical either way.
        """
        with obs.span("mute.run") as sp:
            prepared = self.prepare(noise)
            with obs.span("mute.adapt", engine="lanc",
                          n_future=prepared.n_future,
                          n_past=self.config.n_past):
                lanc = self.make_filter(n_future=prepared.n_future)
                result = lanc.run(
                    prepared.reference,
                    prepared.disturbance_at_ear,
                    secondary_path_true=prepared.secondary_path_true,
                )
            with obs.span("mute.collect"):
                run_result = MuteRunResult(
                    residual=result.error,
                    disturbance_open=prepared.disturbance_open,
                    disturbance_at_ear=prepared.disturbance_at_ear,
                    antinoise=result.output,
                    budget=prepared.budget,
                    n_future_used=prepared.n_future,
                    sample_rate=self.sample_rate,
                )
            sp.set_attribute("samples", prepared.reference.size)
            if obs.enabled():
                obs.get_registry().counter("mute.runs").inc()
        return run_result

    def run_resilient(self, noise, fault_plan=None, block_size=256,
                      monitor=None):
        """Simulate the system under relay-path faults, degrading gracefully.

        The fault-injected counterpart of :meth:`run`: the configured
        relay is wrapped in a :class:`repro.faults.FaultyRelay` applying
        ``fault_plan``, and the adaptive filter runs block-by-block
        behind a :class:`repro.faults.DegradationController` — a
        reference-health watchdog that walks
        ``mute → feedback → passive`` as the reference degrades and
        restores the pre-fault taps on recovery.  See ``docs/FAULTS.md``.

        Parameters
        ----------
        noise : array_like
            Source noise waveform.
        fault_plan : FaultPlan, optional
            Timed fault events to inject; ``None`` (or an empty plan)
            runs faultless — bit-identical signals to the same loop over
            the unwrapped relay.
        block_size : int
            Samples per health-assessment block (the degradation
            controller's reaction granularity).
        monitor : ReferenceHealthMonitor, optional
            Custom watchdog thresholds; sensible defaults otherwise.

        Returns
        -------
        ResilientRunResult
            Residual/baseline waveforms plus the mode history and
            transitions.

        Notes
        -----
        Traced as a ``mute.run_resilient`` span; every mode change emits
        a ``resilience.transition`` child span and ticks
        ``resilience.transitions{from,to}``, so a mid-run outage is
        visible in ``repro obs-report`` output.
        """
        # Imported here: repro.faults is an extension layer on top of
        # core and must stay optional for plain runs.
        from ..faults.injector import wrap_relay
        from ..faults.monitor import DegradationController
        from .adaptive.lanc import StreamingLanc

        if block_size <= 0:
            raise ConfigurationError("block_size must be > 0")
        block_size = int(block_size)
        plan_key = (fault_plan.plan_key()
                    if fault_plan is not None and not fault_plan.empty
                    else None)
        with obs.span("mute.run_resilient", block_size=block_size,
                      plan=plan_key or "none") as sp:
            relay = wrap_relay(self.config.relay, fault_plan,
                               self.sample_rate)
            prepared = self.prepare(noise, relay=relay)
            lanc = self.make_filter(n_future=prepared.n_future)
            stream = StreamingLanc(
                lanc, secondary_path_true=prepared.secondary_path_true
            )
            controller = DegradationController(
                lanc, monitor=monitor, sample_rate=self.sample_rate
            )
            # Feed everything up front, zero-padded so the final block's
            # anti-causal taps see the same implicit zeros as the batch
            # path (`padded_reference`).
            reference = prepared.reference
            stream.feed(np.concatenate(
                [reference, np.zeros(prepared.n_future)]
            ) if prepared.n_future else reference)
            with obs.span("mute.adapt", engine="resilient-lanc",
                          n_future=prepared.n_future,
                          n_past=self.config.n_past):
                d = prepared.disturbance_at_ear
                for t0 in range(0, reference.size, block_size):
                    t1 = min(t0 + block_size, reference.size)
                    mode = controller.observe(reference[t0:t1], t0)
                    adapt, active = DegradationController.gates(mode)
                    stream.process(d[t0:t1], adapt=adapt, active=active)
            with obs.span("mute.collect"):
                residual = stream.error_signal()
                run_result = ResilientRunResult(
                    residual=residual,
                    disturbance_open=prepared.disturbance_open,
                    disturbance_at_ear=prepared.disturbance_at_ear,
                    antinoise=residual - prepared.disturbance_at_ear,
                    budget=prepared.budget,
                    n_future_used=prepared.n_future,
                    sample_rate=self.sample_rate,
                    transitions=list(controller.transitions),
                    modes=list(controller.modes),
                    mode_fractions=controller.mode_fractions(),
                    block_size=block_size,
                    plan_key=plan_key,
                )
            sp.set_attribute("samples", reference.size)
            sp.set_attribute("transitions", len(run_result.transitions))
            if obs.enabled():
                obs.get_registry().counter("mute.resilient_runs").inc()
        return run_result

    # ------------------------------------------------------------------
    # Relay-selection support (Figures 18–19)
    # ------------------------------------------------------------------
    def forwarded_and_ear_signals(self, noise):
        """Per-relay forwarded waveforms plus the raw ear signal.

        Inputs for :class:`repro.core.relay_selection.RelaySelector` —
        no alignment applied, exactly what the client would correlate.
        """
        noise = check_waveform("noise", noise, min_length=64)
        ear = self.channels.h_ne.apply(noise)
        forwarded = {}
        for i, channel in enumerate(self.channels.h_nr):
            captured = channel.apply(noise)
            forwarded[i] = self.config.relay.forward(captured)
        return forwarded, ear

    def summary(self):
        """One-paragraph configuration description for reports."""
        budget = self.lookahead_budget
        return (
            f"MuteSystem: lead {budget.acoustic_lead_s * 1e3:.2f} ms, "
            f"pipeline {budget.pipeline_latency_s * 1e3:.2f} ms, "
            f"usable lookahead {budget.usable_lookahead_s * 1e3:.2f} ms "
            f"({budget.usable_future_taps(self.sample_rate)} future taps "
            f"at {self.sample_rate:.0f} Hz)"
        )
