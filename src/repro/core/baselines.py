"""Baselines: today's ANC headphones (the paper's Bose comparisons).

A conventional feedforward ANC headphone runs the same FxLMS machinery
as LANC but with two handicaps the paper quantifies:

1. **Timing**: its reference mic sits <1 cm from the speaker, a ~30 µs
   acoustic budget that ADC+DSP+DAC+speaker delays overrun ~3×, so the
   anti-noise plays ``τ`` late.  A delayed copy cancels a tone only up
   to the phase error ``2π f τ``: the residual amplitude is
   ``|1 − e^{−j2πfτ}| = 2|sin(πfτ)|`` — tiny at low frequency, total
   failure (0 dB) by a couple of kHz.  That is exactly the Bose_Active
   curve of Figure 12.
2. **Causality**: with microseconds of lookahead the non-causal part of
   the optimal filter is truncated, leaving a floor even at low
   frequency.

:class:`ConventionalAncModel` captures both with a closed form
(validated against a time-domain FxLMS simulation at high sample rate in
the test suite — see :func:`simulate_delay_limited_fxlms`).
:class:`BoseHeadphone` composes it with the passive earcup for
Bose_Overall.
"""

from __future__ import annotations

import dataclasses

import numpy as np
from scipy import signal as sps

from ..acoustics.propagation import fractional_delay_filter
from ..errors import ConfigurationError
from ..hardware.headphone import PassiveEarcup, bose_qc35_earcup
from ..utils.spectral import cancellation_spectrum_db
from ..utils.validation import check_positive, check_waveform
from .adaptive.lanc import LancFilter

__all__ = [
    "ConventionalAncModel",
    "BoseHeadphone",
    "simulate_delay_limited_fxlms",
]


@dataclasses.dataclass(frozen=True)
class ConventionalAncModel:
    """Delay-limited active cancellation (Bose_Active in Figure 12).

    Parameters
    ----------
    delay_error_s:
        How late the anti-noise plays (pipeline latency minus the ~30 µs
        acoustic budget).  ~60–120 µs for commercial headphones.
    floor_db:
        Best-case cancellation at DC (convergence/causality floor);
        Figure 12 shows Bose_Active bottoming out around −20…−25 dB.
    max_cancel_hz:
        Above this frequency the headphone's active stage gives up
        (manufacturers band-limit ANC; paper: "designed to only cancel
        low-frequency sounds below 1 kHz").  Cancellation is clamped to
        0 dB beyond the phase-error crossover anyway; this simply models
        the explicit cutoff some products apply.  ``None`` disables.
    """

    delay_error_s: float = 90e-6
    floor_db: float = -24.0
    max_cancel_hz: float | None = None

    def __post_init__(self):
        if self.delay_error_s < 0:
            raise ConfigurationError("delay_error_s must be >= 0")
        if self.floor_db > 0:
            raise ConfigurationError("floor_db must be <= 0")

    def residual_gain(self, freqs):
        """Linear residual amplitude vs frequency (1 = no cancellation)."""
        f = np.asarray(freqs, dtype=float)
        phase_residual = 2.0 * np.abs(np.sin(np.pi * f * self.delay_error_s))
        floor = 10.0 ** (self.floor_db / 20.0)
        residual = np.maximum(phase_residual, floor)
        residual = np.minimum(residual, 1.0)   # never amplify
        if self.max_cancel_hz is not None:
            residual = np.where(f > self.max_cancel_hz, 1.0, residual)
        return residual

    def cancellation_db(self, freqs):
        """Cancellation spectrum in dB (negative = cancelling)."""
        return 20.0 * np.log10(self.residual_gain(freqs))

    def residual_fir(self, sample_rate, n_taps=257):
        """Linear-phase FIR whose magnitude is the residual gain."""
        sample_rate = check_positive("sample_rate", sample_rate)
        if n_taps % 2 == 0 or n_taps < 9:
            raise ConfigurationError("n_taps must be odd and >= 9")
        grid = np.linspace(0.0, sample_rate / 2.0, 512)
        gains = self.residual_gain(grid)
        return sps.firwin2(n_taps, grid, gains, fs=sample_rate)

    def residual_waveform(self, disturbance, sample_rate, n_taps=257):
        """What the ear hears with this active stage on (time-aligned)."""
        disturbance = check_waveform("disturbance", disturbance)
        fir = self.residual_fir(sample_rate, n_taps)
        filtered = sps.fftconvolve(disturbance, fir)
        d = (n_taps - 1) // 2
        return filtered[d: d + disturbance.size]


class BoseHeadphone:
    """Active stage + passive earcup: the Bose_Overall scheme.

    ``residual_waveform`` applies the earcup's insertion loss and then
    the delay-limited active stage, the composition measured as
    Bose_Overall; set ``active=False`` for the passive-only measurement.
    """

    def __init__(self, active_model=None, earcup=None, sample_rate=8000.0):
        self.sample_rate = check_positive("sample_rate", sample_rate)
        self.active = active_model or ConventionalAncModel()
        self.earcup = earcup or bose_qc35_earcup(sample_rate=self.sample_rate)
        if not isinstance(self.earcup, PassiveEarcup):
            raise ConfigurationError("earcup must be a PassiveEarcup")

    def overall_cancellation_db(self, freqs):
        """Active + passive cancellation in dB (negative = quieter)."""
        return (self.active.cancellation_db(freqs)
                - self.earcup.insertion_loss_db(freqs))

    def residual_waveform(self, disturbance, active=True):
        """Ear signal with the headphone on."""
        disturbance = check_waveform("disturbance", disturbance)
        under_cup = self.earcup.apply(disturbance)
        if not active:
            return under_cup
        return self.active.residual_waveform(under_cup, self.sample_rate)

    def mean_overall_cancellation_db(self, f_low=0.0, f_high=None,
                                     n_points=256):
        """Band-average of the overall curve (the paper's −15 dB figure)."""
        f_high = f_high or self.sample_rate / 2.0
        freqs = np.linspace(max(f_low, 1.0), f_high, n_points)
        return float(np.mean(self.overall_cancellation_db(freqs)))


def simulate_delay_limited_fxlms(noise, sample_rate, delay_error_s,
                                 n_taps=96, mu=0.05, leak=1e-3,
                                 settle_fraction=0.3,
                                 kernel_backend=None):
    """Time-domain check of the delay-limited model.

    Runs causal FxLMS where the *true* secondary path contains an extra
    (possibly fractional) bulk delay of ``delay_error_s`` that the
    filter's estimate does not know about — the physical situation of a
    headphone missing its deadline.  Returns ``(freqs, cancellation_db)``
    measured from the simulation, to be compared against
    :meth:`ConventionalAncModel.cancellation_db`.

    Note: run this at a high sample rate (e.g. 48 kHz) so microsecond
    delays are resolvable.  The defaults use a small step and a leak:
    with an unmodeled secondary-path delay, FxLMS is unstable wherever
    the phase error exceeds 90° (the textbook bound) — the leak damps
    those modes, just as production headphones band-limit their ANC.
    """
    noise = check_waveform("noise", noise, min_length=1024)
    sample_rate = check_positive("sample_rate", sample_rate)
    if delay_error_s < 0:
        raise ConfigurationError("delay_error_s must be >= 0")

    delay_samples = delay_error_s * sample_rate
    s_nominal = np.zeros(8)
    s_nominal[1] = 1.0   # what the filter believes
    late = fractional_delay_filter(delay_samples, n_taps=31)
    s_true = np.convolve(s_nominal, late)   # what physics does

    lanc = LancFilter(n_future=0, n_past=n_taps, secondary_path=s_nominal,
                      mu=mu, leak=leak, kernel_backend=kernel_backend)
    result = lanc.run(noise, noise, secondary_path_true=s_true)
    start = int(noise.size * settle_fraction)
    return cancellation_spectrum_db(noise[start:], result.error[start:],
                                    sample_rate)
