"""Wiener-optimal LANC bounds — how good could the filter possibly be?

Adaptive results always carry misadjustment and convergence transients;
to separate "LANC hasn't converged" from "no linear filter of this shape
can do better", this module computes the least-squares-optimal two-sided
tap vector for given signals::

    w* = argmin_w  || d + Σ_k w(k) · (s ∗ x)(· − k) ||²,   k ∈ [−N, L)

via the Toeplitz normal equations (solved with Levinson recursion in
``scipy.linalg.solve_toeplitz``), plus the residual it achieves.  The
minimizer depends on the filtered reference ``v = s ∗ x`` because the
anti-noise passes through the secondary path before reaching the error
microphone; linearity lets the convolutions commute.

Uses: experiments report "adaptive vs optimal" gaps; the Figure 16
sweep's optimal curve isolates the *causality* limit from adaptation
noise; tests pin LANC's converged error to within a factor of the bound.
"""

from __future__ import annotations

import dataclasses

import numpy as np
from scipy import linalg, signal as sps

from ..errors import ConfigurationError
from ..utils.validation import (
    check_impulse_response,
    check_non_negative_int,
    check_positive_int,
    check_same_length,
    check_waveform,
)

__all__ = ["WienerSolution", "wiener_lanc", "optimal_cancellation_db"]


@dataclasses.dataclass(frozen=True)
class WienerSolution:
    """The optimal tap vector and its achieved residual."""

    taps: np.ndarray          # future-first, LancFilter-compatible
    residual: np.ndarray      # e*(t) = d(t) + (s * y*)(t)
    n_future: int
    n_past: int

    @property
    def residual_rms(self):
        return float(np.sqrt(np.mean(self.residual ** 2)))

    def cancellation_db(self, disturbance):
        """Broadband optimal cancellation against ``disturbance``."""
        from ..utils.units import cancellation_db

        return cancellation_db(disturbance, self.residual)


def _correlations(v, d, n_future, n_past):
    """Autocorrelation of v and cross-correlation v↔d on the tap grid."""
    T = v.size
    M = n_future + n_past
    # r_v[m] = sum_t v(t) v(t - m) for m = 0..M-1 (symmetric).
    full = sps.fftconvolve(v, v[::-1])
    mid = T - 1
    r_v = full[mid: mid + M]
    # p[k] = sum_t d(t) v(t - k) for k = -n_future .. n_past-1.
    cross = sps.fftconvolve(d, v[::-1])
    p = cross[mid - n_future: mid + n_past]
    return r_v, p


def wiener_lanc(reference, disturbance, secondary_path, n_future, n_past,
                regularization=1e-8):
    """Solve for the optimal two-sided canceler on these signals.

    Parameters mirror :class:`repro.core.LancFilter` (aligned reference,
    disturbance at the error mic, true secondary path, tap shape).

    Returns
    -------
    WienerSolution
        ``taps`` is directly loadable into a :class:`LancFilter` via
        ``set_taps`` (same future-first convention).
    """
    x = check_waveform("reference", reference, min_length=64)
    d = check_waveform("disturbance", disturbance, min_length=64)
    check_same_length("reference", x, "disturbance", d)
    s = check_impulse_response("secondary_path", secondary_path)
    n_future = check_non_negative_int("n_future", n_future)
    n_past = check_positive_int("n_past", n_past)
    M = n_future + n_past
    if M > x.size // 4:
        raise ConfigurationError(
            f"{M} taps need far more than {x.size} samples to estimate"
        )

    v = sps.fftconvolve(x, s)[: x.size]
    r_v, p = _correlations(v, d, n_future, n_past)
    r_v = r_v.copy()
    r_v[0] += regularization * max(r_v[0], 1e-12)

    # Normal equations: R w = -p, with R Toeplitz from r_v.  The tap
    # grid's two-sidedness only shifts which cross-correlation lags feed
    # p; the Gram matrix structure is unchanged.
    try:
        w = linalg.solve_toeplitz((r_v, r_v), -p)
    except np.linalg.LinAlgError as exc:
        raise ConfigurationError(
            f"normal equations are singular: {exc}"
        ) from exc

    # w is ordered by k = -n_future .. n_past-1; future-first storage
    # wants index 0 ↔ k = -n_future — already the case.
    y = _two_sided_filter(x, w, n_future)
    residual = d + sps.fftconvolve(y, s)[: d.size]
    return WienerSolution(taps=w, residual=residual,
                          n_future=n_future, n_past=n_past)


def _two_sided_filter(x, taps, n_future):
    """y(t) = Σ_k taps[k + n_future] · x(t − k)."""
    full = np.convolve(x, taps)
    # taps[i] multiplies x(t - (i - n_future)); plain convolution puts
    # taps[i] against x(t - i), so the wanted output is the convolution
    # advanced by n_future samples.  len(full) = len(x) + M - 1 and
    # M - 1 >= n_future (n_past >= 1), so the slice always fits.
    return full[n_future: n_future + x.size]


def optimal_cancellation_db(reference, disturbance, secondary_path,
                            n_future, n_past, settle_fraction=0.25):
    """Convenience: the optimal broadband cancellation for this scene."""
    solution = wiener_lanc(reference, disturbance, secondary_path,
                           n_future, n_past)
    from ..utils.units import cancellation_db

    start = int(disturbance.size * settle_fraction)
    return cancellation_db(disturbance[start:], solution.residual[start:])
