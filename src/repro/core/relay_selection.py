"""Relay selection via GCC-PHAT (paper §4.2, Figures 18–19).

MUTE only helps when the relay hears the sound *before* the ear.  The
client checks this by cross-correlating the wirelessly forwarded
waveform against its own error-microphone signal with the GCC-PHAT
(phase transform) weighting, which is robust in reverberant rooms.  The
correlation peak's lag tells the sign and size of the lookahead:

* peak at positive lag → the forwarded signal *leads*: usable relay;
* peak at negative lag → the relay is farther from the source than the
  ear: reject (or nudge the user to move it).

With several relays the client picks the one with the largest positive
lag — the maximum lookahead (Figure 19).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..errors import RelaySelectionError
from ..utils.validation import check_positive, check_waveform

__all__ = [
    "gcc_phat",
    "LookaheadMeasurement",
    "measure_lookahead",
    "RelaySelector",
]


def gcc_phat(forwarded, ear_signal, sample_rate, max_lag_s=0.05,
             epsilon=1e-12):
    """GCC-PHAT cross-correlation between two waveforms.

    Parameters
    ----------
    forwarded:
        The relay's wirelessly forwarded waveform.
    ear_signal:
        The error-microphone recording over the same wall-clock span.
    sample_rate:
        Common sampling rate, Hz.
    max_lag_s:
        Correlation is evaluated for lags in ``[-max_lag_s, +max_lag_s]``.

    Returns
    -------
    (lags_s, correlation):
        ``lags_s[i] > 0`` means the forwarded signal leads the ear signal
        by ``lags_s[i]`` seconds (positive lookahead).
    """
    a = check_waveform("forwarded", forwarded, min_length=16)
    b = check_waveform("ear_signal", ear_signal, min_length=16)
    sample_rate = check_positive("sample_rate", sample_rate)
    max_lag_s = check_positive("max_lag_s", max_lag_s)
    n = int(a.size + b.size)
    spec_a = np.fft.rfft(a, n)
    spec_b = np.fft.rfft(b, n)
    cross = spec_b * np.conj(spec_a)
    cross /= np.maximum(np.abs(cross), epsilon)   # PHAT weighting
    corr = np.fft.irfft(cross, n)
    max_lag = min(int(max_lag_s * sample_rate), a.size - 1)
    # corr[k] is the correlation at ear-delay k; assemble [-max_lag, max_lag].
    negative = corr[-max_lag:]        # forwarded lags (negative lookahead)
    positive = corr[: max_lag + 1]    # forwarded leads (positive lookahead)
    correlation = np.concatenate([negative, positive])
    lags = np.arange(-max_lag, max_lag + 1) / sample_rate
    return lags, correlation


@dataclasses.dataclass(frozen=True)
class LookaheadMeasurement:
    """Outcome of one GCC-PHAT lookahead probe."""

    lag_s: float          # positive = forwarded leads the ear
    peak_value: float     # correlation peak height
    confidence: float     # peak-to-median prominence ratio

    @property
    def is_positive(self):
        """True when the relay offers usable (positive) lookahead."""
        return self.lag_s > 0.0


def measure_lookahead(forwarded, ear_signal, sample_rate, max_lag_s=0.05):
    """Measure the relay's lookahead with GCC-PHAT.

    Returns a :class:`LookaheadMeasurement`; ``confidence`` compares the
    peak against the background correlation level (≥ ~5 is a clean
    spike).
    """
    lags, corr = gcc_phat(forwarded, ear_signal, sample_rate,
                          max_lag_s=max_lag_s)
    peak_idx = int(np.argmax(corr))
    peak = float(corr[peak_idx])
    background = float(np.median(np.abs(corr))) or 1e-12
    return LookaheadMeasurement(
        lag_s=float(lags[peak_idx]),
        peak_value=peak,
        confidence=peak / background,
    )


class RelaySelector:
    """Pick the relay with the largest positive lookahead.

    Parameters
    ----------
    sample_rate:
        Audio rate of the compared waveforms.
    min_lookahead_s:
        Relays whose measured lead falls below this are rejected —
        marginally positive lookahead cannot pay the pipeline latency.
    min_confidence:
        Reject measurements whose correlation spike is not prominent.
    min_health:
        Relays whose health score (see :meth:`select`) falls below this
        are skipped outright — a link in backoff must not be selected
        no matter how much lookahead it once offered.
    """

    def __init__(self, sample_rate=8000.0, min_lookahead_s=0.0,
                 min_confidence=3.0, min_health=0.5):
        self.sample_rate = check_positive("sample_rate", sample_rate)
        if min_lookahead_s < 0:
            raise RelaySelectionError("min_lookahead_s must be >= 0")
        self.min_lookahead_s = float(min_lookahead_s)
        self.min_confidence = check_positive("min_confidence", min_confidence)
        if not 0.0 < min_health <= 1.0:
            raise RelaySelectionError("min_health must be in (0, 1]")
        self.min_health = float(min_health)

    def measure_all(self, forwarded_by_relay, ear_signal, max_lag_s=0.05):
        """GCC-PHAT every relay; returns ``{relay_id: measurement}``."""
        if not forwarded_by_relay:
            raise RelaySelectionError("no relays supplied")
        return {
            relay_id: measure_lookahead(waveform, ear_signal,
                                        self.sample_rate, max_lag_s)
            for relay_id, waveform in forwarded_by_relay.items()
        }

    def select(self, forwarded_by_relay, ear_signal, max_lag_s=0.05,
               health=None):
        """Return ``(best_relay_id_or_None, measurements)``.

        Parameters
        ----------
        forwarded_by_relay : dict
            ``{relay_id: forwarded_waveform}`` candidates.
        ear_signal : array_like
            Error-microphone recording over the same span.
        max_lag_s : float
            Correlation search window, seconds.
        health : dict, optional
            ``{relay_id: score in [0, 1]}`` from a
            :class:`~repro.faults.supervision.RelaySupervisor`.  Relays
            scoring below ``min_health`` are skipped; otherwise the
            effective score is ``lag × health``, so a probationary relay
            only wins with a clear lookahead advantage.  Missing ids
            default to 1.0.

        Returns
        -------
        (best_relay_id_or_None, measurements)
            ``None`` means every relay has negative/insufficient
            lookahead (or is quarantined) — the sound source is nearer
            the client than any usable relay, so LANC should not run on
            forwarded audio (paper: "no relay is selected").
        """
        measurements = self.measure_all(forwarded_by_relay, ear_signal,
                                        max_lag_s=max_lag_s)
        health = health or {}
        best_id, best_score = None, self.min_lookahead_s
        for relay_id, m in measurements.items():
            if not m.is_positive or m.confidence < self.min_confidence:
                continue
            relay_health = float(health.get(relay_id, 1.0))
            if relay_health < self.min_health:
                continue
            score = m.lag_s * relay_health
            if score > best_score:
                best_id, best_score = relay_id, score
        return best_id, measurements
