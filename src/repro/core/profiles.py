"""Sound profiling: signatures, classification, predictive filter switching.

Paper §3.2(2): when the dominant sound alternates (speech bursts over
background noise), a single adaptive filter re-converges at every
transition and cancellation fluctuates (Figure 8b).  LANC instead

1. computes a **profile signature** — the band-energy distribution — of
   the *lookahead buffer* (sound that has not yet reached the ear),
2. matches it against known profiles,
3. when the upcoming profile differs from the current one, **loads** the
   cached converged taps for the new profile right at the transition
   (Figure 8c), and keeps adapting from there.

The buffer-ahead classification is the part that needs lookahead: the
switch happens *when* the new sound arrives, not a detection latency
after.
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from .. import obs
from ..errors import ConfigurationError
from ..utils.spectral import band_energy_signature
from ..utils.validation import check_positive, check_positive_int

__all__ = [
    "SoundProfile",
    "signature_distance",
    "ProfileClassifier",
    "FilterCache",
    "PredictiveProfileSwitcher",
]


@dataclasses.dataclass
class SoundProfile:
    """A named sound profile: normalized band-energy signature + level.

    ``level_db`` is the profile's typical RMS level in dB (arbitrary but
    consistent reference); ``None`` when unknown (signature-only
    matching).
    """

    label: str
    signature: np.ndarray
    level_db: float | None = None

    def __post_init__(self):
        self.signature = np.asarray(self.signature, dtype=np.float64)
        if self.signature.ndim != 1 or self.signature.size < 2:
            raise ConfigurationError("signature must be a 1-D vector")
        total = self.signature.sum()
        if total <= 0:
            raise ConfigurationError("signature must have positive mass")
        self.signature = self.signature / total


def signature_distance(a, b):
    """L1 distance between two normalized signatures (0 … 2)."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape:
        raise ConfigurationError("signatures must have equal shape")
    return float(np.sum(np.abs(a - b)))


class ProfileClassifier:
    """Nearest-profile classifier over band-energy signatures.

    Parameters
    ----------
    sample_rate:
        Audio rate of analyzed buffers.
    n_bands:
        Signature resolution.
    max_distance:
        Distance beyond which a buffer matches *no* profile
        (returns ``None`` — treated as "unknown, keep adapting").
    energy_floor:
        Buffers with RMS below this are classified as ``"quiet"``
        regardless of shape (silence has no meaningful spectrum).
    level_weight:
        How much a level difference contributes to the match distance:
        ``level_weight`` per 10 dB of RMS mismatch.  The paper's
        signature ("average energy distribution across frequencies") is
        level-invariant; in practice the *loudness* of a profile is a
        strong cue — a talker switching on raises the level long before
        the normalized spectrum shifts — so the default includes it.
        Set 0.0 for pure shape matching.
    """

    def __init__(self, sample_rate=8000.0, n_bands=16, max_distance=0.8,
                 energy_floor=1e-4, level_weight=0.5):
        self.sample_rate = check_positive("sample_rate", sample_rate)
        self.n_bands = check_positive_int("n_bands", n_bands)
        self.max_distance = check_positive("max_distance", max_distance)
        self.energy_floor = check_positive("energy_floor", energy_floor)
        if level_weight < 0:
            raise ConfigurationError("level_weight must be >= 0")
        self.level_weight = float(level_weight)
        self._profiles = {}

    @property
    def labels(self):
        """Registered profile labels."""
        return list(self._profiles)

    def signature(self, buffer):
        """Band-energy signature of a buffer."""
        return band_energy_signature(buffer, self.sample_rate,
                                     n_bands=self.n_bands)

    @staticmethod
    def _level_db(buffer):
        rms = float(np.sqrt(np.mean(np.square(buffer)))) if len(buffer) \
            else 0.0
        return 20.0 * np.log10(max(rms, 1e-12))

    def register(self, label, buffer):
        """Learn a profile from an example buffer; returns the profile."""
        profile = SoundProfile(label=str(label),
                               signature=self.signature(buffer),
                               level_db=self._level_db(buffer))
        self._profiles[profile.label] = profile
        return profile

    def register_signature(self, label, signature, level_db=None):
        """Register a precomputed signature (and optional level)."""
        profile = SoundProfile(label=str(label), signature=signature,
                               level_db=level_db)
        self._profiles[profile.label] = profile
        return profile

    def classify(self, buffer):
        """Label of the nearest profile, ``"quiet"``, or ``None``.

        ``None`` means no registered profile is close enough.
        """
        buffer = np.asarray(buffer, dtype=float)
        rms = float(np.sqrt(np.mean(np.square(buffer)))) if buffer.size else 0.0
        if rms < self.energy_floor:
            return "quiet"
        if not self._profiles:
            return None
        sig = self.signature(buffer)
        level = self._level_db(buffer)
        best_label, best_dist = None, np.inf
        for label, profile in self._profiles.items():
            dist = signature_distance(sig, profile.signature)
            if self.level_weight and profile.level_db is not None:
                dist += self.level_weight * abs(level
                                                - profile.level_db) / 10.0
            if dist < best_dist:
                best_label, best_dist = label, dist
        if best_dist > self.max_distance:
            return None
        return best_label


class FilterCache:
    """Converged tap vectors, one per profile label."""

    def __init__(self):
        self._cache = {}

    def __contains__(self, label):
        return label in self._cache

    def __len__(self):
        return len(self._cache)

    def store(self, label, taps):
        """Cache (a copy of) the taps for ``label``."""
        self._cache[str(label)] = np.asarray(taps, dtype=np.float64).copy()

    def load(self, label):
        """Return cached taps for ``label`` (a copy), or ``None``."""
        taps = self._cache.get(str(label))
        return None if taps is None else taps.copy()

    def labels(self):
        """Cached labels."""
        return list(self._cache)


@dataclasses.dataclass
class SwitchEvent:
    """Record of one predictive filter switch (for experiment reports)."""

    sample_index: int
    from_label: str
    to_label: str
    cache_hit: bool


class PredictiveProfileSwitcher:
    """Orchestrates classify-ahead → cache → switch for a LANC filter.

    Drive it block-by-block over the *lookahead* stream (sound that is
    about to reach the ear)::

        switcher = PredictiveProfileSwitcher(classifier, filter)
        for block_start in range(0, T, block):
            future = reference[block_start : block_start + block]
            switcher.observe(future, block_start)

    ``observe`` classifies the upcoming block; on a profile change it
    saves the current taps under the old label and loads cached taps for
    the new one (if any).  The filter keeps adapting afterwards, so each
    profile's cache entry improves over time.
    """

    def __init__(self, classifier, lanc_filter, min_dwell_blocks=1):
        if not isinstance(classifier, ProfileClassifier):
            raise ConfigurationError("classifier must be a ProfileClassifier")
        self.classifier = classifier
        self.filter = lanc_filter
        self.cache = FilterCache()
        self.min_dwell_blocks = check_positive_int(
            "min_dwell_blocks", min_dwell_blocks
        )
        self.current_label = None
        self._dwell = 0
        self.events = []

    def observe(self, future_block, sample_index):
        """Classify an upcoming block; switch filters on profile change.

        Returns the label now active (may be ``None`` early on).
        ``min_dwell_blocks`` debounces: a switch is only allowed after the
        current profile has been held for that many observations
        (``1`` = switch freely).
        """
        self._dwell += 1
        label = self.classifier.classify(future_block)
        if label is None:
            # Unknown sound: keep the current filter adapting.
            return self.current_label
        if label == self.current_label:
            return self.current_label
        if self._dwell < self.min_dwell_blocks and self.current_label is not None:
            # Debounce spurious single-block flips.
            return self.current_label

        enabled = obs.enabled()
        t_start = time.perf_counter() if enabled else None
        if self.current_label is not None:
            self.cache.store(self.current_label, self.filter.get_taps())
        cached = self.cache.load(label)
        if cached is not None:
            self.filter.set_taps(cached)
        if enabled:
            registry = obs.get_registry()
            registry.histogram("profiles.swap_s").observe(
                time.perf_counter() - t_start)
            registry.counter("profiles.switches", to=str(label)).inc()
            registry.counter("profiles.cache_hits" if cached is not None
                             else "profiles.cache_misses").inc()
        self.events.append(SwitchEvent(
            sample_index=int(sample_index),
            from_label=str(self.current_label),
            to_label=str(label),
            cache_hit=cached is not None,
        ))
        self.current_label = label
        self._dwell = 0
        return label
