"""An online MUTE ear-device: block processing with relay handoff.

Paper §4.2: "Correlation is performed periodically to handle the
possibility that the sound source has moved to another location."  The
batch :class:`MuteSystem` picks one relay up front; this module runs the
device the way it would actually operate:

* consume the relay streams and the error-mic stream block by block;
* every ``reselect_interval_s``, GCC-PHAT the recent window of every
  relay against the ear and (re)select the best positive-lookahead
  relay — the *measured* correlation lag doubles as the alignment the
  canceler needs;
* on a handoff (or when the lag drifts), rebuild the streaming canceler
  for the new relay/alignment, warm-starting from a per-relay tap cache;
* when no relay offers usable lookahead, output silence (the residual is
  simply the ambient noise) until one does.

The simulation driver :meth:`OnlineMuteDevice.run_session` accepts a
*schedule* of (source position, waveform) segments, so the noise source
can jump around the room mid-session — the scenario the paper's periodic
correlation exists for.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..errors import ConfigurationError
from ..hardware.dsp_board import tms320c6713
from ..utils.validation import check_positive, check_waveform
from .adaptive import kernels
from .adaptive.lanc import LancFilter, StreamingLanc
from .profiles import PredictiveProfileSwitcher, ProfileClassifier
from .relay_selection import RelaySelector
from .scenario import Scenario
from .secondary_path import estimate_secondary_path

__all__ = ["HandoffEvent", "OnlineSessionResult", "OnlineMuteDevice"]


@dataclasses.dataclass(frozen=True)
class HandoffEvent:
    """One relay (re)selection decision."""

    sample_index: int
    relay: object            # relay index or None
    lag_samples: int
    warm_start: bool


@dataclasses.dataclass
class OnlineSessionResult:
    """Everything a session produced."""

    residual: np.ndarray
    disturbance: np.ndarray
    handoffs: list
    active_relay_timeline: np.ndarray   # per-sample relay index (-1 = none)

    def segment_cancellation_db(self, start, stop):
        """Broadband cancellation over ``[start, stop)`` samples."""
        from ..utils.units import cancellation_db

        return cancellation_db(self.disturbance[start:stop],
                               self.residual[start:stop])


class OnlineMuteDevice:
    """Block-streaming ear-device over a multi-relay scenario.

    Parameters
    ----------
    scenario:
        Room/relay/client layout (source positions come per segment).
    n_future_max / n_past / mu:
        LANC sizing; ``n_future`` is set per handoff from the measured
        lag minus the pipeline latency.
    block_s:
        Processing block (also the granularity of handoffs).
    reselect_interval_s:
        How often the device re-runs GCC-PHAT (the paper's "periodic").
    correlation_window_s:
        How much recent audio each correlation uses.
    classifier:
        Optional pre-trained :class:`ProfileClassifier` (e.g. loaded via
        :func:`repro.core.load_learned_state`).  When given, the device
        also runs predictive profile switching on each block's lookahead
        window, with one filter cache per relay assignment.
    kernel_backend:
        Adaptive-kernel backend for the streaming cancelers (``None`` =
        env var / default; see :mod:`repro.core.adaptive.kernels`).  The
        ``vector`` backend pays off here twice: in the per-block loop
        and in the frozen-tap skip-ahead after a handoff.
    """

    def __init__(self, scenario, n_future_max=64, n_past=384, mu=0.15,
                 block_s=0.05, reselect_interval_s=0.5,
                 correlation_window_s=0.5, dsp=None, seed=0,
                 classifier=None, kernel_backend=None):
        if classifier is not None and not isinstance(classifier,
                                                     ProfileClassifier):
            raise ConfigurationError(
                "classifier must be a ProfileClassifier (or None)")
        self.classifier = classifier
        if not isinstance(scenario, Scenario):
            raise ConfigurationError("scenario must be a Scenario")
        self.scenario = scenario
        self.fs = scenario.sample_rate
        self.n_future_max = int(n_future_max)
        self.n_past = int(n_past)
        self.mu = check_positive("mu", mu)
        self.block = max(int(check_positive("block_s", block_s) * self.fs),
                         1)
        self.reselect_every = max(
            int(check_positive("reselect_interval_s", reselect_interval_s)
                * self.fs), 1)
        self.corr_window = max(
            int(check_positive("correlation_window_s",
                               correlation_window_s) * self.fs), 64)
        self.dsp = dsp or tms320c6713()
        self.seed = seed
        if kernel_backend is not None:
            kernels.resolve_backend_name(kernel_backend)
        self.kernel_backend = kernel_backend
        self.selector = RelaySelector(sample_rate=self.fs,
                                      min_confidence=3.0)

        # Secondary path is a property of the (static) client position.
        self._channels_cache = {}
        base = scenario.build_channels()
        self._h_se = base.h_se.ir
        estimate = estimate_secondary_path(
            self._h_se, n_taps=min(self._h_se.size, 128),
            probe_duration_s=1.0, sample_rate=self.fs,
            ambient_noise_rms=0.002, seed=seed)
        self._s_hat = estimate.impulse_response
        self._pipeline_samples = self.dsp.total_latency_s * self.fs

    # ------------------------------------------------------------------
    # Simulation-side signal synthesis
    # ------------------------------------------------------------------
    def _channels_for(self, source):
        key = source.as_tuple()
        if key not in self._channels_cache:
            self._channels_cache[key] = \
                self.scenario.with_source(source).build_channels()
        return self._channels_cache[key]

    def _synthesize(self, schedule):
        """Per-relay forwarded streams + ear stream for a schedule."""
        captures = [[] for __ in self.scenario.relays]
        ear = []
        boundaries = [0]
        for source, waveform in schedule:
            waveform = check_waveform("segment waveform", waveform)
            channels = self._channels_for(source)
            ear.append(channels.h_ne.apply(waveform))
            for i, h_nr in enumerate(channels.h_nr):
                captures[i].append(h_nr.apply(waveform))
            boundaries.append(boundaries[-1] + waveform.size)
        forwarded = [np.concatenate(chunks) for chunks in captures]
        return forwarded, np.concatenate(ear), boundaries

    # ------------------------------------------------------------------
    # The online loop
    # ------------------------------------------------------------------
    def _reselect(self, forwarded, ear, t):
        """GCC-PHAT over the recent window; returns (relay, lag) or None.

        Correlates against the *ambient* component of the ear signal.
        A real device reconstructs it as ``d_hat = e − ŝ∗α`` (it knows
        the anti-noise it played and its secondary-path estimate); the
        simulation hands it the ambient directly, which is the same
        signal up to the estimate's error.
        """
        start = max(t - self.corr_window, 0)
        if t - start < 64:
            return None
        window = {i: f[start:t] for i, f in enumerate(forwarded)}
        best, measurements = self.selector.select(window, ear[start:t],
                                                  max_lag_s=0.05)
        if best is None:
            return None
        lag = int(round(measurements[best].lag_s * self.fs))
        if lag - self._pipeline_samples < 1:
            return None
        return best, lag

    def _build_stream(self, forwarded, relay, lag, T, cache):
        """Aligned reference + streaming canceler for one assignment."""
        n_future = min(int(lag - np.floor(self._pipeline_samples)),
                       self.n_future_max)
        reference = np.zeros(T)
        reference[lag:] = forwarded[relay][: T - lag]
        lanc = LancFilter(n_future=n_future, n_past=self.n_past,
                          secondary_path=self._s_hat, mu=self.mu,
                          kernel_backend=self.kernel_backend)
        cached = cache.get((relay, lag))
        warm = cached is not None
        if warm:
            lanc.set_taps(cached)
        stream = StreamingLanc(lanc, secondary_path_true=self._h_se)
        stream.feed(np.concatenate([reference, np.zeros(n_future)]))
        return stream, lanc, n_future, warm

    def run_session(self, schedule):
        """Run the device over a (source, waveform) schedule.

        Returns an :class:`OnlineSessionResult`; handoffs record every
        relay decision the device made.
        """
        if not schedule:
            raise ConfigurationError("schedule must be non-empty")
        forwarded, ear, __ = self._synthesize(schedule)
        T = ear.size

        residual = np.empty(T)
        timeline = np.full(T, -1, dtype=int)
        handoffs = []
        cache = {}

        stream = None
        lanc = None
        switcher = None
        assignment = None        # (relay, lag)
        since_reselect = self.reselect_every   # force a check at t=0

        t = 0
        while t < T:
            stop = min(t + self.block, T)
            if since_reselect >= self.reselect_every:
                since_reselect = 0
                decision = self._reselect(forwarded, ear, t)
                new_assignment = decision if decision else None
                drift = (
                    assignment is not None and new_assignment is not None
                    and assignment[0] == new_assignment[0]
                    and abs(assignment[1] - new_assignment[1]) <= 2
                )
                if new_assignment != assignment and not drift:
                    if assignment is not None and lanc is not None:
                        cache[assignment] = lanc.get_taps()
                    if new_assignment is None:
                        stream, lanc, switcher = None, None, None
                    else:
                        stream, lanc, __, warm = self._build_stream(
                            forwarded, new_assignment[0],
                            new_assignment[1], T, cache)
                        switcher = (
                            PredictiveProfileSwitcher(
                                self.classifier, lanc, min_dwell_blocks=4)
                            if self.classifier is not None else None
                        )
                        # Skip the stream ahead to the current time.
                        if t > 0:
                            stream.process(ear[:t], adapt=False)
                        handoffs.append(HandoffEvent(
                            sample_index=t, relay=new_assignment[0],
                            lag_samples=new_assignment[1],
                            warm_start=warm))
                    assignment = new_assignment
                    if new_assignment is None:
                        handoffs.append(HandoffEvent(
                            sample_index=t, relay=None, lag_samples=0,
                            warm_start=False))

            if stream is None:
                residual[t:stop] = ear[t:stop]     # no anti-noise
            else:
                if switcher is not None:
                    lookahead_window = np.concatenate([
                        forwarded[assignment[0]][max(t - 128, 0): t],
                        stream.peek_future(
                            min(lanc.n_future, stop - t)),
                    ])
                    switcher.observe(lookahead_window, t)
                residual[t:stop] = stream.process(ear[t:stop])
                timeline[t:stop] = assignment[0]
            since_reselect += stop - t
            t = stop

        return OnlineSessionResult(
            residual=residual,
            disturbance=ear,
            handoffs=handoffs,
            active_relay_timeline=timeline,
        )
