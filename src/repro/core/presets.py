"""Scenario presets for the paper's motivating environments (§1).

"Working or napping at airports may be difficult due to continuous
overhead announcements ... Loud music or chants from public speakers,
sound pollution from road traffic ... working at office, snoozing at the
airport, sleeping at home, working out in the gym."

Each preset returns a ready-to-run :class:`Scenario` plus a matching
noise source, so examples and tests can exercise realistic layouts with
one call.
"""

from __future__ import annotations

from ..acoustics.geometry import Point, Room
from ..acoustics.rir import RirSettings
from ..signals import (
    BandlimitedNoise,
    MachineHum,
    MaleVoice,
    SyntheticMusic,
)
from .scenario import Scenario

__all__ = [
    "airport_gate",
    "gym_floor",
    "bedroom_at_night",
    "all_presets",
]


def airport_gate(sample_rate=8000.0, seed=0):
    """A gate lounge: PA announcements from an overhead speaker.

    Hard surfaces (low absorption); the relay is mounted next to the PA
    speaker — the §4.3 "smart noise" idea avant la lettre.
    """
    # Carpeted gate area with seating: moderately live, not a cathedral.
    room = Room(15.0, 10.0, 4.0, absorption=0.3)
    scenario = Scenario(
        room=room,
        source=Point(7.5, 5.0, 3.6),        # ceiling PA speaker
        client=Point(3.0, 2.5, 1.2),        # napping traveler
        relays=(Point(7.2, 4.8, 3.5),),     # relay beside the PA
        sample_rate=sample_rate,
        rir_settings=RirSettings(max_order=2),
    )
    announcer = MaleVoice(sample_rate=sample_rate, level_rms=0.12,
                          seed=seed, speech_fraction=0.75,
                          sentence_length_s=2.5, pause_length_s=1.5)
    return scenario, announcer


def gym_floor(sample_rate=8000.0, seed=0):
    """A gym: loud music from the front-of-house speaker."""
    room = Room(12.0, 8.0, 3.5, absorption=0.25)
    scenario = Scenario(
        room=room,
        source=Point(1.0, 4.0, 2.5),        # PA stack
        client=Point(8.0, 4.0, 1.5),        # on the treadmill
        relays=(Point(1.4, 3.8, 2.3),),
        sample_rate=sample_rate,
        rir_settings=RirSettings(max_order=2),
    )
    music = SyntheticMusic(sample_rate=sample_rate, level_rms=0.15,
                           tempo_bpm=128.0, seed=seed)
    return scenario, music


def bedroom_at_night(sample_rate=8000.0, seed=0):
    """A bedroom: HVAC hum plus street noise through the window."""
    room = Room(4.0, 3.5, 2.6, absorption=0.55)   # soft furnishings
    scenario = Scenario(
        room=room,
        source=Point(0.3, 1.8, 1.0),        # window / vent
        client=Point(3.0, 1.8, 0.8),        # pillow
        relays=(Point(0.6, 1.8, 1.2),),     # relay on the windowsill
        sample_rate=sample_rate,
        rir_settings=RirSettings(max_order=2),
    )
    hum = MachineHum(sample_rate=sample_rate, level_rms=0.05,
                     fundamental=60.0, seed=seed)
    traffic = BandlimitedNoise(40.0, 1200.0, sample_rate=sample_rate,
                               level_rms=0.04, seed=seed + 1)

    fs = float(sample_rate)

    class _Street:
        """Hum + traffic mixed at generation time."""

        name = "bedroom night noise"
        sample_rate = fs

        def generate(self, duration):
            return hum.generate(duration) + traffic.generate(duration)

    return scenario, _Street()


def all_presets(sample_rate=8000.0, seed=0):
    """Every preset, keyed by name."""
    return {
        "airport gate": airport_gate(sample_rate, seed),
        "gym floor": gym_floor(sample_rate, seed),
        "bedroom at night": bedroom_at_night(sample_rate, seed),
    }
