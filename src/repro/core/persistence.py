"""Persistence for learned state: profile signatures and filter caches.

A deployed ear-device re-enters the same office every day; its learned
sound profiles and converged tap vectors should survive a power cycle.
This module serializes a :class:`ProfileClassifier`'s signatures and a
:class:`FilterCache`'s taps to a single JSON document (human-readable,
no pickle, no code execution on load).
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from ..errors import ConfigurationError
from .profiles import FilterCache, ProfileClassifier

__all__ = ["save_learned_state", "load_learned_state", "STATE_FORMAT_VERSION"]

#: Bumped on any incompatible change to the JSON layout.
STATE_FORMAT_VERSION = 1


def save_learned_state(path, classifier=None, cache=None, metadata=None):
    """Write profiles and/or cached taps to ``path`` (JSON).

    Parameters
    ----------
    path:
        Destination file.
    classifier:
        Optional :class:`ProfileClassifier` whose registered signatures
        are saved.
    cache:
        Optional :class:`FilterCache` whose tap vectors are saved.
    metadata:
        Optional JSON-serializable dict stored alongside (e.g. the
        scenario description the state was learned in).
    """
    if classifier is None and cache is None:
        raise ConfigurationError("nothing to save: pass a classifier "
                                 "and/or a cache")
    document = {
        "format_version": STATE_FORMAT_VERSION,
        "metadata": metadata or {},
    }
    if classifier is not None:
        if not isinstance(classifier, ProfileClassifier):
            raise ConfigurationError(
                "classifier must be a ProfileClassifier")
        document["classifier"] = {
            "sample_rate": classifier.sample_rate,
            "n_bands": classifier.n_bands,
            "max_distance": classifier.max_distance,
            "energy_floor": classifier.energy_floor,
            "level_weight": classifier.level_weight,
            "profiles": {
                label: {
                    "signature": profile.signature.tolist(),
                    "level_db": profile.level_db,
                }
                for label, profile in classifier._profiles.items()
            },
        }
    if cache is not None:
        if not isinstance(cache, FilterCache):
            raise ConfigurationError("cache must be a FilterCache")
        document["cache"] = {
            label: cache.load(label).tolist() for label in cache.labels()
        }
    path = pathlib.Path(path)
    path.write_text(json.dumps(document, indent=1))
    return path


def load_learned_state(path):
    """Read a saved state; returns ``(classifier_or_None, cache_or_None,
    metadata)``.

    Raises
    ------
    ConfigurationError
        On version mismatch or malformed documents.
    """
    path = pathlib.Path(path)
    try:
        document = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"cannot load state from {path}: {exc}") \
            from exc
    version = document.get("format_version")
    if version != STATE_FORMAT_VERSION:
        raise ConfigurationError(
            f"state format {version!r} unsupported "
            f"(expected {STATE_FORMAT_VERSION})"
        )

    classifier = None
    if "classifier" in document:
        spec = document["classifier"]
        classifier = ProfileClassifier(
            sample_rate=spec["sample_rate"],
            n_bands=spec["n_bands"],
            max_distance=spec["max_distance"],
            energy_floor=spec["energy_floor"],
            level_weight=spec.get("level_weight", 0.5),
        )
        for label, entry in spec["profiles"].items():
            classifier.register_signature(
                label, np.asarray(entry["signature"]),
                level_db=entry.get("level_db"))

    cache = None
    if "cache" in document:
        cache = FilterCache()
        for label, taps in document["cache"].items():
            cache.store(label, np.asarray(taps, dtype=np.float64))

    return classifier, cache, document.get("metadata", {})
