"""Experiment scenarios: geometry → acoustic channels.

A :class:`Scenario` is the physical layout of one experiment — the room,
the noise source, the MUTE client (error microphone + anti-noise
speaker) and one or more IoT relays.  ``build_channels()`` returns every
impulse response the system needs, together with the per-relay acoustic
lead — served from the :mod:`repro.runtime` channel cache when the same
geometry was built before, and computed by the image-source model
(``compute_channels()``) otherwise.
"""

from __future__ import annotations

import dataclasses
import math

from ..acoustics.channels import AcousticChannel
from ..acoustics.constants import DEFAULT_SAMPLE_RATE, SPEED_OF_SOUND
from ..acoustics.geometry import Point, Room
from ..acoustics.rir import RirSettings, room_impulse_response
from ..errors import ConfigurationError
from ..utils.validation import check_positive

__all__ = ["Scenario", "ScenarioChannels", "office_scenario"]


@dataclasses.dataclass(frozen=True)
class ScenarioChannels:
    """Every acoustic channel of a scenario, plus derived timing.

    Attributes
    ----------
    h_ne:
        Noise source → error microphone.
    h_nr:
        Noise source → reference microphone, per relay (tuple).
    h_se:
        Anti-noise speaker → error microphone.
    acoustic_lead_samples:
        Per relay: direct-arrival delay of ``h_ne`` minus that of
        ``h_nr`` — positive when the relay hears the sound first.
    sample_rate:
        Rate all of the above are sampled at.
    """

    h_ne: AcousticChannel
    h_nr: tuple
    h_se: AcousticChannel
    acoustic_lead_samples: tuple
    sample_rate: float

    def lead_seconds(self, relay_index=0):
        """Acoustic lead of one relay, in seconds (paper Eq. 4)."""
        return self.acoustic_lead_samples[relay_index] / self.sample_rate


@dataclasses.dataclass(frozen=True)
class Scenario:
    """Physical layout of a MUTE experiment.

    Parameters
    ----------
    room:
        Shoebox room with absorption.
    source:
        Noise source position.
    client:
        Error-microphone position (the user's ear).
    relays:
        IoT relay (reference microphone) positions.
    speaker_offset_m:
        Distance from the error mic to the anti-noise speaker — <1 cm in
        headphones, ~2 cm in the paper's bench rig.
    sample_rate:
        Simulation rate (8 kHz everywhere, per the paper's DSP).
    rir_settings:
        Image-source method configuration.
    """

    room: Room
    source: Point
    client: Point
    relays: tuple = ()
    speaker_offset_m: float = 0.02
    sample_rate: float = DEFAULT_SAMPLE_RATE
    rir_settings: RirSettings = dataclasses.field(default_factory=RirSettings)

    def __post_init__(self):
        check_positive("sample_rate", self.sample_rate)
        check_positive("speaker_offset_m", self.speaker_offset_m)
        self.room.require_inside("source", self.source)
        self.room.require_inside("client", self.client)
        for i, relay in enumerate(self.relays):
            self.room.require_inside(f"relay[{i}]", relay)
        if not self.relays:
            raise ConfigurationError("scenario needs at least one relay")
        # The anti-noise speaker sits next to the client; keep it inside.
        self.room.require_inside("speaker", self.speaker_position)

    @property
    def speaker_position(self):
        """Anti-noise speaker location (offset from the error mic)."""
        return Point(self.client.x + self.speaker_offset_m,
                     self.client.y, self.client.z)

    def source_to_client_m(self):
        """Distance noise travels to the ear (``d_e``)."""
        return self.source.distance_to(self.client)

    def source_to_relay_m(self, relay_index=0):
        """Distance noise travels to a relay (``d_r``)."""
        return self.source.distance_to(self.relays[relay_index])

    def nominal_lead_s(self, relay_index=0, speed=SPEED_OF_SOUND):
        """Geometric Eq.-4 lead (direct paths only)."""
        return (self.source_to_client_m()
                - self.source_to_relay_m(relay_index)) / speed

    def with_source(self, source):
        """Copy with the noise source moved (Figure 19 sweeps)."""
        return dataclasses.replace(self, source=source)

    def build_channels(self, cache=True):
        """The scenario's channels, through the runtime channel cache.

        ``cache=True`` (default) routes through the process-global
        :class:`~repro.runtime.cache.ChannelCache`, so rebuilding the
        same geometry is nearly free and bit-identical to a cold
        compute; pass a specific :class:`ChannelCache` to use it
        instead, or ``False`` to force an uncached compute.
        """
        if cache is False or cache is None:
            return self.compute_channels()
        # Imported lazily: repro.runtime sits above repro.core.
        from ..runtime.cache import get_channel_cache

        store = get_channel_cache() if cache is True else cache
        return store.get_or_build(self)

    def compute_channels(self):
        """Run the image-source model for every path (uncached)."""
        h_ne_ir = room_impulse_response(
            self.room, self.source, self.client, self.sample_rate,
            settings=self.rir_settings,
        )
        h_ne = AcousticChannel(h_ne_ir, name="h_ne")
        h_nr = tuple(
            AcousticChannel(
                room_impulse_response(
                    self.room, self.source, relay, self.sample_rate,
                    settings=self.rir_settings,
                ),
                name=f"h_nr[{i}]",
            )
            for i, relay in enumerate(self.relays)
        )
        h_se = AcousticChannel(
            room_impulse_response(
                self.room, self.speaker_position, self.client,
                self.sample_rate, settings=self.rir_settings,
            ),
            name="h_se",
        )
        # Lead from direct-path geometry: the wavefront that matters for
        # alignment is the first arrival, and IR-peak detection is biased
        # late in reverberant rooms where overlapping reflections can
        # exceed the direct tap.  (GCC-PHAT measures the same quantity at
        # runtime — see repro.core.relay_selection.)
        de = self.source.distance_to(self.client)
        lead = tuple(
            int(math.floor(
                (de - self.source.distance_to(relay))
                / self.rir_settings.speed_of_sound * self.sample_rate
            ))
            for relay in self.relays
        )
        return ScenarioChannels(
            h_ne=h_ne, h_nr=h_nr, h_se=h_se,
            acoustic_lead_samples=lead, sample_rate=self.sample_rate,
        )


def office_scenario(sample_rate=DEFAULT_SAMPLE_RATE, absorption=0.55,
                    relay_on_door=True):
    """The paper's motivating layout (Figure 1): Alice's office.

    A 5 m × 4 m office; corridor noise enters near the door, where the
    IoT relay is pasted; Alice sits at her desk ~3.4 m away.
    """
    room = Room(5.0, 4.0, 3.0, absorption=absorption)
    source = Point(0.5, 3.5, 1.6)                 # doorway conversation
    client = Point(3.5, 1.0, 1.2)                 # Alice's ear at her desk
    relay = Point(0.8, 3.2, 1.6) if relay_on_door else Point(3.0, 1.5, 1.2)
    return Scenario(room=room, source=source, client=client,
                    relays=(relay,), sample_rate=sample_rate)
