"""MUTE core: LANC adaptive filtering, profiling, relay selection, system."""

from .adaptive import (
    AdaptationResult,
    ApaFilter,
    BlockLancFilter,
    FxlmsFilter,
    LancFilter,
    LmsFilter,
    MultiRefLancFilter,
    RlsFilter,
    identify_system,
)
from .adaptive.lanc import StreamingLanc
from .device import HandoffEvent, OnlineMuteDevice, OnlineSessionResult
from .edge import EdgeAncService, EdgeClient, EdgeServiceResult
from .persistence import load_learned_state, save_learned_state
from .presets import airport_gate, all_presets, bedroom_at_night, gym_floor
from .multisource import MultiSourceScene, build_multisource_scene
from .optimal import WienerSolution, optimal_cancellation_db, wiener_lanc
from .baselines import (
    BoseHeadphone,
    ConventionalAncModel,
    simulate_delay_limited_fxlms,
)
from .lookahead import LookaheadBudget, lookahead_samples, lookahead_seconds
from .profiles import (
    FilterCache,
    PredictiveProfileSwitcher,
    ProfileClassifier,
    SoundProfile,
    signature_distance,
)
from .relay_selection import (
    LookaheadMeasurement,
    RelaySelector,
    gcc_phat,
    measure_lookahead,
)
from .scenario import Scenario, ScenarioChannels, office_scenario
from .secondary_path import SecondaryPathEstimate, estimate_secondary_path
from .system import (
    MuteConfig,
    MuteRunResult,
    MuteSystem,
    PreparedSignals,
    ResilientRunResult,
)

__all__ = [
    "AdaptationResult",
    "ApaFilter",
    "BlockLancFilter",
    "MultiRefLancFilter",
    "RlsFilter",
    "MultiSourceScene",
    "build_multisource_scene",
    "WienerSolution",
    "optimal_cancellation_db",
    "wiener_lanc",
    "HandoffEvent",
    "OnlineMuteDevice",
    "OnlineSessionResult",
    "EdgeAncService",
    "EdgeClient",
    "EdgeServiceResult",
    "load_learned_state",
    "save_learned_state",
    "airport_gate",
    "all_presets",
    "bedroom_at_night",
    "gym_floor",
    "FxlmsFilter",
    "LancFilter",
    "LmsFilter",
    "identify_system",
    "StreamingLanc",
    "BoseHeadphone",
    "ConventionalAncModel",
    "simulate_delay_limited_fxlms",
    "LookaheadBudget",
    "lookahead_samples",
    "lookahead_seconds",
    "FilterCache",
    "PredictiveProfileSwitcher",
    "ProfileClassifier",
    "SoundProfile",
    "signature_distance",
    "LookaheadMeasurement",
    "RelaySelector",
    "gcc_phat",
    "measure_lookahead",
    "Scenario",
    "ScenarioChannels",
    "office_scenario",
    "SecondaryPathEstimate",
    "estimate_secondary_path",
    "MuteConfig",
    "MuteRunResult",
    "MuteSystem",
    "PreparedSignals",
    "ResilientRunResult",
]
