"""Adaptive-filter engines: LMS/NLMS, FxLMS, and lookahead-aware LANC.

All engines run their inner loops through the pluggable kernel layer in
:mod:`repro.core.adaptive.kernels` (``loop`` reference backend /
``vector`` fast backend) — see ``docs/KERNELS.md``.
"""

from . import kernels
from .apa import ApaFilter
from .base import (
    AdaptationResult,
    TapVector,
    mse_curve,
    record_block_metrics,
    record_run_metrics,
)
from .block import BlockLancFilter
from .kernels import KernelState, available_backends, resolve_backend_name
from .lanc import FxlmsFilter, LancFilter
from .lms import LmsFilter, identify_system
from .multiref import MultiRefLancFilter
from .rls import RlsFilter

__all__ = [
    "ApaFilter",
    "AdaptationResult",
    "TapVector",
    "mse_curve",
    "record_block_metrics",
    "record_run_metrics",
    "BlockLancFilter",
    "FxlmsFilter",
    "LancFilter",
    "LmsFilter",
    "identify_system",
    "MultiRefLancFilter",
    "RlsFilter",
    "kernels",
    "KernelState",
    "available_backends",
    "resolve_backend_name",
]
