"""Adaptive-filter engines: LMS/NLMS, FxLMS, and lookahead-aware LANC."""

from .apa import ApaFilter
from .base import AdaptationResult, TapVector, mse_curve
from .block import BlockLancFilter
from .lanc import FxlmsFilter, LancFilter
from .lms import LmsFilter, identify_system
from .multiref import MultiRefLancFilter
from .rls import RlsFilter

__all__ = [
    "ApaFilter",
    "AdaptationResult",
    "TapVector",
    "mse_curve",
    "BlockLancFilter",
    "FxlmsFilter",
    "LancFilter",
    "LmsFilter",
    "identify_system",
    "MultiRefLancFilter",
    "RlsFilter",
]
